# Developer entry points.  Everything runs from the repo root with the
# src layout on PYTHONPATH; no install step required.

PY := PYTHONPATH=src python

.PHONY: test test-checked test-clique-index bench-smoke bench ablation bench-accel bench-par bench-serve trace-smoke chaos-smoke lint lint-deep typecheck

test:
	$(PY) -m pytest -x -q

# The full suite with the invariant sanitizer armed: every flow solve is
# audited for conservation/capacity/duality and every result density is
# recomputed from scratch (REPRO_CHECK=1; see repro/guard/sanitize.py).
test-checked:
	REPRO_CHECK=1 $(PY) -m pytest -x -q

# The clique-index property suite on its own (CI also runs it with
# REPRO_NO_NUMPY=1 to pin the pure-python kernel path explicitly).
test-clique-index:
	$(PY) -m pytest tests/test_clique_index.py -q

# One tiny bench per family (figure, table, ablation) at a reduced
# dataset scale, under a hard time cap -- perf regressions fail loudly
# without the cost of the full suite.
BENCH_SMOKE_FILES := \
	benchmarks/bench_fig8_exact.py \
	benchmarks/bench_fig9_flow_sizes.py \
	benchmarks/bench_table3_decomp_share.py \
	benchmarks/bench_ablation_flow_reuse.py

bench-smoke:
	timeout 900 env REPRO_BENCH_SCALE=0.1 PYTHONPATH=src \
		python -m pytest $(BENCH_SMOKE_FILES) -q --benchmark-disable

# Full benchmark suite (regenerates every table/figure artefact).
bench:
	$(PY) -m pytest benchmarks -q

# Just the flow-engine ablation (rewrites benchmarks/out/flow_reuse_ablation.json
# and the machine-readable perf summary benchmarks/out/BENCH_flow.json, which
# also records the accel backend tier and the per-tier flow-phase wall times).
ablation:
	$(PY) -m pytest benchmarks/bench_ablation_flow_reuse.py -q

# The flow ablation across the three accel dispatch tiers (numba/numpy/
# python -- the bench sweeps every available tier in-process) at the
# smoke scale, under the same hard time cap as bench-smoke.
bench-accel:
	timeout 900 env REPRO_BENCH_SCALE=0.1 PYTHONPATH=src \
		python -m pytest benchmarks/bench_ablation_flow_reuse.py -q --benchmark-disable

# Parallel scaling bench (repro.par): serial-vs-parallel bit-identity
# asserted on every cell, wall times for workers 1/2/4 written to the
# machine-readable benchmarks/out/BENCH_par.json.  The >= 2x @ 4
# workers claim is asserted only on hosts with >= 4 CPUs; smaller
# hosts get an explicit skip record in the JSON instead.
bench-par:
	timeout 900 env REPRO_BENCH_SCALE=0.1 PYTHONPATH=src \
		python -m pytest benchmarks/bench_par_scaling.py -q --benchmark-disable

# Query-serving bench (repro.serve): cold exact solve vs warm snapshot
# vs restart-reload per Figure-8 cell, answers asserted bit-identical
# at zero flow solves, wall times written to the machine-readable
# benchmarks/out/BENCH_service.json.  The >= 10x warm-vs-cold claim is
# asserted whenever a cell's cold solve clears the timing-noise floor;
# otherwise the JSON records an explicit skip.
bench-serve:
	timeout 900 env REPRO_BENCH_SCALE=0.1 PYTHONPATH=src \
		python -m pytest benchmarks/bench_serve_cache.py -q --benchmark-disable

# Traced Exact/CoreExact workload streaming JSONL to benchmarks/out/,
# schema-validated and reconciled against the legacy stats (exits
# non-zero on any schema error or stats mismatch).
trace-smoke:
	$(PY) -m repro.obs.smoke benchmarks/out/trace_smoke.jsonl

# Fault-injection / budget-degradation / sanitizer smoke: makes every
# accel kernel with a fallback tier fail mid-run and asserts the solve
# completes bit-identically, then checks the degradation and sanitizer
# contracts (repro/guard/chaos.py; exits non-zero on any violation).
chaos-smoke:
	$(PY) -m repro.guard.chaos

# Style/pyflakes/bugbear lint (CI runs it before the test matrix).
lint:
	python -m ruff check src tests benchmarks examples

# Project-specific invariant linter (repro.analysis): jit-safety of the
# accel kernels, cross-tier signature parity, determinism hazards,
# obs/guard instrumentation coverage, env-read discipline.  No deps
# beyond the stdlib -- runs anywhere the package imports.
lint-deep:
	$(PY) -m repro.analysis src/repro

# Typing gate over the infrastructure layers (scope set in pyproject's
# [tool.mypy] files list: repro.obs, repro.guard, repro.analysis,
# repro.env).
typecheck:
	python -m mypy
