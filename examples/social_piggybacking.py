#!/usr/bin/env python3
"""Application: feed-delivery hub selection via densest subgraphs.

The paper's introduction motivates DSD with *social piggybacking*
(Gionis et al., PVLDB'13): in a social platform, materialising the feed
exchange inside a very dense subgraph lets many event deliveries ride
on few hub pairs, raising system throughput.

This example runs the pipeline end to end on a skewed social surrogate:

1. find the densest subgraph (the hub cluster),
2. compare edges-per-vertex served inside the hub vs the global graph,
3. iteratively extract the top-3 disjoint dense clusters (peel & repeat)
   and report the cumulative coverage of high-traffic edges -- the
   quantity a piggybacking scheduler cares about.

    python examples/social_piggybacking.py
"""

from repro import densest_subgraph
from repro.datasets.registry import load


def main() -> None:
    graph = load("Friendster", scale=0.2)
    print(f"social surrogate: n={graph.num_vertices} m={graph.num_edges}")
    print(f"global edges/vertex: {graph.edge_density():.2f}\n")

    work = graph.copy()
    total_edges = graph.num_edges
    covered = 0
    print("rank  size  density  edges  cumulative-coverage")
    for rank in range(1, 4):
        result = densest_subgraph(work, psi=2, method="core-app")
        cluster = graph.subgraph(result.vertices)
        covered += cluster.num_edges
        print(
            f"{rank:4d}  {cluster.num_vertices:4d}  {result.density:7.2f}  "
            f"{cluster.num_edges:5d}  {covered / total_edges:6.1%}"
        )
        for v in result.vertices:
            if v in work:
                work.remove_vertex(v)
        if work.num_edges == 0:
            break

    print(
        "\nA piggybacking scheduler would materialise exchange inside these"
        "\nclusters first: a small fraction of vertices covers an outsized"
        "\nshare of the edge traffic (the denser, the better the amortisation)."
    )


if __name__ == "__main__":
    main()
