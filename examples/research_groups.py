#!/usr/bin/env python3
"""Case study: research groups in a collaboration network (Figure 17).

The paper's DBLP case study contrasts two 3-vertex patterns on a
co-authorship network:

* the **triangle** PDS surfaces a tightly-knit group where every pair
  has co-authored (a near-clique), while
* the **2-star** PDS surfaces hub-and-spoke structure: senior
  researchers linked to many collaborators who don't collaborate
  pairwise.

We reproduce the contrast on the S-DBLP surrogate:

    python examples/research_groups.py
"""

from repro import densest_subgraph
from repro.datasets.registry import load
from repro.patterns.isomorphism import count_pattern_instances
from repro.patterns.pattern import get_pattern


def describe(graph, vertices, label: str) -> None:
    sub = graph.subgraph(vertices)
    degrees = sorted((sub.degree(v) for v in sub), reverse=True)
    completeness = (
        2 * sub.num_edges / (sub.num_vertices * (sub.num_vertices - 1))
        if sub.num_vertices > 1
        else 0.0
    )
    print(f"{label}:")
    print(f"  members          : {sub.num_vertices}")
    print(f"  internal edges   : {sub.num_edges}")
    print(f"  edge completeness: {completeness:.2f}  (1.0 = clique)")
    print(f"  degree profile   : top={degrees[:3]} median={degrees[len(degrees) // 2]}")
    print()


def main() -> None:
    graph = load("S-DBLP")
    print(f"S-DBLP surrogate: n={graph.num_vertices} m={graph.num_edges}\n")

    triangle_pds = densest_subgraph(graph, "triangle", method="core-exact")
    star_pds = densest_subgraph(graph, "2-star", method="core-exact")

    describe(graph, triangle_pds.vertices, "triangle PDS (tight research group)")
    describe(graph, star_pds.vertices, "2-star PDS (advisor hub structure)")

    # the paper's qualitative claim: the triangle PDS is nearly complete,
    # the 2-star PDS is hub-dominated (max degree >> median degree)
    tri_sub = graph.subgraph(triangle_pds.vertices)
    star_sub = graph.subgraph(star_pds.vertices)
    tri_complete = 2 * tri_sub.num_edges / (tri_sub.num_vertices * (tri_sub.num_vertices - 1))
    star_degrees = sorted((star_sub.degree(v) for v in star_sub), reverse=True)
    print("paper-shape checks:")
    print(f"  triangle PDS completeness {tri_complete:.2f} (expect near 1.0)")
    print(
        "  2-star PDS hub ratio "
        f"{star_degrees[0] / max(star_degrees[len(star_degrees) // 2], 1):.1f}"
        " (expect >> 1)"
    )
    for name in ("triangle", "2-star"):
        pattern = get_pattern(name)
        mu = count_pattern_instances(tri_sub if name == "triangle" else star_sub, pattern)
        print(f"  instances of {name} inside its PDS: {mu}")


if __name__ == "__main__":
    main()
