#!/usr/bin/env python3
"""Quickstart: find edge-, clique- and pattern-densest subgraphs.

Builds a small graph with an obvious dense blob, then runs the public
API end to end:

    python examples/quickstart.py
"""

from repro import densest_subgraph
from repro.graph.generators import erdos_renyi_gnm, planted_clique


def main() -> None:
    # A sparse random background with a planted 8-clique: the classic
    # densest-subgraph test bed.
    background = erdos_renyi_gnm(200, 400, seed=7)
    graph, members = planted_clique(background, 8, seed=8)
    print(f"graph: n={graph.num_vertices} m={graph.num_edges}")
    print(f"planted clique: {sorted(members)}\n")

    # --- edge-densest subgraph (exact, Algorithm 4 CoreExact) ---------
    eds = densest_subgraph(graph, psi=2, method="core-exact")
    print(f"EDS      density={eds.density:.3f} size={eds.size} via {eds.method}")

    # --- triangle-densest subgraph (exact) -----------------------------
    cds = densest_subgraph(graph, psi=3, method="core-exact")
    print(f"CDS(3)   density={cds.density:.3f} size={cds.size} via {cds.method}")
    print(f"planted clique recovered: {set(members) <= cds.vertices}")

    # --- 4-clique density, fast approximation (Algorithm 6 CoreApp) ----
    app = densest_subgraph(graph, psi=4, method="core-app")
    print(f"CDS(4)~  density={app.density:.3f} size={app.size} via {app.method}")

    # --- pattern-densest subgraph: the diamond (4-cycle) ---------------
    pds = densest_subgraph(graph, psi="diamond", method="core-exact")
    print(f"PDS(◇)   density={pds.density:.3f} size={pds.size} via {pds.method}")


if __name__ == "__main__":
    main()
