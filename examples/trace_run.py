#!/usr/bin/env python3
"""Profiled run: trace a densest-subgraph solve and print the rollup.

Enables the :mod:`repro.obs` tracing layer around one CoreExact call
and prints the resulting nested profile -- per-phase wall times, every
max-flow solve with its warm-start mode and kernel work counters, and
the aggregate flow rollup:

    python examples/trace_run.py

Set ``REPRO_TRACE=trace.jsonl`` instead to stream the same records to a
JSONL file from any unmodified run.
"""

from repro import densest_subgraph, obs
from repro.graph.generators import erdos_renyi_gnm, planted_clique


def main() -> None:
    background = erdos_renyi_gnm(150, 450, seed=11)
    graph, members = planted_clique(background, 9, seed=12)
    print(f"graph: n={graph.num_vertices} m={graph.num_edges}\n")

    obs.enable()
    result = densest_subgraph(graph, psi=3, method="core-exact")
    summary = obs.summary()
    obs.disable()

    print(f"CDS(3) density={result.density:.3f} size={result.size} "
          f"via {result.method}\n")

    env = summary["env"]
    print(f"environment: python {env['python']}, tier={env['active_tier']}, "
          f"numba_available={env['numba_available']}")

    print("\nphase rollup (nested spans):")
    for name, agg in sorted(summary["spans"].items()):
        print(f"  {name:28s} x{agg['count']:<3d} {agg['total_s'] * 1e3:8.2f} ms")

    flow = summary["flow"]
    print(f"\nmax-flow solves: {flow['solves']} "
          f"(warm {flow['warm']} / cold {flow['cold']})")
    print(f"  warm-start modes: {flow['modes']}")
    print(f"  BFS passes: {flow['bfs_passes']}  augments: {flow['augments']}")

    print("\nper-solve telemetry (flow.solve events):")
    for ev in obs.get_collector().events(obs.FLOW_SOLVE):
        f = ev["fields"]
        print(f"  alpha={f['alpha']:<8.4f} mode={f['mode']:<10s} "
              f"tier={f['tier']:<6s} arcs={f['arcs']:<6d} "
              f"passes={f.get('bfs_passes', '-')}")


if __name__ == "__main__":
    main()
