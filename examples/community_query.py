#!/usr/bin/env python3
"""Query-constrained densest subgraph (Section 6.3 variant).

"Find the densest community that contains these particular members" --
the query-vertex variant of Tsourakakis et al. that Section 6.3 shows
cores can localise.  We plant two communities of different densities,
then ask for the densest subgraph around members of each, and around a
peripheral vertex:

    python examples/community_query.py
"""

import itertools

from repro.core.query_variant import query_densest
from repro.graph.generators import erdos_renyi_gnm
from repro.graph.graph import Graph


def build_world() -> Graph:
    graph = erdos_renyi_gnm(300, 500, seed=21)
    # community A: a K10 on vertices 0..9
    for i, j in itertools.combinations(range(10), 2):
        graph.add_edge(i, j)
    # community B: a looser blob on 20..39 (ring + chords)
    blob = list(range(20, 40))
    for offset in (1, 2, 3):
        for i, v in enumerate(blob):
            graph.add_edge(v, blob[(i + offset) % len(blob)])
    return graph


def main() -> None:
    graph = build_world()
    print(f"graph: n={graph.num_vertices} m={graph.num_edges}\n")

    for label, query in [
        ("member of the tight community (vertex 0)", [0]),
        ("member of the loose community (vertex 25)", [25]),
        ("two members of the loose community", [25, 30]),
        ("a peripheral vertex (vertex 150)", [150]),
    ]:
        result = query_densest(graph, query)
        print(f"query: {label}")
        print(
            f"  densest containing it: size={result.size} "
            f"density={result.density:.3f} "
            f"(binary-search iterations: {result.iterations})"
        )
        inside = [q for q in query if q in result.vertices]
        assert len(inside) == len(query), "query vertices must be inside"
        print()

    print(
        "The tight community's member gets exactly its K10 (density 4.5).\n"
        "Other queries return the K10 *plus* the query vertex: the problem\n"
        "(as in Tsourakakis et al.) does not require connectivity, so the\n"
        "densest set containing an outside vertex is the global densest\n"
        "subgraph with that vertex thrown in -- its density drops by the\n"
        "dilution factor |D|/(|D|+|Q|), which is what the numbers show."
    )


if __name__ == "__main__":
    main()
