#!/usr/bin/env python3
"""Case study: pattern-densest subnetworks in a PPI-style graph (Fig. 21).

The paper's yeast case study computes the PDS for several patterns on a
protein-protein interaction network; each pattern's densest subnetwork
corresponds to different functional classes (Appendix F).  We reproduce
the mechanics on the Yeast-PPI surrogate: the PDS's for edge, c3-star,
2-triangle and 4-clique have distinct shapes and memberships.

    python examples/protein_motifs.py
"""

from repro import densest_subgraph
from repro.datasets.registry import load

PATTERNS = ("edge", "2-star", "c3-star", "diamond", "2-triangle", "4-clique")


def main() -> None:
    graph = load("Yeast-PPI")
    print(f"Yeast-PPI surrogate: n={graph.num_vertices} m={graph.num_edges}\n")

    results = {}
    for name in PATTERNS:
        result = densest_subgraph(graph, name, method="core-exact")
        results[name] = result
        print(
            f"{name:12s} density={result.density:8.3f} "
            f"size={result.size:4d} method={result.method}"
        )

    print("\npairwise overlap of PDS memberships (Jaccard):")
    names = list(results)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            va, vb = results[a].vertices, results[b].vertices
            jaccard = len(va & vb) / len(va | vb) if va | vb else 0.0
            print(f"  {a:12s} vs {b:12s}: {jaccard:.2f}")

    print(
        "\nInterpretation (paper, Appendix F): distinct patterns isolate\n"
        "distinct subnetworks, each a candidate functional module."
    )


if __name__ == "__main__":
    main()
