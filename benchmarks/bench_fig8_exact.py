"""Figure 8(a)-(e): exact CDS algorithms (Exact vs CoreExact)."""

from repro.core.core_exact import core_exact_densest
from repro.datasets.registry import load
from repro.experiments import fig8
from repro.experiments.plotting import grouped_bar_chart


def test_fig8_exact(benchmark, emit, bench_scale):
    rows = fig8.run_exact(h_values=(2, 3, 4), scale=bench_scale)
    chart = "\n\n".join(
        grouped_bar_chart(
            [r for r in rows if r["dataset"] == name],
            "h",
            ["exact_s", "core_exact_s"],
            title=f"[{name}] log-scale runtime",
        )
        for name in {r["dataset"] for r in rows}
    )
    emit(
        "fig8_exact",
        rows,
        "Figure 8(a-e) -- exact CDS: Exact vs CoreExact (seconds; speedup = Exact/CoreExact)",
        chart=chart,
    )
    # the paper's headline claim, reproduced in shape: CoreExact faster
    # than Exact on the (aggregate) small-dataset suite
    total_exact = sum(r["exact_s"] for r in rows)
    total_core = sum(r["core_exact_s"] for r in rows)
    assert total_core < total_exact

    graph = load("Yeast", bench_scale)
    result = benchmark(core_exact_densest, graph, 3)
    assert result.density >= 0.0
