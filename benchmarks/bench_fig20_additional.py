"""Figure 20 (Appendix E): approximation CDS on the additional datasets."""

from repro.core.core_app import core_app_densest
from repro.datasets.registry import load
from repro.experiments import fig20


def test_fig20_additional_datasets(benchmark, emit, bench_scale):
    rows = fig20.run(scale=bench_scale * 0.5, h_values=(2, 3))
    emit(
        "fig20_additional",
        rows,
        "Figure 20 -- approximation CDS on Flickr / Google / Foursquare surrogates (seconds)",
    )
    graph = load("Flickr", bench_scale * 0.5)
    benchmark(core_app_densest, graph, 3)
