"""Figure 16: approximation PDS algorithms per pattern."""

from repro.core.pds import pattern_core_app_densest
from repro.datasets.registry import load
from repro.experiments import fig15_16
from repro.patterns.pattern import get_pattern


def test_fig16_pds_approx(benchmark, emit, bench_scale):
    rows = fig15_16.run_approx(("DBLP", "Cit-Patents"), scale=bench_scale * 0.2)
    emit(
        "fig16_pds_approx",
        rows,
        "Figure 16 -- approximation PDS: PeelApp / IncApp / CoreApp per pattern (seconds)",
    )
    graph = load("DBLP", bench_scale * 0.2)
    benchmark(pattern_core_app_densest, graph, get_pattern("2-star"))
