"""Ablation: CoreApp's doubling prefix vs EMcore-style fixed blocks.

Algorithm 6 leaves the initial prefix size unspecified; the paper
contrasts exponential doubling with EMcore's linear block growth.  This
ablation sweeps the initial size (the doubling start point) and reports
rounds, vertices touched and wall time, confirming the result is the
same (kmax, Ψ)-core throughout.
"""

from repro.core.core_app import core_app_densest
from repro.datasets.registry import load
from repro.experiments.harness import timed


def test_ablation_coreapp_prefix(benchmark, emit, bench_scale):
    graph = load("DBLP", bench_scale * 0.5)
    rows = []
    reference = None
    for initial in (4, 64, 1024, graph.num_vertices):
        result, seconds = timed(core_app_densest, graph, 3, initial_size=initial)
        if reference is None:
            reference = result.vertices
        assert result.vertices == reference, "prefix size must not change the core"
        rows.append(
            {
                "initial_size": initial,
                "rounds": result.stats["rounds"],
                "vertices_touched": result.stats["vertices_touched"],
                "seconds": seconds,
                "kmax": result.stats["kmax"],
            }
        )
    emit(
        "ablation_coreapp_prefix",
        rows,
        "Ablation -- CoreApp initial prefix size (same core, different work)",
    )
    benchmark(core_app_densest, graph, 3, initial_size=64)
