"""Ablation: max-flow solver choice inside the exact algorithms.

The paper notes any exact max-flow algorithm slots into the framework
(§6.3 discusses parallel solvers).  This ablation times Dinic against
FIFO push–relabel on the actual DSD networks CoreExact builds, and
verifies they agree on the flow value.
"""

from repro.datasets.registry import load
from repro.experiments.harness import timed
from repro.flow import dinic, push_relabel
from repro.flow.builders import build_cds_network, build_eds_network


def _networks(graph):
    yield "EDS alpha=1.0", lambda: build_eds_network(graph, 1.0)
    yield "EDS alpha=2.0", lambda: build_eds_network(graph, 2.0)
    yield "CDS(3) alpha=0.5", lambda: build_cds_network(graph, 3, 0.5)
    yield "CDS(3) alpha=2.0", lambda: build_cds_network(graph, 3, 2.0)


def test_ablation_flow_solvers(benchmark, emit, bench_scale):
    graph = load("As-733", bench_scale)
    rows = []
    for label, build in _networks(graph):
        net_a = build()
        value_a, dinic_s = timed(dinic.max_flow, net_a)
        net_b = build()
        value_b, pr_s = timed(push_relabel.max_flow, net_b)
        assert abs(value_a - value_b) < 1e-6 * max(1.0, value_a)
        rows.append(
            {"network": label, "nodes": net_a.num_nodes, "dinic_s": dinic_s, "push_relabel_s": pr_s}
        )
    emit(
        "ablation_solvers",
        rows,
        "Ablation -- Dinic vs FIFO push-relabel on DSD networks (identical flow values)",
    )
    benchmark(lambda: dinic.max_flow(build_eds_network(graph, 1.0)))
