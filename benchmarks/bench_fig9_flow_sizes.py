"""Figure 9: flow-network sizes across CoreExact's binary-search iterations."""

from repro.core.core_exact import core_exact_densest
from repro.datasets.registry import load
from repro.experiments import fig9


def test_fig9_flow_network_sizes(benchmark, emit, bench_scale):
    rows = []
    for name in ("Ca-HepTh", "As-Caida"):
        rows.extend(fig9.run(name, h_values=(2, 3), scale=bench_scale))
    emit(
        "fig9_flow_sizes",
        rows,
        "Figure 9 -- flow-network node counts per iteration (-1 = Exact's full-graph network)",
    )
    # shape check: the located network (iter 0) never exceeds the full one
    for name in ("Ca-HepTh", "As-Caida"):
        for h in (2, 3):
            sizes = {r["iteration"]: r["network_nodes"]
                     for r in rows if r["dataset"] == name and r["h"] == h}
            if 0 in sizes:
                assert sizes[0] <= sizes[-1]

    graph = load("Ca-HepTh", bench_scale)
    benchmark(core_exact_densest, graph, 2)
