"""Figure 10: ablation of the CoreExact pruning criteria (P1/P2/P3)."""

from repro.core.core_exact import core_exact_densest
from repro.datasets.registry import load
from repro.experiments import fig10


def test_fig10_pruning_ablation(benchmark, emit, bench_scale):
    rows = []
    for name in ("As-733", "Ca-HepTh"):
        rows.extend(fig10.run(name, h_values=(2, 3), scale=bench_scale))
    emit(
        "fig10_prunings",
        rows,
        "Figure 10 -- CoreExact pruning ablation (seconds per variant)",
    )
    graph = load("As-733", bench_scale)
    benchmark(core_exact_densest, graph, 3, pruning1=True, pruning2=False, pruning3=False)
