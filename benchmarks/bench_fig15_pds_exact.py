"""Figure 15: exact PDS algorithms (PExact vs CorePExact)."""

from repro.core.pds import core_p_exact_densest
from repro.datasets.registry import load
from repro.experiments import fig15_16
from repro.patterns.pattern import get_pattern


def test_fig15_pds_exact(benchmark, emit, bench_scale):
    rows = fig15_16.run_exact(("As-733", "Ca-HepTh"), scale=bench_scale * 0.6)
    emit(
        "fig15_pds_exact",
        rows,
        "Figure 15 -- exact PDS: PExact vs CorePExact per pattern (seconds)",
    )
    # paper shape: CorePExact is no slower in aggregate
    total_p = sum(r["pexact_s"] for r in rows)
    total_c = sum(r["core_pexact_s"] for r in rows)
    assert total_c < total_p

    graph = load("As-733", bench_scale * 0.6)
    benchmark(core_p_exact_densest, graph, get_pattern("diamond"))
