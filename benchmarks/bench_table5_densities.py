"""Table 5: Ψ-densities of CDS/PDS vs the EDS."""

from repro.core.pds import core_p_exact_densest
from repro.datasets.registry import load
from repro.experiments import table5
from repro.patterns.pattern import get_pattern


def test_table5_densities(benchmark, emit, bench_scale):
    rows = table5.run(
        ("S-DBLP", "Yeast", "Netscience", "As-733"),
        h_values=(2, 3, 4),
        patterns=("2-star", "diamond"),
        scale=max(bench_scale, 0.2),
    )
    emit(
        "table5_densities",
        rows,
        "Table 5 -- rho_opt per clique/pattern vs the same density on the EDS",
    )
    # paper shape: the CDS/PDS dominates the EDS under its own measure
    for row in rows:
        for key in list(row):
            if key.endswith("_rho_opt"):
                partner = key.replace("_rho_opt", "_on_EDS")
                if partner in row:
                    assert row[key] >= row[partner] - 1e-9, (row["dataset"], key)

    graph = load("S-DBLP", max(bench_scale, 0.2))
    benchmark(core_p_exact_densest, graph, get_pattern("2-star"))
