"""Table 2 / Figure 18: dataset statistics table."""

from repro.core.kcore import core_decomposition
from repro.datasets.registry import load
from repro.experiments import table2


def test_table2_dataset_stats(benchmark, emit, bench_scale):
    rows = table2.run(scale=bench_scale)
    emit(
        "table2_dataset_stats",
        rows,
        "Table 2 / Fig 18 -- dataset statistics (surrogates; paper sizes for reference)",
    )
    graph = load("As-Caida", bench_scale)
    result = benchmark(core_decomposition, graph)
    assert max(result.values(), default=0) > 0
