"""Ablation: pure-Python set kernels vs the numpy CSR backend.

Quantifies how much of the pure-Python penalty the CSR fast paths
recover on the two hottest kernels (classical core decomposition and
per-vertex triangle counting), with equality of results asserted.
"""

from repro.cliques.enumeration import clique_degrees
from repro.core.kcore import core_decomposition
from repro.datasets.registry import load
from repro.experiments.harness import timed
from repro.graph.csr import CSRGraph, core_numbers, triangle_degrees


def test_ablation_csr_backend(benchmark, emit, bench_scale):
    rows = []
    for name in ("As-Caida", "DBLP"):
        graph = load(name, bench_scale)
        csr, build_s = timed(CSRGraph, graph)
        py_core, py_core_s = timed(core_decomposition, graph)
        np_core, np_core_s = timed(core_numbers, csr)
        assert py_core == np_core
        py_tri, py_tri_s = timed(clique_degrees, graph, 3)
        np_tri, np_tri_s = timed(triangle_degrees, csr)
        assert py_tri == np_tri
        rows.append(
            {
                "dataset": name,
                "csr_build_s": build_s,
                "py_core_s": py_core_s,
                "csr_core_s": np_core_s,
                "py_triangles_s": py_tri_s,
                "csr_triangles_s": np_tri_s,
            }
        )
    emit(
        "ablation_csr",
        rows,
        "Ablation -- pure-Python kernels vs numpy CSR backend (identical outputs)",
    )
    graph = load("As-Caida", bench_scale)
    csr = CSRGraph(graph)
    benchmark(core_numbers, csr)
