"""Ablation: PExact's per-instance network vs construct+'s grouping.

Algorithm 7's motivation: many pattern instances share one vertex set,
so grouping shrinks the network.  This ablation measures node counts and
min-cut time on both constructions for patterns with heavy co-location
(diamond, 2-triangle) and verifies Lemma 11's cut equality.
"""

from repro.datasets.registry import load
from repro.experiments.harness import timed
from repro.flow import dinic
from repro.flow.builders import build_pds_network, build_pds_network_grouped
from repro.patterns.isomorphism import enumerate_pattern_instances, instance_vertices
from repro.patterns.pattern import get_pattern


def test_ablation_construct_plus(benchmark, emit, bench_scale):
    graph = load("Netscience", bench_scale)
    rows = []
    for name in ("diamond", "2-triangle", "2-star"):
        pattern = get_pattern(name)
        sets = [instance_vertices(i) for i in enumerate_pattern_instances(graph, pattern)]
        if not sets:
            continue
        alpha = len(sets) / graph.num_vertices  # a mid-range guess
        plain = build_pds_network(graph, pattern.size, alpha, sets)
        grouped = build_pds_network_grouped(graph, pattern.size, alpha, sets)
        value_plain, plain_s = timed(dinic.max_flow, plain)
        value_grouped, grouped_s = timed(dinic.max_flow, grouped)
        assert abs(value_plain - value_grouped) < 1e-6 * max(1.0, value_plain)
        rows.append(
            {
                "pattern": name,
                "instances": len(sets),
                "plain_nodes": plain.num_nodes,
                "grouped_nodes": grouped.num_nodes,
                "plain_s": plain_s,
                "grouped_s": grouped_s,
            }
        )
    emit(
        "ablation_construct_plus",
        rows,
        "Ablation -- PExact network vs construct+ grouping (Lemma 11: equal cuts)",
    )
    # grouping can only shrink the network
    assert all(r["grouped_nodes"] <= r["plain_nodes"] for r in rows)

    pattern = get_pattern("diamond")
    sets = [instance_vertices(i) for i in enumerate_pattern_instances(graph, pattern)]
    benchmark(build_pds_network_grouped, graph, 4, 1.0, sets)
