"""Table 3: percentage of CoreExact time spent in core decomposition."""

from repro.core.clique_core import clique_core_decomposition
from repro.datasets.registry import load
from repro.experiments import table3


def test_table3_decomposition_share(benchmark, emit, bench_scale):
    rows = table3.run(("As-733", "Ca-HepTh"), h_values=(2, 3, 4), scale=bench_scale)
    emit(
        "table3_decomp_share",
        rows,
        "Table 3 -- % of CoreExact time spent in (k, Psi)-core decomposition",
    )
    graph = load("As-733", bench_scale)
    result = benchmark(clique_core_decomposition, graph, 3)
    assert result.kmax >= 0
