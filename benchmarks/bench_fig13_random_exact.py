"""Figure 13: exact CDS algorithms on the random-graph families."""

from repro.core.core_exact import core_exact_densest
from repro.datasets.registry import load
from repro.experiments import fig13_14


def test_fig13_random_graphs_exact(benchmark, emit, bench_scale):
    rows = fig13_14.run_exact(h_values=(2, 3), scale=bench_scale * 0.5)
    emit(
        "fig13_random_exact",
        rows,
        "Figure 13 -- exact CDS on SSCA / ER / R-MAT (seconds)",
    )
    graph = load("SSCA", bench_scale * 0.5)
    benchmark(core_exact_densest, graph, 3)
