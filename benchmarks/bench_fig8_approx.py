"""Figure 8(f)-(j): approximation CDS algorithms on the large surrogates."""

from repro.core.core_app import core_app_densest
from repro.datasets.registry import load
from repro.experiments import fig8
from repro.experiments.plotting import grouped_bar_chart


def test_fig8_approx(benchmark, emit, bench_scale):
    rows = fig8.run_approx(h_values=(2, 3), scale=bench_scale * 0.5)
    chart = "\n\n".join(
        grouped_bar_chart(
            [r for r in rows if r["dataset"] == name],
            "h",
            ["nucleus_s", "peel_s", "inc_s", "core_app_s"],
            title=f"[{name}] log-scale runtime",
        )
        for name in {r["dataset"] for r in rows}
    )
    emit(
        "fig8_approx",
        rows,
        "Figure 8(f-j) -- approximation CDS: Nucleus / PeelApp / IncApp / CoreApp (seconds)",
        chart=chart,
    )
    # shape check: CoreApp beats PeelApp in aggregate on skewed graphs
    total_peel = sum(r["peel_s"] for r in rows)
    total_app = sum(r["core_app_s"] for r in rows)
    assert total_app < total_peel

    graph = load("DBLP", bench_scale * 0.5)
    result = benchmark(core_app_densest, graph, 3)
    assert result.density >= 0.0
