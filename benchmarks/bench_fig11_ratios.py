"""Figure 11: theoretical vs actual approximation ratios."""

from repro.core.peel import peel_densest
from repro.datasets.registry import load
from repro.experiments import fig11


def test_fig11_approximation_ratios(benchmark, emit, bench_scale):
    rows = fig11.run(("Netscience", "As-Caida"), h_values=(2, 3, 4), scale=bench_scale)
    emit(
        "fig11_ratios",
        rows,
        "Figure 11 -- approximation ratios: theoretical 1/h vs actual (CoreApp, PeelApp)",
    )
    # paper shape: actual ratios far above the theoretical guarantee
    for r in rows:
        assert r["core_app_ratio"] >= r["theoretical"] - 1e-9
        assert r["core_app_ratio"] <= 1.0 + 1e-9
        assert r["peel_ratio"] <= 1.0 + 1e-9

    graph = load("Netscience", bench_scale)
    benchmark(peel_densest, graph, 3)
