"""Ablation: fresh-build vs α-reuse vs GGT flow engine in the exact algorithms.

PR 2 introduced the array-backed :class:`ParametricNetwork` (engine
``"reuse"``); this PR adds the GGT breakpoint walk (engine ``"ggt"``)
that replaces the binary search outright.  The bench quantifies all
three on the Figure-8 small-dataset suite and writes a machine-readable
JSON (``benchmarks/out/flow_reuse_ablation.json``, committed as
evidence) so the perf trajectory is tracked across PRs.

``flow_engine="rebuild"`` is the pre-parametric engine (a fresh
``FlowNetwork`` per binary-search iteration); ``"reuse"`` is the
arc-array network with in-place ``set_alpha``, warm-started flows, and
pass-through cancellation on cold solves; ``"ggt"`` walks the min-cut
breakpoints of the same network (discrete Newton on the parametric
min-cut function), collapsing the ``O(log n²)``-iteration binary search
to a handful of warm max-flow solves per component.  Every cell asserts
all three engines return identical vertex sets and densities -- the
ablation is only meaningful if results are unchanged -- and records the
per-engine max-flow solve counts, the headline of the GGT scheme.
"""

import json
from pathlib import Path

from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.datasets.registry import dataset_names, load
from repro.experiments.harness import timed

OUT_DIR = Path(__file__).parent / "out"

ENGINES = ("rebuild", "reuse", "ggt")


def _cells(bench_scale):
    rows = []
    for name in dataset_names("small"):
        graph = load(name, bench_scale)
        for algorithm, fn, h_values in (
            ("CoreExact", core_exact_densest, (2, 3, 4)),
            ("Exact", exact_densest, (2, 3)),
        ):
            for h in h_values:
                results = {}
                seconds = {}
                for engine in ENGINES:
                    results[engine], seconds[engine] = timed(
                        fn, graph, h, flow_engine=engine
                    )
                baseline = results["rebuild"]
                for engine in ("reuse", "ggt"):
                    assert results[engine].vertices == baseline.vertices, (
                        name, algorithm, h, engine,
                    )
                    assert results[engine].density == baseline.density, (
                        name, algorithm, h, engine,
                    )
                rows.append(
                    {
                        "dataset": name,
                        "algorithm": algorithm,
                        "h": h,
                        "rebuild_s": seconds["rebuild"],
                        "reuse_s": seconds["reuse"],
                        "ggt_s": seconds["ggt"],
                        "speedup_reuse": (
                            seconds["rebuild"] / seconds["reuse"]
                            if seconds["reuse"] > 0
                            else float("inf")
                        ),
                        "speedup_ggt": (
                            seconds["rebuild"] / seconds["ggt"]
                            if seconds["ggt"] > 0
                            else float("inf")
                        ),
                        # max-flow solve counts: the binary search runs one
                        # per iteration, the GGT walk one per breakpoint hop
                        "solves_binary": results["reuse"].iterations,
                        "solves_ggt": results["ggt"].iterations,
                        "density": baseline.density,
                    }
                )
    return rows


def test_flow_reuse_ablation(benchmark, emit, bench_scale):
    rows = _cells(bench_scale)

    aggregates = {}
    for algorithm in ("CoreExact", "Exact"):
        sub = [r for r in rows if r["algorithm"] == algorithm]
        rebuild = sum(r["rebuild_s"] for r in sub)
        reuse = sum(r["reuse_s"] for r in sub)
        ggt = sum(r["ggt_s"] for r in sub)
        aggregates[algorithm] = {
            "rebuild_s": rebuild,
            "reuse_s": reuse,
            "ggt_s": ggt,
            "speedup_reuse": rebuild / reuse if reuse > 0 else float("inf"),
            "speedup_ggt": rebuild / ggt if ggt > 0 else float("inf"),
            "solves_binary": sum(r["solves_binary"] for r in sub),
            "solves_ggt": sum(r["solves_ggt"] for r in sub),
        }

    emit(
        "ablation_flow_reuse",
        rows,
        "Flow-engine ablation -- fresh-build vs α-parametric reuse vs GGT "
        f"(aggregate speedup: Exact {aggregates['Exact']['speedup_reuse']:.2f}x reuse / "
        f"{aggregates['Exact']['speedup_ggt']:.2f}x ggt, "
        f"CoreExact {aggregates['CoreExact']['speedup_reuse']:.2f}x reuse / "
        f"{aggregates['CoreExact']['speedup_ggt']:.2f}x ggt; "
        f"Exact solves {aggregates['Exact']['solves_binary']} binary -> "
        f"{aggregates['Exact']['solves_ggt']} ggt)",
    )
    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "bench_scale": bench_scale,
        "cells": rows,
        "aggregates": aggregates,
        "results_identical": True,  # asserted per cell above
    }
    (OUT_DIR / "flow_reuse_ablation.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # the engines' headlines: where the binary search actually runs
    # (Exact always does), α-reuse is worth an integer factor, and the
    # GGT walk needs a small fraction of the binary search's solves
    assert aggregates["Exact"]["speedup_reuse"] >= 2.0
    assert aggregates["Exact"]["solves_ggt"] * 2 < aggregates["Exact"]["solves_binary"]
    for row in rows:
        if row["algorithm"] == "Exact":
            # one parametric sweep: a handful of solves per instance,
            # never the O(log n²) ladder of the binary search
            assert row["solves_ggt"] < row["solves_binary"]

    graph = load("Yeast", bench_scale)
    result = benchmark(core_exact_densest, graph, 2, flow_engine="ggt")
    assert result.density > 0.0
