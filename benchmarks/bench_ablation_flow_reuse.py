"""Ablation: fresh-build vs α-reuse flow engine in the exact algorithms.

The PR that introduced the array-backed :class:`ParametricNetwork`
claims the binary searches of Exact / CoreExact need not rebuild their
flow networks per iteration.  This bench quantifies that claim on the
Figure-8 small-dataset suite and writes a machine-readable JSON
(``benchmarks/out/flow_reuse_ablation.json``, committed as evidence) so
the perf trajectory is tracked across PRs.

``flow_engine="rebuild"`` is the pre-parametric engine (a fresh
``FlowNetwork`` per iteration); ``"reuse"`` is the arc-array network
with in-place ``set_alpha``, warm-started flows, and pass-through
cancellation on cold solves.  Every cell also asserts the two engines
return identical vertex sets and densities -- the ablation is only
meaningful if results are unchanged.

CoreExact's prunings often leave a single feasibility probe (one flow
solve), where reuse can only win by cancellation; Exact always runs the
full binary search, where reuse is worth an integer factor.  Both
aggregates are recorded.
"""

import json
from pathlib import Path

from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.datasets.registry import dataset_names, load
from repro.experiments.harness import timed

OUT_DIR = Path(__file__).parent / "out"


def _cells(bench_scale):
    rows = []
    for name in dataset_names("small"):
        graph = load(name, bench_scale)
        for algorithm, fn, h_values in (
            ("CoreExact", core_exact_densest, (2, 3, 4)),
            ("Exact", exact_densest, (2, 3)),
        ):
            for h in h_values:
                rebuilt, rebuild_s = timed(fn, graph, h, flow_engine="rebuild")
                reused, reuse_s = timed(fn, graph, h, flow_engine="reuse")
                assert reused.vertices == rebuilt.vertices, (name, algorithm, h)
                assert reused.density == rebuilt.density, (name, algorithm, h)
                rows.append(
                    {
                        "dataset": name,
                        "algorithm": algorithm,
                        "h": h,
                        "rebuild_s": rebuild_s,
                        "reuse_s": reuse_s,
                        "speedup": rebuild_s / reuse_s if reuse_s > 0 else float("inf"),
                        "iterations": reused.iterations,
                        "density": reused.density,
                    }
                )
    return rows


def test_flow_reuse_ablation(benchmark, emit, bench_scale):
    rows = _cells(bench_scale)

    aggregates = {}
    for algorithm in ("CoreExact", "Exact"):
        sub = [r for r in rows if r["algorithm"] == algorithm]
        rebuild = sum(r["rebuild_s"] for r in sub)
        reuse = sum(r["reuse_s"] for r in sub)
        aggregates[algorithm] = {
            "rebuild_s": rebuild,
            "reuse_s": reuse,
            "speedup": rebuild / reuse if reuse > 0 else float("inf"),
        }

    emit(
        "ablation_flow_reuse",
        rows,
        "Flow-engine ablation -- fresh-build vs α-parametric reuse "
        f"(aggregate speedup: Exact {aggregates['Exact']['speedup']:.2f}x, "
        f"CoreExact {aggregates['CoreExact']['speedup']:.2f}x)",
    )
    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "bench_scale": bench_scale,
        "cells": rows,
        "aggregates": aggregates,
        "results_identical": True,  # asserted per cell above
    }
    (OUT_DIR / "flow_reuse_ablation.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # the engine's headline: where the binary search actually runs
    # (Exact always does), α-reuse is worth an integer factor
    assert aggregates["Exact"]["speedup"] >= 2.0

    graph = load("Yeast", bench_scale)
    result = benchmark(core_exact_densest, graph, 2, flow_engine="reuse")
    assert result.density > 0.0
