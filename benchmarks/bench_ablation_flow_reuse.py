"""Ablation: flow engines × clique-index kernels in the exact algorithms.

PR 2 introduced the array-backed :class:`ParametricNetwork` (engine
``"reuse"``), PR 3 the GGT breakpoint walk (engine ``"ggt"``, now the
default), and PR 4 the array-backed clique-index layer that feeds every
engine its instances.  The bench quantifies all of it on the Figure-8
small-dataset suite and writes a machine-readable JSON
(``benchmarks/out/flow_reuse_ablation.json``, committed as evidence) so
the perf trajectory is tracked across PRs.

Per cell (dataset × algorithm × h) it records:

* wall-clock and speedups of the three flow engines
  (``rebuild``/``reuse``/``ggt``) plus their max-flow solve counts;
* the **enumeration/flow split** of the default-engine run, read off
  the solvers' ``stats`` (``enumeration_seconds`` /
  ``decomposition_seconds`` / ``flow_seconds``), which is where the
  clique-layer speedup shows up end-to-end;
* the **kernel ablation**: the clique-index build timed with the numpy
  intersection kernels vs the pure-python fallback, asserted >= 2x
  faster with numpy on every cell whose instance count is non-trivial.

Every cell asserts all three engines return identical vertex sets and
densities, and (h >= 3) that a solver fed a reference-enumerator index
("old enumeration") is bit-identical to the kernel-fed run -- the
ablation is only meaningful if results are unchanged.
"""

import json
import time
from pathlib import Path

from repro.cliques.enumeration import enumerate_cliques
from repro.cliques.index import CliqueIndex
from repro.cliques.kernels import have_numpy
from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.datasets.registry import dataset_names, load
from repro.experiments.harness import timed

OUT_DIR = Path(__file__).parent / "out"

ENGINES = ("rebuild", "reuse", "ggt")

#: Cells at or above this many instances take milliseconds to
#: enumerate, so the numpy-vs-python ratio is timing-noise-robust and
#: the full >= 2x kernel claim is asserted on them.  Smaller cells down
#: to ENUM_FLOOR_MIN_INSTANCES still must clear a conservative 1.4x
#: (sub-millisecond builds on shared CI runners jitter too much for a
#: tight bound); below that only the aggregate is asserted.
ENUM_ASSERT_MIN_INSTANCES = 1000
ENUM_FLOOR_MIN_INSTANCES = 150


def _best_of(fn, reps=5):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _cells(bench_scale):
    rows = []
    for name in dataset_names("small"):
        graph = load(name, bench_scale)
        enum_cache = {}
        for algorithm, fn, h_values in (
            ("CoreExact", core_exact_densest, (2, 3, 4)),
            ("Exact", exact_densest, (2, 3)),
        ):
            for h in h_values:
                results = {}
                seconds = {}
                for engine in ENGINES:
                    results[engine], seconds[engine] = timed(
                        fn, graph, h, flow_engine=engine
                    )
                baseline = results["rebuild"]
                for engine in ("reuse", "ggt"):
                    assert results[engine].vertices == baseline.vertices, (
                        name, algorithm, h, engine,
                    )
                    assert results[engine].density == baseline.density, (
                        name, algorithm, h, engine,
                    )

                row = {
                    "dataset": name,
                    "algorithm": algorithm,
                    "h": h,
                    "rebuild_s": seconds["rebuild"],
                    "reuse_s": seconds["reuse"],
                    "ggt_s": seconds["ggt"],
                    "speedup_reuse": (
                        seconds["rebuild"] / seconds["reuse"]
                        if seconds["reuse"] > 0
                        else float("inf")
                    ),
                    "speedup_ggt": (
                        seconds["rebuild"] / seconds["ggt"]
                        if seconds["ggt"] > 0
                        else float("inf")
                    ),
                    # max-flow solve counts: the binary search runs one
                    # per iteration, the GGT walk one per breakpoint hop
                    "solves_binary": results["reuse"].iterations,
                    "solves_ggt": results["ggt"].iterations,
                    "density": baseline.density,
                    # enumeration/flow wall-clock split of the default
                    # run; decomposition_seconds includes the index
                    # build (the paper's Algorithm-3 accounting), so
                    # subtract it to keep the three parts disjoint
                    "enum_s": results["ggt"].stats.get("enumeration_seconds", 0.0),
                    "decomp_s": max(
                        results["ggt"].stats.get("decomposition_seconds", 0.0)
                        - results["ggt"].stats.get("enumeration_seconds", 0.0),
                        0.0,
                    ),
                    "flow_s": results["ggt"].stats.get("flow_seconds", 0.0),
                }

                if h >= 3:
                    # old-vs-new enumeration: the reference nested-loop
                    # enumerator's instances must drive the solver to the
                    # bit-identical answer
                    reference_index = CliqueIndex(
                        graph, h, instances=list(enumerate_cliques(graph, h))
                    )
                    via_reference = fn(graph, h, index=reference_index)
                    assert via_reference.vertices == baseline.vertices, (
                        name, algorithm, h, "reference-enumeration",
                    )
                    assert via_reference.density == baseline.density, (
                        name, algorithm, h, "reference-enumeration",
                    )

                    # kernel ablation: numpy intersection kernels vs the
                    # pure-python fallback for the same canonical index
                    if h not in enum_cache:
                        num_instances = CliqueIndex(graph, h).m
                        cell = {"instances": num_instances}
                        if have_numpy():
                            cell["enum_numpy_s"] = _best_of(
                                lambda: CliqueIndex(graph, h, use_numpy=True)
                            )
                            cell["enum_python_s"] = _best_of(
                                lambda: CliqueIndex(graph, h, use_numpy=False)
                            )
                            cell["enum_speedup"] = cell["enum_python_s"] / max(
                                cell["enum_numpy_s"], 1e-9
                            )
                        enum_cache[h] = cell
                    row.update(enum_cache[h])
                rows.append(row)
    return rows


def test_flow_reuse_ablation(benchmark, emit, bench_scale):
    rows = _cells(bench_scale)

    aggregates = {}
    for algorithm in ("CoreExact", "Exact"):
        sub = [r for r in rows if r["algorithm"] == algorithm]
        rebuild = sum(r["rebuild_s"] for r in sub)
        reuse = sum(r["reuse_s"] for r in sub)
        ggt = sum(r["ggt_s"] for r in sub)
        aggregates[algorithm] = {
            "rebuild_s": rebuild,
            "reuse_s": reuse,
            "ggt_s": ggt,
            "speedup_reuse": rebuild / reuse if reuse > 0 else float("inf"),
            "speedup_ggt": rebuild / ggt if ggt > 0 else float("inf"),
            "solves_binary": sum(r["solves_binary"] for r in sub),
            "solves_ggt": sum(r["solves_ggt"] for r in sub),
            "enum_s": sum(r["enum_s"] for r in sub),
            "flow_s": sum(r["flow_s"] for r in sub),
        }
    enum_cells = [r for r in rows if "enum_speedup" in r]
    if enum_cells:
        total_np = sum(r["enum_numpy_s"] for r in enum_cells)
        total_py = sum(r["enum_python_s"] for r in enum_cells)
        aggregates["enumeration"] = {
            "numpy_s": total_np,
            "python_s": total_py,
            "speedup": total_py / max(total_np, 1e-9),
        }

    enum_line = (
        f"; enumeration {aggregates['enumeration']['speedup']:.1f}x with numpy"
        if "enumeration" in aggregates
        else ""
    )
    emit(
        "ablation_flow_reuse",
        rows,
        "Flow-engine x clique-kernel ablation -- rebuild vs reuse vs GGT "
        f"(aggregate speedup: Exact {aggregates['Exact']['speedup_reuse']:.2f}x reuse / "
        f"{aggregates['Exact']['speedup_ggt']:.2f}x ggt, "
        f"CoreExact {aggregates['CoreExact']['speedup_reuse']:.2f}x reuse / "
        f"{aggregates['CoreExact']['speedup_ggt']:.2f}x ggt; "
        f"Exact solves {aggregates['Exact']['solves_binary']} binary -> "
        f"{aggregates['Exact']['solves_ggt']} ggt{enum_line})",
    )
    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "bench_scale": bench_scale,
        "cells": rows,
        "aggregates": aggregates,
        "results_identical": True,  # asserted per cell above
    }
    (OUT_DIR / "flow_reuse_ablation.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # the engines' headlines: where the binary search actually runs
    # (Exact always does), α-reuse is worth an integer factor, and the
    # GGT walk needs a small fraction of the binary search's solves
    assert aggregates["Exact"]["speedup_reuse"] >= 2.0
    assert aggregates["Exact"]["solves_ggt"] * 2 < aggregates["Exact"]["solves_binary"]
    for row in rows:
        if row["algorithm"] == "Exact":
            # one parametric sweep: a handful of solves per instance,
            # never the O(log n²) ladder of the binary search
            assert row["solves_ggt"] < row["solves_binary"]

    # the clique-layer headline: the numpy intersection kernels make the
    # enumeration pass >= 2x faster on every cell large enough to time
    # reliably (with a conservative floor on the mid-size cells), and
    # >= 2x in (time-weighted) aggregate
    for row in enum_cells:
        if row["instances"] >= ENUM_ASSERT_MIN_INSTANCES:
            assert row["enum_speedup"] >= 2.0, (
                row["dataset"], row["algorithm"], row["h"], row["enum_speedup"],
            )
        elif row["instances"] >= ENUM_FLOOR_MIN_INSTANCES:
            assert row["enum_speedup"] >= 1.4, (
                row["dataset"], row["algorithm"], row["h"], row["enum_speedup"],
            )
    if enum_cells:
        assert aggregates["enumeration"]["speedup"] >= 2.0

    graph = load("Yeast", bench_scale)
    result = benchmark(core_exact_densest, graph, 2, flow_engine="ggt")
    assert result.density > 0.0
