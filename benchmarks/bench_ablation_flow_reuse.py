"""Ablation: flow engines × clique-index kernels in the exact algorithms.

PR 2 introduced the array-backed :class:`ParametricNetwork` (engine
``"reuse"``), PR 3 the GGT breakpoint walk (engine ``"ggt"``, now the
default), and PR 4 the array-backed clique-index layer that feeds every
engine its instances.  The bench quantifies all of it on the Figure-8
small-dataset suite and writes a machine-readable JSON
(``benchmarks/out/flow_reuse_ablation.json``, committed as evidence) so
the perf trajectory is tracked across PRs.

Per cell (dataset × algorithm × h) it records:

* wall-clock and speedups of the three flow engines
  (``rebuild``/``reuse``/``ggt``) plus their max-flow solve counts;
* the **enumeration/flow split** of the default-engine run, read off
  the solvers' ``stats`` (``enumeration_seconds`` /
  ``decomposition_seconds`` / ``flow_seconds``), which is where the
  clique-layer speedup shows up end-to-end;
* the **kernel ablation**: the clique-index build timed with the numpy
  intersection kernels vs the pure-python fallback, asserted >= 2x
  faster with numpy on every cell whose instance count is non-trivial.

Every cell asserts all three engines return identical vertex sets and
densities, and (h >= 3) that a solver fed a reference-enumerator index
("old enumeration") is bit-identical to the kernel-fed run -- the
ablation is only meaningful if results are unchanged.

PR 5 added the **accel-backend ablation**: the GGT flow phase timed per
dispatch tier of :mod:`repro.accel` (numba / numpy / python) on
full-graph parametric networks, written -- together with the engine
cells, solve counts and the per-cell backend -- to the machine-readable
``benchmarks/out/BENCH_flow.json`` so the perf trajectory is trackable
across PRs.  With numba actually jitted the bench asserts a >= 3x
flow-phase speedup over the numpy tier on at least one non-trivial
cell; cuts and densities must be identical on every tier regardless.
"""

import json
import time
from pathlib import Path

from repro import accel, obs
from repro.accel import vector
from repro.cliques.enumeration import enumerate_cliques
from repro.cliques.index import CliqueIndex
from repro.cliques.kernels import have_numpy
from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.datasets.registry import dataset_names, load
from repro.experiments.harness import env_fingerprint, timed
from repro.flow.builders import build_cds_parametric, build_eds_parametric

OUT_DIR = Path(__file__).parent / "out"

ENGINES = ("rebuild", "reuse", "ggt")

#: Flow-phase wall-clock (numpy tier) below which a backend cell is too
#: fast to time reliably; the numba >= 3x claim is only asserted on
#: cells above it.
TIER_ASSERT_MIN_SECONDS = 0.005

#: Required numba-vs-numpy flow-phase speedup on at least one
#: non-trivial cell (the PR's headline acceptance criterion).
NUMBA_MIN_SPEEDUP = 3.0

#: Cells at or above this many instances take milliseconds to
#: enumerate, so the numpy-vs-python ratio is timing-noise-robust and
#: the full >= 2x kernel claim is asserted on them.  Smaller cells down
#: to ENUM_FLOOR_MIN_INSTANCES still must clear a conservative 1.4x
#: (sub-millisecond builds on shared CI runners jitter too much for a
#: tight bound); below that only the aggregate is asserted.
ENUM_ASSERT_MIN_INSTANCES = 1000
ENUM_FLOOR_MIN_INSTANCES = 150


def _best_of(fn, reps=5):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _cells(bench_scale):
    rows = []
    for name in dataset_names("small"):
        graph = load(name, bench_scale)
        enum_cache = {}
        for algorithm, fn, h_values in (
            ("CoreExact", core_exact_densest, (2, 3, 4)),
            ("Exact", exact_densest, (2, 3)),
        ):
            for h in h_values:
                results = {}
                seconds = {}
                for engine in ENGINES:
                    results[engine], seconds[engine] = timed(
                        fn, graph, h, flow_engine=engine
                    )
                baseline = results["rebuild"]
                for engine in ("reuse", "ggt"):
                    assert results[engine].vertices == baseline.vertices, (
                        name, algorithm, h, engine,
                    )
                    assert results[engine].density == baseline.density, (
                        name, algorithm, h, engine,
                    )

                row = {
                    "dataset": name,
                    "algorithm": algorithm,
                    "h": h,
                    "backend": accel.TIER,
                    # explicit comparability keys: every cell says which
                    # tier actually ran it, so cross-machine JSONs are
                    # never silently compared numba-vs-interpreter
                    "active_tier": accel.TIER,
                    "numba_available": accel.NUMBA_JITTED,
                    "rebuild_s": seconds["rebuild"],
                    "reuse_s": seconds["reuse"],
                    "ggt_s": seconds["ggt"],
                    "speedup_reuse": (
                        seconds["rebuild"] / seconds["reuse"]
                        if seconds["reuse"] > 0
                        else float("inf")
                    ),
                    "speedup_ggt": (
                        seconds["rebuild"] / seconds["ggt"]
                        if seconds["ggt"] > 0
                        else float("inf")
                    ),
                    # max-flow solve counts: the binary search runs one
                    # per iteration, the GGT walk one per breakpoint hop
                    "solves_binary": results["reuse"].iterations,
                    "solves_ggt": results["ggt"].iterations,
                    "density": baseline.density,
                    # enumeration/flow wall-clock split of the default
                    # run; decomposition_seconds includes the index
                    # build (the paper's Algorithm-3 accounting), so
                    # subtract it to keep the three parts disjoint
                    "enum_s": results["ggt"].stats.get("enumeration_seconds", 0.0),
                    "decomp_s": max(
                        results["ggt"].stats.get("decomposition_seconds", 0.0)
                        - results["ggt"].stats.get("enumeration_seconds", 0.0),
                        0.0,
                    ),
                    "flow_s": results["ggt"].stats.get("flow_seconds", 0.0),
                }

                if h >= 3:
                    # old-vs-new enumeration: the reference nested-loop
                    # enumerator's instances must drive the solver to the
                    # bit-identical answer
                    reference_index = CliqueIndex(
                        graph, h, instances=list(enumerate_cliques(graph, h))
                    )
                    via_reference = fn(graph, h, index=reference_index)
                    assert via_reference.vertices == baseline.vertices, (
                        name, algorithm, h, "reference-enumeration",
                    )
                    assert via_reference.density == baseline.density, (
                        name, algorithm, h, "reference-enumeration",
                    )

                    # kernel ablation: numpy intersection kernels vs the
                    # pure-python fallback for the same canonical index
                    if h not in enum_cache:
                        num_instances = CliqueIndex(graph, h).m
                        cell = {"instances": num_instances}
                        if have_numpy():
                            cell["enum_numpy_s"] = _best_of(
                                lambda: CliqueIndex(graph, h, use_numpy=True)
                            )
                            cell["enum_python_s"] = _best_of(
                                lambda: CliqueIndex(graph, h, use_numpy=False)
                            )
                            cell["enum_speedup"] = cell["enum_python_s"] / max(
                                cell["enum_numpy_s"], 1e-9
                            )
                        enum_cache[h] = cell
                    row.update(enum_cache[h])
                rows.append(row)
    return rows


def _flow_tier_cells(bench_scale):
    """Time the GGT flow phase per accel backend tier, per (dataset, h).

    Per cell: build the full-graph parametric network (untimed, it is
    interpreter work on every tier), run the Newton/GGT breakpoint walk
    (timed, best of 2) -- the saturating probe solve plus the warm hops,
    i.e. exactly the compiled hot loops.  Every tier must return the
    identical cut and density; wall times land in BENCH_flow.json.
    """
    tiers = accel.available_tiers()
    cells = []
    try:
        for name in dataset_names("small"):
            graph = load(name, bench_scale)
            for h in (2, 3, 4):
                index = CliqueIndex(graph, h) if h >= 3 else None
                if h >= 3 and index.m == 0:
                    continue
                if h == 2:
                    density_of = lambda s: graph.subgraph(s).num_edges / len(s)
                else:
                    density_of = index.density_within

                def run_walk():
                    if h == 2:
                        net = build_eds_parametric(graph)
                    else:
                        net = build_cds_parametric(graph, h, index=index)
                    start = time.perf_counter()
                    cut, rho, solves = net.max_density(density_of, low=0.0)
                    return time.perf_counter() - start, cut, rho, solves

                cell = {"dataset": name, "h": h, "flow_solve": {}, "trace": {}}
                reference = None
                for tier in tiers:
                    accel.select_tier(tier)
                    best = float("inf")
                    for _ in range(2):
                        seconds, cut, rho, solves = run_walk()
                        best = min(best, seconds)
                    if reference is None:
                        reference = (cut, rho)
                        cell["density"] = rho
                        cell["solves"] = solves
                        cell["cut_size"] = len(cut) if cut else 0
                    else:  # bit-identity across backend tiers
                        assert (cut, rho) == reference, (name, h, tier)
                    cell["flow_solve"][tier] = best
                    # one traced (untimed) walk per tier: the per-solve
                    # flow telemetry rollup -- warm/cold mix, BFS-mode
                    # choices, kernel work counters -- lands next to the
                    # wall times so the JSON explains them
                    obs.enable()
                    run_walk()
                    events = obs.get_collector().events(obs.FLOW_SOLVE)
                    if events and "network" not in cell:
                        cell["network"] = {
                            "nodes": events[0]["fields"]["nodes"],
                            "arcs": events[0]["fields"]["arcs"],
                        }
                    cell["trace"][tier] = obs.summary()["flow"]
                    obs.disable()
                if "numba" in cell["flow_solve"] and "numpy" in cell["flow_solve"]:
                    cell["speedup_numba_vs_numpy"] = cell["flow_solve"]["numpy"] / max(
                        cell["flow_solve"]["numba"], 1e-9
                    )
                cells.append(cell)
    finally:
        accel.select_tier(None)
    return tiers, cells


def test_flow_reuse_ablation(benchmark, emit, bench_scale):
    rows = _cells(bench_scale)

    aggregates = {}
    for algorithm in ("CoreExact", "Exact"):
        sub = [r for r in rows if r["algorithm"] == algorithm]
        rebuild = sum(r["rebuild_s"] for r in sub)
        reuse = sum(r["reuse_s"] for r in sub)
        ggt = sum(r["ggt_s"] for r in sub)
        aggregates[algorithm] = {
            "rebuild_s": rebuild,
            "reuse_s": reuse,
            "ggt_s": ggt,
            "speedup_reuse": rebuild / reuse if reuse > 0 else float("inf"),
            "speedup_ggt": rebuild / ggt if ggt > 0 else float("inf"),
            "solves_binary": sum(r["solves_binary"] for r in sub),
            "solves_ggt": sum(r["solves_ggt"] for r in sub),
            "enum_s": sum(r["enum_s"] for r in sub),
            "flow_s": sum(r["flow_s"] for r in sub),
        }
    enum_cells = [r for r in rows if "enum_speedup" in r]
    if enum_cells:
        total_np = sum(r["enum_numpy_s"] for r in enum_cells)
        total_py = sum(r["enum_python_s"] for r in enum_cells)
        aggregates["enumeration"] = {
            "numpy_s": total_np,
            "python_s": total_py,
            "speedup": total_py / max(total_np, 1e-9),
        }

    enum_line = (
        f"; enumeration {aggregates['enumeration']['speedup']:.1f}x with numpy"
        if "enumeration" in aggregates
        else ""
    )
    emit(
        "ablation_flow_reuse",
        rows,
        "Flow-engine x clique-kernel ablation -- rebuild vs reuse vs GGT "
        f"(aggregate speedup: Exact {aggregates['Exact']['speedup_reuse']:.2f}x reuse / "
        f"{aggregates['Exact']['speedup_ggt']:.2f}x ggt, "
        f"CoreExact {aggregates['CoreExact']['speedup_reuse']:.2f}x reuse / "
        f"{aggregates['CoreExact']['speedup_ggt']:.2f}x ggt; "
        f"Exact solves {aggregates['Exact']['solves_binary']} binary -> "
        f"{aggregates['Exact']['solves_ggt']} ggt{enum_line})",
    )
    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "bench_scale": bench_scale,
        "env": env_fingerprint(),
        "cells": rows,
        "aggregates": aggregates,
        "results_identical": True,  # asserted per cell above
    }
    (OUT_DIR / "flow_reuse_ablation.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # the engines' headlines: where the binary search actually runs
    # (Exact always does), α-reuse is worth an integer factor, and the
    # GGT walk needs a small fraction of the binary search's solves
    assert aggregates["Exact"]["speedup_reuse"] >= 2.0
    assert aggregates["Exact"]["solves_ggt"] * 2 < aggregates["Exact"]["solves_binary"]
    for row in rows:
        if row["algorithm"] == "Exact":
            # one parametric sweep: a handful of solves per instance,
            # never the O(log n²) ladder of the binary search
            assert row["solves_ggt"] < row["solves_binary"]

    # the clique-layer headline: the numpy intersection kernels make the
    # enumeration pass >= 2x faster on every cell large enough to time
    # reliably (with a conservative floor on the mid-size cells), and
    # >= 2x in (time-weighted) aggregate
    for row in enum_cells:
        if row["instances"] >= ENUM_ASSERT_MIN_INSTANCES:
            assert row["enum_speedup"] >= 2.0, (
                row["dataset"], row["algorithm"], row["h"], row["enum_speedup"],
            )
        elif row["instances"] >= ENUM_FLOOR_MIN_INSTANCES:
            assert row["enum_speedup"] >= 1.4, (
                row["dataset"], row["algorithm"], row["h"], row["enum_speedup"],
            )
    if enum_cells:
        assert aggregates["enumeration"]["speedup"] >= 2.0

    # --- accel-backend ablation: the flow phase per dispatch tier -----
    tiers, tier_cells = _flow_tier_cells(bench_scale)
    tier_totals = {
        tier: sum(c["flow_solve"][tier] for c in tier_cells) for tier in tiers
    }
    # The >= 3x jit claim only holds where numba actually compiled; an
    # explicit skip record keeps interpreter-only JSONs from reading as
    # "numba passed" (they never ran the assert at all).
    if accel.NUMBA_JITTED:
        eligible = [
            c for c in tier_cells
            if c["flow_solve"].get("numpy", 0.0) >= TIER_ASSERT_MIN_SECONDS
        ]
        numba_assert = {
            "asserted": True,
            "min_speedup": NUMBA_MIN_SPEEDUP,
            "eligible_cells": len(eligible),
            "best_speedup": max(
                (c["speedup_numba_vs_numpy"] for c in eligible), default=0.0
            ),
        }
    else:
        numba_assert = {
            "asserted": False,
            "skip_reason": "numba tier not jitted in this environment",
        }
    flow_payload = {
        "bench_scale": bench_scale,
        "env": env_fingerprint(),
        "backend_default": accel.TIER,
        "numba_jitted": accel.NUMBA_JITTED,
        "numba_speedup_assert": numba_assert,
        "tiers": list(tiers),
        "kernel_tiers": accel.kernel_tiers(),
        "engine_cells": rows,
        "flow_tier_cells": tier_cells,
        "aggregates": {
            "flow_solve_totals": tier_totals,
            "engine": aggregates,
        },
        "results_identical_across_tiers": True,  # asserted per cell above
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_flow.json").write_text(
        json.dumps(flow_payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit(
        "bench_flow_tiers",
        [
            {
                "dataset": c["dataset"],
                "h": c["h"],
                "solves": c["solves"],
                **{f"{tier}_s": c["flow_solve"][tier] for tier in tiers},
                **(
                    {"numba_speedup": c["speedup_numba_vs_numpy"]}
                    if "speedup_numba_vs_numpy" in c
                    else {}
                ),
            }
            for c in tier_cells
        ],
        "Flow-phase wall time per accel backend tier (GGT walk, full-graph "
        f"networks; default backend: {accel.TIER}"
        + (
            ", numba jitted"
            if accel.NUMBA_JITTED
            else f", numba unavailable -- >= {NUMBA_MIN_SPEEDUP:g}x jit assert SKIPPED"
        )
        + ")",
    )

    # the compiled tier's headline: with numba actually jitted, the flow
    # phase of at least one non-trivial cell runs >= 3x faster than the
    # numpy tier (the DFS/discharge loops leave the interpreter)
    if accel.NUMBA_JITTED:
        assert numba_assert["eligible_cells"], (
            "no cell large enough to assert the numba speedup"
        )
        assert numba_assert["best_speedup"] >= NUMBA_MIN_SPEEDUP, [
            (c["dataset"], c["h"], c["speedup_numba_vs_numpy"]) for c in eligible
        ]
    else:
        print(
            f"\n[numba >= {NUMBA_MIN_SPEEDUP:g}x flow-phase assert SKIPPED: "
            "numba tier not jitted in this environment]"
        )

    graph = load("Yeast", bench_scale)
    result = benchmark(core_exact_densest, graph, 2, flow_engine="ggt")
    assert result.density > 0.0


# --- BFS dispatch probe: is NUMPY_BFS_MIN_ARCS tuned right? -----------

#: The two largest small-suite surrogates: the only cells whose EDS
#: networks get anywhere near the dispatch threshold at bench scale.
BFS_PROBE_DATASETS = ("As-Caida", "Ca-HepTh")


def test_bfs_dispatch_probe(benchmark, emit, bench_scale):
    """Force each BFS implementation on warm GGT walks and compare.

    :data:`repro.accel.vector.NUMPY_BFS_MIN_ARCS` was tuned on *cold*
    saturating solves; the GGT walk is dominated by warm re-solves whose
    level graphs die after a couple of BFS passes, where the vectorised
    BFS's per-call numpy overhead is never amortised.  The dispatch is
    now warmth-aware (:data:`~repro.accel.vector.NUMPY_BFS_MIN_ARCS_WARM`
    keeps warm re-solves on the scalar BFS), so this probe doubles as
    the regression gate: the shipped defaults must pick the scalar BFS
    on every warm solve (asserted from the per-solve telemetry, not
    timings) and must no longer lose to the forced-scalar leg.  The
    probe times the full-graph EDS Newton walk three ways -- thresholds
    as shipped, forced-scalar, forced-numpy -- on the numpy tier and
    writes ``benchmarks/out/bfs_dispatch_note.txt``.
    """
    if not have_numpy():
        import pytest

        pytest.skip("numpy unavailable: there is no dispatch to probe")

    default_cold = vector.NUMPY_BFS_MIN_ARCS
    default_warm = vector.NUMPY_BFS_MIN_ARCS_WARM
    # (cold threshold, warm threshold) per forced leg
    forced = (
        ("default", default_cold, default_warm),
        ("scalar", 1 << 62, 1 << 62),  # thresholds unreachable: scalar always
        ("numpy", 0, 0),  # thresholds zero: vectorised BFS always
    )
    rows = []
    accel.select_tier("numpy")
    try:
        for name in BFS_PROBE_DATASETS:
            graph = load(name, bench_scale)
            density_of = lambda s: graph.subgraph(s).num_edges / len(s)

            def run_walk():
                net = build_eds_parametric(graph)
                start = time.perf_counter()
                net.max_density(density_of, low=0.0)
                return time.perf_counter() - start, net

            row = {"dataset": name}
            for label, cold_threshold, warm_threshold in forced:
                vector.NUMPY_BFS_MIN_ARCS = cold_threshold
                vector.NUMPY_BFS_MIN_ARCS_WARM = warm_threshold
                best = float("inf")
                for _ in range(3):
                    seconds, net = run_walk()
                    best = min(best, seconds)
                row[f"{label}_s"] = best
                # traced run: per-solve records carry the BFS choice and
                # the network size that drove it
                obs.enable()
                run_walk()
                summary = obs.summary()
                flow = summary["flow"]
                if label == "default":
                    # the regression gate: warmth-aware dispatch must
                    # route every warm re-solve to the scalar BFS
                    warm_events = [
                        e["fields"]
                        for e in obs.get_collector().events()
                        if e["name"] == "flow.solve" and e["fields"]["mode"] != "cold"
                    ]
                    assert warm_events, "walk produced no warm re-solves"
                    assert all(
                        f.get("bfs_mode") == "scalar" for f in warm_events
                    ), f"warm solve took the numpy BFS: {warm_events}"
                obs.disable()
                if label == "default":
                    row["arcs"] = len(net.head)
                    row["solves"] = flow["solves"]
                    row["warm"] = flow["warm"]
                    row["bfs_modes_default"] = dict(flow["bfs_modes"])
            row["best_mode"] = min(
                ("scalar", "numpy"), key=lambda m: row[f"{m}_s"]
            )
            default_modes = set(row["bfs_modes_default"])
            row["default_uses"] = (
                "mixed" if len(default_modes) > 1 else next(iter(default_modes))
            )
            row["mistuned"] = row["default_uses"] != row["best_mode"]
            row["penalty"] = row["default_s"] / max(
                row[f"{row['best_mode']}_s"], 1e-9
            )
            rows.append(row)
    finally:
        vector.NUMPY_BFS_MIN_ARCS = default_cold
        vector.NUMPY_BFS_MIN_ARCS_WARM = default_warm
        accel.select_tier(None)

    emit(
        "bfs_dispatch_probe",
        [
            {
                k: (json.dumps(v) if isinstance(v, dict) else v)
                for k, v in row.items()
            }
            for row in rows
        ],
        f"Dinic BFS dispatch probe (numpy tier, NUMPY_BFS_MIN_ARCS="
        f"{default_cold}, warm threshold {default_warm}): forced scalar vs "
        "forced numpy on warm GGT walks",
    )

    note_lines = [
        "NUMPY_BFS_MIN_ARCS dispatch probe -- warm GGT walks, numpy tier",
        f"bench_scale={bench_scale}  cold threshold={default_cold} arcs, "
        f"warm threshold={'inf' if default_warm > 1 << 40 else default_warm} "
        f"(len(head) incl. reverse arcs)",
        "",
    ]
    for row in rows:
        note_lines += [
            f"{row['dataset']}: arcs={row['arcs']} solves={row['solves']} "
            f"(warm {row['warm']})",
            f"  default -> {row['default_uses']} BFS: {row['default_s'] * 1e3:.2f} ms",
            f"  forced scalar: {row['scalar_s'] * 1e3:.2f} ms | "
            f"forced numpy: {row['numpy_s'] * 1e3:.2f} ms",
            f"  best: {row['best_mode']}"
            + (
                f" -- default mis-tuned, paying {row['penalty']:.2f}x"
                if row["mistuned"]
                else " -- default agrees"
            ),
            "",
        ]
    mistuned = [r["dataset"] for r in rows if r["mistuned"]]
    note_lines.append(
        "Verdict: threshold mis-tuned for warm GGT solves on "
        + (", ".join(mistuned) if mistuned else "none of the probed cells")
        + ".  The dispatch is warmth-aware (NUMPY_BFS_MIN_ARCS_WARM keeps"
    )
    note_lines.append(
        "warm re-solves on the scalar BFS, asserted above from the"
        " per-solve telemetry); a future autotuner can learn a real"
        " per-network crossover from the flow.solve events instead."
    )
    # the historical mis-tuning must stay fixed: defaults pick the winner
    assert not mistuned, f"warm dispatch regressed on {mistuned}"
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "bfs_dispatch_note.txt").write_text(
        "\n".join(note_lines) + "\n", encoding="utf-8"
    )
    print("\n[written to benchmarks/out/bfs_dispatch_note.txt]")

    graph = load(BFS_PROBE_DATASETS[-1], bench_scale)
    result = benchmark(core_exact_densest, graph, 2, flow_engine="ggt")
    assert result.density > 0.0
