"""Benchmark-suite configuration.

Each ``bench_*.py`` file regenerates one table or figure of the paper
(the mapping is in DESIGN.md §4).  Every bench

* times a representative algorithm call with pytest-benchmark, and
* regenerates the artefact's rows, printing them and writing them to
  ``benchmarks/out/<artefact>.txt`` so the tables survive pytest's
  output capture.

``REPRO_BENCH_SCALE`` (default 0.25) scales the surrogate datasets:
raise it toward 1.0 for higher-fidelity tables, lower it for speed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import pytest

from repro import env
from repro.experiments.harness import format_table

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return env.number("REPRO_BENCH_SCALE")


@pytest.fixture(scope="session")
def emit():
    """Write an artefact table to disk and stdout; returns the text."""

    def _emit(
        name: str,
        rows: Sequence[dict],
        title: str,
        columns: Sequence[str] | None = None,
        chart: str = "",
    ) -> str:
        text = format_table(rows, columns=columns, title=title)
        if chart:
            text = f"{text}\n\n{chart}"
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to benchmarks/out/{name}.txt]")
        return text

    return _emit
