"""Query serving: cold solve vs warm snapshot vs restart-reload.

PR 10 added the serving layer (:mod:`repro.serve`): one precompute
materialises a :class:`~repro.serve.Snapshot` -- the per-component GGT
walk plus the full min-cut breakpoint family -- after which every
densest-subgraph / α-density query is a lookup.  The load-bearing
contract is **bit-identity at zero flow solves**: warm answers equal
the cold ``method="exact"`` run exactly, and the ``flow.solves``
counter stays at zero across any number of warm queries.  This bench
asserts both on every cell while measuring what the snapshot buys.

Per Figure-8 small-dataset cell (h in {2, 3}):

* ``cold_s`` -- one full exact solve (enumeration + parametric flow);
* ``precompute_s`` -- building the snapshot (walk + breakpoint sweep);
* ``warm_s`` -- a served ``densest_subgraph()`` off the snapshot;
* ``load_s`` / ``reload_warm_s`` -- restoring from the SQLite store on
  a fresh connection (the restart path) and querying the restored
  artifact, with every α-profile answer compared against the original.

Wall times land in the machine-readable
``benchmarks/out/BENCH_service.json``.  The headline -- >= 10x
warm-vs-cold on at least one non-trivial cell -- is asserted whenever a
cell's cold solve clears the timing-noise floor; otherwise the JSON
carries an explicit skip record so a degenerate run is never misread.
"""

import json
import tempfile
import time
from pathlib import Path

from repro import api, obs
from repro.datasets.registry import dataset_names, load
from repro.experiments.harness import env_fingerprint
from repro.serve import Snapshot, SnapshotStore

OUT_DIR = Path(__file__).parent / "out"

H_VALUES = (2, 3)

#: Required warm-vs-cold speedup on at least one eligible cell (the
#: PR's headline acceptance criterion).
SERVE_MIN_SPEEDUP = 10.0

#: Cold wall-clock floor for a cell to count toward the speedup claim;
#: faster cells are dominated by timing noise, not solver work.
SERVE_ASSERT_MIN_SECONDS = 0.005


def _best_timed(fn, *args, reps=3, **kwargs):
    result, best = None, float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


def _probe_alphas(snap: Snapshot) -> list[float]:
    """Segment-midpoint probes (plus 0.0 and past the last breakpoint)."""
    alphas = sorted({a for art in snap.components for a in art.fam_alphas})
    probes = [0.0]
    for a, b in zip(alphas, alphas[1:]):
        probes.append((a + b) / 2.0)
    probes.append((alphas[-1] if alphas else 0.0) + 1.0)
    return probes


def _assert_same_result(got, want, context):
    assert got.vertices == want.vertices, context
    assert got.density == want.density, context


def test_serve_cache(benchmark, emit, bench_scale):
    rows = []
    cells = []  # (row, snapshot) pairs for the reload + zero-solve passes
    with tempfile.TemporaryDirectory() as tmp:
        store = SnapshotStore(tmp)
        for name in dataset_names("small"):
            graph = load(name, bench_scale)
            for h in H_VALUES:
                cold, cold_s = _best_timed(
                    api.densest_subgraph, graph, h, method="exact", reps=2
                )
                start = time.perf_counter()
                snap = Snapshot(graph, h)
                precompute_s = time.perf_counter() - start
                warm, warm_s = _best_timed(snap.densest_subgraph, reps=5)
                # the contract the whole layer stands on: same bits
                _assert_same_result(warm, cold, (name, h, "warm"))
                via_api = api.densest_subgraph(graph, h, snapshot=snap)
                _assert_same_result(via_api, cold, (name, h, "snapshot="))
                assert store.save(snap), (name, h)
                row = {
                    "dataset": name,
                    "h": h,
                    "density": cold.density,
                    "breakpoints": sum(
                        len(art.fam_alphas) for art in snap.components
                    ),
                    "cold_s": cold_s,
                    "precompute_s": precompute_s,
                    "warm_s": warm_s,
                    "speedup_warm": cold_s / warm_s if warm_s > 0 else float("inf"),
                }
                rows.append(row)
                cells.append((row, snap))
        store.close()

        # --- the restart path: fresh connection, no re-enumeration ----
        reopened = SnapshotStore(tmp)
        for row, snap in cells:
            loaded, load_s = _best_timed(reopened.load, snap.key, reps=1)
            assert loaded is not None and loaded.loaded, (row["dataset"], row["h"])
            reload_warm, reload_warm_s = _best_timed(
                loaded.densest_subgraph, reps=5
            )
            _assert_same_result(
                reload_warm, snap.densest_subgraph(),
                (row["dataset"], row["h"], "reload"),
            )
            for alpha in _probe_alphas(snap):
                a, b = snap.query_density(alpha), loaded.query_density(alpha)
                assert a.vertices == b.vertices, (row["dataset"], row["h"], alpha)
                assert a.count == b.count, (row["dataset"], row["h"], alpha)
            row["load_s"] = load_s
            row["reload_warm_s"] = reload_warm_s
            row["speedup_reload"] = (
                row["cold_s"] / (load_s + reload_warm_s)
                if load_s + reload_warm_s > 0
                else float("inf")
            )
        reopened.close()

    # --- warm queries never touch a flow network -----------------------
    obs.enable(fresh=True)
    try:
        for row, snap in cells:
            snap.densest_subgraph()
            snap.query_density(0.0)
            snap.top_k(3)
        flow_solves = dict(obs.get_collector().counters).get("flow.solves", 0)
    finally:
        obs.disable()
    assert flow_solves == 0, "a warm query ran a parametric solve"

    # --- the headline claim, or an explicit skip record ----------------
    eligible = [r for r in rows if r["cold_s"] >= SERVE_ASSERT_MIN_SECONDS]
    best = max((r["speedup_warm"] for r in eligible), default=0.0)
    if eligible:
        serve_assert = {
            "asserted": True,
            "min_speedup": SERVE_MIN_SPEEDUP,
            "eligible_cells": len(eligible),
            "best_speedup_warm": best,
        }
    else:
        serve_assert = {
            "asserted": False,
            "min_speedup": SERVE_MIN_SPEEDUP,
            "eligible_cells": 0,
            "best_speedup_warm": best,
            "skip_reason": (
                f"no cell's cold solve reached {SERVE_ASSERT_MIN_SECONDS}s "
                "at this bench scale; warm-vs-cold is not measurable here "
                "(bit-identity and zero flow solves still asserted)"
            ),
        }

    emit(
        "bench_serve_cache",
        [
            {
                k: r.get(k, "-")
                for k in (
                    "dataset", "h", "breakpoints", "cold_s", "precompute_s",
                    "warm_s", "load_s", "speedup_warm", "speedup_reload",
                )
            }
            for r in rows
        ],
        "Query serving: cold exact solve vs warm snapshot vs restart-reload "
        "(answers bit-identical, zero flow solves on every warm cell"
        + (
            ""
            if serve_assert["asserted"]
            else f"; >= {SERVE_MIN_SPEEDUP:g}x warm assert SKIPPED"
        )
        + ")",
    )

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "bench_scale": bench_scale,
        "env": env_fingerprint(),
        "h_values": list(H_VALUES),
        "serve_speedup_assert": serve_assert,
        "cells": rows,
        "warm_flow_solves": flow_solves,
        "results_identical": True,  # asserted per cell above
        "aggregates": {
            "cells": len(rows),
            "cold_s": sum(r["cold_s"] for r in rows),
            "precompute_s": sum(r["precompute_s"] for r in rows),
            "warm_s": sum(r["warm_s"] for r in rows),
            "load_s": sum(r["load_s"] for r in rows),
        },
    }
    (OUT_DIR / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    if serve_assert["asserted"]:
        assert best >= SERVE_MIN_SPEEDUP, [
            (r["dataset"], r["h"], r["speedup_warm"]) for r in eligible
        ]
    else:
        print(
            f"\n[serve >= {SERVE_MIN_SPEEDUP:g}x warm assert SKIPPED: "
            f"{serve_assert['skip_reason']}]"
        )

    _, headline = cells[-1]
    result = benchmark(headline.densest_subgraph)
    assert result.density >= 0.0
