"""Figure 14: approximation CDS algorithms on the random-graph families."""

from repro.core.core_app import core_app_densest
from repro.datasets.registry import load
from repro.experiments import fig13_14


def test_fig14_random_graphs_approx(benchmark, emit, bench_scale):
    rows = fig13_14.run_approx(h_values=(2, 3), scale=bench_scale * 0.5)
    emit(
        "fig14_random_approx",
        rows,
        "Figure 14 -- approximation CDS on SSCA / ER / R-MAT "
        "(core_coverage = |kmax-core| / n; ER's flatness weakens pruning)",
    )
    coverage = {(r["family"], r["h"]): r["core_coverage"] for r in rows}
    # paper shape: ER's kmax-core covers far more of the graph than SSCA's
    assert coverage[("ER", 2)] > coverage[("SSCA", 2)]

    graph = load("R-MAT", bench_scale * 0.5)
    benchmark(core_app_densest, graph, 3)
