"""Figure 12: CoreExact vs CoreApp running time."""

from repro.core.core_app import core_app_densest
from repro.datasets.registry import load
from repro.experiments import fig12


def test_fig12_core_exact_vs_core_app(benchmark, emit, bench_scale):
    rows = fig12.run(("Ca-HepTh", "As-Caida"), h_values=(2, 3), scale=bench_scale)
    emit(
        "fig12_exact_vs_app",
        rows,
        "Figure 12 -- CoreExact vs CoreApp (seconds; the price of exactness)",
    )
    # paper shape: CoreApp is faster than CoreExact on every instance
    assert all(r["core_app_s"] <= r["core_exact_s"] for r in rows)

    graph = load("As-Caida", bench_scale)
    benchmark(core_app_densest, graph, 2)
