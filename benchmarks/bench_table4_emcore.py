"""Table 4: EMcore vs CoreApp for the classical kmax-core."""

from repro.baselines.emcore import emcore_densest
from repro.datasets.registry import load
from repro.experiments import table4


def test_table4_emcore_vs_coreapp(benchmark, emit, bench_scale):
    rows = table4.run(scale=bench_scale * 0.5)
    emit(
        "table4_emcore",
        rows,
        "Table 4 -- EMcore vs CoreApp, kmax-core computation (seconds)",
    )
    graph = load("DBLP", bench_scale * 0.5)
    result = benchmark(emcore_densest, graph)
    assert result.stats["kmax"] > 0
