"""Parallel scaling: the shared-memory fan-out of :mod:`repro.par`.

PR 9 added the parallel execution layer: Exact/CoreExact dispatch
independent component subproblems to a forked worker pool, and the
clique-index build chunks its wedge-expansion kernels over vertex
ranges.  The load-bearing contract is **bit-identity** -- parallel
results equal serial results exactly -- so this bench asserts it on
every cell while measuring what the fan-out buys.

Cells come in three flavours:

* the Figure-8 small-dataset suite (Exact + CoreExact), where the
  number of surviving components is the data's business -- cells where
  pruning leaves one component record ``fanout: false`` and simply
  pin the serial-fallback identity;
* synthetic *clone* graphs (label-shifted copies of one random blob),
  whose identical clique-core numbers guarantee every component
  survives CoreExact's locate-core pruning -- the guaranteed-fan-out
  cells the scaling claim is measured on;
* the chunked clique-index build (h = 3, 4) on the largest small
  datasets, byte-comparing the canonical instance rows.

Wall times for workers in {1, 2, 4} land in the machine-readable
``benchmarks/out/BENCH_par.json`` (same env-fingerprint header as
``BENCH_flow.json``).  The headline -- >= 2x end-to-end speedup with 4
workers on at least one guaranteed-fan-out cell -- is only asserted
when the host exposes >= 4 CPUs; on smaller hosts the JSON carries an
explicit skip record so a 1-core container's artifact is never read as
"the speedup passed".
"""

import json
import os
import random
import time
from pathlib import Path

from repro import par
from repro.cliques.index import CliqueIndex
from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.datasets.registry import dataset_names, load
from repro.experiments.harness import env_fingerprint
from repro.graph.graph import Graph

OUT_DIR = Path(__file__).parent / "out"

WORKER_COUNTS = (1, 2, 4)

#: Required end-to-end speedup at 4 workers on at least one eligible
#: guaranteed-fan-out cell (the PR's headline acceptance criterion).
PAR_MIN_SPEEDUP = 2.0

#: CPUs the host must expose for the speedup claim to be assertable at
#: all; below it the bench records an explicit skip instead.
PAR_ASSERT_MIN_CPUS = 4

#: Serial wall-clock floor for a cell to count toward the speedup
#: claim; faster cells are dominated by dispatch overhead and timing
#: noise, not component work.
PAR_ASSERT_MIN_SECONDS = 0.05

#: Synthetic guaranteed-fan-out cells: ``copies`` label-shifted copies
#: of one Gnp blob (identical clique-cores, so CoreExact keeps every
#: component), per (name, copies, n, p, h).
CLONE_CELLS = (
    ("clones-4x300-h2", 4, 300, 0.15, 2),
    ("clones-4x110-h3", 4, 110, 0.20, 3),
)


def _clone_graph(seed: int, copies: int, n: int, p: float) -> Graph:
    rng = random.Random(seed)
    edges = [
        (i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < p
    ]
    g = Graph()
    for c in range(copies):
        base = c * n
        for v in range(base, base + n):
            g.add_vertex(v)
        for i, j in edges:
            g.add_edge(base + i, base + j)
    return g


def _best_timed(fn, *args, reps=2, **kwargs):
    result, best = None, float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


def _solver_cell(name, graph, algorithm, fn, h, guaranteed_fanout):
    serial, serial_s = _best_timed(fn, graph, h, workers=1)
    row = {
        "dataset": name,
        "algorithm": algorithm,
        "h": h,
        "density": serial.density,
        "guaranteed_fanout": guaranteed_fanout,
        "serial_s": serial_s,
    }
    fanout = False
    for workers in WORKER_COUNTS[1:]:
        par.LAST_BATCH.clear()
        # reps=3: the first rep pays the pool fork, best-of absorbs it
        parallel, seconds = _best_timed(fn, graph, h, workers=workers, reps=3)
        # the contract the whole layer stands on: bit-identical results
        assert parallel.vertices == serial.vertices, (name, algorithm, h, workers)
        assert parallel.density == serial.density, (name, algorithm, h, workers)
        row[f"w{workers}_s"] = seconds
        row[f"speedup_w{workers}"] = serial_s / seconds if seconds > 0 else float("inf")
        if par.LAST_BATCH.get("surface", "").endswith(".components"):
            fanout = True
            row["components"] = par.LAST_BATCH.get("tasks")
    row["fanout"] = fanout
    if guaranteed_fanout:
        assert fanout, (name, algorithm, h, "clone cell never fanned out")
    return row


def _clique_cells(bench_scale):
    """Chunked clique enumeration: byte-identical rows, 1/2/4 workers."""
    rows = []
    floor = par.PAR_MIN_EDGES
    try:
        # surrogate cells at smoke scale sit under the production floor;
        # the bench measures the chunked path, so lower it (restored in
        # the finally) exactly like the BFS probe forces its thresholds
        par.PAR_MIN_EDGES = 1
        for name in dataset_names("small")[-2:]:
            graph = load(name, bench_scale)
            for h in (3, 4):
                serial, serial_s = _best_timed(CliqueIndex, graph, h, workers=1)
                if serial.m == 0:
                    continue
                row = {
                    "dataset": name,
                    "h": h,
                    "instances": serial.m,
                    "serial_s": serial_s,
                }
                for workers in WORKER_COUNTS[1:]:
                    chunked, seconds = _best_timed(
                        CliqueIndex, graph, h, workers=workers, reps=3
                    )
                    assert chunked.inst == serial.inst, (name, h, workers)
                    row[f"w{workers}_s"] = seconds
                    row[f"speedup_w{workers}"] = (
                        serial_s / seconds if seconds > 0 else float("inf")
                    )
                rows.append(row)
    finally:
        par.PAR_MIN_EDGES = floor
    return rows


def test_par_scaling(benchmark, emit, bench_scale):
    try:
        rows = []
        for name in dataset_names("small"):
            graph = load(name, bench_scale)
            for algorithm, fn, h_values in (
                ("CoreExact", core_exact_densest, (2, 3)),
                ("Exact", exact_densest, (2,)),
            ):
                for h in h_values:
                    rows.append(
                        _solver_cell(name, graph, algorithm, fn, h, False)
                    )
        for name, copies, n, p, h in CLONE_CELLS:
            graph = _clone_graph(97, copies, n, p)
            rows.append(
                _solver_cell(name, graph, "CoreExact", core_exact_densest, h, True)
            )
            if h == 2:
                rows.append(
                    _solver_cell(name, graph, "Exact", exact_densest, h, True)
                )
        clique_rows = _clique_cells(bench_scale)

        # --- the headline claim, or an explicit skip record ----------
        cpus = os.cpu_count() or 1
        eligible = [
            r
            for r in rows
            if r["fanout"]
            and r["guaranteed_fanout"]
            and r["serial_s"] >= PAR_ASSERT_MIN_SECONDS
        ]
        best = max((r.get("speedup_w4", 0.0) for r in eligible), default=0.0)
        if cpus >= PAR_ASSERT_MIN_CPUS:
            par_assert = {
                "asserted": True,
                "min_speedup": PAR_MIN_SPEEDUP,
                "cpu_count": cpus,
                "eligible_cells": len(eligible),
                "best_speedup_w4": best,
            }
        else:
            # a 1-core container cannot speed up by running 4 forks in
            # timeshare; record the skip so the JSON is never misread
            par_assert = {
                "asserted": False,
                "min_speedup": PAR_MIN_SPEEDUP,
                "cpu_count": cpus,
                "eligible_cells": len(eligible),
                "best_speedup_w4": best,
                "skip_reason": (
                    f"host exposes {cpus} CPU(s) < {PAR_ASSERT_MIN_CPUS}; "
                    "4-worker speedup is not measurable here "
                    "(bit-identity still asserted on every cell)"
                ),
            }

        fanned = [r for r in rows if r["fanout"]]
        aggregates = {
            "cells": len(rows),
            "fanout_cells": len(fanned),
            "serial_s": sum(r["serial_s"] for r in rows),
            "w2_s": sum(r["w2_s"] for r in rows),
            "w4_s": sum(r["w4_s"] for r in rows),
        }

        emit(
            "bench_par_scaling",
            [
                {
                    k: r.get(k, "-")
                    for k in (
                        "dataset", "algorithm", "h", "fanout", "components",
                        "serial_s", "w2_s", "w4_s", "speedup_w2", "speedup_w4",
                    )
                }
                for r in rows
            ],
            f"Parallel component fan-out scaling ({cpus} CPU(s); workers 1/2/4; "
            "results bit-identical to serial on every cell"
            + (
                ""
                if par_assert["asserted"]
                else f"; >= {PAR_MIN_SPEEDUP:g}x @ 4 workers assert SKIPPED"
            )
            + ")",
        )

        OUT_DIR.mkdir(exist_ok=True)
        payload = {
            "bench_scale": bench_scale,
            "env": env_fingerprint(),
            "cpu_count": cpus,
            "worker_counts": list(WORKER_COUNTS),
            "par_speedup_assert": par_assert,
            "solver_cells": rows,
            "clique_cells": clique_rows,
            "aggregates": aggregates,
            "results_identical": True,  # asserted per cell above
        }
        (OUT_DIR / "BENCH_par.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

        if par_assert["asserted"]:
            assert eligible, (
                "no guaranteed-fan-out cell slow enough to assert the speedup"
            )
            assert best >= PAR_MIN_SPEEDUP, [
                (r["dataset"], r["h"], r["speedup_w4"]) for r in eligible
            ]
        else:
            print(
                f"\n[par >= {PAR_MIN_SPEEDUP:g}x @ 4 workers assert SKIPPED: "
                f"{par_assert['skip_reason']}]"
            )

        graph = _clone_graph(97, *CLONE_CELLS[0][1:4])
        result = benchmark(core_exact_densest, graph, 2, workers=2)
        assert result.density > 0.0
    finally:
        par.shutdown()
