"""Tests for h-clique enumeration and the instance index."""

import math

import networkx as nx
import pytest

from repro.cliques.enumeration import (
    CliqueIndex,
    clique_degrees,
    count_cliques,
    enumerate_cliques,
)
from repro.graph.graph import Graph, complete_graph, cycle_graph, star_graph

from .conftest import random_graph, to_networkx


def nx_clique_count(graph, h):
    """Oracle: count h-cliques with networkx."""
    return sum(1 for c in nx.enumerate_all_cliques(to_networkx(graph)) if len(c) == h)


class TestEnumeration:
    @pytest.mark.parametrize("h,expected", [(1, 5), (2, 10), (3, 10), (4, 5), (5, 1), (6, 0)])
    def test_counts_in_k5(self, h, expected):
        assert count_cliques(complete_graph(5), h) == expected

    def test_counts_formula_on_complete_graphs(self):
        for n in range(2, 8):
            g = complete_graph(n)
            for h in range(2, n + 1):
                assert count_cliques(g, h) == math.comb(n, h)

    def test_no_duplicates(self):
        g = random_graph(20, 60, seed=1)
        triangles = list(enumerate_cliques(g, 3))
        assert len({frozenset(t) for t in triangles}) == len(triangles)

    def test_members_are_mutually_adjacent(self):
        g = random_graph(20, 70, seed=2)
        for clique in enumerate_cliques(g, 4):
            for i, u in enumerate(clique):
                for v in clique[i + 1 :]:
                    assert g.has_edge(u, v)

    @pytest.mark.parametrize("h", [2, 3, 4, 5])
    def test_matches_networkx(self, h):
        g = random_graph(25, 90, seed=h)
        assert count_cliques(g, h) == nx_clique_count(g, h)

    def test_cycle_has_no_triangles(self):
        assert count_cliques(cycle_graph(6), 3) == 0

    def test_star_cliques_are_edges_only(self):
        g = star_graph(5)
        assert count_cliques(g, 2) == 5
        assert count_cliques(g, 3) == 0

    def test_h1_yields_vertices(self):
        g = Graph(vertices=[1, 2, 3])
        assert count_cliques(g, 1) == 3

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            count_cliques(Graph(), 0)

    def test_empty_graph(self):
        assert count_cliques(Graph(), 3) == 0


class TestCliqueDegrees:
    def test_triangle_degrees_figure1(self):
        # paper's S2 example: two triangles sharing an edge
        g = Graph([("A", "B"), ("B", "C"), ("C", "A"), ("A", "D"), ("C", "D")])
        degrees = clique_degrees(g, 3)
        assert degrees == {"A": 2, "B": 1, "C": 2, "D": 1}

    def test_sum_equals_h_times_count(self):
        g = random_graph(20, 60, seed=3)
        for h in (2, 3, 4):
            degrees = clique_degrees(g, h)
            assert sum(degrees.values()) == h * count_cliques(g, h)

    def test_every_vertex_present(self):
        g = Graph([(0, 1)], vertices=[9])
        degrees = clique_degrees(g, 3)
        assert degrees[9] == 0
        assert set(degrees) == {0, 1, 9}

    def test_edge_degrees_are_classical_degrees(self):
        g = random_graph(15, 40, seed=4)
        degrees = clique_degrees(g, 2)
        assert degrees == {v: g.degree(v) for v in g}


class TestCliqueIndex:
    def test_degrees_match_direct(self):
        g = random_graph(18, 50, seed=5)
        index = CliqueIndex(g, 3)
        assert index.degrees() == clique_degrees(g, 3)

    def test_peel_kills_instances(self):
        g = complete_graph(4)
        index = CliqueIndex(g, 3)
        assert index.num_alive == 4
        killed = index.peel_vertex(0)
        assert len(killed) == 3  # triangles through vertex 0
        assert index.num_alive == 1

    def test_peel_is_idempotent_per_instance(self):
        g = complete_graph(4)
        index = CliqueIndex(g, 3)
        index.peel_vertex(0)
        assert index.peel_vertex(0) == []

    def test_live_instances_shrink(self):
        g = complete_graph(5)
        index = CliqueIndex(g, 3)
        index.peel_vertex(0)
        live = list(index.live_instances())
        assert len(live) == index.num_alive == math.comb(4, 3)
        assert all(0 not in inst for inst in live)

    def test_prebuilt_instances(self):
        g = Graph([(0, 1), (1, 2)])
        index = CliqueIndex(g, 3, instances=[(0, 1, 2)])
        assert index.degrees() == {0: 1, 1: 1, 2: 1}
