"""Integration tests: full pipelines on every surrogate dataset.

These are the end-to-end checks: on each registry surrogate (shrunk for
test speed) the complete algorithm matrix must be internally consistent
-- exact methods agree with each other, approximations respect their
guarantees, and baselines return the same cores as the core methods.
"""

import pytest

from repro import densest_subgraph
from repro.baselines.emcore import emcore_densest
from repro.baselines.nucleus import nucleus_densest
from repro.core.core_app import core_app_densest
from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.core.inc_app import inc_app_densest
from repro.core.peel import peel_densest
from repro.core.pds import core_p_exact_densest, p_exact_densest
from repro.datasets.registry import dataset_names, load
from repro.patterns.pattern import get_pattern

SMALL = dataset_names("small")
SCALE = 0.12


@pytest.fixture(scope="module")
def surrogates():
    return {name: load(name, SCALE) for name in SMALL}


class TestExactConsistency:
    @pytest.mark.parametrize("name", SMALL)
    @pytest.mark.parametrize("h", [2, 3])
    def test_exact_equals_core_exact(self, surrogates, name, h):
        g = surrogates[name]
        assert core_exact_densest(g, h).density == pytest.approx(
            exact_densest(g, h).density, abs=1e-9
        )

    @pytest.mark.parametrize("name", ["Yeast", "Netscience"])
    def test_pexact_equals_core_pexact(self, surrogates, name):
        g = surrogates[name]
        pattern = get_pattern("2-star")
        assert core_p_exact_densest(g, pattern).density == pytest.approx(
            p_exact_densest(g, pattern).density, abs=1e-9
        )


class TestApproximationConsistency:
    @pytest.mark.parametrize("name", SMALL)
    def test_sandwich_bounds(self, surrogates, name):
        g = surrogates[name]
        h = 3
        optimum = core_exact_densest(g, h).density
        for algo in (peel_densest, inc_app_densest, core_app_densest):
            approx = algo(g, h).density
            assert approx <= optimum + 1e-9
            if optimum > 0:
                assert approx >= optimum / h - 1e-9

    @pytest.mark.parametrize("name", SMALL)
    def test_core_methods_agree(self, surrogates, name):
        g = surrogates[name]
        inc = inc_app_densest(g, 3)
        app = core_app_densest(g, 3)
        nuc = nucleus_densest(g, 3)
        assert inc.vertices == app.vertices == nuc.vertices

    @pytest.mark.parametrize("name", SMALL)
    def test_emcore_agrees_for_edges(self, surrogates, name):
        g = surrogates[name]
        em = emcore_densest(g)
        app = core_app_densest(g, 2)
        assert em.stats["kmax"] == app.stats["kmax"]


class TestPublicApiOnSurrogates:
    @pytest.mark.parametrize("name", ["Yeast", "As-733"])
    def test_auto_dispatch(self, surrogates, name):
        g = surrogates[name]
        result = densest_subgraph(g, 3)
        assert result.method == "CoreExact"  # small graph -> exact path
        assert result.density >= 0.0

    def test_pattern_dispatch_on_surrogate(self, surrogates):
        g = surrogates["Netscience"]
        exact = densest_subgraph(g, "diamond", method="core-exact")
        approx = densest_subgraph(g, "diamond", method="core-app")
        assert approx.density <= exact.density + 1e-9
        if exact.density > 0:
            assert approx.density >= exact.density / 4 - 1e-9

    def test_case_study_surrogates_load(self):
        for name in dataset_names("case-study"):
            g = load(name, 0.3)
            assert g.num_vertices > 0


class TestExperimentsCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8-exact" in out and "table5" in out

    def test_single_artefact(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig9", "--scale", "0.05"]) == 0
        assert "network_nodes" in capsys.readouterr().out

    def test_unknown_artefact(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig99"]) == 2
