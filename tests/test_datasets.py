"""Tests for the surrogate dataset registry."""

import pytest

from repro.datasets.registry import DatasetSpec, dataset_names, get_spec, load


class TestRegistry:
    def test_all_categories_present(self):
        assert len(dataset_names("small")) == 5
        assert len(dataset_names("large")) == 5
        assert len(dataset_names("extra")) == 3
        assert len(dataset_names("synthetic")) == 3
        assert len(dataset_names("case-study")) == 2

    def test_paper_table2_names_all_registered(self):
        expected = {
            "Yeast", "Netscience", "As-733", "Ca-HepTh", "As-Caida",
            "DBLP", "Cit-Patents", "Friendster", "Enwiki-2017", "UK-2002",
            "SSCA", "ER", "R-MAT",
        }
        assert expected <= set(dataset_names())

    def test_lookup_case_insensitive(self):
        assert get_spec("yeast").name == "Yeast"
        assert get_spec("YEAST").name == "Yeast"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_spec("Orkut")

    def test_spec_fields(self):
        spec = get_spec("UK-2002")
        assert isinstance(spec, DatasetSpec)
        assert spec.paper_vertices == 18_520_486
        assert spec.category == "large"


class TestSurrogates:
    def test_deterministic(self):
        assert load("Yeast", 0.3) == load("Yeast", 0.3)

    def test_scale_shrinks(self):
        small = load("DBLP", 0.05)
        big = load("DBLP", 0.1)
        assert small.num_vertices < big.num_vertices

    @pytest.mark.parametrize("name", ["Yeast", "Netscience", "SSCA", "ER", "R-MAT"])
    def test_surrogates_nonempty_and_simple(self, name):
        g = load(name, 0.2)
        assert g.num_vertices > 0
        assert g.num_edges > 0
        # simple-graph invariant
        assert g.num_edges == sum(g.degree(v) for v in g) // 2

    def test_collab_surrogate_has_dense_core(self):
        from repro.core.kcore import degeneracy

        g = load("Netscience", 1.0)
        assert degeneracy(g) >= 10  # the planted research-group clique

    def test_er_surrogate_is_flat(self):
        # ER's kmax-core should cover a large share of the graph
        from repro.core.core_app import core_app_densest

        g = load("ER", 0.2)
        result = core_app_densest(g, 2)
        assert len(result.vertices) > 0.3 * g.num_vertices

    def test_skewed_surrogate_core_is_small(self):
        from repro.core.core_app import core_app_densest

        g = load("DBLP", 0.2)
        result = core_app_densest(g, 2)
        assert len(result.vertices) < 0.2 * g.num_vertices
