"""Tests for the PDS algorithms (Section 7)."""

import itertools

import pytest

from repro.core.pds import (
    core_p_exact_densest,
    p_exact_densest,
    pattern_core_app_densest,
    pattern_inc_app_densest,
    pattern_peel_densest,
)
from repro.graph.graph import Graph, complete_graph
from repro.patterns.isomorphism import count_pattern_instances
from repro.patterns.pattern import get_pattern

from .conftest import random_graph

PATTERNS = ("2-star", "3-star", "c3-star", "diamond", "2-triangle")


def brute_force_pds(graph: Graph, pattern) -> float:
    vertices = list(graph.vertices())
    best = 0.0
    for size in range(2, len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            sub = graph.subgraph(subset)
            best = max(best, count_pattern_instances(sub, pattern) / size)
    return best


class TestPExact:
    @pytest.mark.parametrize("name", ["2-star", "diamond", "2-triangle"])
    def test_against_brute_force(self, name):
        g = random_graph(8, 16, seed=1)
        pattern = get_pattern(name)
        result = p_exact_densest(g, pattern)
        assert result.density == pytest.approx(brute_force_pds(g, pattern), abs=1e-9)

    def test_example6_style_pds(self):
        # K4 on {A,D,E,F} (3 diamonds) beats a lone square
        g = Graph(
            [("A", "D"), ("A", "E"), ("A", "F"), ("D", "E"), ("D", "F"), ("E", "F"),
             ("P", "Q"), ("Q", "R"), ("R", "S"), ("S", "P"), ("F", "P")]
        )
        result = p_exact_densest(g, get_pattern("diamond"))
        assert result.vertices == {"A", "D", "E", "F"}
        assert result.density == pytest.approx(0.75)

    def test_no_instances(self):
        g = Graph([(0, 1), (1, 2)])
        assert p_exact_densest(g, get_pattern("diamond")).density == 0.0

    def test_empty(self):
        assert p_exact_densest(Graph(), get_pattern("edge")).density == 0.0

    def test_returned_set_achieves_density(self):
        g = random_graph(12, 35, seed=2)
        pattern = get_pattern("c3-star")
        result = p_exact_densest(g, pattern)
        sub = g.subgraph(result.vertices)
        assert count_pattern_instances(sub, pattern) / sub.num_vertices == pytest.approx(
            result.density
        )


class TestCorePExact:
    @pytest.mark.parametrize("name", PATTERNS)
    def test_agrees_with_pexact(self, name):
        g = random_graph(16, 45, seed=3)
        pattern = get_pattern(name)
        assert core_p_exact_densest(g, pattern).density == pytest.approx(
            p_exact_densest(g, pattern).density, abs=1e-9
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_on_random_seeds(self, seed):
        g = random_graph(14, 40, seed=seed + 30)
        pattern = get_pattern("diamond")
        assert core_p_exact_densest(g, pattern).density == pytest.approx(
            p_exact_densest(g, pattern).density, abs=1e-9
        )

    def test_instrumentation(self):
        g = random_graph(14, 40, seed=4)
        result = core_p_exact_densest(g, get_pattern("2-star"))
        assert "network_sizes" in result.stats
        assert result.stats["instances"] > 0

    def test_grouped_networks_smaller_on_cliquey_graph(self):
        # construct+ collapses co-located instances; on K5 plus noise the
        # CorePExact networks must not exceed the PExact ones
        g = complete_graph(5)
        for i in range(5, 9):
            g.add_edge(i, i - 5)
        pattern = get_pattern("diamond")
        plain = p_exact_densest(g, pattern)
        grouped = core_p_exact_densest(g, pattern)
        assert max(grouped.stats["network_sizes"]) <= max(plain.stats["network_sizes"])


class TestPatternApproximations:
    @pytest.mark.parametrize("name", PATTERNS)
    def test_peel_guarantee(self, name):
        g = random_graph(16, 48, seed=5)
        pattern = get_pattern(name)
        optimum = p_exact_densest(g, pattern).density
        approx = pattern_peel_densest(g, pattern).density
        assert approx <= optimum + 1e-9
        if optimum > 0:
            assert approx >= optimum / pattern.size - 1e-9

    @pytest.mark.parametrize("name", PATTERNS)
    def test_inc_app_guarantee(self, name):
        g = random_graph(16, 48, seed=6)
        pattern = get_pattern(name)
        optimum = p_exact_densest(g, pattern).density
        approx = pattern_inc_app_densest(g, pattern).density
        assert approx <= optimum + 1e-9
        if optimum > 0:
            assert approx >= optimum / pattern.size - 1e-9

    @pytest.mark.parametrize("name", PATTERNS)
    def test_core_app_matches_inc_app(self, name):
        g = random_graph(16, 48, seed=7)
        pattern = get_pattern(name)
        inc = pattern_inc_app_densest(g, pattern)
        app = pattern_core_app_densest(g, pattern)
        assert app.density == pytest.approx(inc.density, abs=1e-9)
        assert app.vertices == inc.vertices

    def test_approximations_handle_no_instances(self):
        g = Graph([(0, 1), (1, 2)])
        pattern = get_pattern("diamond")
        assert pattern_peel_densest(g, pattern).density == 0.0
        assert pattern_inc_app_densest(g, pattern).density == 0.0
        assert pattern_core_app_densest(g, pattern).density == 0.0
