"""Golden suite for the :mod:`repro.analysis` invariant linter.

Three layers:

* **fixture goldens** -- each rule runs against a planted-violation
  tree under ``tests/fixtures/analysis/<family>_bad`` and must report
  exactly the lines carrying ``# expect[rule-id]`` markers (right rule,
  right line, nothing else), and a ``<family>_good`` twin that must
  come back clean.  The markers live next to the planted code, so the
  expectations cannot drift from the fixtures;
* **framework semantics** -- suppression comments (trailing /
  standalone / reason required), the ``syntax`` meta-rule, select /
  ignore resolution, and the CLI's exit codes and JSON shape;
* **the real tree** -- ``src/repro`` itself lints clean with every rule
  on, which is the invariant CI's ``lint-deep`` leg enforces, and the
  EPS literal duplicated into the kernel module matches the canonical
  one at runtime, not just under the jit rule's static comparison.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import RULES, run_paths
from repro.analysis.__main__ import main
from repro.analysis.core import (
    SUPPRESSION_RULE,
    SYNTAX_RULE,
    resolve_rules,
)

TESTS = Path(__file__).resolve().parent
REPO = TESTS.parent
FIXTURES = TESTS / "fixtures" / "analysis"
SRC_TREE = REPO / "src" / "repro"

#: fixture family -> the rule its trees exercise
FAMILIES = {
    "jit": "jit-safety",
    "parity": "tier-parity",
    "det": "determinism",
    "cov": "obs-coverage",
    "env": "env-discipline",
    "par": "par-safety",
}

_EXPECT_RE = re.compile(r"#\s*expect\[(?P<rule>[a-z-]+)\]")


def _planted(tree: Path) -> set[tuple[str, int, str]]:
    """``(path, line, rule)`` triples marked ``# expect[rule]`` in ``tree``."""
    expected = set()
    for path in sorted(tree.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = _EXPECT_RE.search(line)
            if match:
                expected.add((path.as_posix(), lineno, match.group("rule")))
    return expected


# --- fixture goldens --------------------------------------------------


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_bad_fixture_reports_exactly_the_planted_lines(family):
    rule_id = FAMILIES[family]
    tree = FIXTURES / f"{family}_bad"
    expected = _planted(tree)
    assert expected, f"{tree} plants no # expect[...] markers"
    assert {rule for _, _, rule in expected} == {rule_id}
    findings, _ = run_paths([str(tree)], select=[rule_id])
    got = {(f.path, f.line, f.rule) for f in findings}
    assert got == expected


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_good_fixture_is_clean(family):
    tree = FIXTURES / f"{family}_good"
    findings, files = run_paths([str(tree)], select=[FAMILIES[family]])
    assert findings == []
    assert files > 0


def test_jit_fixture_flags_the_planted_closure_and_dict_comprehension():
    # The two violations the issue names explicitly must be among the
    # planted set, reported with a message that says what they are.
    findings, _ = run_paths(
        [str(FIXTURES / "jit_bad")], select=["jit-safety"]
    )
    messages = [f.message for f in findings]
    assert any("closure" in m for m in messages)
    assert any("dict comprehension" in m for m in messages)
    assert any("EPS literal" in m for m in messages)


def test_det_fixture_suppression_silences_the_order_free_loop():
    # det_bad line "for v in nodes & {best}" carries a reasoned lint-ok
    # and must NOT be reported even though it is a set iteration.
    bad = FIXTURES / "det_bad" / "core" / "mod.py"
    suppressed_lines = [
        lineno
        for lineno, line in enumerate(bad.read_text().splitlines(), start=1)
        if "lint-ok[determinism]" in line
    ]
    assert suppressed_lines, "fixture lost its suppression plant"
    findings, _ = run_paths([str(bad)], select=["determinism"])
    assert not {f.line for f in findings}.intersection(suppressed_lines)


# --- framework semantics ----------------------------------------------


def _lint_snippet(tmp_path, text, select=("determinism",)):
    # determinism only fires inside solver dirs, so park the file there
    path = tmp_path / "core" / "mod.py"
    path.parent.mkdir(exist_ok=True)
    path.write_text(text)
    findings, _ = run_paths([str(path)], select=list(select))
    return findings


HAZARD = "for v in {1, 2, 3}:\n    print(v)\n"


def test_trailing_suppression_with_reason_silences(tmp_path):
    text = "for v in {1, 2, 3}:  # repro: lint-ok[determinism] -- order-free\n    print(v)\n"
    assert _lint_snippet(tmp_path, text) == []


def test_standalone_suppression_shields_the_next_line(tmp_path):
    text = "# repro: lint-ok[determinism] -- order-free\nfor v in {1, 2, 3}:\n    print(v)\n"
    assert _lint_snippet(tmp_path, text) == []


def test_suppression_without_reason_is_itself_a_finding(tmp_path):
    text = "for v in {1, 2, 3}:  # repro: lint-ok[determinism]\n    print(v)\n"
    findings = _lint_snippet(tmp_path, text)
    rules = sorted(f.rule for f in findings)
    # the hazard is NOT silenced and the bad comment is reported
    assert rules == sorted(["determinism", SUPPRESSION_RULE])


def test_suppression_naming_no_rule_is_a_finding(tmp_path):
    text = "x = 1  # repro: lint-ok[] -- because\n"
    findings = _lint_snippet(tmp_path, text)
    assert [f.rule for f in findings] == [SUPPRESSION_RULE]


def test_suppression_for_a_different_rule_does_not_silence(tmp_path):
    text = "for v in {1, 2, 3}:  # repro: lint-ok[jit-safety] -- wrong rule\n    print(v)\n"
    findings = _lint_snippet(tmp_path, text)
    assert [f.rule for f in findings] == ["determinism"]


def test_unparsable_file_reports_the_syntax_meta_rule(tmp_path):
    findings = _lint_snippet(tmp_path, "def broken(:\n")
    assert [f.rule for f in findings] == [SYNTAX_RULE]


def test_ignore_drops_a_rule(tmp_path):
    path = tmp_path / "core" / "mod.py"
    path.parent.mkdir(exist_ok=True)
    path.write_text(HAZARD)
    findings, _ = run_paths([str(path)], ignore=["determinism"])
    assert findings == []


def test_resolve_rules_rejects_unknown_ids():
    with pytest.raises(ValueError, match="no-such-rule"):
        resolve_rules(select=["no-such-rule"])
    with pytest.raises(ValueError, match="no-such-rule"):
        resolve_rules(ignore=["no-such-rule"])


def test_registry_has_the_six_project_rules():
    assert set(RULES) == {
        "jit-safety",
        "tier-parity",
        "determinism",
        "obs-coverage",
        "env-discipline",
        "par-safety",
    }


def test_par_fixture_flags_lambda_nested_global_and_env():
    findings, _ = run_paths(
        [str(FIXTURES / "par_bad")], select=["par-safety"]
    )
    messages = [f.message for f in findings]
    assert any("lambda" in m for m in messages)
    assert any("nested function" in m for m in messages)
    assert any("WORKER_INIT_FUNCS" in m for m in messages)
    assert any("repro.env registry" in m for m in messages)


# --- CLI --------------------------------------------------------------


def test_cli_findings_exit_one_and_json_shape(capsys):
    code = main([str(FIXTURES / "env_bad"), "--select", "env-discipline",
                 "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules"] == ["env-discipline"]
    assert payload["files"] == 1
    assert len(payload["findings"]) == 4
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "col", "rule", "message"}
    assert first["rule"] == "env-discipline"


def test_cli_clean_exit_zero(capsys):
    code = main([str(FIXTURES / "env_good"), "--select", "env-discipline"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_unknown_rule_exit_two(capsys):
    assert main([str(FIXTURES), "--select", "bogus"]) == 2
    assert "bogus" in capsys.readouterr().err


def test_cli_missing_path_exit_two(capsys):
    assert main([str(FIXTURES / "does-not-exist")]) == 2
    assert "does-not-exist" in capsys.readouterr().err


def test_cli_list_rules_names_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in list(RULES) + [SUPPRESSION_RULE, SYNTAX_RULE]:
        assert rule_id in out


def test_cli_env_table_prints_the_registry(capsys):
    assert main(["--env-table"]) == 0
    out = capsys.readouterr().out
    assert "REPRO_TRACE" in out and "| Variable |" in out


def test_cli_select_env_default(tmp_path, monkeypatch, capsys):
    path = tmp_path / "core" / "mod.py"
    path.parent.mkdir(exist_ok=True)
    path.write_text(HAZARD)
    monkeypatch.setenv("REPRO_LINT_IGNORE", "determinism")
    assert main([str(path)]) == 0
    monkeypatch.delenv("REPRO_LINT_IGNORE")
    assert main([str(path)]) == 1


# --- the real tree ----------------------------------------------------


def test_repo_tree_lints_clean_with_all_rules():
    findings, files = run_paths([str(SRC_TREE)])
    assert findings == [], "\n".join(f.render() for f in findings)
    assert files > 50  # the whole package was examined, not a sliver


def test_cli_self_run_from_repo_root():
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src/repro"],
        cwd=REPO, env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_kernel_eps_matches_network_eps_at_runtime():
    numpy = pytest.importorskip("numpy")  # noqa: F841 (kernels needs it)
    from repro.accel import kernels
    from repro.flow import network

    assert kernels.EPS == network.EPS
