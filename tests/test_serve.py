"""Property suite for the serving layer (:mod:`repro.serve`).

The load-bearing contract: **snapshot answers are bit-identical to the
cold solvers, at zero flow solves**.  A 50-graph matrix of
multi-component random graphs pins it:

* :meth:`Snapshot.densest_subgraph` (and the ``api.densest_subgraph``
  ``snapshot=`` fast path) equals the cold ``method="exact"`` run's
  vertex set and density exactly (``==`` on floats, not approx);
* warm queries never touch a flow network: the ``flow.solves`` counter
  stays at zero across densest / α / profile / top-k lookups;
* ``query_density(α)`` at segment midpoints equals a cold parametric
  ``net.solve(α)`` per component (the right-continuity convention);
* a snapshot reloaded from the SQLite store -- in-process or from a
  fresh interpreter -- serves the same bits it was saved with, and an
  EPS-mismatched row is evicted, not served;
* both LRU tiers (store byte cap, memory entry cap) evict and count;
* an expired build deadline degrades the batch through the api's
  fallback machinery instead of failing;
* everything holds with numpy forced off (subprocess leg).
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro import api, guard, obs, par, serve
from repro.cliques.index import CliqueIndex
from repro.flow.builders import build_cds_parametric, build_eds_parametric
from repro.graph.graph import Graph
from repro.serve import ArtifactCache, Snapshot, SnapshotStore
from repro.serve.snapshot import bits_to_float, float_bits

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    par.shutdown()


def _graph(seed: int) -> Graph:
    """A multi-component random graph: 2-4 blobs of 8-16 vertices."""
    rng = random.Random(seed)
    comps = 2 + seed % 3
    p = 0.25 + 0.05 * (seed % 3)
    g = Graph()
    base = 0
    for _ in range(comps):
        n = 8 + 2 * rng.randrange(5)
        verts = list(range(base, base + n))
        for v in verts:
            g.add_vertex(v)
        for i, u in enumerate(verts):
            for v in verts[i + 1:]:
                if rng.random() < p:
                    g.add_edge(u, v)
        base += n
    return g


def _h(seed: int) -> int:
    return (2, 3, 4)[seed % 3]


def _midpoints(snap: Snapshot) -> list[float]:
    """Probe α values strictly inside each family segment.

    Exact breakpoint abscissae are where a cold solve and a stored
    family could legitimately disagree by one ulp of the intersection
    arithmetic; midpoints (plus 0.0 and one past the last breakpoint)
    probe every segment's interior, where the cut is unambiguous.
    """
    alphas = sorted({a for art in snap.components for a in art.fam_alphas})
    probes = [0.0]
    for a, b in zip(alphas, alphas[1:]):
        probes.append((a + b) / 2.0)
    probes.append((alphas[-1] if alphas else 0.0) + 1.0)
    return probes


def _cold_cut(graph: Graph, h: int, alpha: float) -> tuple[set, int]:
    """A cold per-component parametric solve at ``alpha`` (no snapshot)."""
    index = CliqueIndex(graph, h) if h >= 3 else None
    vertices: set = set()
    count = 0
    for cc in graph.connected_components():
        sub = graph.subgraph(cc)
        if h == 2:
            if sub.num_edges == 0:
                continue
            net = build_eds_parametric(sub)
            cut = net.solve(alpha)
            if cut:
                vertices |= cut
                count += sub.subgraph(cut).num_edges
        else:
            subidx = index.subindex(sub)
            if subidx.m == 0:
                continue
            net = build_cds_parametric(sub, h, index=subidx)
            cut = net.solve(alpha)
            if cut:
                vertices |= cut
                count += subidx.count_within(cut)
    return vertices, count


# --- the 50-graph identity matrix -------------------------------------


@pytest.mark.parametrize("seed", range(50))
def test_snapshot_densest_is_bit_identical_to_cold_exact(seed):
    g, h = _graph(seed), _h(seed)
    cold = api.densest_subgraph(g, h, method="exact")
    snap = Snapshot(g, h)
    warm = snap.densest_subgraph()
    assert warm.vertices == cold.vertices, (seed, h)
    assert warm.density == cold.density, (seed, h)
    assert warm.stats["served"] is True
    via_api = api.densest_subgraph(g, h, method="exact", snapshot=snap)
    assert via_api.vertices == cold.vertices, (seed, h)
    assert via_api.density == cold.density, (seed, h)


@pytest.mark.parametrize("seed", range(0, 50, 7))
def test_query_density_matches_cold_parametric_solves(seed):
    g, h = _graph(seed), _h(seed)
    snap = Snapshot(g, h)
    for alpha in _midpoints(snap):
        warm = snap.query_density(alpha)
        cold_vertices, cold_count = _cold_cut(g, h, alpha)
        assert warm.vertices == cold_vertices, (seed, h, alpha)
        assert warm.count == cold_count, (seed, h, alpha)
        if cold_vertices:
            assert warm.density == cold_count / len(cold_vertices)
        else:
            assert warm.density == 0.0


@pytest.mark.parametrize("seed", (2, 9, 16))
def test_query_batch_parallel_is_identical_to_serial(seed):
    g, h = _graph(seed), _h(seed)
    snap = Snapshot(g, h)
    alphas = _midpoints(snap)
    serial = [snap.query_density(a) for a in alphas]
    for workers in (1, 2):
        batch = snap.query_batch(alphas, workers=workers)
        assert len(batch) == len(serial)
        for got, want in zip(batch, serial):
            assert got.vertices == want.vertices, (seed, h, workers, got.alpha)
            assert got.density == want.density, (seed, h, workers, got.alpha)
            assert got.count == want.count, (seed, h, workers, got.alpha)


# --- the zero-flow-solve guarantee ------------------------------------


@pytest.mark.parametrize("seed", (1, 5, 12))
def test_warm_queries_perform_zero_flow_solves(seed):
    g, h = _graph(seed), _h(seed)
    snap = Snapshot(g, h)  # the only phase allowed to solve
    obs.enable(fresh=True)
    try:
        for _ in range(3):
            snap.densest_subgraph()
        api.densest_subgraph(g, h, snapshot=snap)  # the api fast path too
        for alpha in _midpoints(snap):
            snap.query_density(alpha)
        snap.density_profile()
        snap.top_k(5)
        counters = dict(obs.get_collector().counters)
    finally:
        obs.disable()
    assert counters.get("flow.solves", 0) == 0, (seed, h)


def test_profile_and_top_k_expose_the_piecewise_structure():
    g, h = _graph(4), _h(4)
    snap = Snapshot(g, h)
    densest = snap.densest_subgraph()
    profile = snap.density_profile()
    assert profile, "family always has the α=0 entry"
    assert profile[0]["alpha"] == 0.0
    assert profile[-1]["size"] == 0  # past dmax/h the cut is empty forever
    # right-continuity: the profile row at α answers exactly query_density(α)
    for row in profile:
        answer = snap.query_density(row["alpha"])
        assert answer.size == row["size"] and answer.count == row["count"]
    ranked = snap.top_k(10)
    assert ranked, "a non-trivial graph stores at least one dense cut"
    assert ranked[0].density == densest.density
    densities = [c.density for c in ranked]
    assert densities == sorted(densities, reverse=True)
    assert snap.top_k(0) == []


def test_degenerate_graphs_serve_like_the_cold_path():
    # no Ψ instance anywhere: degenerate optimum, whole set at 0.0
    path = Graph()
    for v in range(5):
        path.add_vertex(v)
    for v in range(4):
        path.add_edge(v, v + 1)
    cold = api.densest_subgraph(path, 3, method="exact")
    snap = Snapshot(path, 3)
    warm = snap.densest_subgraph()
    assert warm.vertices == cold.vertices == set(range(5))
    assert warm.density == cold.density == 0.0
    assert snap.query_density(0.0).vertices == set()
    assert snap.top_k(3) == []


def test_query_density_rejects_bad_alphas():
    snap = Snapshot(_graph(0), 2)
    for bad in (-1.0, float("nan"), float("inf")):
        with pytest.raises(ValueError):
            snap.query_density(bad)
    with pytest.raises(ValueError):
        snap.query_batch([0.0, -2.0])


def test_float_bits_roundtrip_preserves_order_and_value():
    values = [0.0, 0.5, 1.0, 4.0 / 3.0, 17.25, 1e-9, 1e9]
    assert [bits_to_float(float_bits(v)) for v in values] == values
    bits = [float_bits(v) for v in sorted(values)]
    assert bits == sorted(bits)  # non-negative doubles order as int64 bits


# --- the api snapshot= gate -------------------------------------------


def test_api_snapshot_gate_validates_requests():
    g = _graph(3)
    snap = Snapshot(g, 3)
    with pytest.raises(ValueError, match="h-clique"):
        api.densest_subgraph(g, "diamond", snapshot=snap)
    with pytest.raises(ValueError, match="h=3"):
        api.densest_subgraph(g, 2, snapshot=snap)
    with pytest.raises(ValueError, match="exact methods"):
        api.densest_subgraph(g, 3, method="peel", snapshot=snap)
    other = _graph(30)
    with pytest.raises(ValueError, match="content hash"):
        api.densest_subgraph(other, 3, snapshot=snap)
    # strict=False is the documented escape hatch around the key check:
    # the snapshot serves its own stored answer regardless of the graph
    lax = api.densest_subgraph(other, 3, strict=False, snapshot=snap)
    assert lax.vertices == snap.densest_subgraph().vertices


# --- persistence: kill and reload -------------------------------------


def test_store_roundtrip_reproduces_every_query(tmp_path):
    g, h = _graph(7), _h(7)
    snap = Snapshot(g, h)
    store = SnapshotStore(tmp_path)
    assert store.save(snap)
    store.close()
    # a fresh connection on the same directory: the in-process "restart"
    reopened = SnapshotStore(tmp_path)
    loaded = reopened.load(snap.key)
    assert loaded is not None and loaded.loaded
    assert loaded.key == snap.key and loaded.h == h
    assert loaded.labels == snap.labels
    want = snap.densest_subgraph()
    got = loaded.densest_subgraph()
    assert got.vertices == want.vertices
    assert got.density == want.density
    for alpha in _midpoints(snap):
        a, b = snap.query_density(alpha), loaded.query_density(alpha)
        assert a.vertices == b.vertices and a.density == b.density
        assert a.count == b.count
    assert reopened.load("no-such-key") is None
    reopened.close()


def test_store_survives_a_real_process_restart(tmp_path):
    g, h = _graph(11), _h(11)
    snap = Snapshot(g, h)
    store = SnapshotStore(tmp_path)
    assert store.save(snap)
    store.close()
    want = snap.densest_subgraph()
    script = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.serve import SnapshotStore\n"
        f"store = SnapshotStore({str(tmp_path)!r})\n"
        f"snap = store.load({snap.key!r})\n"
        "assert snap is not None and snap.loaded\n"
        "res = snap.densest_subgraph()\n"
        "assert res.stats['flow_solves'] == 0\n"
        "print(sorted(res.vertices))\n"
        "print(res.density.hex())\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], cwd=REPO,
        env=dict(os.environ, PYTHONPATH="src"),
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    lines = proc.stdout.strip().splitlines()
    assert lines[0] == str(sorted(want.vertices))
    assert lines[1] == want.density.hex()  # bit-identical across the restart


def test_store_evicts_rows_built_under_a_different_eps(tmp_path):
    snap = Snapshot(_graph(1), 2)
    store = SnapshotStore(tmp_path)
    assert store.save(snap)
    # a flow-layer retune: the persisted family no longer matches cold
    store._conn.execute("UPDATE snapshots SET eps = eps * 2 + 1e-3")
    store._conn.commit()
    assert store.load(snap.key) is None
    assert store.keys() == []  # deleted, not served
    store.close()


def test_store_lru_respects_the_byte_cap(tmp_path):
    store = SnapshotStore(tmp_path, cap_bytes=1)
    first, second = Snapshot(_graph(0), 2), Snapshot(_graph(10), 2)
    assert store.save(first)
    assert store.save(second)
    # cap of one byte: only the newest row may survive each save
    assert store.keys() == [second.key]
    assert store.evictions >= 1
    assert store.stats()["snapshots"] == 1
    store.close()


# --- the cache tiers and their telemetry ------------------------------


def test_cache_tiers_hit_load_miss_and_the_obs_rollup(tmp_path):
    g, h = _graph(6), 2
    obs.enable(fresh=True)
    try:
        store = SnapshotStore(tmp_path)
        cache = ArtifactCache(store=store)
        built = cache.get(g, h)      # miss: full precompute + persist
        again = cache.get(g, h)      # memory hit: same object
        assert again is built
        cache.clear()
        loaded = cache.get(g, h)     # store load: reconstruct, no solve
        assert loaded.loaded and loaded.key == built.key
        rollup = obs.summary()["serve"]
        stats = cache.stats()
        store.close()
    finally:
        obs.disable()
    assert rollup["misses"] == 1
    assert rollup["hits"] == 1
    assert rollup["loads"] == 1
    assert rollup["precomputes"] == 1
    assert rollup["hit_ratio"] == pytest.approx(2.0 / 3.0)
    assert stats["hits"] == 1 and stats["misses"] == 1 and stats["loads"] == 1


def test_memory_lru_evicts_by_entry_count():
    cache = ArtifactCache(max_entries=2)
    graphs = [_graph(s) for s in (0, 10, 20)]
    for g in graphs:
        cache.get(g, 2)
    assert cache.evictions == 1
    assert cache.stats()["entries"] == 2
    # the evicted first graph misses again (no store behind this cache)
    cache.get(graphs[0], 2)
    assert cache.misses == 4
    with pytest.raises(ValueError):
        ArtifactCache(max_entries=0)


def test_default_cache_reads_the_env_knobs(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_SNAPSHOT_CAP", "")
    serve.reset_cache()
    try:
        g = _graph(8)
        first = serve.get_snapshot(g, 2)
        assert serve.get_snapshot(g, 2) is first  # memory hit
        serve.reset_cache()                       # process "restart"
        reloaded = serve.get_snapshot(g, 2)
        assert reloaded.loaded                    # came back from SQLite
        assert reloaded.densest_subgraph().vertices == first.densest_subgraph().vertices
    finally:
        serve.reset_cache()
    assert (tmp_path / "snapshots.sqlite").exists()


# --- the batch entry point and its degradation ------------------------


def test_batch_densest_answers_mixed_requests_off_one_snapshot():
    g, h = _graph(14), _h(14)
    cache = ArtifactCache()
    snap = serve.get_snapshot(g, h, cache=cache)
    want = snap.densest_subgraph()
    alphas = _midpoints(snap)[:2]
    answers = serve.batch_densest(g, h, [None, alphas[0], None, alphas[1]], cache=cache)
    assert len(answers) == 4
    assert answers[0].vertices == want.vertices == answers[2].vertices
    assert answers[0].density == want.density
    for req, got in ((alphas[0], answers[1]), (alphas[1], answers[3])):
        direct = snap.query_density(req)
        assert got.vertices == direct.vertices and got.count == direct.count
    assert cache.misses == 1  # one precompute served the whole batch


def test_batch_densest_degrades_when_the_build_deadline_expires():
    g = _graph(7)
    answers = serve.batch_densest(
        g, 2, [None, 0.1], deadline_s=0.0, cache=ArtifactCache()
    )
    densest, alpha_answer = answers
    assert densest.stats["degraded"] is True
    assert densest.stats["degraded_at"] == "serve.precompute"
    assert densest.vertices  # the fallback still produced an answer
    assert alpha_answer.stats["degraded"] is True
    assert alpha_answer.stats["count_unavailable"] is True
    if alpha_answer.vertices:
        assert alpha_answer.density > 0.1


# --- the numpy-off leg ------------------------------------------------


def test_snapshots_hold_without_numpy(tmp_path):
    """Pure-python tier: same bits served, stored, and reloaded."""
    script = (
        "import sys; sys.path.insert(0, 'tests'); sys.path.insert(0, 'src')\n"
        "from test_serve import _graph, _h\n"
        "from repro import api\n"
        "from repro.serve import ArtifactCache, Snapshot, SnapshotStore\n"
        f"store = SnapshotStore({str(tmp_path)!r})\n"
        "cache = ArtifactCache(store=store)\n"
        "for seed in (1, 8):\n"
        "    g, h = _graph(seed), _h(seed)\n"
        "    cold = api.densest_subgraph(g, h, method='exact')\n"
        "    snap = cache.get(g, h)\n"
        "    warm = snap.densest_subgraph()\n"
        "    assert warm.vertices == cold.vertices, seed\n"
        "    assert warm.density == cold.density, seed\n"
        "    cache.clear()\n"
        "    loaded = cache.get(g, h)\n"
        "    assert loaded.loaded, seed\n"
        "    assert loaded.densest_subgraph().vertices == cold.vertices, seed\n"
        "    batch = snap.query_batch([0.0, 0.25], workers=2)\n"
        "    serial = [snap.query_density(a) for a in (0.0, 0.25)]\n"
        "    assert [a.vertices for a in batch] == [a.vertices for a in serial]\n"
        "from repro import par; par.shutdown()\n"
        "print('identical')\n"
    )
    env = dict(os.environ, REPRO_NO_NUMPY="1", PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-c", script], cwd=REPO, env=env,
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "identical" in proc.stdout


# --- budgets -----------------------------------------------------------


def test_warm_queries_run_under_an_expired_solve_budget():
    """Lookups tick rounds, never solves: a zero-solve budget that would
    kill any cold path leaves warm serving untouched."""
    g, h = _graph(5), 2
    snap = Snapshot(g, h)
    want = snap.densest_subgraph()
    with guard.Budget(max_solves=0):
        got = snap.densest_subgraph()
        answer = snap.query_density(0.0)
    assert got.vertices == want.vertices
    assert answer.count >= 0
