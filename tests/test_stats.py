"""Tests for graph statistics (Appendix-A table columns)."""

import math

import networkx as nx
import pytest

from repro.graph.graph import Graph, complete_graph, cycle_graph, path_graph
from repro.graph.stats import (
    GraphStats,
    degree_histogram,
    diameter,
    eccentricity,
    power_law_alpha,
)

from .conftest import random_graph, to_networkx


class TestEccentricityAndDiameter:
    def test_path_diameter(self):
        assert diameter(path_graph(10)) == 9

    def test_cycle_diameter(self):
        assert diameter(cycle_graph(8)) == 4

    def test_complete_diameter(self):
        assert diameter(complete_graph(5)) == 1

    def test_empty_and_singleton(self):
        assert diameter(Graph()) == 0
        assert diameter(Graph(vertices=[1])) == 0

    def test_diameter_uses_largest_component(self):
        g = Graph([(0, 1), (1, 2), (2, 3), (10, 11)])
        assert diameter(g) == 3

    def test_eccentricity(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2

    def test_exact_matches_networkx(self):
        g = random_graph(40, 60, seed=1)
        comps = g.connected_components()
        largest = g.subgraph(max(comps, key=len))
        assert diameter(g) == nx.diameter(to_networkx(largest))

    def test_heuristic_is_lower_bound(self):
        g = random_graph(150, 220, seed=3)
        exact = diameter(g, exact_threshold=10_000)
        heuristic = diameter(g, exact_threshold=1)
        assert heuristic <= exact
        assert heuristic >= 1


class TestPowerLawAlpha:
    def test_known_mle(self):
        # Three vertices of degree 2: alpha = 1 + 3 / (3 * ln(2/0.5)) = 1 + 1/ln 4
        g = cycle_graph(3)
        expected = 1.0 + 1.0 / math.log(2.0 / 0.5)
        assert power_law_alpha(g) == pytest.approx(expected)

    def test_nan_on_tiny_graph(self):
        assert math.isnan(power_law_alpha(Graph(vertices=[0])))

    def test_skewed_graph_has_heavier_tail_than_regular(self):
        from repro.graph.generators import chung_lu, erdos_renyi_gnm, power_law_weights

        skewed = chung_lu(power_law_weights(600, 2.2, 6.0), seed=1)
        regular = erdos_renyi_gnm(600, 1800, seed=1)
        # alpha itself is a fit parameter; the robust discriminator is the
        # hub: a power-law graph's max degree dwarfs an ER graph's
        assert skewed.max_degree() > 2 * regular.max_degree()
        assert power_law_alpha(skewed, dmin=2) > 1.0


class TestHistogramsAndDataclass:
    def test_degree_histogram(self):
        g = Graph([(0, 1), (1, 2)])
        assert degree_histogram(g) == {1: 2, 2: 1}

    def test_graph_stats_of(self, disconnected_graph):
        stats = GraphStats.of(disconnected_graph)
        assert stats.num_vertices == 7
        assert stats.num_edges == 5
        assert stats.num_components == 3
        # two size-3 components tie for "largest"; either diameter is valid
        assert stats.diameter in (1, 2)
