"""Tests for the size-constrained extensions."""

import itertools

import pytest

from repro.extensions.size_constrained import densest_at_least, densest_at_most
from repro.graph.graph import Graph, complete_graph

from .conftest import random_graph


def brute_force_at_least(graph, k, h=2) -> float:
    from repro.cliques.enumeration import count_cliques

    vertices = list(graph.vertices())
    best = 0.0
    for size in range(k, len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            sub = graph.subgraph(subset)
            best = max(best, count_cliques(sub, h) / size)
    return best


class TestDensestAtLeast:
    def test_respects_minimum_size(self):
        g = random_graph(20, 60, seed=1)
        result = densest_at_least(g, 10)
        assert len(result.vertices) >= 10

    def test_unconstrained_when_k_is_one(self):
        from repro.core.peel import peel_densest

        g = random_graph(20, 60, seed=2)
        assert densest_at_least(g, 1).density == pytest.approx(peel_densest(g, 2).density)

    def test_one_third_guarantee(self):
        # Andersen-Chellapilla: greedy is a 1/3-approximation for DalkS
        for seed in range(3):
            g = random_graph(10, 25, seed=seed)
            k = 5
            optimum = brute_force_at_least(g, k)
            assert densest_at_least(g, k).density >= optimum / 3 - 1e-9

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            densest_at_least(Graph([(0, 1)]), 5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            densest_at_least(Graph([(0, 1)]), 0)


def _reference_at_least(graph, k, h=2):
    """O(n)-min-scan reference peel with the same (degree, rank) tie-break."""
    from repro.cliques.enumeration import CliqueIndex

    n = graph.num_vertices
    index = CliqueIndex(graph, h)
    degree = index.degrees()
    rank = {v: i for i, v in enumerate(graph.vertices())}
    alive = set(graph.vertices())
    best_density = index.num_alive / n if n else 0.0
    best_vertices = set(alive)
    while len(alive) > k:
        v = min(alive, key=lambda u: (degree[u], rank[u]))
        alive.discard(v)
        for killed in index.peel_vertex(v):
            for u in killed:
                if u in alive:
                    degree[u] -= 1
        density = index.num_alive / len(alive)
        if density > best_density:
            best_density = density
            best_vertices = set(alive)
    return best_vertices, best_density


def _reference_at_most(graph, k, h=2):
    """O(n)-min-scan reference peel with the same (degree, rank) tie-break."""
    from repro.cliques.enumeration import CliqueIndex

    index = CliqueIndex(graph, h)
    degree = index.degrees()
    rank = {v: i for i, v in enumerate(graph.vertices())}
    alive = set(graph.vertices())
    best_density = -1.0
    best_vertices: set = set()
    if len(alive) <= k and alive:
        best_density = index.num_alive / len(alive)
        best_vertices = set(alive)
    while len(alive) > 1:
        v = min(alive, key=lambda u: (degree[u], rank[u]))
        alive.discard(v)
        for killed in index.peel_vertex(v):
            for u in killed:
                if u in alive:
                    degree[u] -= 1
        if alive and len(alive) <= k:
            density = index.num_alive / len(alive)
            if density > best_density:
                best_density = density
                best_vertices = set(alive)
    return best_vertices, max(best_density, 0.0)


class TestSharedPeelMatchesReference:
    """The shared min-(degree, rank) peel must reproduce the O(n²) originals."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("h", [2, 3])
    def test_at_least(self, seed, h):
        g = random_graph(18, 50, seed=seed)
        for k in (1, 5, 12):
            result = densest_at_least(g, k, h)
            ref_vertices, ref_density = _reference_at_least(g, k, h)
            assert result.density == ref_density
            assert result.vertices == ref_vertices
            assert len(result.vertices) >= k
            sub = g.subgraph(result.vertices)
            from repro.cliques.enumeration import count_cliques

            assert count_cliques(sub, h) / sub.num_vertices == result.density

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("h", [2, 3])
    def test_at_most(self, seed, h):
        g = random_graph(18, 50, seed=seed + 100)
        for k in (3, 8, 30):
            result = densest_at_most(g, k, h)
            ref_vertices, ref_density = _reference_at_most(g, k, h)
            assert result.density == ref_density
            assert result.vertices == ref_vertices
            if result.vertices:
                assert len(result.vertices) <= k


class TestDensestAtMost:
    def test_respects_maximum_size(self):
        g = random_graph(25, 80, seed=3)
        result = densest_at_most(g, 6)
        assert 0 < len(result.vertices) <= 6

    def test_finds_clique_when_it_fits(self):
        g = complete_graph(5)
        for i in range(5, 20):
            g.add_edge(i, i - 5)
        result = densest_at_most(g, 5)
        assert result.vertices == set(range(5))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            densest_at_most(Graph([(0, 1)]), 0)

    def test_whole_graph_when_k_exceeds_n(self):
        g = complete_graph(4)
        result = densest_at_most(g, 10)
        assert result.density == pytest.approx(1.5)
