"""Tests for the size-constrained extensions."""

import itertools

import pytest

from repro.extensions.size_constrained import densest_at_least, densest_at_most
from repro.graph.graph import Graph, complete_graph

from .conftest import random_graph


def brute_force_at_least(graph, k, h=2) -> float:
    from repro.cliques.enumeration import count_cliques

    vertices = list(graph.vertices())
    best = 0.0
    for size in range(k, len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            sub = graph.subgraph(subset)
            best = max(best, count_cliques(sub, h) / size)
    return best


class TestDensestAtLeast:
    def test_respects_minimum_size(self):
        g = random_graph(20, 60, seed=1)
        result = densest_at_least(g, 10)
        assert len(result.vertices) >= 10

    def test_unconstrained_when_k_is_one(self):
        from repro.core.peel import peel_densest

        g = random_graph(20, 60, seed=2)
        assert densest_at_least(g, 1).density == pytest.approx(peel_densest(g, 2).density)

    def test_one_third_guarantee(self):
        # Andersen-Chellapilla: greedy is a 1/3-approximation for DalkS
        for seed in range(3):
            g = random_graph(10, 25, seed=seed)
            k = 5
            optimum = brute_force_at_least(g, k)
            assert densest_at_least(g, k).density >= optimum / 3 - 1e-9

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            densest_at_least(Graph([(0, 1)]), 5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            densest_at_least(Graph([(0, 1)]), 0)


class TestDensestAtMost:
    def test_respects_maximum_size(self):
        g = random_graph(25, 80, seed=3)
        result = densest_at_most(g, 6)
        assert 0 < len(result.vertices) <= 6

    def test_finds_clique_when_it_fits(self):
        g = complete_graph(5)
        for i in range(5, 20):
            g.add_edge(i, i - 5)
        result = densest_at_most(g, 5)
        assert result.vertices == set(range(5))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            densest_at_most(Graph([(0, 1)]), 0)

    def test_whole_graph_when_k_exceeds_n(self):
        g = complete_graph(4)
        result = densest_at_most(g, 10)
        assert result.density == pytest.approx(1.5)
