"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.graph.graph import Graph


def random_graph(n: int, m: int, seed: int) -> Graph:
    """A seeded uniform random simple graph (tests-only helper)."""
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    max_edges = n * (n - 1) // 2
    target = min(m, max_edges)
    while g.num_edges < target:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    return g


def to_networkx(graph: Graph) -> nx.Graph:
    """Convert to networkx for oracle comparisons."""
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


@pytest.fixture
def triangle_graph() -> Graph:
    return Graph([(0, 1), (1, 2), (2, 0)])


@pytest.fixture
def paper_figure1_graph() -> Graph:
    """A graph in the spirit of Figure 1: a K4 blob plus a sparse tail."""
    return Graph(
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (6, 4)]
    )


@pytest.fixture
def paper_figure3_graph() -> Graph:
    """The 8-vertex running example of Figure 3 (reconstructed shape).

    A K4 {A,B,C,D}, a triangle {E,F,G} hanging off D, and a pendant H --
    enough structure to exercise distinct k-cores and (k, Ψ)-cores.
    """
    return Graph(
        [
            ("A", "B"), ("A", "C"), ("A", "D"),
            ("B", "C"), ("B", "D"), ("C", "D"),
            ("D", "E"), ("E", "F"), ("E", "G"), ("F", "G"),
            ("G", "H"),
        ]
    )


@pytest.fixture
def disconnected_graph() -> Graph:
    """Two components of different densities plus an isolated vertex."""
    g = Graph([(0, 1), (1, 2), (2, 0), (10, 11), (11, 12)])
    g.add_vertex(99)
    return g
