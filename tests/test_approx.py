"""Tests for the approximation algorithms: PeelApp, IncApp, CoreApp."""

import pytest

from repro.cliques.enumeration import CliqueIndex, count_cliques
from repro.core.core_app import core_app_densest
from repro.core.core_exact import core_exact_densest
from repro.core.inc_app import inc_app_densest
from repro.core.peel import peel_densest
from repro.graph.graph import Graph, complete_graph

from .conftest import random_graph


class TestPeelApp:
    def test_exact_on_clique(self):
        result = peel_densest(complete_graph(6), 2)
        assert result.density == pytest.approx(2.5)

    @pytest.mark.parametrize("h", [2, 3])
    def test_approximation_guarantee(self, h):
        # Lemma: peel density >= rho_opt / h
        for seed in range(5):
            g = random_graph(22, 70, seed=seed)
            optimum = core_exact_densest(g, h).density
            approx = peel_densest(g, h).density
            assert approx <= optimum + 1e-9
            assert approx >= optimum / h - 1e-9

    def test_charikar_half_guarantee_often_tight(self):
        # for h=2 the classic bound is 1/2; actual ratios are much better
        g = random_graph(30, 120, seed=7)
        optimum = core_exact_densest(g, 2).density
        assert peel_densest(g, 2).density >= optimum / 2 - 1e-9

    def test_density_matches_returned_vertices(self):
        g = random_graph(20, 55, seed=2)
        result = peel_densest(g, 3)
        sub = g.subgraph(result.vertices)
        assert count_cliques(sub, 3) / sub.num_vertices == pytest.approx(result.density)

    def test_no_instances(self):
        result = peel_densest(Graph([(0, 1), (1, 2)]), 3)
        assert result.density == 0.0

    def test_empty(self):
        assert peel_densest(Graph(), 2).density == 0.0

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            peel_densest(Graph(), 1)

    def test_accepts_prebuilt_index(self):
        g = random_graph(15, 45, seed=3)
        direct = peel_densest(g, 3)
        via_index = peel_densest(g, 3, index=CliqueIndex(g, 3))
        assert direct.density == pytest.approx(via_index.density)


class TestIncApp:
    def test_returns_kmax_core(self, paper_figure3_graph):
        result = inc_app_densest(paper_figure3_graph, 3)
        assert result.vertices == {"A", "B", "C", "D"}
        assert result.stats["kmax"] == 3

    @pytest.mark.parametrize("h", [2, 3])
    def test_lemma8_guarantee(self, h):
        for seed in range(5):
            g = random_graph(22, 70, seed=seed + 10)
            optimum = core_exact_densest(g, h).density
            approx = inc_app_densest(g, h).density
            assert approx <= optimum + 1e-9
            if optimum > 0:
                assert approx >= optimum / h - 1e-9

    def test_density_lower_bound_from_theorem1(self):
        g = random_graph(25, 85, seed=4)
        result = inc_app_densest(g, 3)
        kmax = result.stats["kmax"]
        assert result.density >= kmax / 3 - 1e-9

    def test_no_instances(self):
        result = inc_app_densest(Graph([(0, 1)]), 3)
        assert result.density == 0.0


class TestCoreApp:
    @pytest.mark.parametrize("h", [2, 3, 4])
    def test_same_subgraph_as_inc_app(self, h):
        for seed in range(5):
            g = random_graph(26, 85, seed=seed + 20)
            inc = inc_app_densest(g, h)
            app = core_app_densest(g, h)
            assert app.vertices == inc.vertices, f"h={h} seed={seed}"
            assert app.density == pytest.approx(inc.density)

    def test_small_initial_prefix_still_correct(self):
        g = random_graph(40, 150, seed=5)
        small = core_app_densest(g, 3, initial_size=2)
        full = inc_app_densest(g, 3)
        assert small.vertices == full.vertices

    def test_rounds_recorded(self):
        g = random_graph(40, 120, seed=6)
        result = core_app_densest(g, 3, initial_size=4)
        assert result.stats["rounds"] >= 1
        assert result.stats["vertices_touched"] <= g.num_vertices

    def test_on_figure3(self, paper_figure3_graph):
        result = core_app_densest(paper_figure3_graph, 3)
        assert result.vertices == {"A", "B", "C", "D"}

    def test_no_instances(self):
        result = core_app_densest(Graph([(0, 1)]), 4)
        assert result.density == 0.0

    def test_empty(self):
        assert core_app_densest(Graph(), 2).density == 0.0

    def test_planted_clique_found(self):
        from repro.graph.generators import erdos_renyi_gnm, planted_clique

        base = erdos_renyi_gnm(150, 300, seed=1)
        g, members = planted_clique(base, 12, seed=2)
        result = core_app_densest(g, 3)
        assert set(members) <= result.vertices
