"""Tests for the artefact report aggregator."""

from pathlib import Path

from repro.experiments.report import collect, main, render


def make_out(tmp_path: Path) -> Path:
    out = tmp_path / "out"
    out.mkdir()
    (out / "fig8_exact.txt").write_text("fig8 rows\n")
    (out / "table2_dataset_stats.txt").write_text("table2 rows\n")
    (out / "custom_extra.txt").write_text("extra rows\n")
    return out


class TestCollect:
    def test_presentation_order(self, tmp_path):
        artefacts = collect(make_out(tmp_path))
        names = [name for name, _ in artefacts]
        assert names.index("table2_dataset_stats") < names.index("fig8_exact")
        assert names[-1] == "custom_extra"  # unknown artefacts go last

    def test_empty_dir(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert collect(empty) == []


class TestRender:
    def test_sections_present(self, tmp_path):
        text = render(collect(make_out(tmp_path)))
        assert "## fig8_exact" in text
        assert "fig8 rows" in text
        assert text.count("```") == 6  # one fenced block per artefact


class TestMain:
    def test_writes_report(self, tmp_path, capsys):
        out = make_out(tmp_path)
        target = tmp_path / "REPORT.md"
        assert main([str(out), str(target)]) == 0
        assert "table2 rows" in target.read_text()

    def test_missing_dir(self, tmp_path):
        assert main([str(tmp_path / "nope"), str(tmp_path / "r.md")]) == 1
