"""Tests for CoreExact (Algorithm 4) and its prunings."""

import itertools

import pytest

from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.graph.graph import Graph, complete_graph

from .conftest import random_graph


class TestAgreesWithExact:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("h", [2, 3])
    def test_random_graphs(self, seed, h):
        g = random_graph(24, 70, seed=seed)
        exact = exact_densest(g, h)
        core = core_exact_densest(g, h)
        assert core.density == pytest.approx(exact.density, abs=1e-9)

    @pytest.mark.parametrize("h", [2, 3, 4])
    def test_on_figure3(self, paper_figure3_graph, h):
        exact = exact_densest(paper_figure3_graph, h)
        core = core_exact_densest(paper_figure3_graph, h)
        assert core.density == pytest.approx(exact.density, abs=1e-9)

    def test_h4_random(self):
        g = random_graph(18, 70, seed=3)
        assert core_exact_densest(g, 4).density == pytest.approx(
            exact_densest(g, 4).density, abs=1e-9
        )


class TestPruningVariants:
    @pytest.mark.parametrize(
        "flags",
        list(itertools.product([False, True], repeat=3)),
        ids=lambda f: "P" + "".join(str(int(x)) for x in f),
    )
    def test_all_pruning_combinations_agree(self, flags):
        p1, p2, p3 = flags
        g = random_graph(20, 60, seed=8)
        reference = exact_densest(g, 3).density
        result = core_exact_densest(g, 3, pruning1=p1, pruning2=p2, pruning3=p3)
        assert result.density == pytest.approx(reference, abs=1e-9)

    def test_pruned_networks_not_larger_than_exact(self):
        g = random_graph(30, 90, seed=4)
        exact = exact_densest(g, 3)
        core = core_exact_densest(g, 3)
        if core.stats["network_sizes"] and exact.stats["network_sizes"]:
            assert max(core.stats["network_sizes"]) <= max(exact.stats["network_sizes"])


class TestMultiComponent:
    def test_optimum_in_second_component(self):
        # sparse big component + dense small component
        g = Graph()
        for i in range(20):
            g.add_edge(i, (i + 1) % 20)  # 20-cycle, density 1
        for i, j in itertools.combinations(range(100, 106), 2):
            g.add_edge(i, j)  # K6, density 2.5
        result = core_exact_densest(g, 2)
        assert result.vertices == set(range(100, 106))
        assert result.density == pytest.approx(2.5)

    def test_two_equal_components(self):
        g = Graph()
        for i, j in itertools.combinations(range(5), 2):
            g.add_edge(i, j)
        for i, j in itertools.combinations(range(10, 15), 2):
            g.add_edge(i, j)
        result = core_exact_densest(g, 2)
        assert result.density == pytest.approx(2.0)

    def test_triangle_components(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 5), (7, 8)])
        result = core_exact_densest(g, 3)
        assert result.density == pytest.approx(1 / 3)


class TestInstrumentation:
    def test_stats_present(self):
        g = random_graph(25, 80, seed=5)
        result = core_exact_densest(g, 3)
        for key in ("network_sizes", "decomposition_seconds", "total_seconds", "kmax"):
            assert key in result.stats

    def test_decomposition_time_fraction(self):
        g = random_graph(25, 80, seed=6)
        result = core_exact_densest(g, 3)
        assert 0.0 <= result.stats["decomposition_seconds"] <= result.stats["total_seconds"]

    def test_located_core_not_larger_than_graph(self):
        g = random_graph(30, 95, seed=7)
        result = core_exact_densest(g, 3)
        assert result.stats["located_vertices"] <= g.num_vertices


class TestEdgeCases:
    def test_empty(self):
        assert core_exact_densest(Graph(), 2).density == 0.0

    def test_no_instances(self):
        g = Graph([(0, 1), (1, 2)])
        result = core_exact_densest(g, 3)
        assert result.density == 0.0

    def test_complete_graph(self):
        result = core_exact_densest(complete_graph(7), 2)
        assert result.density == pytest.approx(3.0)

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            core_exact_densest(Graph([(0, 1)]), 0)

    def test_precomputed_decomposition_reused(self):
        from repro.core.clique_core import clique_core_decomposition

        g = random_graph(20, 60, seed=9)
        decomp = clique_core_decomposition(g, 3)
        result = core_exact_densest(g, 3, decomposition=decomp)
        assert result.density == pytest.approx(exact_densest(g, 3).density, abs=1e-9)
