"""Tests for (k, Ψ)-core decomposition (Algorithm 3, Section 5)."""

import pytest

from repro.cliques.enumeration import CliqueIndex, count_cliques
from repro.core.clique_core import (
    clique_core_decomposition,
    clique_core_subgraph,
    kmax_clique_core,
)
from repro.core.kcore import core_decomposition
from repro.graph.graph import Graph

from .conftest import random_graph


class TestAgainstDefinition:
    def test_figure3_triangle_cores(self, paper_figure3_graph):
        result = clique_core_decomposition(paper_figure3_graph, 3)
        # K4 {A,B,C,D}: each vertex in 3 of its 4 triangles
        for v in "ABCD":
            assert result.core[v] == 3
        # triangle {E,F,G}: one triangle each
        for v in "EFG":
            assert result.core[v] == 1
        assert result.core["H"] == 0
        assert result.kmax == 3

    def test_h2_equals_classical_kcore(self):
        for seed in range(4):
            g = random_graph(35, 100, seed=seed)
            result = clique_core_decomposition(g, 2)
            assert result.core == core_decomposition(g)

    def test_min_clique_degree_property(self):
        g = random_graph(25, 90, seed=5)
        result = clique_core_decomposition(g, 3)
        for k in range(1, result.kmax + 1):
            sub = result.core_subgraph(g, k)
            if sub.num_vertices == 0:
                continue
            index = CliqueIndex(sub, 3)
            degrees = index.degrees()
            assert min(degrees[v] for v in sub) >= k

    def test_maximality(self):
        # every vertex outside the (k, Ψ)-core would violate the bound if added
        g = random_graph(20, 70, seed=6)
        result = clique_core_decomposition(g, 3)
        k = result.kmax
        core_set = {v for v, c in result.core.items() if c >= k}
        for outsider in set(g.vertices()) - core_set:
            candidate = g.subgraph(core_set | {outsider})
            index = CliqueIndex(candidate, 3)
            assert index.degrees()[outsider] < k

    def test_nestedness(self):
        g = random_graph(25, 85, seed=7)
        result = clique_core_decomposition(g, 3)
        previous = None
        for k in range(result.kmax, -1, -1):
            members = {v for v, c in result.core.items() if c >= k}
            if previous is not None:
                assert previous <= members
            previous = members

    def test_core_leq_clique_degree(self):
        g = random_graph(22, 80, seed=8)
        result = clique_core_decomposition(g, 4)
        degrees = CliqueIndex(g, 4).degrees()
        for v in g:
            assert result.core[v] <= degrees[v]


class TestResidualDensityTracking:
    def test_best_residual_is_a_valid_density(self):
        g = random_graph(20, 65, seed=9)
        result = clique_core_decomposition(g, 3)
        sub = g.subgraph(result.best_residual_vertices)
        actual = count_cliques(sub, 3) / sub.num_vertices if sub.num_vertices else 0.0
        assert actual == pytest.approx(result.best_residual_density)

    def test_best_residual_at_least_whole_graph_density(self):
        g = random_graph(20, 65, seed=10)
        result = clique_core_decomposition(g, 3)
        whole = count_cliques(g, 3) / g.num_vertices
        assert result.best_residual_density >= whole - 1e-12

    def test_peel_order_is_a_permutation(self):
        g = random_graph(15, 40, seed=11)
        result = clique_core_decomposition(g, 3)
        assert sorted(result.peel_order) == sorted(g.vertices())


class TestSubgraphHelpers:
    def test_clique_core_subgraph(self, paper_figure3_graph):
        sub = clique_core_subgraph(paper_figure3_graph, 3, 3)
        assert set(sub.vertices()) == {"A", "B", "C", "D"}

    def test_kmax_clique_core(self, paper_figure3_graph):
        kmax, sub = kmax_clique_core(paper_figure3_graph, 3)
        assert kmax == 3
        assert sub.num_vertices == 4

    def test_graph_without_instances(self):
        g = Graph([(0, 1), (1, 2)])  # no triangle
        result = clique_core_decomposition(g, 3)
        assert result.kmax == 0
        assert all(c == 0 for c in result.core.values())

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            clique_core_decomposition(Graph(), 1)

    def test_density_bounds_theorem1(self):
        # k/|V_Ψ| <= ρ(R_k, Ψ) <= kmax for every non-empty core
        g = random_graph(22, 80, seed=12)
        h = 3
        result = clique_core_decomposition(g, h)
        for k in range(1, result.kmax + 1):
            sub = result.core_subgraph(g, k)
            if sub.num_vertices == 0:
                continue
            density = count_cliques(sub, h) / sub.num_vertices
            assert density >= k / h - 1e-12
            assert density <= result.kmax + 1e-12
