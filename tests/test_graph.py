"""Unit tests for the Graph substrate."""

import pytest

from repro.graph.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)

from .conftest import random_graph, to_networkx


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []

    def test_from_edges(self):
        g = Graph([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_isolated_vertices(self):
        g = Graph(vertices=[5, 7])
        assert g.num_vertices == 2
        assert g.degree(5) == 0

    def test_duplicate_edges_collapse(self):
        g = Graph([(0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph([(3, 3)])

    def test_add_vertex_idempotent(self):
        g = Graph([(0, 1)])
        g.add_vertex(0)
        assert g.num_vertices == 2

    def test_string_vertices(self):
        g = Graph([("a", "b"), ("b", "c")])
        assert g.has_edge("a", "b")
        assert not g.has_edge("a", "c")


class TestMutation:
    def test_remove_vertex_updates_edges(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        g.remove_vertex(0)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert not g.has_edge(0, 1)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(KeyError):
            Graph([(0, 1)]).remove_vertex(9)

    def test_remove_edge(self):
        g = Graph([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert g.num_edges == 1
        assert 0 in g  # endpoint stays

    def test_remove_missing_edge_raises(self):
        with pytest.raises(KeyError):
            Graph([(0, 1)]).remove_edge(0, 2)

    def test_edge_count_consistent_after_mixed_ops(self):
        g = Graph()
        for i in range(5):
            g.add_edge(i, i + 1)
        g.remove_vertex(2)
        assert g.num_edges == sum(g.degree(v) for v in g) // 2


class TestInspection:
    def test_edges_iterates_once_per_edge(self, paper_figure1_graph):
        edges = list(paper_figure1_graph.edges())
        assert len(edges) == paper_figure1_graph.num_edges
        seen = {frozenset(e) for e in edges}
        assert len(seen) == len(edges)

    def test_degree_and_max_degree(self, paper_figure1_graph):
        g = paper_figure1_graph
        assert g.degree(3) == 4
        assert g.max_degree() == 4

    def test_max_degree_empty(self):
        assert Graph().max_degree() == 0

    def test_contains_and_len(self):
        g = Graph([(0, 1)])
        assert 0 in g and 2 not in g
        assert len(g) == 2

    def test_edge_density(self):
        assert complete_graph(4).edge_density() == pytest.approx(1.5)
        assert Graph().edge_density() == 0.0

    def test_equality(self):
        assert Graph([(0, 1)]) == Graph([(1, 0)])
        assert Graph([(0, 1)]) != Graph([(0, 2)])


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph([(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2

    def test_subgraph_induced(self, paper_figure1_graph):
        sub = paper_figure1_graph.subgraph([0, 1, 2, 3])
        assert sub.num_vertices == 4
        assert sub.num_edges == 6  # the K4

    def test_subgraph_ignores_missing(self):
        sub = Graph([(0, 1)]).subgraph([0, 42])
        assert sub.num_vertices == 1

    def test_subgraph_no_external_edges(self, paper_figure1_graph):
        sub = paper_figure1_graph.subgraph([3, 4])
        assert sub.num_edges == 1

    def test_subgraph_does_not_alias_parent(self, paper_figure1_graph):
        sub = paper_figure1_graph.subgraph([0, 1, 2, 3])
        sub.remove_vertex(0)
        assert paper_figure1_graph.has_edge(0, 1)


class TestComponents:
    def test_connected_components(self, disconnected_graph):
        comps = sorted(disconnected_graph.connected_components(), key=len)
        assert [len(c) for c in comps] == [1, 3, 3]

    def test_is_connected(self, triangle_graph, disconnected_graph):
        assert triangle_graph.is_connected()
        assert not disconnected_graph.is_connected()
        assert Graph().is_connected()

    def test_components_cover_all_vertices(self):
        g = random_graph(40, 50, seed=5)
        comps = g.connected_components()
        union = set().union(*comps)
        assert union == set(g.vertices())

    def test_components_match_networkx(self):
        import networkx as nx

        g = random_graph(60, 70, seed=9)
        ours = sorted(sorted(c) for c in g.connected_components())
        theirs = sorted(sorted(c) for c in nx.connected_components(to_networkx(g)))
        assert ours == theirs


class TestDegeneracy:
    def test_degeneracy_of_complete_graph(self):
        _, d = complete_graph(6).degeneracy_ordering()
        assert d == 5

    def test_degeneracy_of_tree(self):
        _, d = path_graph(10).degeneracy_ordering()
        assert d == 1

    def test_degeneracy_of_cycle(self):
        _, d = cycle_graph(7).degeneracy_ordering()
        assert d == 2

    def test_order_is_a_permutation(self, paper_figure3_graph):
        order, _ = paper_figure3_graph.degeneracy_ordering()
        assert sorted(order, key=str) == sorted(paper_figure3_graph.vertices(), key=str)

    def test_smallest_last_property(self):
        g = random_graph(30, 60, seed=2)
        order, degeneracy = g.degeneracy_ordering()
        remaining = set(g.vertices())
        max_min_deg = 0
        for v in order:
            deg = len(g.neighbors(v) & remaining)
            max_min_deg = max(max_min_deg, deg)
            remaining.discard(v)
        assert max_min_deg == degeneracy

    def test_degeneracy_matches_networkx_core(self):
        import networkx as nx

        g = random_graph(50, 120, seed=4)
        _, d = g.degeneracy_ordering()
        assert d == max(nx.core_number(to_networkx(g)).values())


class TestFactories:
    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.num_edges == 10

    def test_star_graph(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert g.num_edges == 4

    def test_cycle_graph(self):
        g = cycle_graph(5)
        assert all(g.degree(v) == 2 for v in g)

    def test_path_graph_single(self):
        assert path_graph(1).num_vertices == 1

    @pytest.mark.parametrize(
        "factory,bad",
        [(complete_graph, 0), (cycle_graph, 2), (star_graph, 0), (path_graph, 0)],
    )
    def test_factory_validation(self, factory, bad):
        with pytest.raises(ValueError):
            factory(bad)
