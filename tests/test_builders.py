"""Tests for the DSD flow-network constructions."""

import pytest

from repro.cliques.enumeration import count_cliques
from repro.flow import dinic
from repro.flow.builders import (
    build_cds_network,
    build_eds_network,
    build_pds_network,
    build_pds_network_grouped,
    vertices_of_cut,
)
from repro.graph.graph import Graph, complete_graph
from repro.patterns.isomorphism import enumerate_pattern_instances, instance_vertices
from repro.patterns.pattern import get_pattern

from .conftest import random_graph


def decision_eds(graph, alpha) -> bool:
    """Decision oracle: does a subgraph with edge-density > alpha exist?"""
    net = build_eds_network(graph, alpha)
    dinic.max_flow(net)
    return bool(vertices_of_cut(net.min_cut_source_side()))


class TestEdsNetwork:
    def test_feasible_below_optimum(self):
        g = complete_graph(4)  # optimum density 1.5
        assert decision_eds(g, 1.0)
        assert decision_eds(g, 1.49)

    def test_infeasible_above_optimum(self):
        g = complete_graph(4)
        assert not decision_eds(g, 1.51)
        assert not decision_eds(g, 10.0)

    def test_boundary_is_strict(self):
        # at alpha == rho_opt there is no subgraph with density > alpha
        g = complete_graph(4)
        assert not decision_eds(g, 1.5)

    def test_cut_vertices_form_dense_subgraph(self):
        g = random_graph(20, 60, seed=1)
        net = build_eds_network(g, 1.2)
        dinic.max_flow(net)
        cut = vertices_of_cut(net.min_cut_source_side())
        if cut:
            sub = g.subgraph(cut)
            assert sub.edge_density() > 1.2

    def test_node_count(self):
        g = random_graph(10, 20, seed=2)
        net = build_eds_network(g, 1.0)
        assert net.num_nodes == g.num_vertices + 2


class TestCdsNetwork:
    def test_triangle_decision(self):
        g = complete_graph(4)  # triangle density 4/4 = 1.0
        for alpha, feasible in [(0.5, True), (0.99, True), (1.01, False)]:
            net = build_cds_network(g, 3, alpha)
            dinic.max_flow(net)
            assert bool(vertices_of_cut(net.min_cut_source_side())) is feasible

    def test_h2_rejected(self):
        with pytest.raises(ValueError):
            build_cds_network(Graph([(0, 1)]), 2, 0.5)

    def test_node_count_includes_sub_cliques(self):
        g = complete_graph(5)
        net = build_cds_network(g, 3, 0.5)
        assert net.num_nodes == 5 + count_cliques(g, 2) + 2

    def test_cut_subgraph_is_denser_than_alpha(self):
        g = random_graph(15, 55, seed=3)
        alpha = 0.4
        net = build_cds_network(g, 3, alpha)
        dinic.max_flow(net)
        cut = vertices_of_cut(net.min_cut_source_side())
        if cut:
            sub = g.subgraph(cut)
            assert count_cliques(sub, 3) / sub.num_vertices > alpha


class TestPdsNetworks:
    @pytest.mark.parametrize("grouped", [False, True])
    def test_decision_for_diamond(self, grouped):
        g = complete_graph(4)  # 3 C4s on 4 vertices: density 0.75
        pattern = get_pattern("diamond")
        sets = [instance_vertices(i) for i in enumerate_pattern_instances(g, pattern)]
        build = build_pds_network_grouped if grouped else build_pds_network
        for alpha, feasible in [(0.5, True), (0.74, True), (0.76, False)]:
            net = build(g, 4, alpha, sets)
            dinic.max_flow(net)
            assert bool(vertices_of_cut(net.min_cut_source_side())) is feasible

    def test_grouped_and_plain_cut_values_agree(self):
        # Lemma 11: identical min-cut capacity
        g = random_graph(12, 35, seed=4)
        pattern = get_pattern("2-star")
        sets = [instance_vertices(i) for i in enumerate_pattern_instances(g, pattern)]
        for alpha in (0.5, 2.0, 5.0):
            plain = build_pds_network(g, 3, alpha, sets)
            grouped = build_pds_network_grouped(g, 3, alpha, sets)
            assert dinic.max_flow(plain) == pytest.approx(dinic.max_flow(grouped), abs=1e-6)

    def test_grouped_network_is_smaller_when_instances_share_vertices(self):
        g = complete_graph(4)
        pattern = get_pattern("diamond")
        sets = [instance_vertices(i) for i in enumerate_pattern_instances(g, pattern)]
        plain = build_pds_network(g, 4, 0.5, sets)
        grouped = build_pds_network_grouped(g, 4, 0.5, sets)
        assert grouped.num_nodes < plain.num_nodes
