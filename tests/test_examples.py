"""Smoke tests for the example scripts.

The two fast examples run end-to-end; the heavier case studies are
imported and type-checked only (their full runs are exercised manually
and by the case-study sections of EXPERIMENTS.md).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", ["quickstart", "community_query", "trace_run"])
def test_fast_examples_run(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert "density" in out


@pytest.mark.parametrize(
    "name", ["research_groups", "protein_motifs", "social_piggybacking"]
)
def test_heavy_examples_importable(name):
    module = load_example(name)
    assert callable(module.main)
