"""Tests for the query-constrained densest subgraph (Section 6.3)."""

import itertools

import pytest

from repro.core.query_variant import anchored_core, query_densest
from repro.graph.graph import Graph, complete_graph

from .conftest import random_graph


def brute_force_query(graph, anchors) -> float:
    vertices = [v for v in graph.vertices() if v not in anchors]
    best = 0.0
    for size in range(len(vertices) + 1):
        for extra in itertools.combinations(vertices, size):
            sub = graph.subgraph(set(anchors) | set(extra))
            best = max(best, sub.edge_density())
    return best


class TestAnchoredCore:
    def test_anchor_survives(self):
        g = Graph([(0, 1), (1, 2)])
        core = anchored_core(g, {0}, 5)
        assert 0 in core

    def test_reduces_to_kcore_without_anchors_kept(self):
        from repro.core.kcore import k_core

        g = random_graph(25, 70, seed=1)
        assert set(anchored_core(g, set(), 3).vertices()) == set(k_core(g, 3).vertices())

    def test_anchor_keeps_its_support(self):
        # a pendant anchor attached to a K4 keeps only itself + the K4
        g = complete_graph(4)
        g.add_edge(0, 9)
        g.add_edge(9, 10)
        core = anchored_core(g, {9}, 2)
        assert 9 in core and 10 not in core


class TestQueryDensest:
    def test_contains_query(self):
        g = random_graph(20, 55, seed=2)
        result = query_densest(g, [0, 1])
        assert {0, 1} <= result.vertices

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        g = random_graph(9, 18, seed=seed)
        anchors = [0]
        result = query_densest(g, anchors)
        assert result.density == pytest.approx(brute_force_query(g, anchors), abs=1e-9)

    def test_query_inside_dense_blob(self):
        g = complete_graph(5)
        for i in range(5, 12):
            g.add_edge(i, i - 5)
        result = query_densest(g, [0])
        assert set(range(5)) <= result.vertices

    def test_unconstrained_matches_global_when_query_in_optimum(self):
        from repro.core.core_exact import core_exact_densest

        g = random_graph(18, 50, seed=5)
        global_result = core_exact_densest(g, 2)
        anchor = next(iter(global_result.vertices))
        assert query_densest(g, [anchor]).density == pytest.approx(
            global_result.density, abs=1e-9
        )

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            query_densest(Graph([(0, 1)]), [])

    def test_missing_vertex_rejected(self):
        with pytest.raises(KeyError):
            query_densest(Graph([(0, 1)]), [42])


class TestExactBoundaryRegression:
    def test_optimum_equal_to_lower_bound_is_returned(self):
        # regression: when rho_opt(Q) == the x-core seed bound, the
        # witness (not the whole search domain) must be returned
        import itertools

        g = Graph()
        for i, j in itertools.combinations(range(10), 2):
            g.add_edge(i, j)  # K10, density 4.5
        # sparse 5-core-ish padding around it
        for i in range(10, 60):
            for j in range(5):
                g.add_edge(i, (i + j + 1) % 50 + 10)
        g.add_edge(0, 10)
        result = query_densest(g, [0])
        assert result.density >= 4.5 - 1e-9

    def test_outside_query_gets_diluted_densest(self):
        import itertools

        g = Graph()
        for i, j in itertools.combinations(range(8), 2):
            g.add_edge(i, j)  # K8, density 3.5
        g.add_edge(7, 100)
        g.add_edge(100, 101)
        result = query_densest(g, [101])
        # optimum = K8 + {101} (+ maybe 100): 28 edges + 2 over 10
        assert 101 in result.vertices
        assert result.density >= 28 / 9 - 1e-9
