"""Backend-dispatch property suite for the :mod:`repro.accel` registry.

Three layers of guarantees:

* **selection** -- the import-time tier honors ``REPRO_NO_NUMBA`` /
  ``REPRO_NO_NUMPY`` / ``REPRO_NUMBA_INTERP`` (pinned in subprocesses,
  since the flags are read once at import);
* **bit-identity** -- every tier produces *identical* flow values,
  residual capacity floats, min cuts, peel orders, core numbers and
  densities on the random network/graph matrices.  When numba is not
  installed, the "numba" tier runs the kernels interpreted -- slow, but
  byte-for-byte the code the JIT would compile, so the identity claims
  transfer;
* **end-to-end** -- Exact / CoreExact / PeelApp / the GGT breakpoint
  drivers return identical results whichever tier is selected.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import accel
from repro.core.clique_core import clique_core_decomposition
from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.core.peel import peel_densest
from repro.extensions.size_constrained import densest_at_least, densest_at_most
from repro.flow import dinic, push_relabel
from repro.flow.builders import build_cds_parametric, build_eds_parametric

from .conftest import random_graph
from .test_flow import random_network

SRC_DIR = str(Path(accel.__file__).resolve().parents[2])


def _tiers() -> list:
    """Every tier testable in this interpreter (interp-numba included)."""
    tiers = list(accel.available_tiers())
    if "numba" not in tiers and accel.np is not None:
        tiers.append("numba")  # interpreted kernels, same code the JIT compiles
    return tiers


TIERS = _tiers()
MULTI = len(TIERS) >= 2


@pytest.fixture(autouse=True)
def _restore_tier():
    yield
    accel.select_tier(None)


# --------------------------------------------------------------------
# registry selection
# --------------------------------------------------------------------


def _clean_env() -> dict:
    env = {k: v for k, v in os.environ.items()
           if k not in ("REPRO_NO_NUMPY", "REPRO_NO_NUMBA", "REPRO_NUMBA_INTERP")}
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _probe_import(module: str) -> bool:
    return (
        subprocess.run(
            [sys.executable, "-c", f"import {module}"],
            env=_clean_env(), capture_output=True,
        ).returncode
        == 0
    )


HAS_NUMPY = _probe_import("numpy")
HAS_NUMBA = HAS_NUMPY and _probe_import("numba")


def _subprocess_state(extra_env: dict) -> tuple:
    env = _clean_env()
    env.update(extra_env)
    out = subprocess.run(
        [
            sys.executable,
            "-c",
            "import json, repro.accel as a; "
            "print(json.dumps([a.TIER, a.NUMBA_JITTED, a.kernel_tiers()]))",
        ],
        env=env, capture_output=True, text=True, check=True,
    ).stdout
    tier, jitted, kernel_tiers = json.loads(out)
    return tier, jitted, kernel_tiers


class TestSelection:
    def test_no_numpy_forces_python_tier(self):
        tier, jitted, kernels = _subprocess_state({"REPRO_NO_NUMPY": "1"})
        assert tier == "python"
        assert not jitted
        assert set(kernels.values()) == {"python"}

    def test_no_numba_stops_at_numpy_tier(self):
        tier, jitted, kernels = _subprocess_state({"REPRO_NO_NUMBA": "1"})
        assert not jitted
        if HAS_NUMPY:
            assert tier == "numpy"
            assert kernels["dinic"] == "numpy"
            assert kernels["push_relabel"] == "python"
        else:  # pragma: no cover - environment-specific
            assert tier == "python"

    def test_default_tier_is_best_available(self):
        tier, jitted, kernels = _subprocess_state({})
        if HAS_NUMBA:  # pragma: no cover - environment-specific
            assert tier == "numba" and jitted
            assert kernels["dinic"] == "numba"
        elif HAS_NUMPY:
            assert tier == "numpy" and not jitted
        else:  # pragma: no cover - environment-specific
            assert tier == "python"

    @pytest.mark.skipif(not HAS_NUMPY, reason="interp kernels need numpy")
    def test_interp_flag_selects_numba_tier_without_numba(self):
        tier, jitted, kernels = _subprocess_state({"REPRO_NUMBA_INTERP": "1"})
        assert tier == "numba"
        expected = "numba" if HAS_NUMBA else "numba-interp"
        assert kernels["dinic"] == expected
        # the advance loop stays interpreter-side by design
        assert kernels["ggt_advance"] == "python"

    def test_select_tier_validates(self):
        with pytest.raises(ValueError):
            accel.select_tier("bogus")
        if accel.np is None:
            with pytest.raises(RuntimeError):
                accel.select_tier("numpy")

    def test_registry_covers_all_kernels(self):
        for tier in TIERS:
            accel.select_tier(tier)
            assert set(accel.kernel_tiers()) == set(accel.KERNEL_NAMES)
            assert accel.warm_up() == tier


# --------------------------------------------------------------------
# solver bit-identity on the 50-network random matrix
# --------------------------------------------------------------------


@pytest.mark.skipif(not MULTI, reason="only one tier available")
class TestFlowKernelBitIdentity:
    @pytest.mark.parametrize("seed", range(50))
    def test_dinic_bit_identical_across_tiers(self, seed):
        results = {}
        for tier in TIERS:
            accel.select_tier(tier)
            net = random_network(seed, n=12 + seed % 7, arcs=30 + seed)
            value = dinic.max_flow(net)
            results[tier] = (value, list(net.cap), net.min_cut_source_side())
        base = results[TIERS[0]]
        for tier in TIERS[1:]:
            assert results[tier] == base, tier  # floats compared exactly

    @pytest.mark.parametrize("seed", range(50))
    def test_push_relabel_bit_identical_and_matches_dinic(self, seed):
        accel.select_tier(TIERS[0])
        ref_net = random_network(seed, n=12 + seed % 7, arcs=30 + seed)
        dinic.max_flow(ref_net)
        dinic_cut = ref_net.min_cut_source_side()
        results = {}
        for tier in TIERS:
            accel.select_tier(tier)
            net = random_network(seed, n=12 + seed % 7, arcs=30 + seed)
            value = push_relabel.max_flow(net)
            cut = net.min_cut_source_side()
            assert cut == dinic_cut  # unique minimal min cut
            results[tier] = (value, list(net.cap), cut)
        base = results[TIERS[0]]
        for tier in TIERS[1:]:
            assert results[tier] == base, tier

    @pytest.mark.skipif(accel.np is None, reason="vector tier needs numpy")
    @pytest.mark.parametrize("seed", range(12))
    def test_vectorised_bfs_bit_identical(self, seed, monkeypatch):
        """Force the numpy BFS on tiny networks: same floats as scalar."""
        accel.select_tier("python")
        ref = random_network(seed)
        ref_value = dinic.max_flow(ref)
        monkeypatch.setattr(accel.vector, "NUMPY_BFS_MIN_ARCS", 1)
        accel.select_tier("numpy")
        net = random_network(seed)
        value = dinic.max_flow(net)
        assert value == ref_value
        assert net.cap == ref.cap
        assert net.min_cut_source_side() == ref.min_cut_source_side()


# --------------------------------------------------------------------
# GGT warm chains (advance + retreat + drain) across tiers
# --------------------------------------------------------------------


@pytest.mark.skipif(not MULTI, reason="only one tier available")
class TestParametricBitIdentity:
    @pytest.mark.parametrize("seed", range(8))
    def test_alpha_walk_bit_identical(self, seed):
        """A fixed up-and-down α walk must leave identical residual
        floats and cuts on every tier (exercises the retreat drains)."""
        import random as _random

        rng = _random.Random(seed)
        g = random_graph(22, 65, seed + 900)
        alphas = [rng.uniform(0.0, g.max_degree()) for _ in range(12)]
        traces = {}
        for tier in TIERS:
            accel.select_tier(tier)
            net = build_eds_parametric(g)
            trace = []
            for alpha in alphas:
                cut = net.solve(alpha)
                trace.append((frozenset(cut), tuple(net.cap)))
            traces[tier] = trace
        base = traces[TIERS[0]]
        for tier in TIERS[1:]:
            assert traces[tier] == base, tier

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("h", [2, 3])
    def test_max_density_identical(self, seed, h):
        g = random_graph(18, 50, seed + 60)
        results = {}
        for tier in TIERS:
            accel.select_tier(tier)
            if h == 2:
                net = build_eds_parametric(g)
                density_of = lambda s: g.subgraph(s).num_edges / len(s)
            else:
                net = build_cds_parametric(g, h)
                from repro.cliques.index import CliqueIndex

                density_of = CliqueIndex(g, h).density_within
            results[tier] = net.max_density(density_of, low=0.0)
        base = results[TIERS[0]]
        for tier in TIERS[1:]:
            assert results[tier] == base, tier  # (cut, alpha, solves)


# --------------------------------------------------------------------
# end-to-end: exact solvers and peels on the 50-graph matrix
# --------------------------------------------------------------------


@pytest.mark.skipif(not MULTI, reason="only one tier available")
class TestEndToEndBitIdentity:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("h", [2, 3])
    def test_exact_and_core_exact(self, seed, h):
        g = random_graph(22, 60, seed)
        results = {}
        for tier in TIERS:
            accel.select_tier(tier)
            ex = exact_densest(g, h)
            ce = core_exact_densest(g, h)
            results[tier] = (
                frozenset(ex.vertices), ex.density, ex.iterations,
                frozenset(ce.vertices), ce.density, ce.iterations,
            )
        base = results[TIERS[0]]
        for tier in TIERS[1:]:
            assert results[tier] == base, tier

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("h", [2, 3])
    def test_decomposition_and_peels(self, seed, h):
        g = random_graph(24, 70, seed + 30)
        results = {}
        for tier in TIERS:
            accel.select_tier(tier)
            dec = clique_core_decomposition(g, h)
            peel = peel_densest(g, h)
            at_least = densest_at_least(g, max(2, g.num_vertices // 3), h)
            at_most = densest_at_most(g, max(2, g.num_vertices // 2), h)
            results[tier] = (
                tuple(sorted(dec.core.items())), dec.kmax,
                dec.best_residual_density, frozenset(dec.best_residual_vertices),
                tuple(dec.peel_order),
                frozenset(peel.vertices), peel.density, peel.iterations,
                frozenset(at_least.vertices), at_least.density,
                frozenset(at_most.vertices), at_most.density,
            )
        base = results[TIERS[0]]
        for tier in TIERS[1:]:
            assert results[tier] == base, tier

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_core_exact_h4(self, seed):
        g = random_graph(18, 55, seed + 70)
        results = {}
        for tier in TIERS:
            accel.select_tier(tier)
            ce = core_exact_densest(g, 4)
            results[tier] = (frozenset(ce.vertices), ce.density)
        base = results[TIERS[0]]
        for tier in TIERS[1:]:
            assert results[tier] == base, tier


class TestWarmAwareBfsDispatch:
    """The numpy-tier BFS threshold is warmth-dependent (regression:
    the old single threshold sent warm GGT re-solves to the numpy BFS,
    whose per-call overhead never amortises over 1-3 short passes)."""

    @pytest.fixture(autouse=True)
    def _numpy_tier(self):
        from repro.accel import vector

        if not _probe_import("numpy"):
            pytest.skip("numpy unavailable: no BFS dispatch to probe")
        saved = (vector.NUMPY_BFS_MIN_ARCS, vector.NUMPY_BFS_MIN_ARCS_WARM)
        accel.select_tier("numpy")
        yield
        vector.NUMPY_BFS_MIN_ARCS, vector.NUMPY_BFS_MIN_ARCS_WARM = saved
        accel.select_tier(None)

    def test_warm_solves_take_scalar_cold_takes_numpy(self):
        """With the cold threshold forced to 0, a cold solve picks the
        numpy BFS while warm re-solves still pick the scalar BFS -- the
        deterministic statement of the warmth split."""
        from repro import obs
        from repro.accel import vector

        vector.NUMPY_BFS_MIN_ARCS = 0  # cold: numpy BFS at any size
        g = random_graph(40, 170, seed=7)
        net = build_eds_parametric(g)
        obs.enable()
        try:
            net.solve(0.5)  # cold
            net.solve(1.0)  # warm advance
            net.solve(1.5)  # warm advance
            events = [
                e["fields"]
                for e in obs.get_collector().events()
                if e["name"] == "flow.solve"
            ]
        finally:
            obs.disable()
        modes = [(f["mode"], f.get("bfs_mode")) for f in events]
        assert modes[0] == ("cold", "numpy"), modes
        for mode, bfs in modes[1:]:
            assert mode != "cold", modes
            assert bfs == "scalar", modes

    def test_default_warm_threshold_is_unreachable(self):
        from repro.accel import vector

        assert vector.NUMPY_BFS_MIN_ARCS_WARM > 1 << 40
        assert vector.NUMPY_BFS_MIN_ARCS < vector.NUMPY_BFS_MIN_ARCS_WARM

    def test_warm_hint_threaded_from_parametric(self):
        """The parametric engine's warm-start mode reaches the vector
        module through the dispatcher's ``warm=`` keyword."""
        from repro.accel import vector

        g = random_graph(30, 120, seed=9)
        net = build_eds_parametric(g)
        net.solve(0.5)
        assert vector.SOLVE_IS_WARM is False  # first solve is cold
        net.solve(1.0)
        assert vector.SOLVE_IS_WARM is True  # re-solve came in warm
