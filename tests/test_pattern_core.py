"""Tests for k-pattern-core decomposition and the Appendix-D fast paths."""

import pytest

from repro.core.pattern_core import (
    c4_core_decomposition,
    fast_pattern_core_decomposition,
    pattern_core_decomposition,
    pattern_core_subgraph,
    star_core_decomposition,
)
from repro.graph.graph import Graph, complete_graph, cycle_graph, star_graph
from repro.patterns.isomorphism import count_pattern_instances
from repro.patterns.pattern import get_pattern, star_pattern

from .conftest import random_graph


class TestGenericPatternCores:
    def test_k4_diamond_cores(self):
        result = pattern_core_decomposition(complete_graph(4), get_pattern("diamond"))
        # each vertex sits in all 3 C4s of K4
        assert all(c == 3 for c in result.core.values())
        assert result.kmax == 3

    def test_cycle_c4_cores(self):
        result = pattern_core_decomposition(cycle_graph(4), get_pattern("diamond"))
        assert all(c == 1 for c in result.core.values())

    def test_min_pattern_degree_property(self):
        g = random_graph(15, 45, seed=1)
        pattern = get_pattern("2-star")
        result = pattern_core_decomposition(g, pattern)
        for k in {1, max(1, result.kmax // 2), result.kmax}:
            sub = result.core_subgraph(g, k)
            if sub.num_vertices == 0:
                continue
            from repro.patterns.degree import pattern_degrees

            degrees = pattern_degrees(sub, pattern)
            assert min(degrees[v] for v in sub) >= k

    def test_nestedness(self):
        g = random_graph(15, 45, seed=2)
        result = pattern_core_decomposition(g, get_pattern("c3-star"))
        previous = None
        for k in range(result.kmax, -1, -1):
            members = {v for v, c in result.core.items() if c >= k}
            if previous is not None:
                assert previous <= members
            previous = members

    def test_subpattern_core_containment(self):
        # Section 5.4: Ψ ⊆ Ψ' with equal size => (k, Ψ')-core ⊆ (k, Ψ)-core
        g = random_graph(16, 55, seed=3)
        sub = pattern_core_decomposition(g, get_pattern("c3-star")).core
        sup = pattern_core_decomposition(g, get_pattern("2-triangle")).core
        for k in range(1, max(sup.values(), default=0) + 1):
            sup_core = {v for v, c in sup.items() if c >= k}
            sub_core = {v for v, c in sub.items() if c >= k}
            assert sup_core <= sub_core

    def test_pattern_core_subgraph_helper(self):
        g = complete_graph(4)
        sub = pattern_core_subgraph(g, get_pattern("diamond"), 3)
        assert sub.num_vertices == 4


class TestFastPaths:
    @pytest.mark.parametrize("tails", [2, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_star_fast_path_matches_generic(self, tails, seed):
        g = random_graph(14, 40, seed=seed)
        fast = star_core_decomposition(g, tails)
        generic = pattern_core_decomposition(g, star_pattern(tails)).core
        assert fast == generic

    @pytest.mark.parametrize("seed", range(4))
    def test_c4_fast_path_matches_generic(self, seed):
        g = random_graph(14, 40, seed=seed + 10)
        fast = c4_core_decomposition(g)
        generic = pattern_core_decomposition(g, get_pattern("diamond")).core
        assert fast == generic

    def test_dispatch_star(self):
        g = star_graph(6)
        result = fast_pattern_core_decomposition(g, get_pattern("2-star"))
        generic = pattern_core_decomposition(g, get_pattern("2-star")).core
        assert result == generic

    def test_dispatch_fallback(self):
        g = random_graph(10, 25, seed=5)
        result = fast_pattern_core_decomposition(g, get_pattern("c3-star"))
        assert result == pattern_core_decomposition(g, get_pattern("c3-star")).core

    def test_star_validation(self):
        with pytest.raises(ValueError):
            star_core_decomposition(Graph(), 1)

    def test_empty_graphs(self):
        assert star_core_decomposition(Graph(), 2) == {}
        assert c4_core_decomposition(Graph()) == {}


class TestFastPeels:
    @pytest.mark.parametrize("tails", [2, 3])
    def test_star_peel_within_guarantee(self, tails):
        from repro.core.pds import p_exact_densest
        from repro.core.pattern_core import star_peel_densest

        for seed in range(3):
            g = random_graph(14, 40, seed=seed)
            optimum = p_exact_densest(g, star_pattern(tails)).density
            _, density, _ = star_peel_densest(g, tails)
            assert density <= optimum + 1e-9
            if optimum > 0:
                assert density >= optimum / (tails + 1) - 1e-9

    def test_c4_peel_within_guarantee(self):
        from repro.core.pds import p_exact_densest
        from repro.core.pattern_core import c4_peel_densest

        for seed in range(3):
            g = random_graph(14, 40, seed=seed + 10)
            optimum = p_exact_densest(g, get_pattern("diamond")).density
            _, density, _ = c4_peel_densest(g)
            assert density <= optimum + 1e-9
            if optimum > 0:
                assert density >= optimum / 4 - 1e-9

    def test_star_peel_density_is_achieved(self):
        from repro.core.pattern_core import star_peel_densest
        from repro.patterns.isomorphism import count_pattern_instances

        g = random_graph(14, 40, seed=4)
        vertices, density, _ = star_peel_densest(g, 2)
        sub = g.subgraph(vertices)
        actual = count_pattern_instances(sub, star_pattern(2)) / sub.num_vertices
        assert actual == pytest.approx(density)

    def test_fast_mu_matches_enumeration(self):
        from repro.core.pattern_core import fast_pattern_mu
        from repro.patterns.isomorphism import count_pattern_instances

        g = random_graph(14, 40, seed=5)
        for name in ("2-star", "3-star", "diamond"):
            pattern = get_pattern(name)
            assert fast_pattern_mu(g, pattern) == count_pattern_instances(g, pattern)
        assert fast_pattern_mu(g, get_pattern("c3-star")) is None

    def test_hub_graph_fast(self):
        # a 300-leaf hub: ~4.5M 3-star embeddings if materialised; the
        # closed-form peel must handle it instantly
        from repro.core.pds import pattern_core_app_densest, pattern_peel_densest

        g = star_graph(300)
        peel = pattern_peel_densest(g, get_pattern("3-star"))
        app = pattern_core_app_densest(g, get_pattern("3-star"))
        assert peel.stats.get("fast_path")
        assert app.stats.get("fast_path")
        assert peel.density > 0
