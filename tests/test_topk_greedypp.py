"""Tests for the top-k extraction and Greedy++ extensions."""

import pytest

from repro.core.core_exact import core_exact_densest
from repro.extensions.greedy_pp import greedy_pp_densest
from repro.extensions.topk import top_k_densest
from repro.graph.graph import Graph, complete_graph

from .conftest import random_graph


def two_cliques_graph() -> Graph:
    """A K6 and a K4, connected by a bridge."""
    import itertools

    g = Graph()
    for i, j in itertools.combinations(range(6), 2):
        g.add_edge(i, j)
    for i, j in itertools.combinations(range(10, 14), 2):
        g.add_edge(i, j)
    g.add_edge(5, 10)
    return g


class TestTopK:
    def test_extracts_disjoint_clusters(self):
        results = top_k_densest(two_cliques_graph(), 2)
        assert len(results) == 2
        assert results[0].vertices == set(range(6))
        assert results[1].vertices == set(range(10, 14))
        assert not results[0].vertices & results[1].vertices

    def test_densities_non_increasing(self):
        g = random_graph(60, 200, seed=1)
        results = top_k_densest(g, 4)
        densities = [r.density for r in results]
        assert densities == sorted(densities, reverse=True)

    def test_stops_when_exhausted(self):
        results = top_k_densest(Graph([(0, 1)]), 10)
        assert len(results) <= 1

    def test_custom_method(self):
        results = top_k_densest(two_cliques_graph(), 2, method=core_exact_densest)
        assert results[0].density == pytest.approx(2.5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_densest(Graph(), 0)

    def test_triangle_variant(self):
        results = top_k_densest(two_cliques_graph(), 2, h=3)
        assert results[0].vertices == set(range(6))


class TestGreedyPP:
    def test_single_round_is_charikar(self):
        from repro.core.peel import peel_densest

        g = random_graph(25, 80, seed=2)
        assert greedy_pp_densest(g, rounds=1).density >= peel_densest(g, 2).density / 1.0001

    @pytest.mark.parametrize("seed", range(5))
    def test_converges_to_optimum(self, seed):
        g = random_graph(18, 55, seed=seed)
        optimum = core_exact_densest(g, 2).density
        result = greedy_pp_densest(g, rounds=30)
        assert result.density == pytest.approx(optimum, rel=0.02)

    def test_monotone_in_rounds(self):
        g = random_graph(20, 65, seed=6)
        few = greedy_pp_densest(g, rounds=1).density
        many = greedy_pp_densest(g, rounds=12).density
        assert many >= few - 1e-12

    def test_never_exceeds_optimum(self):
        g = random_graph(18, 55, seed=7)
        optimum = core_exact_densest(g, 2).density
        assert greedy_pp_densest(g, rounds=20).density <= optimum + 1e-9

    def test_clique(self):
        assert greedy_pp_densest(complete_graph(5)).density == pytest.approx(2.0)

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            greedy_pp_densest(Graph(), 0)

    def test_empty(self):
        assert greedy_pp_densest(Graph()).density == 0.0
