"""Execute the doctest examples embedded in the library's docstrings."""

import doctest

import pytest

import repro
import repro.api
import repro.cliques.enumeration
import repro.graph.graph
import repro.patterns.isomorphism
import repro.patterns.pattern

MODULES = [
    repro,
    repro.api,
    repro.cliques.enumeration,
    repro.graph.graph,
    repro.patterns.isomorphism,
    repro.patterns.pattern,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    failures, tests = result.failed, doctest.testmod(module).attempted
    assert failures == 0
    assert tests > 0  # every listed module must actually carry examples
