"""Tests for Algorithm 1 (Exact)."""

import itertools

import pytest

from repro.cliques.enumeration import count_cliques
from repro.core.exact import exact_densest
from repro.graph.graph import Graph, complete_graph, cycle_graph, star_graph

from .conftest import random_graph


def brute_force_densest(graph: Graph, h: int) -> float:
    """Exhaustive optimum over all vertex subsets (tiny graphs only)."""
    vertices = list(graph.vertices())
    best = 0.0
    for size in range(1, len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            sub = graph.subgraph(subset)
            best = max(best, count_cliques(sub, h) / size)
    return best


class TestKnownOptima:
    def test_clique_edge_density(self):
        result = exact_densest(complete_graph(6), 2)
        assert result.density == pytest.approx(2.5)
        assert result.vertices == set(range(6))

    def test_clique_plus_tail(self, paper_figure1_graph):
        result = exact_densest(paper_figure1_graph, 2)
        assert result.vertices == {0, 1, 2, 3}
        assert result.density == pytest.approx(1.5)

    def test_triangle_density_of_k5(self):
        result = exact_densest(complete_graph(5), 3)
        assert result.density == pytest.approx(2.0)  # C(5,3)/5

    def test_figure1_triangle_story(self):
        # edge-densest and triangle-densest subgraphs can differ (S1 vs S2)
        g = Graph(
            [("a", "b"), ("b", "c"), ("c", "a"), ("a", "d"), ("c", "d")]  # 2 triangles
            + [(i, j) for i, j in itertools.combinations(range(5), 2) if (i, j) != (0, 1)]
        )
        eds = exact_densest(g, 2)
        cds = exact_densest(g, 3)
        assert cds.density >= count_cliques(g.subgraph(cds.vertices), 3) / len(cds.vertices) - 1e-9

    def test_star_has_low_density(self):
        result = exact_densest(star_graph(6), 2)
        assert result.density == pytest.approx(6 / 7)

    def test_cycle_density(self):
        result = exact_densest(cycle_graph(7), 2)
        assert result.density == pytest.approx(1.0)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("h", [2, 3])
    def test_small_random(self, seed, h):
        g = random_graph(9, 16, seed=seed)
        result = exact_densest(g, h)
        assert result.density == pytest.approx(brute_force_densest(g, h), abs=1e-9)

    def test_returned_set_achieves_density(self):
        g = random_graph(12, 30, seed=9)
        result = exact_densest(g, 3)
        sub = g.subgraph(result.vertices)
        achieved = count_cliques(sub, 3) / sub.num_vertices
        assert achieved == pytest.approx(result.density)


class TestEdgeCases:
    def test_empty_graph(self):
        result = exact_densest(Graph(), 2)
        assert result.vertices == set()
        assert result.density == 0.0

    def test_no_instances(self):
        g = Graph([(0, 1), (1, 2)])
        result = exact_densest(g, 3)
        assert result.density == 0.0

    def test_single_edge(self):
        result = exact_densest(Graph([(0, 1)]), 2)
        assert result.density == pytest.approx(0.5)

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            exact_densest(Graph([(0, 1)]), 1)

    def test_iterations_recorded(self):
        result = exact_densest(complete_graph(5), 2)
        assert result.iterations > 0
        assert len(result.stats["network_sizes"]) == result.iterations

    def test_disconnected_optimum_in_denser_component(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])  # triangle, density 1
        for i, j in itertools.combinations(range(10, 15), 2):
            g.add_edge(i, j)  # K5, density 2
        result = exact_densest(g, 2)
        assert result.vertices == set(range(10, 15))
