"""Tests for the max-flow solvers and network representation."""

import networkx as nx
import pytest

from repro.flow import dinic, push_relabel
from repro.flow.network import FlowNetwork


def build_classic() -> FlowNetwork:
    """The CLRS example network with known max flow 23."""
    net = FlowNetwork("s", "t")
    arcs = [
        ("s", "v1", 16), ("s", "v2", 13),
        ("v1", "v3", 12), ("v2", "v1", 4), ("v2", "v4", 14),
        ("v3", "v2", 9), ("v3", "t", 20),
        ("v4", "v3", 7), ("v4", "t", 4),
    ]
    for u, v, c in arcs:
        net.add_arc(u, v, float(c))
    return net


def random_network(seed: int, n: int = 14, arcs: int = 45) -> FlowNetwork:
    import random

    rng = random.Random(seed)
    net = FlowNetwork("s", "t")
    nodes = ["s", "t"] + [f"n{i}" for i in range(n)]
    for _ in range(arcs):
        u, v = rng.sample(nodes, 2)
        if v == "s" or u == "t":
            continue
        net.add_arc(u, v, rng.uniform(0.5, 10.0))
    return net


def nx_max_flow(net: FlowNetwork) -> float:
    g = nx.DiGraph()
    cap: dict = {}
    for u_id in range(net.num_nodes):
        for arc in net.adj[u_id]:
            if arc % 2 == 0:  # forward arcs have even index
                u, v = net.node(u_id), net.node(net.head[arc])
                cap[(u, v)] = cap.get((u, v), 0.0) + net.cap[arc]
    for (u, v), c in cap.items():
        g.add_edge(u, v, capacity=c)
    if "t" not in g or "s" not in g:
        return 0.0
    value, _ = nx.maximum_flow(g, "s", "t")
    return value


class TestNetwork:
    def test_node_registration(self):
        net = FlowNetwork("s", "t")
        net.add_arc("s", "a", 1.0)
        assert net.num_nodes == 3
        assert net.num_arcs == 1

    def test_negative_capacity_rejected(self):
        net = FlowNetwork("s", "t")
        with pytest.raises(ValueError):
            net.add_arc("s", "t", -1.0)

    def test_snapshot_reset_round_trip(self):
        net = build_classic()
        snap = net.snapshot()
        dinic.max_flow(net)
        assert net.cap != snap
        net.reset(snap)
        assert net.cap == snap

    def test_reset_wrong_length(self):
        net = build_classic()
        with pytest.raises(ValueError):
            net.reset([1.0])


class TestDinic:
    def test_classic_example(self):
        assert dinic.max_flow(build_classic()) == pytest.approx(23.0)

    def test_disconnected_sink(self):
        net = FlowNetwork("s", "t")
        net.add_arc("s", "a", 5.0)
        assert dinic.max_flow(net) == 0.0

    def test_parallel_arcs_add(self):
        net = FlowNetwork("s", "t")
        net.add_arc("s", "t", 2.0)
        net.add_arc("s", "t", 3.0)
        assert dinic.max_flow(net) == pytest.approx(5.0)

    def test_source_equals_sink_rejected(self):
        net = FlowNetwork("s", "s")
        with pytest.raises(ValueError):
            dinic.max_flow(net)

    def test_long_chain_no_recursion_error(self):
        net = FlowNetwork("s", "t")
        prev = "s"
        for i in range(5000):
            net.add_arc(prev, f"c{i}", 1.0)
            prev = f"c{i}"
        net.add_arc(prev, "t", 1.0)
        assert dinic.max_flow(net) == pytest.approx(1.0)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        net = random_network(seed)
        expected = nx_max_flow(random_network(seed))
        assert dinic.max_flow(net) == pytest.approx(expected, abs=1e-6)


class TestPushRelabel:
    def test_classic_example(self):
        assert push_relabel.max_flow(build_classic()) == pytest.approx(23.0)

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_dinic(self, seed):
        a, b = random_network(seed), random_network(seed)
        assert push_relabel.max_flow(a) == pytest.approx(dinic.max_flow(b), abs=1e-6)

    def test_infinite_capacity_clamped(self):
        net = FlowNetwork("s", "t")
        net.add_arc("s", "a", 4.0)
        net.add_arc("a", "t", float("inf"))
        assert push_relabel.max_flow(net) == pytest.approx(4.0)


class TestMinCut:
    def test_cut_value_equals_flow(self):
        # max-flow = min-cut: capacity of the (S, T) arcs equals the flow
        for seed in range(5):
            net = random_network(seed)
            snapshot = net.snapshot()
            value = dinic.max_flow(net)
            source_side = net.min_cut_source_side()
            ids = {net.node_id(x) for x in source_side}
            cut_capacity = 0.0
            for arc in range(0, len(net.head), 2):
                tail = net.head[arc ^ 1]
                head = net.head[arc]
                if tail in ids and head not in ids:
                    cut_capacity += snapshot[arc]
            assert cut_capacity == pytest.approx(value, abs=1e-6)

    def test_source_side_contains_source(self):
        net = build_classic()
        dinic.max_flow(net)
        side = net.min_cut_source_side()
        assert "s" in side and "t" not in side

    def test_infinite_arcs_never_cut(self):
        net = FlowNetwork("s", "t")
        net.add_arc("s", "a", 10.0)
        net.add_arc("a", "b", float("inf"))
        net.add_arc("b", "t", 1.0)
        dinic.max_flow(net)
        side = net.min_cut_source_side()
        # the cut must cross b->t (cap 1), not the infinite arc
        assert "a" in side and "b" in side
