"""Tests for the top-level dispatch API."""

import pytest

from repro import Graph, densest_subgraph, get_pattern, resolve_pattern
from repro.api import AUTO_EXACT_LIMIT
from repro.graph.graph import complete_graph

from .conftest import random_graph


class TestResolvePattern:
    def test_int_becomes_clique(self):
        assert resolve_pattern(3).name == "triangle"
        assert resolve_pattern(2).name == "edge"

    def test_name_lookup(self):
        assert resolve_pattern("diamond").size == 4

    def test_pattern_passthrough(self):
        p = get_pattern("basket")
        assert resolve_pattern(p) is p


class TestDispatch:
    @pytest.mark.parametrize("method", ["exact", "core-exact", "peel", "inc-app", "core-app"])
    def test_clique_methods(self, method):
        g = random_graph(15, 45, seed=1)
        result = densest_subgraph(g, 3, method=method)
        assert result.density >= 0.0
        assert result.vertices

    @pytest.mark.parametrize("method", ["exact", "core-exact", "peel", "inc-app", "core-app"])
    def test_pattern_methods(self, method):
        g = random_graph(14, 40, seed=2)
        result = densest_subgraph(g, "diamond", method=method)
        assert result.density >= 0.0

    def test_exact_methods_agree_across_routes(self):
        g = random_graph(14, 40, seed=3)
        via_clique = densest_subgraph(g, 3, method="core-exact")
        via_pattern = densest_subgraph(g, "triangle", method="exact")
        assert via_clique.density == pytest.approx(via_pattern.density, abs=1e-9)

    def test_auto_uses_exact_for_small(self):
        result = densest_subgraph(complete_graph(5), 2)
        assert result.method == "CoreExact"
        assert result.density == pytest.approx(2.0)

    def test_auto_threshold_exposed(self):
        assert AUTO_EXACT_LIMIT > 0

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            densest_subgraph(Graph([(0, 1)]), 2, method="quantum")

    def test_quickstart_docstring_example(self):
        g = Graph([(0, 1), (0, 2), (1, 2), (2, 3)])
        result = densest_subgraph(g, psi="triangle", method="core-exact")
        assert sorted(result.vertices) == [0, 1, 2]


class TestInputValidation:
    """densest_subgraph(strict=True) gates malformed inputs up front."""

    def test_non_graph_raises_type_error(self):
        with pytest.raises(TypeError, match="expects a repro.graph.graph.Graph"):
            densest_subgraph([(1, 2), (2, 3)])

    def test_empty_graph_raises_with_pointer(self):
        with pytest.raises(ValueError, match="empty"):
            densest_subgraph(Graph())

    def test_nan_vertex_raises(self):
        g = Graph()
        g.add_edge(float("nan"), 1)
        with pytest.raises(ValueError, match="NaN"):
            densest_subgraph(g)

    def test_strict_false_keeps_legacy_empty_behaviour(self):
        result = densest_subgraph(Graph(), strict=False)
        assert result.vertices == set()
        assert result.density == 0.0

    def test_valid_graph_passes_the_gate(self):
        assert densest_subgraph(complete_graph(4), 2).density == 1.5

    def test_validation_happens_before_method_check(self):
        # the gate runs first, so a doubly-wrong call reports the input
        with pytest.raises(TypeError):
            densest_subgraph("not a graph", method="bogus")
