"""Tests for the array-backed flow engine and α-parametric reuse.

Three layers of guarantees:

* the two max-flow solvers agree on the value *and* on the source-side
  cut (the residual-reachability cut after any max flow is the unique
  minimal min cut, so exact solvers must return the same set);
* a :class:`~repro.flow.parametric.ParametricNetwork` re-solved across a
  binary search (warm starts, checkpoints, cancellation) returns the
  same cuts as a freshly built legacy network at every α;
* the exact algorithms give bit-identical results under
  ``flow_engine="reuse"`` and ``flow_engine="rebuild"``.
"""

import pytest

from repro.api import densest_subgraph
from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.core.pds import core_p_exact_densest, p_exact_densest
from repro.core.query_variant import query_densest
from repro.extensions.topk import top_k_densest
from repro.flow import dinic, push_relabel
from repro.flow.builders import (
    build_cds_network,
    build_cds_parametric,
    build_eds_network,
    build_eds_parametric,
    build_pds_network_grouped,
    build_pds_parametric,
    vertices_of_cut,
)
from repro.patterns.pattern import get_pattern

from .conftest import random_graph
from .test_flow import random_network


class TestSolverEquivalence:
    """Dinic and push–relabel must agree everywhere (50 random networks).

    This matrix doubles as the parity test for the highest-label /
    gap-relabeling discharge loop: instrumentation shows the gap branch
    fires 62 times across these 50 networks, and the chain test below
    pins a family where it always fires.
    """

    @pytest.mark.parametrize("seed", range(50))
    def test_same_value_and_same_source_side_cut(self, seed):
        a = random_network(seed, n=12 + seed % 7, arcs=30 + seed)
        b = random_network(seed, n=12 + seed % 7, arcs=30 + seed)
        value_a = dinic.max_flow(a)
        value_b = push_relabel.max_flow(b)
        assert value_a == pytest.approx(value_b, abs=1e-6)
        assert a.min_cut_source_side() == b.min_cut_source_side()

    @pytest.mark.parametrize("k", [4, 6, 8, 12])
    def test_gap_relabel_chain_parity(self, k):
        """Chains with a mid-path bottleneck and a low-capacity side
        pocket: saturating the bottleneck strands excess behind an
        emptied height level, so the gap heuristic must lift the
        stranded band to ``n + 1`` and drain it back -- and the residual
        state must still be a max *flow* with Dinic's exact cut."""
        from repro.flow.network import FlowNetwork

        def build() -> FlowNetwork:
            net = FlowNetwork("s", "t")
            net.add_arc("s", "c0", 10.0)
            for i in range(k - 1):
                cap = 0.5 if i == k // 2 else 10.0
                net.add_arc(f"c{i}", f"c{i + 1}", cap)
            net.add_arc(f"c{k - 1}", "t", 10.0)
            net.add_arc("c0", "p0", 3.0)
            net.add_arc("p0", "p1", 3.0)
            net.add_arc("p1", "c1", 0.25)
            return net

        a, b = build(), build()
        value_d = dinic.max_flow(a)
        value_p = push_relabel.max_flow(b)
        assert value_p == pytest.approx(value_d, abs=1e-9)
        assert b.min_cut_source_side() == a.min_cut_source_side()
        # a genuine flow, not a preflow: conservation holds everywhere,
        # so re-running a solver on the residual network pushes nothing
        assert push_relabel.max_flow(b) == pytest.approx(0.0, abs=1e-9)


def _binary_search_cuts(graph, make_parametric, make_legacy, high):
    """Drive a binary search on both engines; assert cuts agree at every α."""
    net = make_parametric()
    low = 0.0
    cut = net.solve(low)
    legacy = make_legacy(low)
    dinic.max_flow(legacy)
    assert cut == vertices_of_cut(legacy.min_cut_source_side())
    if cut:
        net.checkpoint()
    for _ in range(25):
        alpha = (low + high) / 2.0
        cut = net.solve(alpha)
        legacy = make_legacy(alpha)
        dinic.max_flow(legacy)
        assert cut == vertices_of_cut(legacy.min_cut_source_side())
        if cut:
            low = alpha
            net.checkpoint()
        else:
            high = alpha


class TestParametricMatchesFreshBuild:
    @pytest.mark.parametrize("seed", range(6))
    def test_eds(self, seed):
        g = random_graph(24, 70, seed)
        _binary_search_cuts(
            g,
            lambda: build_eds_parametric(g),
            lambda a: build_eds_network(g, a),
            float(g.max_degree()),
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_cds_h3(self, seed):
        g = random_graph(20, 60, seed + 100)
        _binary_search_cuts(
            g,
            lambda: build_cds_parametric(g, 3),
            lambda a: build_cds_network(g, 3, a),
            12.0,
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_pds_grouped(self, seed):
        from repro.cliques.enumeration import enumerate_cliques

        g = random_graph(20, 60, seed + 200)
        instances = [frozenset(c) for c in enumerate_cliques(g, 3)]
        if not instances:
            pytest.skip("no triangle instances in this seed")
        _binary_search_cuts(
            g,
            lambda: build_pds_parametric(g, 3, instances, grouped=True),
            lambda a: build_pds_network_grouped(g, 3, a, instances),
            float(g.max_degree()),
        )

    def test_set_alpha_rewrites_only_alpha_arcs(self):
        g = random_graph(12, 30, 3)
        net = build_eds_parametric(g)
        m = float(g.num_edges)
        net.set_alpha(2.0)
        net._uncancel()  # back to plain capacities + pass-through flow
        for arc_id, coeff, label_id in zip(
            net.alpha_arcs, net.alpha_coeff, range(len(net.vertex_labels))
        ):
            v = net.vertex_labels[label_id]
            expected = m + coeff * 2.0 - g.degree(v)
            # residual + flow (reverse residual) reconstructs the capacity
            assert net.cap[arc_id] + net.cap[arc_id ^ 1] == pytest.approx(expected)

    @pytest.mark.parametrize("seed", range(8))
    def test_push_relabel_solver_on_cancelled_anchored_network(self, seed):
        # regression: the big-M clamp must be computed from the whole
        # network's finite capacity, not the (possibly cancelled-to-zero)
        # residual source arcs, or infinite anchor arcs saturate
        g = random_graph(18, 50, seed + 500)
        anchor = next(iter(g.vertices()))
        for alpha in (0.5, 2.0, 5.0):
            net = build_eds_parametric(g, anchors=[anchor])
            cut = net.solve(alpha, solver=push_relabel)
            legacy = build_eds_network(g, alpha)
            from repro.flow.builders import SOURCE

            legacy.add_arc(SOURCE, ("v", anchor), float("inf"))
            dinic.max_flow(legacy)
            assert cut == vertices_of_cut(legacy.min_cut_source_side())
            assert anchor in cut

    def test_tiny_alpha_step_falls_back_to_cold_reset(self):
        g = random_graph(12, 30, 4)
        net = build_eds_parametric(g)
        net.solve(1.0)
        assert not net._warm_step_ok(1e-12)
        assert net._warm_step_ok(1e-3)

    @pytest.mark.parametrize("seed", range(8))
    def test_decreasing_alpha_retreat_matches_fresh_build(self, seed):
        """The GGT decreasing-α half: a random α walk (ups AND downs)
        must reproduce the cuts of cold builds at every step."""
        import random as _random

        g = random_graph(22, 65, seed + 700)
        net = build_eds_parametric(g)
        rng = _random.Random(seed)
        for _ in range(14):
            alpha = rng.uniform(0.0, g.max_degree())
            cut = net.solve(alpha)
            legacy = build_eds_network(g, alpha)
            dinic.max_flow(legacy)
            assert cut == vertices_of_cut(legacy.min_cut_source_side())

    @pytest.mark.parametrize("seed", range(4))
    def test_retreat_on_cds_network(self, seed):
        g = random_graph(18, 55, seed + 800)
        net = build_cds_parametric(g, 3)
        for alpha in (6.0, 1.5, 4.0, 0.25, 5.5, 0.75):
            cut = net.solve(alpha)
            legacy = build_cds_network(g, 3, alpha)
            dinic.max_flow(legacy)
            assert cut == vertices_of_cut(legacy.min_cut_source_side())


class TestBreakpointEngine:
    """GGT drivers: max_density and solve_breakpoints."""

    @pytest.mark.parametrize("seed", range(10))
    def test_max_density_matches_binary_search(self, seed):
        g = random_graph(20, 60, seed)
        net = build_eds_parametric(g)
        cut, alpha, solves = net.max_density(
            lambda s: g.subgraph(s).num_edges / len(s), low=0.0
        )
        ref = exact_densest(g, 2, flow_engine="rebuild")
        assert cut == ref.vertices
        assert alpha == ref.density
        # a parametric sweep, not a binary search: solves stays tiny
        assert solves < ref.iterations
        assert solves <= 8

    def test_max_density_infeasible_lower_bound(self):
        g = random_graph(14, 30, 2)
        opt = exact_densest(g, 2).density
        net = build_eds_parametric(g)
        cut, alpha, solves = net.max_density(
            lambda s: g.subgraph(s).num_edges / len(s), low=opt + 1.0
        )
        assert cut is None
        assert alpha == opt + 1.0
        assert solves == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_solve_breakpoints_covers_the_alpha_axis(self, seed):
        """The breakpoint list must reproduce every cold solve on a grid."""
        g = random_graph(16, 40, seed + 40)
        net = build_eds_parametric(g)
        high = float(g.max_degree())
        segments = net.solve_breakpoints(0.0, high)
        assert segments[0][0] == 0.0
        alphas = sorted(a for a, _ in segments)
        assert alphas == [a for a, _ in segments]  # sorted output
        probe = build_eds_parametric(g)
        for i in range(33):
            alpha = high * i / 32.0
            expected = segments[0][1]
            for bp_alpha, bp_cut in segments:
                if bp_alpha <= alpha + 1e-12:
                    expected = bp_cut
            assert probe.solve(alpha) == expected, (seed, alpha)

    def test_breakpoints_include_the_optimal_density(self):
        """ρ_opt is a breakpoint: the cut collapses when α crosses it."""
        g = random_graph(18, 50, 9)
        opt = exact_densest(g, 2).density
        net = build_eds_parametric(g)
        segments = net.solve_breakpoints(0.0, float(g.max_degree()))
        assert any(abs(alpha - opt) < 1e-9 for alpha, _ in segments)
        # above the last breakpoint the minimal cut is trivial
        assert segments[-1][1] == set()

    def test_cut_line_matches_cut_capacity(self):
        g = random_graph(14, 36, 5)
        net = build_eds_parametric(g)
        for alpha in (0.5, 1.5, 3.0):
            net.solve(alpha)
            a_term, b_term = net.cut_line()
            legacy = build_eds_network(g, alpha)
            value = dinic.max_flow(legacy)
            assert a_term + b_term * alpha == pytest.approx(value, rel=1e-9)


class TestFlowEngineBitIdentical:
    """α-reuse must not change any flow-dependent result."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("h", [2, 3])
    def test_core_exact(self, seed, h):
        g = random_graph(26, 80, seed)
        rebuilt = core_exact_densest(g, h, flow_engine="rebuild")
        reused = core_exact_densest(g, h, flow_engine="reuse")
        assert reused.vertices == rebuilt.vertices
        assert reused.density == rebuilt.density
        assert reused.iterations == rebuilt.iterations
        ggt = core_exact_densest(g, h, flow_engine="ggt")
        assert ggt.vertices == rebuilt.vertices
        assert ggt.density == rebuilt.density

    @pytest.mark.parametrize("seed", range(4))
    def test_exact(self, seed):
        g = random_graph(20, 55, seed + 50)
        rebuilt = exact_densest(g, 2, flow_engine="rebuild")
        reused = exact_densest(g, 2, flow_engine="reuse")
        assert reused.vertices == rebuilt.vertices
        assert reused.density == rebuilt.density
        ggt = exact_densest(g, 2, flow_engine="ggt")
        assert ggt.vertices == rebuilt.vertices
        assert ggt.density == rebuilt.density
        assert ggt.iterations < rebuilt.iterations

    @pytest.mark.parametrize("seed", range(3))
    def test_pds_exact(self, seed):
        g = random_graph(16, 40, seed + 300)
        pattern = get_pattern("triangle")
        rebuilt = p_exact_densest(g, pattern, flow_engine="rebuild")
        for engine in ("reuse", "ggt"):
            result = p_exact_densest(g, pattern, flow_engine=engine)
            assert result.vertices == rebuilt.vertices
            assert result.density == rebuilt.density
        core_rebuilt = core_p_exact_densest(g, pattern, flow_engine="rebuild")
        for engine in ("reuse", "ggt"):
            result = core_p_exact_densest(g, pattern, flow_engine=engine)
            assert result.vertices == core_rebuilt.vertices
            assert result.density == core_rebuilt.density

    @pytest.mark.parametrize("seed", range(3))
    def test_query_variant(self, seed):
        g = random_graph(22, 60, seed + 400)
        anchors = [next(iter(g.vertices()))]
        rebuilt = query_densest(g, anchors, flow_engine="rebuild")
        for engine in ("reuse", "ggt"):
            result = query_densest(g, anchors, flow_engine=engine)
            assert result.vertices == rebuilt.vertices
            assert result.density == rebuilt.density


class TestEngineKnob:
    def test_api_accepts_flow_engine(self):
        g = random_graph(15, 35, 9)
        result = densest_subgraph(g, 2, method="core-exact", flow_engine="rebuild")
        assert result.stats["flow_engine"] == "rebuild"
        result = densest_subgraph(g, 2, method="core-exact")
        assert result.stats["flow_engine"] == "ggt"  # the soaked-in default
        result = densest_subgraph(g, 2, method="core-exact", flow_engine="reuse")
        assert result.stats["flow_engine"] == "reuse"

    def test_unknown_engine_rejected(self):
        g = random_graph(10, 20, 1)
        with pytest.raises(ValueError):
            core_exact_densest(g, 2, flow_engine="bogus")
        with pytest.raises(ValueError):
            exact_densest(g, 2, flow_engine="bogus")

    def test_topk_threads_flow_engine(self):
        g = random_graph(18, 45, 5)
        results = top_k_densest(g, 2, method=core_exact_densest, flow_engine="reuse")
        assert results
        assert all(r.stats["flow_engine"] == "reuse" for r in results)

    def test_topk_threads_ggt(self):
        g = random_graph(18, 45, 5)
        via_ggt = top_k_densest(g, 2, method=core_exact_densest, flow_engine="ggt")
        via_reuse = top_k_densest(g, 2, method=core_exact_densest, flow_engine="reuse")
        assert [r.vertices for r in via_ggt] == [r.vertices for r in via_reuse]
        assert [r.density for r in via_ggt] == [r.density for r in via_reuse]
        assert all(r.stats["flow_engine"] == "ggt" for r in via_ggt)
