"""Tests for the ASCII chart renderer."""

from repro.experiments.plotting import _log_width, bar_chart, grouped_bar_chart


class TestLogWidth:
    def test_extremes(self):
        assert _log_width(1.0, 1.0, 100.0, 10) == 1
        assert _log_width(100.0, 1.0, 100.0, 10) == 10

    def test_midpoint_is_logarithmic(self):
        # 10 is the log-midpoint of [1, 100]
        assert _log_width(10.0, 1.0, 100.0, 11) == 6

    def test_zero_value(self):
        assert _log_width(0.0, 1.0, 100.0, 10) == 0

    def test_degenerate_range(self):
        assert _log_width(5.0, 5.0, 5.0, 10) == 10


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = bar_chart({"Exact": 10.0, "CoreExact": 0.01}, title="T")
        assert "T" in text and "Exact" in text and "10" in text

    def test_longer_bar_for_larger_value(self):
        text = bar_chart({"big": 100.0, "small": 0.1}, width=30)
        lines = {line.split()[0]: line.count("#") for line in text.splitlines()}
        assert lines["big"] > lines["small"]

    def test_empty(self):
        assert "(no data)" in bar_chart({})
        assert "(no data)" in bar_chart({"x": 0.0})


class TestGroupedBarChart:
    def test_groups_rendered(self):
        rows = [
            {"h": 2, "exact_s": 1.0, "core_s": 0.1},
            {"h": 3, "exact_s": 5.0, "core_s": 0.2},
        ]
        text = grouped_bar_chart(rows, "h", ["exact_s", "core_s"], title="fig")
        assert "h=2" in text and "h=3" in text
        assert text.count("exact_s") == 2

    def test_shared_scale_across_groups(self):
        rows = [{"h": 2, "a": 0.001}, {"h": 3, "a": 1000.0}]
        text = grouped_bar_chart(rows, "h", ["a"], width=20)
        bars = [line.count("#") for line in text.splitlines() if "a" in line and "#" in line]
        assert bars[0] == 1 and bars[1] == 20

    def test_missing_key_skipped(self):
        rows = [{"h": 2, "a": 1.0}]
        text = grouped_bar_chart(rows, "h", ["a", "b"])
        assert "b" not in text.replace("b=", "")

    def test_empty(self):
        assert "(no data)" in grouped_bar_chart([], "h", ["a"])
