"""Tests for the streaming (Bahmani et al.) extension."""

import math

import pytest

from repro.core.core_exact import core_exact_densest
from repro.extensions.streaming import streaming_densest
from repro.graph.graph import Graph, complete_graph

from .conftest import random_graph


class TestStreamingDensest:
    def test_exact_on_clique(self):
        result = streaming_densest(complete_graph(6))
        assert result.density == pytest.approx(2.5)

    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.5])
    def test_approximation_guarantee(self, epsilon):
        for seed in range(5):
            g = random_graph(30, 100, seed=seed)
            optimum = core_exact_densest(g, 2).density
            approx = streaming_densest(g, epsilon).density
            assert approx <= optimum + 1e-9
            assert approx >= optimum / (2.0 + 2.0 * epsilon) - 1e-9

    def test_pass_count_logarithmic(self):
        g = random_graph(200, 600, seed=1)
        result = streaming_densest(g, 0.5)
        # O(log n / eps) passes; generous constant
        assert result.iterations <= 10 * math.ceil(math.log(200) / 0.5)

    def test_fewer_passes_than_peeling(self):
        from repro.core.peel import peel_densest

        g = random_graph(150, 450, seed=2)
        batch = streaming_densest(g, 0.2)
        peel = peel_densest(g, 2)
        assert batch.iterations < peel.iterations

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            streaming_densest(Graph(), 0.0)

    def test_empty(self):
        assert streaming_densest(Graph()).density == 0.0

    def test_planted_clique_recovered(self):
        from repro.graph.generators import erdos_renyi_gnm, planted_clique

        base = erdos_renyi_gnm(120, 240, seed=3)
        g, members = planted_clique(base, 14, seed=4)
        result = streaming_densest(g, 0.1)
        assert set(members) <= result.vertices
