"""Tests for the streaming (Bahmani et al.) extension."""

import math

import pytest

from repro.core.core_exact import core_exact_densest
from repro.extensions.streaming import streaming_densest
from repro.graph.graph import Graph, complete_graph

from .conftest import random_graph


def _circulant(n: int, d: int) -> Graph:
    """A d-regular circulant graph: i ~ i ± 1, ..., i ± d/2 (d even)."""
    g = Graph(vertices=range(n))
    for i in range(n):
        for offset in range(1, d // 2 + 1):
            g.add_edge(i, (i + offset) % n)
    return g


class TestStreamingDensest:
    def test_exact_on_clique(self):
        result = streaming_densest(complete_graph(6))
        assert result.density == pytest.approx(2.5)

    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.5])
    def test_approximation_guarantee(self, epsilon):
        for seed in range(5):
            g = random_graph(30, 100, seed=seed)
            optimum = core_exact_densest(g, 2).density
            approx = streaming_densest(g, epsilon).density
            assert approx <= optimum + 1e-9
            assert approx >= optimum / (2.0 + 2.0 * epsilon) - 1e-9

    def test_pass_count_logarithmic(self):
        g = random_graph(200, 600, seed=1)
        result = streaming_densest(g, 0.5)
        # O(log n / eps) passes; generous constant
        assert result.iterations <= 10 * math.ceil(math.log(200) / 0.5)

    def test_fewer_passes_than_peeling(self):
        from repro.core.peel import peel_densest

        g = random_graph(150, 450, seed=2)
        batch = streaming_densest(g, 0.2)
        peel = peel_densest(g, 2)
        assert batch.iterations < peel.iterations

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            streaming_densest(Graph(), 0.0)

    def test_empty(self):
        assert streaming_densest(Graph()).density == 0.0

    def test_regular_graph_batch_peel_fires(self):
        """Regression: with the (1+ε)ρ threshold no vertex of a regular
        graph was ever doomed (deg d > (1+ε)·d/2 for ε < 1), so the
        "cannot happen" fallback peeled one vertex per pass and the
        extension silently degraded to O(n) passes.  The correct
        Bahmani et al. threshold 2(1+ε)ρ dooms every vertex of a
        d-regular graph at once."""
        n, eps = 64, 0.1
        g = _circulant(n, 4)  # 4-regular: rho = 2, threshold = 4.4 >= 4
        result = streaming_densest(g, eps)
        assert result.iterations == 1
        assert result.stats["pass_sizes"] == [n]
        assert result.density == pytest.approx(2.0)

    @pytest.mark.parametrize("n,d", [(128, 4), (256, 6)])
    def test_pass_count_logarithmic_on_regular_graphs(self, n, d):
        eps = 0.25
        result = streaming_densest(_circulant(n, d), eps)
        bound = math.ceil(math.log(n) / math.log(1.0 + eps)) + 1
        assert result.iterations <= bound  # O(log n / eps) ...
        assert result.iterations < n // 4  # ... and nowhere near O(n)
        # the batch peel genuinely removes >1 vertex per pass
        assert all(size > 1 for size in result.stats["pass_sizes"])

    def test_survivors_shrink_geometrically(self):
        """Each pass keeps fewer than n/(1+ε) of its n vertices."""
        eps = 0.3
        g = random_graph(200, 700, seed=11)
        result = streaming_densest(g, eps)
        alive = 200
        for size in result.stats["pass_sizes"]:
            survivors = alive - size
            assert survivors < alive / (1.0 + eps) + 1e-9
            alive = survivors
        assert alive == 0

    def test_planted_clique_recovered(self):
        from repro.graph.generators import erdos_renyi_gnm, planted_clique

        base = erdos_renyi_gnm(120, 240, seed=3)
        g, members = planted_clique(base, 14, seed=4)
        result = streaming_densest(g, 0.1)
        assert set(members) <= result.vertices
