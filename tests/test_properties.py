"""Property-based tests (hypothesis) for the paper's invariants.

Each property encodes a lemma or structural fact from the paper and is
checked on randomly drawn graphs:

* Theorem 1 density bounds of (k, Ψ)-cores,
* Lemma 5 upper bound ρ_opt <= kmax,
* Lemma 8 / Lemma 10 approximation guarantees,
* core nestedness, max-flow/min-cut duality, enumeration identities.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.cliques.enumeration import CliqueIndex, count_cliques
from repro.core.clique_core import clique_core_decomposition
from repro.core.core_app import core_app_densest
from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.core.inc_app import inc_app_densest
from repro.core.kcore import core_decomposition
from repro.core.peel import peel_densest
from repro.flow import dinic, push_relabel
from repro.flow.network import FlowNetwork
from repro.graph.graph import Graph


@st.composite
def graphs(draw, max_vertices: int = 16, max_extra_edges: int = 40) -> Graph:
    """Random simple graphs, connected-ish, small enough for exact runs."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_extra_edges,
        )
    )
    g = Graph(vertices=range(n))
    for u, v in edges:
        if u != v:
            g.add_edge(u, v)
    return g


@st.composite
def flow_networks(draw) -> FlowNetwork:
    n = draw(st.integers(min_value=2, max_value=8))
    arcs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.1, 10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=24,
        )
    )
    net = FlowNetwork("s", "t")
    names = ["s", "t"] + [f"n{i}" for i in range(max(n - 2, 0))]
    for u, v, c in arcs:
        if u != v and names[v] != "s" and names[u] != "t":
            net.add_arc(names[u], names[v], c)
    return net


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_theorem1_lower_bound(g: Graph):
    """Every non-empty (k, Ψ)-core has density >= k/|V_Ψ| (triangles)."""
    result = clique_core_decomposition(g, 3)
    for k in range(1, result.kmax + 1):
        sub = result.core_subgraph(g, k)
        if sub.num_vertices:
            assert count_cliques(sub, 3) / sub.num_vertices >= k / 3 - 1e-12


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_lemma5_rho_opt_at_most_kmax(g: Graph):
    result = clique_core_decomposition(g, 3)
    optimum = core_exact_densest(g, 3, decomposition=None).density
    assert optimum <= result.kmax + 1e-9


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=12, max_extra_edges=30))
def test_exact_equals_core_exact(g: Graph):
    for h in (2, 3):
        assert abs(exact_densest(g, h).density - core_exact_densest(g, h).density) < 1e-9


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_approximation_sandwich(g: Graph):
    """approx <= opt and approx >= opt/h for peel and the core methods."""
    h = 3
    optimum = core_exact_densest(g, h).density
    for algo in (peel_densest, inc_app_densest, core_app_densest):
        approx = algo(g, h).density
        assert approx <= optimum + 1e-9
        if optimum > 0:
            assert approx >= optimum / h - 1e-9


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_core_nestedness(g: Graph):
    result = clique_core_decomposition(g, 3)
    previous: set | None = None
    for k in range(result.kmax, -1, -1):
        members = {v for v, c in result.core.items() if c >= k}
        if previous is not None:
            assert previous <= members
        previous = members


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_clique_core_number_at_most_clique_degree(g: Graph):
    result = clique_core_decomposition(g, 3)
    degrees = CliqueIndex(g, 3).degrees()
    assert all(result.core[v] <= degrees[v] for v in g)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_h2_clique_core_is_classical_core(g: Graph):
    assert clique_core_decomposition(g, 2).core == core_decomposition(g)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_clique_degree_handshake(g: Graph):
    """Sum of clique-degrees = h * number of instances (triangles)."""
    index = CliqueIndex(g, 3)
    assert sum(index.degrees().values()) == 3 * index.num_alive


@settings(max_examples=40, deadline=None)
@given(flow_networks())
def test_dinic_agrees_with_push_relabel(net: FlowNetwork):
    snapshot = net.snapshot()
    a = dinic.max_flow(net)
    net.reset(snapshot)
    b = push_relabel.max_flow(net)
    assert math.isclose(a, b, rel_tol=1e-7, abs_tol=1e-7)


@settings(max_examples=40, deadline=None)
@given(flow_networks())
def test_max_flow_equals_min_cut(net: FlowNetwork):
    snapshot = net.snapshot()
    value = dinic.max_flow(net)
    side = net.min_cut_source_side()
    ids = {net.node_id(x) for x in side}
    cut = sum(
        snapshot[arc]
        for arc in range(0, len(net.head), 2)
        if net.head[arc ^ 1] in ids and net.head[arc] not in ids
    )
    assert math.isclose(value, cut, rel_tol=1e-7, abs_tol=1e-7)


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=12, max_extra_edges=26))
def test_pattern_count_symmetry_star(g: Graph):
    """2-star count via formula == via enumeration on random graphs."""
    from repro.patterns.degree import pattern_degrees, star_degrees
    from repro.patterns.pattern import get_pattern

    assert star_degrees(g, 2) == pattern_degrees(g, get_pattern("2-star"))


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=12, max_extra_edges=26))
def test_peel_result_is_subset_of_graph(g: Graph):
    result = peel_densest(g, 2)
    assert result.vertices <= set(g.vertices())
    sub = g.subgraph(result.vertices)
    if sub.num_vertices:
        assert abs(sub.edge_density() - result.density) < 1e-9


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=12, max_extra_edges=30))
def test_lemma3_cds_components_equal_density(g: Graph):
    """Connected components of a CDS share its density (Lemma 3)."""
    result = exact_densest(g, 2)
    if not result.vertices or result.density == 0.0:
        return
    sub = g.subgraph(result.vertices)
    for component in sub.connected_components():
        comp = sub.subgraph(component)
        assert abs(comp.edge_density() - result.density) < 1e-6


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=12, max_extra_edges=30))
def test_lemma7_cds_inside_core(g: Graph):
    """The CDS is contained in the (ceil(rho_opt), Ψ)-core (Lemma 7)."""
    h = 3
    result = core_exact_densest(g, h)
    if result.density <= 0.0:
        return
    decomposition = clique_core_decomposition(g, h)
    k = math.ceil(result.density - 1e-9)
    core_members = {v for v, c in decomposition.core.items() if c >= k}
    assert result.vertices <= core_members


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=12, max_extra_edges=30))
def test_streaming_guarantee_property(g: Graph):
    """Bahmani et al.: batch peeling is a 1/(2+2eps)-approximation."""
    from repro.extensions.streaming import streaming_densest

    eps = 0.25
    optimum = core_exact_densest(g, 2).density
    approx = streaming_densest(g, eps).density
    assert approx <= optimum + 1e-9
    assert approx >= optimum / (2.0 + 2.0 * eps) - 1e-9
