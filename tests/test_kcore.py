"""Tests for classical k-core decomposition."""

import networkx as nx
import pytest

from repro.core.kcore import core_decomposition, degeneracy, k_core, max_core
from repro.graph.graph import Graph, complete_graph, path_graph

from .conftest import random_graph, to_networkx


class TestCoreDecomposition:
    def test_complete_graph(self):
        core = core_decomposition(complete_graph(5))
        assert all(c == 4 for c in core.values())

    def test_tree_cores_are_one(self):
        core = core_decomposition(path_graph(8))
        assert all(c == 1 for c in core.values())

    def test_figure3_example(self, paper_figure3_graph):
        core = core_decomposition(paper_figure3_graph)
        assert core["A"] == core["B"] == core["C"] == core["D"] == 3
        assert core["E"] == core["F"] == core["G"] == 2
        assert core["H"] == 1

    def test_empty(self):
        assert core_decomposition(Graph()) == {}

    def test_isolated_vertex(self):
        g = Graph([(0, 1)], vertices=[7])
        assert core_decomposition(g)[7] == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx(self, seed):
        g = random_graph(50, 140, seed=seed)
        assert core_decomposition(g) == nx.core_number(to_networkx(g))

    def test_min_degree_property(self):
        g = random_graph(40, 120, seed=11)
        core = core_decomposition(g)
        for k in range(max(core.values()) + 1):
            sub = g.subgraph(v for v, c in core.items() if c >= k)
            if sub.num_vertices:
                assert min(sub.degree(v) for v in sub) >= k

    def test_nestedness(self):
        g = random_graph(40, 120, seed=12)
        core = core_decomposition(g)
        kmax = max(core.values())
        previous = None
        for k in range(kmax, -1, -1):
            members = {v for v, c in core.items() if c >= k}
            if previous is not None:
                assert previous <= members
            previous = members


class TestCoreSubgraphs:
    def test_k_core_subgraph(self, paper_figure3_graph):
        sub = k_core(paper_figure3_graph, 3)
        assert set(sub.vertices()) == {"A", "B", "C", "D"}

    def test_max_core(self, paper_figure3_graph):
        kmax, sub = max_core(paper_figure3_graph)
        assert kmax == 3
        assert sub.num_vertices == 4

    def test_max_core_empty(self):
        kmax, sub = max_core(Graph())
        assert kmax == 0
        assert sub.num_vertices == 0

    def test_degeneracy_equals_kmax(self):
        g = random_graph(45, 130, seed=13)
        core = core_decomposition(g)
        assert degeneracy(g) == max(core.values())

    def test_k_core_may_be_disconnected(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 5)])
        sub = k_core(g, 2)
        assert len(sub.connected_components()) == 2
