"""Tests for the pattern catalogue, isomorphism matcher and degrees."""

import math

import pytest

from repro.graph.graph import Graph, complete_graph, cycle_graph, path_graph, star_graph
from repro.patterns.degree import (
    c4_degrees,
    fast_pattern_degrees,
    pattern_degrees,
    star_degrees,
)
from repro.patterns.isomorphism import (
    count_pattern_instances,
    enumerate_pattern_instances,
    instance_vertices,
    pattern_density,
)
from repro.patterns.pattern import (
    Pattern,
    clique_pattern,
    get_pattern,
    pattern_names,
    star_pattern,
)

from .conftest import random_graph


class TestCatalogue:
    def test_all_names_resolve(self):
        for name in pattern_names():
            pattern = get_pattern(name)
            assert pattern.size >= 2
            assert pattern.graph.is_connected()

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown pattern"):
            get_pattern("pentagon-house")

    @pytest.mark.parametrize(
        "name,size,edges",
        [
            ("edge", 2, 1),
            ("2-star", 3, 2),
            ("triangle", 3, 3),
            ("3-star", 4, 3),
            ("c3-star", 4, 4),
            ("diamond", 4, 4),
            ("2-triangle", 4, 5),
            ("4-clique", 4, 6),
            ("3-triangle", 5, 7),
            ("basket", 5, 6),
        ],
    )
    def test_shapes(self, name, size, edges):
        pattern = get_pattern(name)
        assert (pattern.size, pattern.num_edges) == (size, edges)

    def test_is_clique(self):
        assert get_pattern("4-clique").is_clique()
        assert not get_pattern("diamond").is_clique()

    def test_subpattern_relation_c3star_2triangle(self):
        # the paper: c3-star ⊆ 2-triangle with equal vertex count
        c3 = get_pattern("c3-star")
        tt = get_pattern("2-triangle")
        assert c3.size == tt.size
        assert c3.num_edges < tt.num_edges

    def test_automorphism_counts(self):
        assert get_pattern("edge").automorphism_count() == 2
        assert get_pattern("triangle").automorphism_count() == 6
        assert get_pattern("diamond").automorphism_count() == 8  # dihedral D4
        assert get_pattern("2-star").automorphism_count() == 2
        assert get_pattern("3-star").automorphism_count() == 6

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            Pattern("disconnected", Graph([(0, 1), (2, 3)]))
        with pytest.raises(ValueError):
            Pattern("single", Graph(vertices=[0]))

    def test_clique_pattern_names(self):
        assert clique_pattern(2).name == "edge"
        assert clique_pattern(3).name == "triangle"
        assert clique_pattern(5).name == "5-clique"

    def test_star_pattern(self):
        assert star_pattern(4).size == 5


class TestEnumeration:
    def test_diamond_in_k4(self):
        # K4 contains exactly three 4-cycles
        assert count_pattern_instances(complete_graph(4), get_pattern("diamond")) == 3

    def test_two_triangle_in_k4(self):
        # six ways to drop one edge of K4
        assert count_pattern_instances(complete_graph(4), get_pattern("2-triangle")) == 6

    def test_counts_match_automorphism_formula_on_cliques(self):
        # instances in K_n = #injections / |Aut| for any pattern
        g = complete_graph(5)
        for name in ("2-star", "c3-star", "diamond", "2-triangle", "basket"):
            pattern = get_pattern(name)
            h = pattern.size
            injections = math.perm(5, h)
            expected = injections // pattern.automorphism_count()
            assert count_pattern_instances(g, pattern) == expected, name

    def test_clique_patterns_match_clique_enumeration(self):
        from repro.cliques.enumeration import count_cliques

        g = random_graph(15, 45, seed=1)
        for h in (2, 3, 4):
            assert count_pattern_instances(g, clique_pattern(h)) == count_cliques(g, h)

    def test_non_induced_semantics(self):
        # a 2-star embeds into a triangle even though the tails are adjacent
        assert count_pattern_instances(complete_graph(3), get_pattern("2-star")) == 3

    def test_instance_edges_exist(self):
        g = random_graph(12, 30, seed=2)
        for inst in enumerate_pattern_instances(g, get_pattern("c3-star")):
            for edge in inst:
                u, v = tuple(edge)
                assert g.has_edge(u, v)

    def test_instances_unique(self):
        g = random_graph(12, 32, seed=3)
        instances = enumerate_pattern_instances(g, get_pattern("diamond"))
        assert len(set(instances)) == len(instances)

    def test_instance_vertices(self):
        inst = frozenset([frozenset((1, 2)), frozenset((2, 3))])
        assert instance_vertices(inst) == frozenset({1, 2, 3})

    def test_no_instances_in_too_small_graph(self):
        assert count_pattern_instances(path_graph(2), get_pattern("basket")) == 0

    def test_basket_in_house(self):
        house = get_pattern("basket").graph
        assert count_pattern_instances(house, get_pattern("basket")) == 1

    def test_three_triangle_in_book(self):
        book = get_pattern("3-triangle").graph
        assert count_pattern_instances(book, get_pattern("3-triangle")) == 1

    def test_pattern_density(self):
        assert pattern_density(complete_graph(4), get_pattern("diamond")) == pytest.approx(0.75)
        assert pattern_density(Graph(), get_pattern("edge")) == 0.0


class TestDegrees:
    def test_generic_degrees_sum(self):
        g = random_graph(14, 40, seed=4)
        for name in ("2-star", "diamond", "c3-star"):
            pattern = get_pattern(name)
            degrees = pattern_degrees(g, pattern)
            total = count_pattern_instances(g, pattern)
            assert sum(degrees.values()) == pattern.size * total

    def test_star_degrees_formula_on_star(self):
        g = star_graph(5)  # centre 0
        degrees = star_degrees(g, 3)
        assert degrees[0] == math.comb(5, 3)
        assert degrees[1] == math.comb(4, 2)  # tail of centre stars

    @pytest.mark.parametrize("tails", [2, 3])
    def test_star_degrees_match_generic(self, tails):
        g = random_graph(16, 45, seed=5)
        assert star_degrees(g, tails) == pattern_degrees(g, star_pattern(tails))

    def test_c4_degrees_on_cycle(self):
        degrees = c4_degrees(cycle_graph(4))
        assert all(d == 1 for d in degrees.values())

    def test_c4_degrees_match_generic(self):
        g = random_graph(16, 45, seed=6)
        assert c4_degrees(g) == pattern_degrees(g, get_pattern("diamond"))

    def test_fast_dispatch_falls_back(self):
        g = random_graph(12, 30, seed=7)
        pattern = get_pattern("c3-star")
        assert fast_pattern_degrees(g, pattern) == pattern_degrees(g, pattern)

    def test_star_degrees_validation(self):
        with pytest.raises(ValueError):
            star_degrees(Graph(), 1)


class TestInducedInstances:
    def test_no_induced_diamond_in_k4(self):
        # every C4 in K4 has both chords present
        assert count_pattern_instances(complete_graph(4), get_pattern("diamond"), induced=True) == 0

    def test_induced_diamond_in_plain_cycle(self):
        assert count_pattern_instances(cycle_graph(4), get_pattern("diamond"), induced=True) == 1

    def test_induced_2star_excludes_triangles(self):
        # in a triangle no 2-star is induced (the tails are adjacent)
        assert count_pattern_instances(complete_graph(3), get_pattern("2-star"), induced=True) == 0
        g = Graph([(0, 1), (1, 2)])
        assert count_pattern_instances(g, get_pattern("2-star"), induced=True) == 1

    def test_induced_subset_of_non_induced(self):
        g = random_graph(12, 34, seed=8)
        for name in ("2-star", "diamond", "c3-star"):
            pattern = get_pattern(name)
            induced = set(enumerate_pattern_instances(g, pattern, induced=True))
            plain = set(enumerate_pattern_instances(g, pattern))
            assert induced <= plain

    def test_cliques_unaffected_by_induced_flag(self):
        g = random_graph(12, 34, seed=9)
        pattern = get_pattern("triangle")
        assert count_pattern_instances(g, pattern, induced=True) == count_pattern_instances(
            g, pattern
        )
