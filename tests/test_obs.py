"""Tests for the observability layer (:mod:`repro.obs`).

Covers the span/event/counter primitives, the trace <-> legacy-stats
reconciliation contract (stats are built *from* span durations, so the
floats must be identical), counter determinism across the accel
dispatch tiers, the JSONL schema round-trip, and the disabled-tracing
overhead guard.
"""

from __future__ import annotations

import io
import json
import random
import time

import pytest

from repro import accel, api, obs
from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.graph.graph import Graph, complete_graph
from repro.obs.validate import validate_records


@pytest.fixture(autouse=True)
def _clean_tracing():
    """Every test starts and ends with tracing off and a clean collector."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _random_graph(n: int, m: int, seed: int) -> Graph:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph(sorted(edges))


# --- primitives -------------------------------------------------------


def test_span_nesting_order_and_depth():
    obs.enable()
    with obs.span("outer"):
        with obs.span("inner.a"):
            pass
        with obs.span("inner.b", tag=7):
            pass
    spans = obs.get_collector().spans()
    # spans record on *exit*: children close before their parent
    assert [s["name"] for s in spans] == ["inner.a", "inner.b", "outer"]
    by_name = {s["name"]: s for s in spans}
    assert by_name["outer"]["depth"] == 0
    assert by_name["outer"]["parent"] is None
    assert by_name["inner.a"]["depth"] == 1
    assert by_name["inner.a"]["parent"] == "outer"
    assert by_name["inner.b"]["parent"] == "outer"
    assert by_name["inner.b"]["attrs"] == {"tag": 7}
    # seq strictly increases in record order
    seqs = [s["seq"] for s in spans]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_span_times_even_when_disabled():
    assert not obs.enabled()
    with obs.span("quiet") as sp:
        time.sleep(0.001)
    assert sp.seconds >= 0.001
    assert obs.get_collector().records == []  # nothing recorded


def test_event_and_counter_noop_when_disabled():
    obs.event("never", x=1)
    obs.counter("never", 5)
    assert obs.get_collector().records == []
    assert obs.get_collector().counters == {}


def test_counters_accumulate():
    obs.enable()
    obs.counter("k")
    obs.counter("k", 4)
    assert obs.get_collector().counters == {"k": 5}


def test_enable_fresh_clears_collector():
    obs.enable()
    obs.event("stale")
    obs.enable(fresh=True)
    assert obs.get_collector().records == []
    obs.event("kept")
    obs.enable(fresh=False)
    assert len(obs.get_collector().events()) == 1


# --- solver integration ----------------------------------------------


def test_flow_solve_events_have_required_fields():
    graph = _random_graph(50, 220, seed=11)
    obs.enable()
    api.densest_subgraph(graph, 2, method="exact")
    events = obs.get_collector().events(obs.FLOW_SOLVE)
    assert events, "exact solve must emit flow.solve events"
    for ev in events:
        fields = ev["fields"]
        for key in ("alpha", "mode", "tier", "nodes", "arcs", "seconds"):
            assert key in fields, key
        assert fields["mode"] in obs.WARM_MODES + ("cold",)
        assert fields["tier"] in ("numba", "numba-interp", "numpy", "python")
    # the GGT walk re-solves one network: after the cold start, warm modes
    modes = [ev["fields"]["mode"] for ev in events]
    assert modes[0] == "cold"
    assert any(m in obs.WARM_MODES for m in modes[1:])


def test_stats_backward_compat_and_reconciliation():
    """Legacy stats keys survive, and their floats equal the span durations."""
    graph = _random_graph(60, 260, seed=5)
    obs.enable()
    exact = exact_densest(graph, 2)
    core = core_exact_densest(graph, 3)
    col = obs.get_collector()

    for key in ("network_sizes", "enumeration_seconds", "flow_seconds"):
        assert key in exact.stats, key
    for key in (
        "network_sizes", "decomposition_seconds", "enumeration_seconds",
        "flow_seconds", "total_seconds", "kmax", "k_locate",
        "located_vertices", "flow_engine",
    ):
        assert key in core.stats, key

    # exact reconciliation: the stats floats ARE the span durations
    assert exact.stats["flow_seconds"] == col.spans("exact.flow")[-1]["dur_s"]
    assert (
        exact.stats["enumeration_seconds"]
        == col.spans("exact.enumeration")[-1]["dur_s"]
    )
    assert core.stats["flow_seconds"] == col.spans("core_exact.flow")[-1]["dur_s"]
    enum_sp = col.spans("core_exact.enumeration")[-1]["dur_s"]
    decomp_sp = col.spans("core_exact.decomposition")[-1]["dur_s"]
    assert core.stats["enumeration_seconds"] == enum_sp
    assert core.stats["decomposition_seconds"] == enum_sp + decomp_sp
    # total still covers the phases
    assert core.stats["total_seconds"] >= core.stats["flow_seconds"]


def test_summary_flow_rollup_consistent():
    graph = _random_graph(60, 260, seed=5)
    obs.enable()
    exact_densest(graph, 2)
    summary = obs.summary()
    flow = summary["flow"]
    events = obs.get_collector().events(obs.FLOW_SOLVE)
    assert flow["solves"] == len(events)
    assert flow["warm"] + flow["cold"] == flow["solves"]
    assert sum(flow["modes"].values()) == flow["solves"]
    assert flow["bfs_passes"] == sum(
        ev["fields"].get("bfs_passes", 0) for ev in events
    )
    # env fingerprint rides along for comparability
    for key in ("python", "numba_available", "active_tier", "kernel_tiers"):
        assert key in summary["env"], key


def test_summary_wall_is_interval_union_of_overlapping_worker_spans():
    """Merged parallel spans overlap: total_s sums work, wall_s dedups.

    Regression for the fig8/bench wall-clock derivation: before spans
    carried ``t0_s``, a summary over merged worker traces double-counted
    concurrent flow time, making parallel runs look *slower* than
    serial.  ``wall_s`` must be the union length of the span intervals.
    """
    obs.enable(fresh=True)

    def child(seq_t0: float) -> list[dict]:
        return [{
            "type": "span", "name": "core_exact.flow", "seq": 1, "depth": 0,
            "parent": None, "t0_s": seq_t0, "dur_s": 2.0,
        }]

    obs.merge_child_records(child(100.0), {}, 0)
    obs.merge_child_records(child(101.0), {}, 1)  # overlaps [101, 103)
    obs.merge_child_records(child(200.0), {}, 0)  # disjoint [200, 202)
    agg = obs.summary()["spans"]["core_exact.flow"]
    obs.disable()
    assert agg["count"] == 3
    assert agg["total_s"] == pytest.approx(6.0)  # the summed work
    assert agg["wall_s"] == pytest.approx(5.0)  # union: [100,103) + [200,202)


def test_summary_wall_equals_total_on_serial_traces():
    obs.enable(fresh=True)
    with obs.span("solo"):
        time.sleep(0.002)
    with obs.span("solo"):
        time.sleep(0.002)
    agg = obs.summary()["spans"]["solo"]
    obs.disable()
    assert agg["wall_s"] == pytest.approx(agg["total_s"])


@pytest.mark.parametrize("tier", accel.available_tiers())
def test_counter_determinism_across_tiers(tier):
    """Work counters are tier-invariant: identical traversals, identical counts."""
    graph = _random_graph(48, 200, seed=23)
    accel.select_tier(tier)
    try:
        obs.enable()
        core_exact_densest(graph, 2)
        counters = {
            k: v for k, v in obs.get_collector().counters.items()
            if not k.endswith("seconds")
        }
        events = [
            {
                k: v for k, v in ev["fields"].items()
                if k not in ("seconds", "tier", "bfs_mode")
            }
            for ev in obs.get_collector().events(obs.FLOW_SOLVE)
        ]
        obs.disable()
    finally:
        accel.select_tier(None)

    if not hasattr(test_counter_determinism_across_tiers, "_reference"):
        test_counter_determinism_across_tiers._reference = (counters, events)
    else:
        ref_counters, ref_events = test_counter_determinism_across_tiers._reference
        assert counters == ref_counters
        assert events == ref_events


# --- JSONL sink + schema ---------------------------------------------


def test_jsonl_sink_schema_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs.enable(sink=str(path))
    api.densest_subgraph(complete_graph(7), 3, method="core-exact")
    obs.close()
    obs.disable()

    lines = path.read_text(encoding="utf-8").splitlines()
    count, errors = validate_records(lines)
    assert errors == [], errors
    kinds = [json.loads(line)["type"] for line in lines]
    assert kinds[0] == "meta"
    assert kinds[-1] == "summary"
    assert "span" in kinds and "event" in kinds


def test_jsonl_filelike_sink():
    buf = io.StringIO()
    obs.enable(sink=buf)
    with obs.span("x"):
        obs.event("y", v=1)
    obs.close()
    obs.disable()
    count, errors = validate_records(buf.getvalue().splitlines())
    assert errors == [], errors
    assert count == 4  # meta, event, span, summary


def test_validate_rejects_bad_records():
    bad = [
        json.dumps({"type": "meta", "env": {}}),  # missing env keys
        json.dumps({"type": "span", "name": 3}),  # wrong types
        json.dumps(
            {
                "type": "event", "name": "flow.solve", "seq": 1, "depth": 0,
                "fields": {"mode": "teleport"},  # unknown mode, missing keys
            }
        ),
        "not json",
    ]
    _, errors = validate_records(bad)
    assert len(errors) >= 4


# --- overhead guard ---------------------------------------------------


@pytest.mark.parametrize("tier", accel.available_tiers())
def test_disabled_overhead_within_budget(tier):
    """Disabled tracing costs <= 2% of a bench-smoke cell on every tier.

    Non-flaky by construction: instead of differencing two noisy
    end-to-end timings, multiply the *measured* per-call cost of the
    disabled primitives by the instrumentation call volume of the cell
    (counted from one enabled run) and compare against the cell's
    disabled wall time.
    """
    graph = _random_graph(70, 320, seed=3)
    accel.select_tier(tier)
    try:
        # instrumentation volume of one run, counted with tracing on
        obs.enable()
        core_exact_densest(graph, 3)
        col = obs.get_collector()
        spans = len(col.spans())
        events = len(col.events())
        # counter() call count: the dispatchers make <= 3 per kernel
        # call, the solve telemetry 2 per solve
        kernel_calls = sum(
            v for k, v in col.counters.items() if k.endswith(".calls")
        )
        counter_calls = 3 * kernel_calls + 2 * col.counters.get("flow.solves", 0)
        obs.disable()
        volume = spans + events + counter_calls

        # per-call cost of the disabled primitives (max of the three)
        reps = 20_000
        start = time.perf_counter()
        for _ in range(reps):
            with obs.span("probe"):
                pass
        span_cost = (time.perf_counter() - start) / reps
        start = time.perf_counter()
        for _ in range(reps):
            obs.event("probe", a=1)
        event_cost = (time.perf_counter() - start) / reps
        start = time.perf_counter()
        for _ in range(reps):
            obs.counter("probe")
        counter_cost = (time.perf_counter() - start) / reps
        per_call = max(span_cost, event_cost, counter_cost)

        # the cell's wall time with tracing off (best of 3)
        wall = min(
            timeit_once(core_exact_densest, graph, 3) for _ in range(3)
        )
    finally:
        accel.select_tier(None)

    overhead = per_call * volume
    assert overhead <= 0.02 * wall, (
        f"tier={tier}: modelled disabled-tracing overhead {overhead * 1e6:.1f}us "
        f"exceeds 2% of the {wall * 1e3:.2f}ms cell "
        f"(volume={volume}, per_call={per_call * 1e9:.0f}ns)"
    )


def timeit_once(fn, *args, **kwargs) -> float:
    start = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - start
