"""Tests for the CSR backend and its numpy kernels."""

import pytest

pytest.importorskip("numpy", reason="the CSR backend is numpy-only")

from repro.cliques.enumeration import clique_degrees
from repro.core.kcore import core_decomposition
from repro.graph.csr import CSRGraph, core_numbers, triangle_count, triangle_degrees
from repro.graph.graph import Graph, complete_graph, cycle_graph

from .conftest import random_graph


class TestCSRStructure:
    def test_round_trip_counts(self):
        g = random_graph(30, 90, seed=1)
        csr = CSRGraph(g)
        assert csr.num_vertices == g.num_vertices
        assert csr.num_edges == g.num_edges

    def test_neighbors_sorted_and_correct(self):
        g = random_graph(20, 55, seed=2)
        csr = CSRGraph(g)
        for v in g:
            i = csr.index_of(v)
            nbrs = [csr.vertices[j] for j in csr.neighbors_of(i)]
            assert set(nbrs) == g.neighbors(v)
            assert list(csr.neighbors_of(i)) == sorted(csr.neighbors_of(i))

    def test_degree_array(self):
        g = random_graph(15, 40, seed=3)
        csr = CSRGraph(g)
        degrees = csr.degree_array()
        for v in g:
            assert degrees[csr.index_of(v)] == g.degree(v)

    def test_empty_graph(self):
        csr = CSRGraph(Graph())
        assert csr.num_vertices == 0
        assert core_numbers(csr) == {}

    def test_string_labels(self):
        g = Graph([("a", "b"), ("b", "c")])
        csr = CSRGraph(g)
        assert core_numbers(csr) == {"a": 1, "b": 1, "c": 1}


class TestCoreNumbers:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_pure_python(self, seed):
        g = random_graph(60, 200, seed=seed)
        assert core_numbers(CSRGraph(g)) == core_decomposition(g)

    def test_complete_graph(self):
        assert set(core_numbers(CSRGraph(complete_graph(6))).values()) == {5}

    def test_isolated_vertices(self):
        g = Graph([(0, 1)], vertices=[9])
        assert core_numbers(CSRGraph(g))[9] == 0


class TestTriangles:
    @pytest.mark.parametrize("seed", range(5))
    def test_degrees_match_enumeration(self, seed):
        g = random_graph(35, 140, seed=seed)
        assert triangle_degrees(CSRGraph(g)) == clique_degrees(g, 3)

    def test_count_on_k5(self):
        assert triangle_count(CSRGraph(complete_graph(5))) == 10

    def test_no_triangles_in_cycle(self):
        assert triangle_count(CSRGraph(cycle_graph(8))) == 0
