"""Smoke tests for the experiment modules (tiny scales).

Each paper artefact's generator must run end-to-end and produce rows
with the expected columns; density/agreement assertions inside the
modules double as correctness checks on realistic surrogate graphs.
"""

from repro.experiments import (
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13_14,
    fig15_16,
    fig20,
    harness,
    table2,
    table3,
    table4,
    table5,
)

SCALE = 0.08  # tiny surrogates: smoke-test speed over fidelity


class TestHarness:
    def test_timed(self):
        value, seconds = harness.timed(sum, [1, 2, 3])
        assert value == 6
        assert seconds >= 0.0

    def test_format_table(self):
        text = harness.format_table([{"a": 1, "b": 2.5}, {"a": 10}], title="T")
        assert "T" in text and "a" in text and "2.5" in text and "-" in text

    def test_format_empty(self):
        assert "(no rows)" in harness.format_table([])

    def test_truncate_graph(self):
        from repro.graph.generators import erdos_renyi_gnm

        g = erdos_renyi_gnm(50, 100, seed=1)
        t = harness.truncate_graph(g, 10)
        assert t.num_vertices == 10


class TestArtefacts:
    def test_table2(self):
        rows = table2.run(names=["Yeast", "ER"], scale=SCALE)
        assert len(rows) == 2
        assert {"dataset", "n", "m", "kmax", "tri_kmax"} <= set(rows[0])

    def test_fig8_exact(self):
        rows = fig8.run_exact(["Yeast"], h_values=(2, 3), scale=SCALE)
        assert len(rows) == 2
        assert all(r["core_exact_s"] > 0 for r in rows)

    def test_fig8_approx(self):
        rows = fig8.run_approx(["DBLP"], h_values=(2, 3), scale=0.03)
        assert len(rows) == 2
        assert all("core_app_s" in r for r in rows)

    def test_fig9(self):
        rows = fig9.run("Ca-HepTh", h_values=(2, 3), scale=SCALE)
        iters = [r["iteration"] for r in rows if r["h"] == 2]
        assert iters[0] == -1
        # core location must not enlarge the network
        first = next(r for r in rows if r["h"] == 2 and r["iteration"] == 0)
        full = next(r for r in rows if r["h"] == 2 and r["iteration"] == -1)
        assert first["network_nodes"] <= full["network_nodes"]

    def test_fig10(self):
        rows = fig10.run("As-733", h_values=(2,), scale=SCALE)
        assert {"P1_s", "P2_s", "P3_s", "CoreExact_s"} <= set(rows[0])

    def test_table3(self):
        rows = table3.run(("As-733",), h_values=(2, 3), scale=SCALE)
        assert "h=2" in rows[0] and rows[0]["h=2"].endswith("%")

    def test_table4(self):
        rows = table4.run(["DBLP"], scale=0.05)
        assert rows[0]["kmax"] > 0

    def test_fig11(self):
        rows = fig11.run(("Netscience",), h_values=(2, 3), scale=0.3)
        for r in rows:
            assert r["core_app_ratio"] <= 1.0 + 1e-9
            assert r["core_app_ratio"] >= r["theoretical"] - 1e-9
            assert r["peel_ratio"] <= 1.0 + 1e-9

    def test_fig12(self):
        rows = fig12.run(("Ca-HepTh",), h_values=(2,), scale=SCALE)
        assert rows[0]["core_exact_s"] > 0

    def test_fig13(self):
        rows = fig13_14.run_exact(("ER",), h_values=(2,), scale=0.05)
        assert rows[0]["speedup"] > 0

    def test_fig14(self):
        rows = fig13_14.run_approx(("SSCA", "ER"), h_values=(2,), scale=0.05)
        coverage = {r["family"]: r["core_coverage"] for r in rows}
        # ER's kmax-core covers far more of the graph than SSCA's
        assert coverage["ER"] > coverage["SSCA"]

    def test_table5(self):
        rows = table5.run(("S-DBLP",), h_values=(2, 3), patterns=("2-star",), scale=0.5)
        row = rows[0]
        assert row["3clique_rho_opt"] >= row["3clique_on_EDS"] - 1e-9
        assert row["2-star_rho_opt"] >= row["2-star_on_EDS"] - 1e-9

    def test_fig15(self):
        rows = fig15_16.run_exact(("As-733",), patterns=("2-star", "diamond"), scale=SCALE)
        assert len(rows) == 2

    def test_fig16(self):
        rows = fig15_16.run_approx(("DBLP",), patterns=("2-star",), scale=0.02)
        assert rows[0]["core_app_s"] > 0

    def test_fig20(self):
        rows = fig20.run(scale=0.02, h_values=(2,))
        assert len(rows) == 3
