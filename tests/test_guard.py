"""The resilience layer: budgets, degradation, failover, faults, sanitizer."""

import math
import random
import subprocess
import sys
import time
import warnings

import pytest

from repro import accel, guard, obs
from repro.api import densest_subgraph
from repro.cliques.index import CliqueIndex
from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.core.peel import peel_densest
from repro.flow.builders import build_eds_network, build_eds_parametric
from repro.flow import dinic
from repro.graph.graph import Graph, complete_graph
from repro.guard import faults, sanitize


needs_numpy = pytest.mark.skipif(
    "numpy" not in accel.available_tiers(),
    reason="numpy unavailable: no tier to fail over from",
)


def random_graph(n, m, seed=0):
    rng = random.Random(seed)
    g = Graph()
    while g.num_edges < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    return g


def subgraph_density(g, vertices, h):
    if not vertices:
        return 0.0
    sub = g.subgraph(vertices)
    if h == 2:
        return sub.num_edges / sub.num_vertices
    return CliqueIndex(sub, h).m / len(vertices)


@pytest.fixture(autouse=True)
def _clean_guard_state():
    yield
    faults.reset()
    accel.select_tier(None)
    guard.disable_checks()
    assert guard.ACTIVE is None


# ---------------------------------------------------------------------
# Budget mechanics
# ---------------------------------------------------------------------


class TestBudget:
    def test_requires_a_limit(self):
        with pytest.raises(ValueError, match="at least one limit"):
            guard.Budget()

    @pytest.mark.parametrize(
        "kwargs", [{"deadline_s": -1}, {"max_solves": -1}, {"max_arcs": -2}]
    )
    def test_rejects_negative_limits(self, kwargs):
        with pytest.raises(ValueError):
            guard.Budget(**kwargs)

    def test_install_and_restore(self):
        assert guard.current() is None
        with guard.Budget(max_solves=5) as b:
            assert guard.current() is b
        assert guard.current() is None

    def test_nesting_restores_outer(self):
        with guard.Budget(max_solves=5) as outer:
            with guard.Budget(max_solves=1) as inner:
                assert guard.current() is inner
            assert guard.current() is outer

    def test_suspended_masks_budget(self):
        with guard.Budget(max_solves=1) as b:
            with guard.suspended():
                assert guard.current() is None
            assert guard.current() is b

    def test_max_solves_allows_exactly_n(self):
        with guard.Budget(max_solves=3) as b:
            for _ in range(3):
                b.tick_solve(10)
            with pytest.raises(guard.BudgetExceeded, match="max_solves=3"):
                b.tick_solve(10)

    def test_max_arcs_expires_before_counting_the_solve(self):
        with guard.Budget(max_arcs=100) as b:
            b.tick_solve(100)
            with pytest.raises(guard.BudgetExceeded, match="max_arcs=100"):
                b.tick_solve(101)
            assert b.solves == 1  # the oversized solve was never counted

    def test_dead_deadline_expires_on_first_tick(self):
        with guard.Budget(deadline_s=0.0) as b:
            with pytest.raises(guard.BudgetExceeded, match="deadline"):
                b.tick_solve(1)

    def test_expired_budget_stays_expired(self):
        with guard.Budget(max_solves=1) as b:
            b.tick_solve(1)
            with pytest.raises(guard.BudgetExceeded):
                b.tick_solve(1)
            with pytest.raises(guard.BudgetExceeded):
                b.tick_round()
            assert b.expired is not None

    def test_tick_round_checks_deadline(self):
        with guard.Budget(deadline_s=0.0) as b:
            with pytest.raises(guard.BudgetExceeded):
                b.tick_round()
            assert b.rounds == 1

    def test_snapshot_postmortem(self):
        with guard.Budget(max_solves=1) as b:
            b.tick_solve(7)
            with pytest.raises(guard.BudgetExceeded):
                b.tick_solve(7)
        snap = b.snapshot()
        assert snap["expired"] is True
        assert snap["solves"] == 2
        assert "max_solves=1" in snap["expired_reason"]

    def test_incumbent_first_attachment_wins(self):
        exc = guard.BudgetExceeded("s", "r", guard.Budget(max_solves=1))
        exc.attach_incumbent({1, 2}, 1.5)
        exc.attach_incumbent({3}, 9.0)  # outer layers must not override
        assert exc.incumbent == {1, 2}
        assert exc.incumbent_density == 1.5

    def test_empty_incumbent_is_ignored(self):
        exc = guard.BudgetExceeded("s", "r", guard.Budget(max_solves=1))
        exc.attach_incumbent(set(), 0.0)
        assert exc.incumbent is None
        exc.attach_incumbent({1}, 2.0)
        assert exc.incumbent == {1}

    def test_expiry_emits_obs_event(self):
        obs.enable()
        try:
            with guard.Budget(max_solves=1) as b:
                b.tick_solve(1)
                with pytest.raises(guard.BudgetExceeded):
                    b.tick_solve(1)
            col = obs.get_collector()
            events = [e for e in col.events() if e["name"] == "guard.deadline"]
            assert len(events) == 1
            fields = events[0]["fields"]
            assert fields["site"] == "flow.solve"
            assert "max_solves" in fields["reason"]
            assert fields["elapsed_s"] >= 0
            assert col.counters.get("guard.expired") == 1
        finally:
            obs.disable()


# ---------------------------------------------------------------------
# Degradation contract across solvers and tiers
# ---------------------------------------------------------------------

SOLVERS = {
    "exact-ggt": lambda g, h: exact_densest(g, h, flow_engine="ggt"),
    "exact-rebuild": lambda g, h: exact_densest(g, h, flow_engine="rebuild"),
    "exact-reuse": lambda g, h: exact_densest(g, h, flow_engine="reuse"),
    "core-exact": lambda g, h: core_exact_densest(g, h),
    "peel": lambda g, h: peel_densest(g, h),
}

BUDGETS = {
    "dead-deadline": {"deadline_s": 0.0},
    "one-solve": {"max_solves": 1},
    "three-solves": {"max_solves": 3},
    "tiny-network": {"max_arcs": 8},
}


class TestDegradationContract:
    """A budget-killed solver must return a *valid* result, never raise."""

    @pytest.mark.parametrize("solver_name", sorted(SOLVERS))
    @pytest.mark.parametrize("budget_name", sorted(BUDGETS))
    def test_degraded_result_is_valid(self, solver_name, budget_name):
        if solver_name == "peel" and budget_name != "dead-deadline":
            pytest.skip("peel rounds only check the deadline")
        g = random_graph(50, 220, seed=17)
        h = 2
        clean = SOLVERS[solver_name](g, h)
        with guard.Budget(**BUDGETS[budget_name]):
            res = SOLVERS[solver_name](g, h)
        # valid vertices and an honest density, degraded or not
        assert res.vertices <= set(g.vertices())
        assert res.vertices
        assert res.density == pytest.approx(subgraph_density(g, res.vertices, h))
        if res.stats.get("degraded"):
            lo = res.stats["density_lower_bound"]
            hi = res.stats["density_upper_bound"]
            assert lo == pytest.approx(res.density)
            assert lo <= clean.density <= hi + 1e-9
            assert res.stats["budget"]["expired"] is True
            assert res.stats["degraded_incumbent"] in (
                "walk", "search", "core", "partial-peel", "none",
            )

    @pytest.mark.parametrize("tier", ["numpy", "python"])
    def test_degradation_across_tiers(self, tier):
        if tier not in accel.available_tiers():
            pytest.skip(f"tier {tier!r} unavailable in this environment")
        g = random_graph(40, 160, seed=23)
        accel.select_tier(tier)
        clean = exact_densest(g, 2)
        with guard.Budget(max_solves=2):
            res = exact_densest(g, 2)
        assert res.density == pytest.approx(subgraph_density(g, res.vertices, 2))
        if res.stats.get("degraded"):
            assert res.stats["density_lower_bound"] <= clean.density
            assert clean.density <= res.stats["density_upper_bound"] + 1e-9

    def test_h3_degradation(self):
        g = random_graph(30, 140, seed=29)
        clean = exact_densest(g, 3)
        with guard.Budget(max_solves=1):
            res = exact_densest(g, 3)
        assert res.density == pytest.approx(subgraph_density(g, res.vertices, 3))
        if res.stats.get("degraded"):
            assert res.stats["density_lower_bound"] <= clean.density
            assert clean.density <= res.stats["density_upper_bound"] + 1e-9


class TestApiFallback:
    def test_dead_budget_falls_back_to_peel(self):
        g = random_graph(60, 260, seed=31)
        clean = densest_subgraph(g, 2, method="exact")
        with guard.Budget(deadline_s=0.0):
            res = densest_subgraph(g, 2, method="exact")
        assert res.stats["degraded"] is True
        assert res.stats["fallback"] == "peel"
        assert res.stats["approx_ratio"] == pytest.approx(0.5)
        # the peel guarantee: within 1/h of optimal, verifiably
        assert res.density >= clean.density / 2 - 1e-9
        assert res.density == pytest.approx(subgraph_density(g, res.vertices, 2))
        assert clean.density <= res.stats["density_upper_bound"] + 1e-9

    def test_pattern_method_budget_propagates_to_fallback(self):
        g = random_graph(30, 120, seed=37)
        with guard.Budget(deadline_s=0.0):
            res = densest_subgraph(g, "triangle", method="exact")
        assert res.stats.get("fallback") == "peel"
        assert res.stats["approx_ratio"] == pytest.approx(1 / 3)

    def test_budget_restored_after_fallback(self):
        g = random_graph(30, 120, seed=41)
        with guard.Budget(deadline_s=0.0) as b:
            densest_subgraph(g, 2, method="exact")
            assert guard.current() is b  # suspended() must restore

    def test_untouched_without_budget(self):
        g = random_graph(30, 120, seed=43)
        res = densest_subgraph(g, 2, method="exact")
        assert "degraded" not in res.stats


class TestDeadlineWallClock:
    def test_fig8_scale_deadline_holds(self):
        """A deadline-bounded call on a fig8-scale graph honours the budget.

        The checkpoint granularity is one flow solve, so the allowance is
        deadline * 1.1 plus one solve's worth of slack (the budget is
        checked *before* each solve; a solve admitted at deadline-epsilon
        runs to completion).
        """
        from repro.datasets.registry import load

        g = load("as-caida", 1.0)
        deadline = 0.5
        slack = 0.35  # one rebuild-engine solve + peel fallback, CI margin
        start = time.perf_counter()
        with guard.Budget(deadline_s=deadline):
            res = densest_subgraph(g, 2, method="exact", flow_engine="rebuild")
        elapsed = time.perf_counter() - start
        assert res.stats.get("degraded") is True
        assert elapsed <= deadline * 1.1 + slack
        # the degraded answer still brackets the optimum verifiably
        assert res.density == pytest.approx(subgraph_density(g, res.vertices, 2))
        assert res.stats["density_lower_bound"] <= res.stats["density_upper_bound"]


# ---------------------------------------------------------------------
# Fault injection + tier failover
# ---------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_spec(self):
        faults.parse("dinic:2, bucket_peel:1")
        assert faults.ARMED
        with pytest.raises(faults.InjectedFault):
            try:
                faults.maybe_raise("dinic", "numpy")  # call 1: no fire
                faults.maybe_raise("bucket_peel", "numpy")  # fires
            finally:
                pass

    @pytest.mark.parametrize("spec", ["dinic", "dinic:x", ":3"])
    def test_parse_rejects_bad_spec(self, spec):
        with pytest.raises(ValueError):
            faults.parse(spec)

    def test_inject_rejects_nonpositive_call(self):
        with pytest.raises(ValueError):
            faults.inject("dinic", nth=0)

    def test_counting_starts_at_arming(self):
        faults.inject("dinic", nth=1)
        with pytest.raises(faults.InjectedFault):
            faults.maybe_raise("dinic", "numpy")
        assert faults.fired() == [{"kernel": "dinic", "call": 1, "tier": "numpy"}]
        faults.reset()
        assert not faults.ARMED
        faults.maybe_raise("dinic", "numpy")  # disarmed: no-op

    def test_env_spec_arms_subprocess(self):
        code = (
            "import repro.accel as a, repro.guard.faults as f, warnings\n"
            "from repro.graph.graph import complete_graph\n"
            "from repro.core.exact import exact_densest\n"
            "assert f.ARMED\n"
            "warnings.simplefilter('ignore', RuntimeWarning)\n"
            "r = exact_densest(complete_graph(6), 2)\n"
            "assert r.density == 2.5, r.density\n"
            "log = a.failover_log()\n"
            "assert len(log) == 1 and log[0]['kernel'] == 'dinic', log\n"
            "print('SUBPROCESS-OK')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "REPRO_FAULT": "dinic:1", "PATH": "/usr/bin:/bin"},
        )
        assert "SUBPROCESS-OK" in out.stdout, out.stderr


@needs_numpy
class TestFailover:
    def test_kernel_chain_shape(self):
        accel.select_tier("numpy")
        assert accel.kernel_chain("dinic") == ("numpy", "python")
        assert accel.kernel_chain("push_relabel") == ("python",)

    def test_failover_is_bit_identical(self):
        g = random_graph(40, 170, seed=47)
        accel.select_tier("numpy")
        clean = exact_densest(g, 2, flow_engine="ggt")
        accel.select_tier("numpy")  # rebuild: clear any demotions
        faults.inject("dinic", nth=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            faulted = exact_densest(g, 2, flow_engine="ggt")
        assert faulted.vertices == clean.vertices
        assert faulted.density == clean.density  # bit-identical, not approx
        assert accel.kernel_tiers()["dinic"] == "python"  # demoted for process
        log = accel.failover_log()
        assert len(log) == 1
        assert log[0]["kernel"] == "dinic"
        assert log[0]["from_tier"] == "numpy"
        assert log[0]["to_tier"] == "python"
        assert "InjectedFault" in log[0]["error"]

    def test_failover_emits_warning_and_counters(self):
        accel.select_tier("numpy")
        faults.inject("dinic", nth=1)
        obs.enable()
        try:
            with pytest.warns(RuntimeWarning, match="demoted"):
                exact_densest(complete_graph(6), 2)
            col = obs.get_collector()
            assert col.counters.get("accel.failover") == 1
            assert col.counters.get("accel.failover.dinic") == 1
            events = [e for e in col.events() if e["name"] == "accel.failover"]
            assert len(events) == 1
            assert events[0]["fields"]["kernel"] == "dinic"
        finally:
            obs.disable()

    def test_chain_exhaustion_surfaces_the_fault(self):
        accel.select_tier("numpy")
        faults.inject("dinic", nth=1)
        faults.inject("dinic", nth=2)  # the retry on the pure tier fails too
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(faults.InjectedFault):
                exact_densest(complete_graph(6), 2)

    def test_mid_mutation_failure_restores_arrays(self):
        """A kernel that corrupts ``cap`` before raising must be undone."""
        accel.select_tier("numpy")
        real = accel._impl["dinic"]

        def evil(source, sink, head, cap, adj_start, adj_arcs):
            for i in range(len(cap)):
                cap[i] = -999.0  # trash the residuals mid-flight
            raise RuntimeError("kernel crashed mid-mutation")

        accel._impl["dinic"] = evil
        g = random_graph(30, 120, seed=53)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            res = exact_densest(g, 2, flow_engine="ggt")
        accel.select_tier("numpy")
        clean = exact_densest(g, 2, flow_engine="ggt")
        assert res.vertices == clean.vertices
        assert res.density == clean.density
        assert real is not evil

    def test_heap_peel_fallback_to_reference_loop(self):
        """With no impl below it, a failing heap_peel kernel falls back
        to the reference generator loop (KernelFallback path)."""
        accel.select_tier("numpy")
        if accel.get("heap_peel") is not None:  # pragma: no cover
            pytest.skip("numpy tier unexpectedly has a heap_peel kernel")
        g = random_graph(40, 170, seed=59)
        res = peel_densest(g, 2)
        assert res.density == pytest.approx(subgraph_density(g, res.vertices, 2))

    def test_warm_up_survives_injected_faults(self):
        accel.select_tier("numpy")
        faults.inject("dinic", nth=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            tier = accel.warm_up()
        assert tier == "numpy"


# ---------------------------------------------------------------------
# Invariant sanitizer
# ---------------------------------------------------------------------


class TestSanitizer:
    def test_parametric_happy_path(self):
        g = random_graph(30, 120, seed=61)
        net = build_eds_parametric(g)
        net.solve(1.0)
        sanitize.check_parametric(net)  # must not raise

    def test_detects_capacity_violation(self):
        g = random_graph(30, 120, seed=61)
        net = build_eds_parametric(g)
        net.solve(1.0)
        # push more flow through arc 0 than its capacity allows
        net.cap[0] = -1.0
        with pytest.raises(guard.SanitizerError):
            sanitize.check_parametric(net)

    def test_detects_conservation_violation(self):
        g = random_graph(30, 120, seed=67)
        net = build_eds_parametric(g)
        net.solve(1.0)
        # find an arc between two interior nodes and fake extra flow on it
        for a in range(0, len(net.head), 2):
            u, v = net.head[a ^ 1], net.head[a]
            if u not in (net.source, net.sink) and v not in (net.source, net.sink):
                if net.cap[a] > 0.5:
                    net.cap[a] -= 0.5
                    net.cap[a ^ 1] += 0.5
                    break
        else:  # pragma: no cover - construction always has interior arcs
            pytest.skip("no interior arc found")
        with pytest.raises(guard.SanitizerError):
            sanitize.check_parametric(net)

    def test_one_shot_network_happy_path(self):
        g = random_graph(30, 120, seed=71)
        net = build_eds_network(g, 1.0)
        dinic.max_flow(net)
        sanitize.check_flow_network(net)

    def test_result_density_recompute(self):
        g = complete_graph(5)
        sanitize.check_result_density(g, set(g.vertices()), 2, 2.0, "t")
        with pytest.raises(guard.SanitizerError, match="recomputed"):
            sanitize.check_result_density(g, set(g.vertices()), 2, 1.9, "t")

    def test_result_density_empty_set(self):
        g = complete_graph(3)
        sanitize.check_result_density(Graph(), set(), 2, 0.0, "t")
        with pytest.raises(guard.SanitizerError):
            sanitize.check_result_density(g, set(), 2, 1.0, "t")

    def test_result_density_foreign_vertex(self):
        g = complete_graph(3)
        with pytest.raises(guard.SanitizerError):
            sanitize.check_result_density(g, {0, 99}, 2, 0.5, "t")

    def test_peel_monotonicity(self):
        sanitize.check_peel_round(10, 7)
        sanitize.check_peel_round(7, 7)
        with pytest.raises(guard.SanitizerError, match="increased"):
            sanitize.check_peel_round(7, 9)

    def test_checked_solves_end_to_end(self):
        guard.enable_checks()
        g = random_graph(40, 170, seed=73)
        for engine in ("ggt", "reuse", "rebuild"):
            exact_densest(g, 2, flow_engine=engine)
        core_exact_densest(g, 3)
        peel_densest(g, 2)
        densest_subgraph(g, 2)

    def test_repro_check_env_arms_subprocess(self):
        code = (
            "import repro.guard as g\n"
            "assert g.CHECK\n"
            "from repro.graph.graph import complete_graph\n"
            "from repro.core.exact import exact_densest\n"
            "assert exact_densest(complete_graph(5), 2).density == 2.0\n"
            "print('CHECKED-OK')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "REPRO_CHECK": "1", "PATH": "/usr/bin:/bin"},
        )
        assert "CHECKED-OK" in out.stdout, out.stderr


# ---------------------------------------------------------------------
# Trace schema for the new events
# ---------------------------------------------------------------------


class TestTraceSchemas:
    def _validate_event(self, name, fields):
        import json

        from repro.obs.validate import validate_records

        rec = {"type": "event", "name": name, "seq": 1, "depth": 0, "fields": fields}
        _, errors = validate_records([json.dumps(rec)])
        return errors

    def test_guard_deadline_schema(self):
        good = {"site": "flow.solve", "reason": "deadline", "elapsed_s": 0.1}
        assert self._validate_event("guard.deadline", good) == []
        assert self._validate_event("guard.deadline", {"site": "x"})  # missing keys
        bad = dict(good, elapsed_s=-1)
        assert self._validate_event("guard.deadline", bad)

    def test_accel_failover_schema(self):
        good = {"kernel": "dinic", "from_tier": "numba", "to_tier": "numpy", "error": "x"}
        assert self._validate_event("accel.failover", good) == []
        assert self._validate_event("accel.failover", {"kernel": "dinic"})
        assert self._validate_event("accel.failover", dict(good, kernel=3))

    def test_live_trace_passes_validation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(sink=str(path))
        try:
            if len(accel.kernel_chain("dinic")) >= 2:
                # only inject when a fallback tier exists to absorb it
                faults.inject("dinic", nth=1)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with guard.Budget(max_solves=2):
                    exact_densest(random_graph(30, 120, seed=79), 2)
        finally:
            obs.disable()
            obs.close()
        from repro.obs.validate import validate_trace

        count, errors = validate_trace(str(path))
        assert errors == []
        assert count > 0


# ---------------------------------------------------------------------
# Disabled-mode overhead
# ---------------------------------------------------------------------


def test_disabled_overhead_within_budget():
    """The guard layer costs <= 2% of a solve cell when nothing is armed.

    Same non-flaky construction as the obs overhead test: measure the
    per-call cost of the disabled primitives (the ``guard.ACTIVE`` read
    the solvers make, the ``faults.ARMED`` read the dispatcher makes)
    and multiply by the checkpoint volume of a real cell, instead of
    differencing two noisy end-to-end wall times.
    """
    g = random_graph(70, 320, seed=3)

    # checkpoint volume of one cell, counted with tracing on
    obs.enable()
    core_exact_densest(g, 3)
    col = obs.get_collector()
    solves = col.counters.get("flow.solves", 0)
    kernel_calls = sum(v for k, v in col.counters.items() if k.endswith(".calls"))
    obs.disable()
    volume = solves + kernel_calls + 2  # + the two result-shape checks

    # per-checkpoint disabled cost: one module-attribute read + is-None
    reps = 50_000
    start = time.perf_counter()
    for _ in range(reps):
        if guard.ACTIVE is not None:  # pragma: no cover
            raise AssertionError
        if faults.ARMED:  # pragma: no cover
            raise AssertionError
        if guard.CHECK:  # pragma: no cover
            raise AssertionError
    per_checkpoint = (time.perf_counter() - start) / reps

    start = time.perf_counter()
    core_exact_densest(g, 3)
    cell_seconds = time.perf_counter() - start

    overhead = per_checkpoint * volume
    assert overhead <= 0.02 * cell_seconds, (
        f"guard disabled overhead {overhead:.6f}s exceeds 2% of "
        f"{cell_seconds:.4f}s cell ({volume} checkpoints)"
    )


# ---------------------------------------------------------------------
# Exports
# ---------------------------------------------------------------------


def test_top_level_exports():
    import repro

    assert repro.Budget is guard.Budget
    assert repro.BudgetExceeded is guard.BudgetExceeded


def test_degraded_stats_is_json_serializable():
    import json

    exc = guard.BudgetExceeded("flow.solve", "r", guard.Budget(max_solves=1))
    stats = guard.degraded_stats(exc, incumbent_source="walk", lower=1.0, upper=2.0)
    json.dumps(stats)
    assert not math.isnan(stats["density_lower_bound"])
