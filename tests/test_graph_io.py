"""Tests for edge-list I/O."""

import io

import pytest

from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, write_edge_list


class TestRead:
    def test_basic(self):
        g = read_edge_list(io.StringIO("0 1\n1 2\n"))
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n% percent comment\n0 1\n"
        g = read_edge_list(io.StringIO(text))
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = read_edge_list(io.StringIO("0 0\n0 1\n"))
        assert g.num_edges == 1

    def test_duplicates_collapse(self):
        g = read_edge_list(io.StringIO("0 1\n1 0\n0 1\n"))
        assert g.num_edges == 1

    def test_extra_columns_tolerated(self):
        g = read_edge_list(io.StringIO("0 1 0.75\n"))
        assert g.has_edge(0, 1)

    def test_string_ids(self):
        g = read_edge_list(io.StringIO("alice bob\n"))
        assert g.has_edge("alice", "bob")

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            read_edge_list(io.StringIO("justonetoken\n"))

    def test_from_path(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("3 4\n4 5\n")
        g = read_edge_list(p)
        assert g.num_edges == 2


class TestWrite:
    def test_round_trip(self, tmp_path):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        p = tmp_path / "out.txt"
        write_edge_list(g, p)
        g2 = read_edge_list(p)
        assert g2 == g

    def test_round_trip_stream(self):
        g = Graph([(0, 1), (5, 9)])
        buffer = io.StringIO()
        write_edge_list(g, buffer)
        buffer.seek(0)
        assert read_edge_list(buffer) == g

    def test_header_comment_present(self):
        buffer = io.StringIO()
        write_edge_list(Graph([(0, 1)]), buffer)
        assert buffer.getvalue().startswith("#")


class TestStrictMode:
    """read_edge_list(strict=True): corruption raises, line-numbered."""

    def test_self_loop_raises(self):
        with pytest.raises(ValueError, match=r"line 2: self-loop.*strict=False"):
            read_edge_list(io.StringIO("1 2\n3 3\n"), strict=True)

    def test_duplicate_edge_raises(self):
        with pytest.raises(ValueError, match="line 2: duplicate"):
            read_edge_list(io.StringIO("1 2\n1 2\n"), strict=True)

    def test_reversed_duplicate_raises(self):
        with pytest.raises(ValueError, match="line 2: duplicate"):
            read_edge_list(io.StringIO("1 2\n2 1\n"), strict=True)

    def test_zero_weight_raises(self):
        with pytest.raises(ValueError, match="zero-weight"):
            read_edge_list(io.StringIO("1 2 0\n"), strict=True)

    def test_unparsable_weight_raises(self):
        with pytest.raises(ValueError, match="unparsable edge weight"):
            read_edge_list(io.StringIO("1 2 abc\n"), strict=True)

    def test_no_usable_edges_raises(self):
        # all-comment / blank inputs stay fine; edge lines that all get
        # rejected would have, but in strict mode the first one raises
        # anyway -- the empty-result check guards pathological streams
        read_edge_list(io.StringIO("# nothing\n"), strict=True)

    def test_clean_input_identical_between_modes(self):
        text = "1 2\n2 3\n3 1\n"
        assert read_edge_list(io.StringIO(text), strict=True) == read_edge_list(
            io.StringIO(text)
        )

    @pytest.mark.parametrize("weight", ["nan", "-1", "inf", "-inf"])
    def test_corrupt_weight_raises_in_both_modes(self, weight):
        for strict in (False, True):
            with pytest.raises(ValueError, match="finite non-negative"):
                read_edge_list(io.StringIO(f"1 2 {weight}\n"), strict=strict)


class TestCleanupMode:
    """strict=False scrubs: drops loops/dups/zero-weight, keeps the rest."""

    def test_drops_self_loops_duplicates_and_zero_weight(self):
        g = read_edge_list(
            io.StringIO("1 2\n2 1\n3 3\n4 5 0\n5 6 2.5\n")
        )
        assert g.num_edges == 2
        assert g.has_edge(1, 2) and g.has_edge(5, 6)
        assert 4 not in g  # the zero-weight edge never materialised

    def test_tolerates_non_numeric_third_token(self):
        g = read_edge_list(io.StringIO("1 2 blue\n"))
        assert g.has_edge(1, 2)
