"""Tests for edge-list I/O."""

import io

import pytest

from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, write_edge_list


class TestRead:
    def test_basic(self):
        g = read_edge_list(io.StringIO("0 1\n1 2\n"))
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n% percent comment\n0 1\n"
        g = read_edge_list(io.StringIO(text))
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = read_edge_list(io.StringIO("0 0\n0 1\n"))
        assert g.num_edges == 1

    def test_duplicates_collapse(self):
        g = read_edge_list(io.StringIO("0 1\n1 0\n0 1\n"))
        assert g.num_edges == 1

    def test_extra_columns_tolerated(self):
        g = read_edge_list(io.StringIO("0 1 0.75\n"))
        assert g.has_edge(0, 1)

    def test_string_ids(self):
        g = read_edge_list(io.StringIO("alice bob\n"))
        assert g.has_edge("alice", "bob")

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            read_edge_list(io.StringIO("justonetoken\n"))

    def test_from_path(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("3 4\n4 5\n")
        g = read_edge_list(p)
        assert g.num_edges == 2


class TestWrite:
    def test_round_trip(self, tmp_path):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        p = tmp_path / "out.txt"
        write_edge_list(g, p)
        g2 = read_edge_list(p)
        assert g2 == g

    def test_round_trip_stream(self):
        g = Graph([(0, 1), (5, 9)])
        buffer = io.StringIO()
        write_edge_list(g, buffer)
        buffer.seek(0)
        assert read_edge_list(buffer) == g

    def test_header_comment_present(self):
        buffer = io.StringIO()
        write_edge_list(Graph([(0, 1)]), buffer)
        assert buffer.getvalue().startswith("#")
