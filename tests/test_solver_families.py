"""Cross-family property test: every solver on the same 50 random graphs.

One test matrix ties the whole algorithm zoo together:

* the three exact engines (binary search over a rebuilt network, binary
  search over one α-parametric network, and the GGT breakpoint walk)
  and CoreExact must all report the same optimal density -- the GGT
  engines bit-identically so;
* every approximation (PeelApp, Greedy++, the fixed Bahmani streaming
  peel) stays at or below the optimum and above its claimed ratio:
  ``1/h!`` for peel at h = 2 (Charikar's 1/2), ``1/(2+2ε)`` for
  streaming.
"""

from __future__ import annotations

import random

import pytest

from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.core.peel import peel_densest
from repro.extensions.greedy_pp import greedy_pp_densest
from repro.extensions.streaming import streaming_densest
from repro.graph.graph import Graph

EPSILON = 0.3  # streaming knob used throughout the matrix


def _family_graph(seed: int) -> Graph:
    """Small random graphs of varying shape (sparse to near-complete)."""
    rng = random.Random(seed)
    n = rng.randint(6, 16)
    m = rng.randint(n // 2, n * (n - 1) // 3 + 1)
    g = Graph(vertices=range(n))
    max_edges = n * (n - 1) // 2
    while g.num_edges < min(m, max_edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    return g


@pytest.mark.parametrize("seed", range(50))
def test_solver_families_agree_and_bound(seed):
    g = _family_graph(seed)

    exact = exact_densest(g, 2, flow_engine="rebuild")
    reuse = exact_densest(g, 2, flow_engine="reuse")
    ggt = exact_densest(g, 2, flow_engine="ggt")
    core = core_exact_densest(g, 2)
    core_ggt = core_exact_densest(g, 2, flow_engine="ggt")

    # exact family: one optimum, the engine must not matter
    assert reuse.density == exact.density
    assert reuse.vertices == exact.vertices
    assert ggt.density == exact.density
    assert ggt.vertices == exact.vertices
    assert core_ggt.density == core.density
    assert core_ggt.vertices == core.vertices
    assert abs(core.density - exact.density) < 1e-9

    optimum = exact.density

    # approximation family: <= optimum, >= the claimed ratio
    peel = peel_densest(g, 2)
    assert peel.density <= optimum + 1e-9
    assert peel.density >= optimum / 2.0 - 1e-9  # 1/h! at h = 2

    gpp = greedy_pp_densest(g, rounds=4)
    assert gpp.density <= optimum + 1e-9
    assert gpp.density >= optimum / 2.0 - 1e-9  # at least round-1 Charikar

    stream = streaming_densest(g, EPSILON)
    assert stream.density <= optimum + 1e-9
    assert stream.density >= optimum / (2.0 + 2.0 * EPSILON) - 1e-9


@pytest.mark.parametrize("seed", range(10))
def test_solver_families_triangle_density(seed):
    """Same agreement matrix for Ψ = triangle (h = 3)."""
    g = _family_graph(seed + 500)
    exact = exact_densest(g, 3, flow_engine="reuse")
    ggt = exact_densest(g, 3, flow_engine="ggt")
    core_ggt = core_exact_densest(g, 3, flow_engine="ggt")
    assert ggt.density == exact.density
    assert ggt.vertices == exact.vertices
    assert abs(core_ggt.density - exact.density) < 1e-9

    peel = peel_densest(g, 3)
    assert peel.density <= exact.density + 1e-9
    if exact.density > 0:
        assert peel.density >= exact.density / 3.0 - 1e-9  # Lemma 8 ratio 1/h
