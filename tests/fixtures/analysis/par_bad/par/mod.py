"""Planted par-safety violations (see tests/test_analysis.py)."""
import os

WORKER_INIT_FUNCS = ("_worker_main",)

COUNT = 0
IN_WORKER = False


def fan_out(par, payloads):
    def local_fn(payload, shared):
        return payload

    par.map_components(lambda p, s: p, payloads)  # expect[par-safety]
    par.map_components(local_fn, payloads)  # expect[par-safety]


def bump():
    global COUNT  # expect[par-safety]
    COUNT += 1


def _worker_main(conn, wid):
    global IN_WORKER
    IN_WORKER = True


def read_env():
    return os.getenv("REPRO_WORKERS")  # expect[par-safety]
