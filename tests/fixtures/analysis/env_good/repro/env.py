"""The one module allowed to touch os.environ (fixture)."""

import os


def raw(name):
    return os.environ.get(name)
