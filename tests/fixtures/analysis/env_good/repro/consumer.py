"""Reads knobs through the registry, not os.environ (fixture)."""

from . import env


def trace_destination():
    return env.raw("REPRO_TRACE")
