"""Clean twin: importable entry, registered init path, env via registry."""
from repro import env

WORKER_INIT_FUNCS = ("_worker_main",)

IN_WORKER = False

LAST_BATCH: dict = {}


def entry(payload, shared):
    return payload


def _worker_main(conn, wid):
    global IN_WORKER
    IN_WORKER = True


def fan_out(par, payloads):
    outcomes = par.map_components(entry, payloads)
    LAST_BATCH.clear()
    LAST_BATCH.update(tasks=len(payloads))
    return outcomes


def workers():
    return int(env.number("REPRO_WORKERS"))
