"""Deterministic counterparts of the planted hazards (fixture)."""

import random

import numpy as np


def tie_break(nodes, score):
    best = None
    for v in sorted(set(nodes)):  # sorted() restores a total order
        if best is None or score[v] > score[best]:
            best = v
    seed = min(frozenset(nodes))  # explicit extremum, not iteration order
    rng = np.random.default_rng(1729)  # seeded generator construction
    local = random.Random(7)  # seeded instance, not the global RNG
    flags = 0b1010 | 0b0101  # int bitops are not set unions
    return best, seed, rng, local, flags
