"""A minimal kernel inside the nopython whitelist (fixture)."""

import numpy as np

EPS = 1e-9

KERNEL_NAMES = ("good_kernel",)


def good_kernel(cap, adj_start):
    """Docstrings are stripped before compilation and stay legal."""
    n = adj_start.shape[0] - 1
    out = np.zeros(n, np.float64)
    total = 0.0
    for i in range(n):
        if cap[i] > EPS:
            out[i] = cap[i]
            total += cap[i]
    scratch = out.copy()
    return total, scratch
