"""Planted direct environment reads (fixture; never imported)."""

import os

from os import getenv  # expect[env-discipline]  (from-import of getenv)

TRACE = os.environ.get("REPRO_TRACE", "")  # expect[env-discipline]
CHECK = os.getenv("REPRO_CHECK")  # expect[env-discipline]


def no_numba():
    return bool(os.environ.get("REPRO_NO_NUMBA"))  # expect[env-discipline]
