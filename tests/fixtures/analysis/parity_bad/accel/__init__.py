"""Planted tier-parity chain violations (fixture; never imported)."""

KERNEL_NAMES = ("dinic", "bucket_peel")


def _build_registry():
    chains = {  # expect[tier-parity]  (bucket_peel has no chain)
        "dinic": [  # expect[tier-parity]  (no terminal python tier)
            ("numba", None, False),
            ("numpy", None, False),
        ],
        "mystery": [  # expect[tier-parity]  (not in KERNEL_NAMES)
            ("python", None, True),
        ],
    }
    return chains
