"""Reference tier for the signature-drift plant (fixture)."""

KERNEL_NAMES = ("dinic",)

EPS = 1e-9


def dinic(cap, heads):
    return cap[0] + heads[0]
