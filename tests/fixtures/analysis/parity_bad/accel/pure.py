"""Pure tier with a planted positional-signature drift (fixture)."""


def dinic(heads, cap):  # expect[tier-parity]  (swapped positional order)
    return cap[0] + heads[0]
