"""Canonical EPS so the jit rule stays quiet here (fixture)."""

EPS = 1e-9
