"""Canonical EPS the kernel copy must match (fixture)."""

EPS = 1e-9
