"""Planted jit-safety violations (fixture; never imported)."""

import numpy as np

EPS = 1e-6  # expect[jit-safety]  (drifted from flow/network.py's 1e-9)

KERNEL_NAMES = (  # expect[jit-safety]  (lists undefined ghost_kernel)
    "bad_kernel",
    "ghost_kernel",
)


def bad_kernel(cap, deg):
    def helper(x):  # expect[jit-safety]  (closure)
        return x + 1

    table = {i: cap[i] for i in range(3)}  # expect[jit-safety]  (dict comprehension)
    pairs = {"a": 1}  # expect[jit-safety]  (dict literal + string constant)
    total = 0.0
    for i in range(cap.shape[0]):
        total += cap[i]
    try:  # expect[jit-safety]  (try/except)
        total += deg[0]
    except IndexError:
        pass
    out = np.argsort(cap)  # expect[jit-safety]  (np call outside whitelist)
    total += MAGIC  # expect[jit-safety]  (module-global read)
    label = "done"  # expect[jit-safety]  (string constant)
    return total
