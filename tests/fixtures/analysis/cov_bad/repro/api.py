"""Entry point missing its guard checkpoint (fixture; never imported)."""

from . import obs


def densest_subgraph(graph, h):  # expect[obs-coverage]  (no guard checkpoint)
    with obs.span("api.densest_subgraph"):
        return _solve(graph, h)


def _solve(graph, h):
    return graph, h
