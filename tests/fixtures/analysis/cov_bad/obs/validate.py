"""Mini schema registry for the coverage fixtures (fixture)."""

EVENT_SCHEMAS = {
    "flow.solve": {},
    "local.known": {},
}
