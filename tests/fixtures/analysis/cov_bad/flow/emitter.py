"""Planted schema-drift emissions (fixture; never imported)."""

from .. import obs

KNOWN_EVENT = "local.known"


def emit(payload, dynamic_name):
    obs.event(obs.FLOW_SOLVE, payload)  # resolves via obs/__init__.py: clean
    obs.event(KNOWN_EVENT, payload)  # resolves via module constant: clean
    obs.event("ghost.event", payload)  # expect[obs-coverage]  (no schema)
    obs.event(dynamic_name, payload)  # expect[obs-coverage]  (unresolvable)
