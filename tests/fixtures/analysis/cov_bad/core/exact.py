"""Entry point missing its obs span (fixture; never imported)."""

import guard


def exact_densest(graph, h):  # expect[obs-coverage]  (no obs.span)
    if guard.ACTIVE is not None:
        guard.ACTIVE.tick_solve()
    return graph, h
