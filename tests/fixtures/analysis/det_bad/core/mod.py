"""Planted determinism hazards in a solver-path module (fixture)."""

import random

import numpy as np

from numba import njit  # fixture-only; never imported at test time


def tie_break(nodes, score):
    best = None
    for v in {n for n in nodes}:  # expect[determinism]  (set comprehension iter)
        if best is None or score[v] > score[best]:
            best = v
    picks = [score[v] for v in set(nodes)]  # expect[determinism]  (set() iter)
    seed = next(iter(frozenset(nodes)))  # expect[determinism]  (arbitrary pick)
    noise = random.random()  # expect[determinism]  (global RNG)
    jitter = np.random.rand(3)  # expect[determinism]  (numpy global RNG)
    rng = np.random.default_rng()  # expect[determinism]  (unseeded generator)
    total = 0.0
    for v in nodes & {best}:  # repro: lint-ok[determinism] -- order-free sum
        total += score[v]
    return best, picks, seed, noise, jitter, rng, total


@njit(cache=True, fastmath=True)  # expect[determinism]  (fastmath)
def reassociating_kernel(x):
    return x + 1.0
