"""Every emitted event name resolves and has a schema (fixture)."""

from .. import obs


def emit(payload):
    obs.event(obs.FLOW_SOLVE, payload)
    obs.event("flow.solve", payload)
