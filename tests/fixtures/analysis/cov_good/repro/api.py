"""Fully instrumented entry point (fixture; never imported)."""

from . import guard, obs


def densest_subgraph(graph, h):
    with obs.span("api.densest_subgraph"):
        budget = guard.current()
        if budget is not None:
            budget.tick_solve()
        return graph, h
