"""Mini obs facade (fixture)."""

FLOW_SOLVE = "flow.solve"


def span(name, **payload):
    return None


def event(name, payload):
    return None
