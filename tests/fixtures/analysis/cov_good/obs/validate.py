"""Mini schema registry (fixture)."""

EVENT_SCHEMAS = {
    "flow.solve": {},
}
