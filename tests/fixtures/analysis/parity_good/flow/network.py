"""Canonical EPS (fixture)."""

EPS = 1e-9
