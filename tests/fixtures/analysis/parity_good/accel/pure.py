"""Pure tier; trailing defaulted extras are allowed (fixture)."""


def dinic(cap, heads, levels_fn=None):
    return cap[0] + heads[0]
