"""A registry satisfying the tier-parity contract (fixture)."""

KERNEL_NAMES = ("dinic",)


def _build_registry():
    chains = {
        "dinic": [
            ("numba", None, False),
            ("numpy", None, False),
            ("python", None, True),
        ],
    }
    return chains
