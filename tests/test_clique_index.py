"""Property tests for the array-backed clique-index layer.

The :class:`~repro.cliques.index.CliqueIndex` is the single source of
clique instances for every solver, and it has two interchangeable
producers: the numpy intersection kernels (h = 3/4, plus the trivial
h = 2 edge kernel) and the pure-python reference enumerator.  These
tests pin, over a pool of ~50 random graphs:

* **instance sets** -- the canonical row array is bit-identical between
  the two kernel families, and equal *as a set* to the reference
  enumerator's output;
* **degrees** -- the index's degree arrays match the reference
  ``clique_degrees`` on every graph;
* **incidence** -- the CSR incidence ranges are exactly the posting
  lists of each vertex;
* **solver outputs** -- decomposition, peeling, and the exact solvers
  return identical results whether their clique material comes from the
  numpy kernels, the python fallback, or a pre-threaded API index, and
  the index survives a CoreExact call unconsumed.

Run with ``REPRO_NO_NUMPY=1`` to force the pure-python half on an
environment that has numpy (CI exercises both modes).
"""

import random

import pytest

from repro.cliques.enumeration import clique_degrees, enumerate_cliques
from repro.cliques.index import CliqueIndex
from repro.cliques.kernels import have_numpy
from repro.core.clique_core import clique_core_decomposition
from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.core.inc_app import inc_app_densest
from repro.core.peel import peel_densest
from repro.graph.graph import Graph

#: Both kernel families when numpy is importable, otherwise just the
#: fallback (the parametrised tests then still pin enumerator equality).
KERNEL_MODES = (False, True) if have_numpy() else (False,)

H_VALUES = (3, 4, 5)


def _random_graph(n: int, m: int, seed: int) -> Graph:
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    max_edges = n * (n - 1) // 2
    target = min(m, max_edges)
    while g.num_edges < target:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    return g


def _graph_pool():
    """~50 random graphs spanning sparse to near-complete."""
    pool = []
    seed = 0
    for n in (6, 10, 14, 18, 24):
        for density in (0.15, 0.3, 0.5, 0.75):
            for _ in range(2):
                seed += 1
                m = int(n * (n - 1) / 2 * density)
                pool.append(_random_graph(n, m, seed))
    # degenerate shapes round the pool out to 50
    pool.append(Graph())
    pool.append(Graph(vertices=range(5)))
    for k in (3, 4, 5):
        g = Graph(vertices=range(k))
        for i in range(k):
            for j in range(i + 1, k):
                g.add_edge(i, j)
        pool.append(g)
    for n in (8, 12):
        pool.append(Graph((i, (i + 1) % n) for i in range(n)))
    pool.append(Graph((0, i) for i in range(1, 8)))  # star: no h>=3 cliques
    pool.append(_random_graph(30, 60, 99))
    pool.append(_random_graph(30, 200, 100))
    return pool


GRAPHS = _graph_pool()


def test_pool_size():
    assert len(GRAPHS) >= 50


class TestInstanceEquivalence:
    @pytest.mark.parametrize("h", H_VALUES)
    def test_rows_match_reference_enumerator(self, h):
        for g in GRAPHS:
            for use_numpy in KERNEL_MODES:
                index = CliqueIndex(g, h, use_numpy=use_numpy)
                reference = {frozenset(c) for c in enumerate_cliques(g, h)}
                got = {frozenset(index.instance(i)) for i in range(index.m)}
                assert got == reference
                assert index.m == len(reference)  # no duplicate rows

    @pytest.mark.parametrize("h", (2, 3, 4))
    def test_kernel_families_bit_identical(self, h):
        if not have_numpy():
            pytest.skip("numpy kernels unavailable")
        for g in GRAPHS:
            a = CliqueIndex(g, h, use_numpy=True)
            b = CliqueIndex(g, h, use_numpy=False)
            assert a.inst == b.inst
            assert a.inc_start == b.inc_start
            assert a.inc_ids == b.inc_ids
            assert a.base_degree == b.base_degree

    @pytest.mark.parametrize("h", H_VALUES)
    def test_degrees_match_reference(self, h):
        for g in GRAPHS:
            for use_numpy in KERNEL_MODES:
                index = CliqueIndex(g, h, use_numpy=use_numpy)
                assert index.degrees() == clique_degrees(g, h)
                assert index.initial_degrees() == clique_degrees(g, h)

    def test_incidence_ranges_are_posting_lists(self):
        for g in GRAPHS[:20]:
            index = CliqueIndex(g, 3)
            for vid, v in enumerate(index.vertices):
                postings = {
                    index.inc_ids[pos]
                    for pos in range(index.inc_start[vid], index.inc_start[vid + 1])
                }
                expected = {i for i in range(index.m) if v in index.instance(i)}
                assert postings == expected

    def test_count_within_matches_subgraph_enumeration(self):
        for g in GRAPHS[:25]:
            index = CliqueIndex(g, 3)
            half = set(list(g.vertices())[: g.num_vertices // 2])
            expected = sum(1 for _ in enumerate_cliques(g.subgraph(half), 3))
            assert index.count_within(half) == expected

    def test_subindex_equals_fresh_index(self):
        for g in GRAPHS[:25]:
            for h in (3, 4):
                index = CliqueIndex(g, h)
                sub = g.subgraph(list(g.vertices())[: 2 * g.num_vertices // 3])
                assert index.subindex(sub).inst == CliqueIndex(sub, h).inst


class TestSolverEquivalence:
    """Old-vs-new enumeration: solvers fed explicit reference instances
    must agree bit-for-bit with solvers fed each kernel family."""

    POOL = GRAPHS[:10] + GRAPHS[-4:]

    @pytest.mark.parametrize("h", (3, 4))
    def test_decomposition_identical(self, h):
        for g in self.POOL:
            reference = CliqueIndex(g, h, instances=list(enumerate_cliques(g, h)))
            ref = clique_core_decomposition(g, h, index=reference)
            for use_numpy in KERNEL_MODES:
                index = CliqueIndex(g, h, use_numpy=use_numpy)
                got = clique_core_decomposition(g, h, index=index)
                assert got.core == ref.core
                assert got.kmax == ref.kmax
                assert got.best_residual_density == ref.best_residual_density
                assert got.best_residual_vertices == ref.best_residual_vertices
                # the decomposition must not consume the threaded index
                assert index.num_alive == index.m

    @pytest.mark.parametrize("h", (3, 4))
    def test_peel_identical(self, h):
        for g in self.POOL:
            ref = peel_densest(
                g, h, index=CliqueIndex(g, h, instances=list(enumerate_cliques(g, h)))
            )
            for use_numpy in KERNEL_MODES:
                got = peel_densest(g, h, index=CliqueIndex(g, h, use_numpy=use_numpy))
                assert got.vertices == ref.vertices
                assert got.density == ref.density

    @pytest.mark.parametrize("h", (3, 4))
    def test_exact_identical(self, h):
        for g in self.POOL[:8]:
            expected = None
            for use_numpy in KERNEL_MODES:
                index = CliqueIndex(g, h, use_numpy=use_numpy)
                for engine in ("ggt", "reuse"):
                    got = exact_densest(g, h, flow_engine=engine, index=index)
                    if expected is None:
                        expected = got
                    assert got.vertices == expected.vertices
                    assert got.density == expected.density

    @pytest.mark.parametrize("h", (3, 4))
    def test_core_exact_identical_and_index_reusable(self, h):
        for g in self.POOL[:8]:
            expected = None
            for use_numpy in KERNEL_MODES:
                index = CliqueIndex(g, h, use_numpy=use_numpy)
                for engine in ("ggt", "reuse", "rebuild"):
                    got = core_exact_densest(g, h, flow_engine=engine, index=index)
                    if expected is None:
                        expected = got
                    assert got.vertices == expected.vertices
                    assert got.density == expected.density
                # threading one index through repeated calls is legal:
                # nothing above may have consumed it
                assert index.num_alive == index.m

    @pytest.mark.parametrize("h", (3, 4))
    def test_inc_app_identical(self, h):
        for g in self.POOL[:8]:
            ref = inc_app_densest(
                g, h, index=CliqueIndex(g, h, instances=list(enumerate_cliques(g, h)))
            )
            for use_numpy in KERNEL_MODES:
                got = inc_app_densest(g, h, index=CliqueIndex(g, h, use_numpy=use_numpy))
                assert got.vertices == ref.vertices
                assert got.density == ref.density
