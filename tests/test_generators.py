"""Tests for the synthetic graph generators."""

import pytest

from repro.graph.generators import (
    chung_lu,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    holme_kim,
    planted_clique,
    power_law_weights,
    rmat,
    ssca,
)
from repro.graph.stats import power_law_alpha


class TestErdosRenyi:
    def test_gnm_exact_counts(self):
        g = erdos_renyi_gnm(50, 100, seed=1)
        assert g.num_vertices == 50
        assert g.num_edges == 100

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(4, 7)

    def test_gnm_deterministic(self):
        assert erdos_renyi_gnm(30, 50, seed=7) == erdos_renyi_gnm(30, 50, seed=7)

    def test_gnp_extremes(self):
        assert erdos_renyi_gnp(10, 0.0, seed=1).num_edges == 0
        assert erdos_renyi_gnp(6, 1.0, seed=1).num_edges == 15

    def test_gnp_expected_edges(self):
        g = erdos_renyi_gnp(200, 0.1, seed=3)
        expected = 0.1 * 200 * 199 / 2
        assert abs(g.num_edges - expected) < 0.25 * expected

    def test_gnp_invalid_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnp(5, 1.5)


class TestRmat:
    def test_edge_count(self):
        g = rmat(100, 300, seed=2)
        assert g.num_vertices == 100
        assert g.num_edges == 300

    def test_skewed_degrees(self):
        g = rmat(512, 2000, seed=5)
        degrees = sorted((g.degree(v) for v in g), reverse=True)
        # power-law-ish: top vertex much hotter than the median
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat(10, 10, a=0.5, b=0.5, c=0.5, d=0.5)

    def test_deterministic(self):
        assert rmat(64, 128, seed=9) == rmat(64, 128, seed=9)


class TestSsca:
    def test_contains_planted_cliques(self):
        from repro.core.kcore import degeneracy

        g = ssca(300, max_clique_size=12, seed=4)
        # a clique of size s gives degeneracy >= s-1; sizes are uniform in
        # [1,12] so with 300 vertices a size >= 10 clique is near-certain
        assert degeneracy(g) >= 9

    def test_vertex_count(self):
        assert ssca(123, seed=1).num_vertices == 123

    def test_invalid_clique_size(self):
        with pytest.raises(ValueError):
            ssca(10, max_clique_size=0)


class TestChungLu:
    def test_respects_expected_degrees_roughly(self):
        weights = [10.0] * 200
        g = chung_lu(weights, seed=6)
        mean_degree = 2 * g.num_edges / g.num_vertices
        assert abs(mean_degree - 10.0) < 2.5

    def test_power_law_weights_mean(self):
        w = power_law_weights(500, 2.5, 8.0)
        assert sum(w) / len(w) == pytest.approx(8.0)

    def test_power_law_alpha_recovered(self):
        g = chung_lu(power_law_weights(3000, 2.3, 6.0), seed=8)
        alpha = power_law_alpha(g, dmin=3)
        assert 1.7 < alpha < 3.2

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            power_law_weights(10, 0.5, 2.0)

    def test_zero_weights(self):
        g = chung_lu([0.0] * 20, seed=1)
        assert g.num_edges == 0


class TestHolmeKim:
    def test_size_and_connectivity(self):
        g = holme_kim(200, 3, seed=3)
        assert g.num_vertices == 200
        assert g.is_connected()

    def test_clustering_higher_than_er(self):
        import networkx as nx

        from .conftest import to_networkx

        hk = holme_kim(300, 3, triangle_prob=0.9, seed=2)
        er = erdos_renyi_gnm(300, hk.num_edges, seed=2)
        assert nx.average_clustering(to_networkx(hk)) > nx.average_clustering(to_networkx(er))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            holme_kim(5, 0)
        with pytest.raises(ValueError):
            holme_kim(3, 5)


class TestPlantedClique:
    def test_members_form_clique(self):
        base = erdos_renyi_gnm(60, 80, seed=1)
        g, members = planted_clique(base, 8, seed=2)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                assert g.has_edge(u, v)

    def test_original_untouched(self):
        base = erdos_renyi_gnm(30, 30, seed=1)
        before = base.num_edges
        planted_clique(base, 6, seed=3)
        assert base.num_edges == before

    def test_too_large(self):
        with pytest.raises(ValueError):
            planted_clique(erdos_renyi_gnm(5, 4, seed=1), 10)
