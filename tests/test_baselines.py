"""Tests for the Nucleus and EMcore baselines."""

import pytest

from repro.baselines.emcore import emcore_densest, emcore_kmax_core
from repro.baselines.nucleus import _h_index, nucleus_core_numbers, nucleus_densest
from repro.core.clique_core import clique_core_decomposition
from repro.core.core_app import core_app_densest
from repro.core.inc_app import inc_app_densest
from repro.core.kcore import core_decomposition, max_core
from repro.graph.graph import Graph, complete_graph

from .conftest import random_graph


class TestHIndex:
    @pytest.mark.parametrize(
        "values,expected",
        [([], 0), ([0], 0), ([1], 1), ([5, 4, 3, 2, 1], 3), ([3, 3, 3], 3), ([10, 10], 2)],
    )
    def test_known_values(self, values, expected):
        assert _h_index(values) == expected


class TestNucleus:
    @pytest.mark.parametrize("h", [2, 3, 4])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_peeling_decomposition(self, h, seed):
        # independent implementations must agree on every core number
        g = random_graph(22, 70, seed=seed)
        nucleus = nucleus_core_numbers(g, h)
        peeling = clique_core_decomposition(g, h).core
        assert nucleus == peeling

    def test_h2_matches_classical(self):
        g = random_graph(30, 90, seed=9)
        assert nucleus_core_numbers(g, 2) == core_decomposition(g)

    def test_figure3(self, paper_figure3_graph):
        core = nucleus_core_numbers(paper_figure3_graph, 3)
        assert core["A"] == 3 and core["H"] == 0

    def test_densest_matches_inc_app(self):
        g = random_graph(25, 80, seed=10)
        nucleus = nucleus_densest(g, 3)
        inc = inc_app_densest(g, 3)
        assert nucleus.vertices == inc.vertices
        assert nucleus.density == pytest.approx(inc.density)

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            nucleus_core_numbers(Graph(), 1)

    def test_empty(self):
        assert nucleus_densest(Graph(), 3).density == 0.0

    def test_max_rounds_cap(self):
        g = random_graph(20, 55, seed=11)
        capped = nucleus_core_numbers(g, 3, max_rounds=1)
        exact = nucleus_core_numbers(g, 3)
        # estimates only ever decrease toward the fixpoint
        assert all(capped[v] >= exact[v] for v in capped)


class TestEMcore:
    @pytest.mark.parametrize("seed", range(4))
    def test_kmax_matches_bottom_up(self, seed):
        g = random_graph(40, 130, seed=seed)
        kmax, vertices = emcore_kmax_core(g, block_size=8)
        expected_kmax, expected_core = max_core(g)
        assert kmax == expected_kmax
        assert vertices == set(expected_core.vertices())

    def test_matches_core_app(self):
        g = random_graph(50, 160, seed=5)
        em = emcore_densest(g)
        app = core_app_densest(g, 2)
        assert em.stats["kmax"] == app.stats["kmax"]
        assert em.vertices == app.vertices

    def test_block_size_larger_than_graph(self):
        g = complete_graph(6)
        kmax, vertices = emcore_kmax_core(g, block_size=100)
        assert kmax == 5
        assert len(vertices) == 6

    def test_empty(self):
        assert emcore_kmax_core(Graph()) == (0, set())
