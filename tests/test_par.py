"""Property suite for the parallel execution layer (:mod:`repro.par`).

The load-bearing contract: **parallel results are bit-identical to
serial**, for every solver surface, at every worker count, with numpy
on or off, under injected worker crashes, and under expiring budgets.
A 50-graph matrix of multi-component random graphs pins it:

* CoreExact / Exact vertex sets and densities for workers ∈ {1, 2, 4}
  equal the serial run's exactly (``==`` on floats, not approx);
* the canonical ``CliqueIndex`` row list built through the chunked
  parallel enumeration is byte-identical to the serial kernel's;
* peeling (never parallelised) is unaffected by the ``workers`` knob;
* a worker killed by fault injection (``REPRO_FAULT``-style plan) is
  failed over serially in the parent -- same result, ``par.failover``
  telemetry recorded;
* an expired :class:`repro.guard.Budget` under parallel CoreExact
  degrades exactly like serial: incumbent result plus a valid density
  bracket, never an exception or a deadlock.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro import api, guard, obs, par
from repro.cliques.index import CliqueIndex
from repro.core.core_exact import core_exact_densest
from repro.core.exact import exact_densest
from repro.graph.graph import Graph
from repro.guard import faults

REPO = Path(__file__).resolve().parent.parent

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    par.shutdown()


def _graph(seed: int) -> Graph:
    """A multi-component random graph: 2-4 blobs of 8-16 vertices."""
    rng = random.Random(seed)
    comps = 2 + seed % 3
    p = 0.25 + 0.05 * (seed % 3)
    g = Graph()
    base = 0
    for _ in range(comps):
        n = 8 + 2 * rng.randrange(5)
        verts = list(range(base, base + n))
        for v in verts:
            g.add_vertex(v)
        for i, u in enumerate(verts):
            for v in verts[i + 1:]:
                if rng.random() < p:
                    g.add_edge(u, v)
        base += n
    return g


def _h(seed: int) -> int:
    return (2, 3, 4)[seed % 3]


def _clones(seed: int, copies: int = 3, n: int = 12, p: float = 0.3) -> Graph:
    """``copies`` label-shifted copies of one random blob.

    Identical structure means identical clique-core numbers, so
    CoreExact's locate-core pruning keeps every component and the
    fan-out path is guaranteed to engage.
    """
    rng = random.Random(seed)
    edges = [
        (i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < p
    ]
    g = Graph()
    for c in range(copies):
        base = c * n
        for v in range(base, base + n):
            g.add_vertex(v)
        for i, j in edges:
            g.add_edge(base + i, base + j)
    return g


# --- the 50-graph identity matrix -------------------------------------


@pytest.mark.parametrize("seed", range(50))
def test_core_exact_parallel_is_bit_identical(seed):
    g, h = _graph(seed), _h(seed)
    serial = core_exact_densest(g, h)
    for workers in WORKER_COUNTS:
        parallel = core_exact_densest(g, h, workers=workers)
        assert parallel.vertices == serial.vertices, (seed, h, workers)
        assert parallel.density == serial.density, (seed, h, workers)


@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_exact_parallel_is_bit_identical(seed):
    g, h = _graph(seed), _h(seed)
    serial = exact_densest(g, h)
    for workers in (2, 4):
        parallel = exact_densest(g, h, workers=workers)
        assert parallel.vertices == serial.vertices, (seed, h, workers)
        assert parallel.density == serial.density, (seed, h, workers)


@pytest.mark.parametrize("seed", range(0, 50, 7))
def test_clique_index_rows_byte_identical(seed, monkeypatch):
    # lower the fan-out floor so toy graphs exercise the chunked path
    monkeypatch.setattr(par, "PAR_MIN_EDGES", 1)
    g = _graph(seed)
    for h in (3, 4):
        serial = CliqueIndex(g, h)
        for workers in (2, 4):
            chunked = CliqueIndex(g, h, workers=workers)
            assert chunked.inst == serial.inst, (seed, h, workers)
            assert chunked.m == serial.m


@pytest.mark.parametrize("seed", (3, 11))
def test_peel_orders_unaffected_by_workers(seed):
    g, h = _graph(seed), _h(seed)
    serial = api.densest_subgraph(g, h, method="peel")
    parallel = api.densest_subgraph(g, h, method="peel", workers=4)
    assert parallel.vertices == serial.vertices
    assert parallel.density == serial.density
    assert parallel.iterations == serial.iterations


def test_api_densest_subgraph_threads_workers():
    g = _clones(4)
    serial = api.densest_subgraph(g, 3, method="core-exact")
    par.LAST_BATCH.clear()
    parallel = api.densest_subgraph(g, 3, method="core-exact", workers=2)
    assert parallel.vertices == serial.vertices
    assert parallel.density == serial.density
    assert par.LAST_BATCH.get("surface") == "core_exact.components"
    assert par.LAST_BATCH.get("workers") == 2


# --- the numpy-off leg ------------------------------------------------


def test_matrix_holds_without_numpy():
    """Pure-python tier: arena falls back to inline pickles, same bits."""
    script = (
        "import sys; sys.path.insert(0, 'tests'); sys.path.insert(0, 'src')\n"
        "from test_par import _graph, _h\n"
        "from repro.core.core_exact import core_exact_densest\n"
        "from repro import par\n"
        "for seed in (1, 8):\n"
        "    g, h = _graph(seed), _h(seed)\n"
        "    serial = core_exact_densest(g, h)\n"
        "    parallel = core_exact_densest(g, h, workers=2)\n"
        "    assert parallel.vertices == serial.vertices, seed\n"
        "    assert parallel.density == serial.density, seed\n"
        "par.shutdown()\n"
        "print('identical')\n"
    )
    env = dict(os.environ, REPRO_NO_NUMPY="1", PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-c", script], cwd=REPO, env=env,
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "identical" in proc.stdout


# --- chaos: a worker dies mid-batch -----------------------------------


def test_worker_crash_fails_over_to_identical_result():
    g, h = _graph(13), 2
    serial = core_exact_densest(g, h)
    par.shutdown()  # fresh forks must inherit the armed fault plan
    faults.inject("par.worker", nth=1)
    try:
        obs.enable(fresh=True)
        parallel = core_exact_densest(g, h, workers=2)
        counters = dict(obs.get_collector().counters)
        obs.disable()
    finally:
        faults.reset()
        par.shutdown()
    assert parallel.vertices == serial.vertices
    assert parallel.density == serial.density
    assert counters.get("par.failover", 0) >= 1


# --- budgets under parallel execution ---------------------------------


def test_deadline_honored_under_parallel_core_exact():
    """An already-expired deadline ships to workers as an absolute
    instant; every component degrades, and the parent returns the
    incumbent with a valid density bracket instead of raising."""
    g = _graph(7)
    with guard.Budget(deadline_s=1e-4):
        result = core_exact_densest(g, 2, workers=2)
    stats = result.stats
    assert stats.get("degraded") is True
    assert "deadline" in stats["degraded_reason"]
    assert result.vertices
    assert stats["density_lower_bound"] == result.density
    assert stats["density_lower_bound"] <= stats["density_upper_bound"]


def test_max_solves_degrades_with_incumbent_under_parallel():
    # pruning off: the per-component walks genuinely need > 1 solve,
    # so the shipped solve allowance expires inside the workers
    g = _clones(10)
    with guard.Budget(max_solves=1) as budget:
        result = core_exact_densest(g, 2, pruning1=False, pruning2=False, workers=2)
    stats = result.stats
    assert stats.get("degraded") is True
    assert result.vertices
    assert result.density == stats["density_lower_bound"]
    assert stats["density_upper_bound"] >= stats["density_lower_bound"]
    # worker solves were folded back into the parent budget
    assert budget.solves >= 1


def test_serial_and_parallel_degrade_to_the_same_incumbent():
    g = _clones(16)
    with guard.Budget(max_solves=1):
        serial = core_exact_densest(g, 2, pruning1=False, pruning2=False)
    with guard.Budget(max_solves=1):
        parallel = core_exact_densest(g, 2, pruning1=False, pruning2=False, workers=2)
    # both land on budget-degraded results with sound brackets; the
    # pruned-core seeds are budget-free, so the incumbents coincide
    assert serial.stats.get("degraded") and parallel.stats.get("degraded")
    assert parallel.vertices == serial.vertices
    assert parallel.density == serial.density


# --- the map_components primitive -------------------------------------


def _double(payload, shared):
    return payload * 2


def _sum_shared(payload, shared):
    return payload + sum(int(x) for x in shared["xs"])


def test_map_components_preserves_order():
    outcomes = par.map_components(_double, list(range(8)), workers=2)
    assert [o["status"] for o in outcomes] == ["ok"] * 8
    assert [o["result"] for o in outcomes] == [i * 2 for i in range(8)]


def test_map_components_ships_shared_arrays():
    np = pytest.importorskip("numpy")
    xs = np.asarray([1, 2, 3], dtype=np.int64)
    outcomes = par.map_components(
        _sum_shared, [10, 20], workers=2, shared={"xs": xs}
    )
    assert [o["result"] for o in outcomes] == [16, 26]


def test_map_components_rejects_lambdas():
    with pytest.raises(TypeError, match="module-level"):
        par.map_components(lambda p, s: p, [1, 2], workers=2)


def test_resolve_workers_env_default(monkeypatch):
    assert par.resolve_workers(3) == 3
    assert par.resolve_workers(0) == 1
    # the suite itself may run under an ambient REPRO_WORKERS (the CI
    # workers=2 leg does exactly that); pin both directions explicitly
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert par.resolve_workers(None) == 1  # REPRO_WORKERS defaults to 0
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert par.resolve_workers(None) == 4
