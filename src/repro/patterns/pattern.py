"""Pattern type and the paper's pattern catalogue (Figure 7).

A *pattern* is a small connected simple graph Ψ (a.k.a. motif /
higher-order structure).  The PDS problem (Section 7) finds the
subgraph with the most pattern instances per vertex.

The catalogue fixes the seven named non-clique patterns of Figure 7.
Two names need interpretation from a text-only source; the choices are
documented in DESIGN.md §3 and centralised here so a different reading
is a one-line change:

* ``diamond`` -- the 4-cycle C4 (Example 6 and Appendix D's loop-pattern
  counting identify it as the cycle, drawn diamond-shaped).
* ``2-triangle`` -- K4 minus one edge (two triangles sharing an edge).
* ``3-triangle`` -- the book graph B3 (three triangles sharing an edge).
* ``basket`` -- the house graph (a triangle on top of a 4-cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations

from ..graph.graph import Graph, complete_graph, cycle_graph, star_graph


@dataclass(frozen=True)
class Pattern:
    """A named connected pattern graph Ψ(V_Ψ, E_Ψ).

    Attributes
    ----------
    name:
        Human-readable identifier (see :func:`get_pattern`).
    graph:
        The pattern itself, vertices ``0 .. size-1``.
    """

    name: str
    graph: Graph = field(compare=False)

    def __post_init__(self) -> None:
        if self.graph.num_vertices < 2:
            raise ValueError("a pattern needs at least two vertices")
        if not self.graph.is_connected():
            raise ValueError("patterns must be connected")

    @property
    def size(self) -> int:
        """``|V_Ψ|`` -- the denominator of the approximation ratio."""
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """``|E_Ψ|``."""
        return self.graph.num_edges

    def is_clique(self) -> bool:
        """Whether Ψ is the complete graph on its vertices."""
        h = self.size
        return self.graph.num_edges == h * (h - 1) // 2

    def degrees(self) -> list[int]:
        """Sorted degree sequence of the pattern."""
        return sorted(self.graph.degree(v) for v in self.graph)

    def automorphism_count(self) -> int:
        """Number of automorphisms of Ψ (brute force; patterns are tiny)."""
        vertices = sorted(self.graph.vertices())
        edges = {frozenset(e) for e in self.graph.edges()}
        count = 0
        for perm in permutations(vertices):
            mapping = dict(zip(vertices, perm))
            if all(frozenset((mapping[u], mapping[v])) in edges for u, v in self.graph.edges()):
                count += 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pattern({self.name!r}, |V|={self.size}, |E|={self.num_edges})"


def clique_pattern(h: int) -> Pattern:
    """The h-clique pattern (``h >= 2``); ``h = 2`` is the single edge."""
    if h < 2:
        raise ValueError("h must be >= 2")
    name = {2: "edge", 3: "triangle"}.get(h, f"{h}-clique")
    return Pattern(name, complete_graph(h))


def star_pattern(tails: int) -> Pattern:
    """The x-star: one centre with ``tails`` leaves (Appendix D fast path)."""
    return Pattern(f"{tails}-star", star_graph(tails))


def _c3_star() -> Graph:
    # triangle 0-1-2 with pendant 3 attached to 0 ("paw")
    return Graph([(0, 1), (1, 2), (2, 0), (0, 3)])


def _two_triangle() -> Graph:
    # K4 minus edge (2, 3): triangles 012 and 013 share edge 0-1
    return Graph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])


def _three_triangle() -> Graph:
    # book B3: triangles 012, 013, 014 share the edge 0-1
    return Graph([(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)])


def _basket() -> Graph:
    # house: square 0-1-2-3 with roof apex 4 on edge 2-3
    return Graph([(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (3, 4)])


_CATALOGUE: dict[str, callable] = {
    "edge": lambda: complete_graph(2),
    "2-star": lambda: star_graph(2),
    "3-star": lambda: star_graph(3),
    "triangle": lambda: complete_graph(3),
    "c3-star": _c3_star,
    "diamond": lambda: cycle_graph(4),
    "2-triangle": _two_triangle,
    "4-clique": lambda: complete_graph(4),
    "3-triangle": _three_triangle,
    "basket": _basket,
    "5-clique": lambda: complete_graph(5),
    "6-clique": lambda: complete_graph(6),
}


def get_pattern(name: str) -> Pattern:
    """Look up a pattern by its Figure-7 name.

    >>> get_pattern("diamond").size
    4

    Raises
    ------
    KeyError
        For an unknown name; :func:`pattern_names` lists valid ones.
    """
    try:
        factory = _CATALOGUE[name]
    except KeyError:
        raise KeyError(f"unknown pattern {name!r}; known: {sorted(_CATALOGUE)}") from None
    return Pattern(name, factory())


def pattern_names() -> list[str]:
    """All catalogue pattern names, in Figure-7 order."""
    return list(_CATALOGUE)
