"""Pattern-degrees, including the Appendix-D fast paths.

``deg_G(v, Ψ)`` (Definition 9) counts the pattern instances containing
``v``.  The generic route sums over the instance list produced by
:mod:`repro.patterns.isomorphism`.  For the two special families the
paper optimises (Appendix D) closed-form counters avoid enumeration:

* **x-star** -- ``deg(v) = C(deg(v), x) + Σ_{u∈N(v)} C(deg(u)-1, x-1)``
  (v as the centre, plus v as a tail of each neighbouring centre).
* **loop / "diamond" (C4)** -- group the 2-paths leaving ``v`` by their
  far endpoint ``u``; any two parallel 2-paths close a 4-cycle, so
  ``deg(v) = Σ_u C(|N(v) ∩ N(u)|, 2)``.

Both are cross-checked against generic enumeration in the test suite.
"""

from __future__ import annotations

import math
from collections import Counter

from ..graph.graph import Graph, Vertex
from .isomorphism import enumerate_pattern_instances
from .pattern import Pattern


def pattern_degrees(graph: Graph, pattern: Pattern) -> dict[Vertex, int]:
    """Pattern-degree of every vertex via instance enumeration."""
    degrees: dict[Vertex, int] = {v: 0 for v in graph}
    for inst in enumerate_pattern_instances(graph, pattern):
        for v in {v for edge in inst for v in edge}:
            degrees[v] += 1
    return degrees


def star_degrees(graph: Graph, tails: int) -> dict[Vertex, int]:
    """x-star pattern-degrees in O(n + m) time (Appendix D, case 1).

    Parameters
    ----------
    tails:
        The number x of tail vertices (x >= 2; ``x = 1`` would be the
        plain edge).
    """
    if tails < 2:
        raise ValueError("a star pattern needs at least two tails")
    degrees: dict[Vertex, int] = {}
    for v in graph:
        y = graph.degree(v)
        total = math.comb(y, tails)
        for u in graph.neighbors(v):
            total += math.comb(graph.degree(u) - 1, tails - 1)
        degrees[v] = total
    return degrees


def two_paths_by_endpoint(graph: Graph, v: Vertex) -> Counter:
    """Count 2-paths ``v - w - u`` grouped by far endpoint ``u != v``."""
    paths: Counter = Counter()
    for w in graph.neighbors(v):
        for u in graph.neighbors(w):
            if u != v:
                paths[u] += 1
    return paths


def c4_degrees(graph: Graph) -> dict[Vertex, int]:
    """4-cycle ("diamond") pattern-degrees in O(Σ deg²) time (Appendix D).

    Each C4 containing ``v`` pairs two 2-paths from ``v`` to its
    opposite corner, so every cycle is counted exactly once per vertex.
    """
    degrees: dict[Vertex, int] = {}
    for v in graph:
        paths = two_paths_by_endpoint(graph, v)
        degrees[v] = sum(math.comb(c, 2) for c in paths.values())
    return degrees


def fast_pattern_degrees(graph: Graph, pattern: Pattern) -> dict[Vertex, int]:
    """Dispatch to a closed-form counter when one exists, else enumerate.

    The fast paths cover the starred patterns of Figure 7 (2-star,
    3-star, diamond); everything else goes through the generic matcher.
    """
    degree_seq = pattern.degrees()
    size = pattern.size
    # x-star: one centre of degree x, x leaves of degree 1
    if pattern.num_edges == size - 1 and degree_seq == [1] * (size - 1) + [size - 1]:
        return star_degrees(graph, size - 1)
    # C4: four vertices of degree 2 forming a cycle
    if size == 4 and pattern.num_edges == 4 and degree_seq == [2, 2, 2, 2]:
        return c4_degrees(graph)
    return pattern_degrees(graph, pattern)
