"""Pattern machinery: catalogue, instance enumeration, degrees."""

from .degree import c4_degrees, fast_pattern_degrees, pattern_degrees, star_degrees
from .isomorphism import (
    count_pattern_instances,
    enumerate_pattern_instances,
    pattern_density,
)
from .pattern import Pattern, clique_pattern, get_pattern, pattern_names, star_pattern

__all__ = [
    "Pattern",
    "c4_degrees",
    "clique_pattern",
    "count_pattern_instances",
    "enumerate_pattern_instances",
    "fast_pattern_degrees",
    "get_pattern",
    "pattern_degrees",
    "pattern_density",
    "pattern_names",
    "star_degrees",
    "star_pattern",
]
