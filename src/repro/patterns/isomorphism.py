"""Pattern-instance enumeration via subgraph isomorphism (Section 7.1).

Definition 8: a pattern instance is a subgraph ``S ⊆ G`` isomorphic to
Ψ.  Instances are identified by their *edge set* -- automorphic
re-embeddings onto the same edges are one instance (the remark below
Definition 9).

The matcher is a straightforward backtracking embedder: pattern
vertices are visited in a connectivity-preserving order, candidates are
drawn from the intersection of the images of already-mapped pattern
neighbours, and complete embeddings are deduplicated by image edge set.
Patterns have 3-6 vertices, so the |Aut(Ψ)|-fold overcounting this
deduplication absorbs is a small constant.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..graph.graph import Graph, Vertex
from .pattern import Pattern

#: A pattern instance: the frozenset of its image edges, each edge a
#: frozenset of two vertices.
Instance = frozenset


def instance_vertices(instance: Instance) -> frozenset:
    """The vertex set spanned by an instance's edges."""
    return frozenset(v for edge in instance for v in edge)


def _search_order(pattern: Pattern) -> list[Vertex]:
    """Pattern vertices ordered so each one touches an earlier one.

    Starts from a maximum-degree vertex and greedily appends the vertex
    with the most already-ordered neighbours (ties by degree) -- the
    standard candidate-narrowing heuristic.
    """
    g = pattern.graph
    ordered = [max(g.vertices(), key=g.degree)]
    placed = set(ordered)
    while len(ordered) < g.num_vertices:
        best = max(
            (v for v in g if v not in placed),
            key=lambda v: (len(g.neighbors(v) & placed), g.degree(v)),
        )
        ordered.append(best)
        placed.add(best)
    return ordered


def enumerate_pattern_instances(
    graph: Graph, pattern: Pattern, induced: bool = False
) -> list[Instance]:
    """All instances of ``pattern`` in ``graph`` as image edge sets.

    With ``induced=True``, only *vertex-induced* instances are kept:
    vertices non-adjacent in Ψ must be non-adjacent in the image too
    (the adaptation Section 7.1 notes in passing).  An induced instance
    is still reported by its edge set, which the vertex set then
    determines uniquely.

    >>> from repro.graph.graph import complete_graph
    >>> from repro.patterns.pattern import get_pattern
    >>> len(enumerate_pattern_instances(complete_graph(4), get_pattern("diamond")))
    3
    >>> len(enumerate_pattern_instances(complete_graph(4), get_pattern("diamond"), induced=True))
    0
    """
    order = _search_order(pattern)
    pg = pattern.graph
    position = {v: i for i, v in enumerate(order)}
    # for each position i: pattern neighbours at earlier positions
    earlier_neighbors: list[list[int]] = []
    pattern_degree = [pg.degree(v) for v in order]
    for i, v in enumerate(order):
        earlier_neighbors.append([position[u] for u in pg.neighbors(v) if position[u] < i])

    size = pattern.size
    found: set[Instance] = set()
    mapping: list[Vertex] = [None] * size
    used: set[Vertex] = set()
    pattern_edges = [(position[u], position[v]) for u, v in pg.edges()]

    pattern_non_edges = [
        (i, j)
        for i in range(size)
        for j in range(i + 1, size)
        if not pg.has_edge(order[i], order[j])
    ]

    def backtrack(i: int) -> None:
        if i == size:
            if induced and any(
                graph.has_edge(mapping[a], mapping[b]) for a, b in pattern_non_edges
            ):
                return
            found.add(
                frozenset(frozenset((mapping[a], mapping[b])) for a, b in pattern_edges)
            )
            return
        anchors = earlier_neighbors[i]
        if anchors:
            candidate_sets = sorted(
                (graph.neighbors(mapping[a]) for a in anchors), key=len
            )
            candidates = candidate_sets[0]
            rest = candidate_sets[1:]
        else:  # only the root has no anchors
            candidates = graph.neighbors(mapping[0]) if i else None
            rest = []
        for w in candidates:
            if w in used or graph.degree(w) < pattern_degree[i]:
                continue
            if any(w not in s for s in rest):
                continue
            mapping[i] = w
            used.add(w)
            backtrack(i + 1)
            used.discard(w)
        mapping[i] = None

    for root in graph:
        if graph.degree(root) < pattern_degree[0]:
            continue
        mapping[0] = root
        used.add(root)
        backtrack(1)
        used.discard(root)
        mapping[0] = None
    return sorted(found, key=lambda inst: sorted(map(sorted, inst)))


def count_pattern_instances(graph: Graph, pattern: Pattern, induced: bool = False) -> int:
    """``μ(G, Ψ)``: the number of pattern instances in the graph."""
    return len(enumerate_pattern_instances(graph, pattern, induced=induced))


def pattern_density(graph: Graph, pattern: Pattern) -> float:
    """Pattern-density ``ρ(G, Ψ) = μ(G, Ψ) / |V|`` (Definition 10)."""
    if graph.num_vertices == 0:
        return 0.0
    return count_pattern_instances(graph, pattern) / graph.num_vertices


def instances_within(instances: Sequence[Instance], vertices: set) -> Iterator[Instance]:
    """Filter instances whose vertex set lies entirely inside ``vertices``."""
    for inst in instances:
        if all(v in vertices for edge in inst for v in edge):
            yield inst
