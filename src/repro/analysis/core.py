"""Framework core of the invariant linter.

The moving parts:

* :class:`SourceFile` -- one parsed python file: source text, AST, and
  the ``lint-ok`` suppressions found in it.
* :class:`Project` -- every file of one lint run.  Rules receive the
  whole project, because the contracts they prove are cross-file (the
  jit rule compares two modules' ``EPS`` literals; the coverage rule
  checks event emissions in one file against schemas in another).
* :class:`Rule` / :func:`rule` -- the registry.  A rule is a class with
  an ``id``, a one-line ``doc``, and a ``check(project)`` generator of
  :class:`Finding` records.
* :func:`run_paths` -- collect files, run the selected rules, apply
  suppressions, and return the sorted findings.

Suppressions.  ``# repro: lint-ok[rule-id] -- reason`` as a trailing
comment suppresses that rule's findings on its line; on a standalone
comment line it suppresses them on the next code line.  The reason is
mandatory: a ``lint-ok`` without one (or naming no rule) is reported
under the ``suppression`` meta-rule.  Files that fail to parse are
reported under ``syntax``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

#: Meta-rule ids (always-on; not in :data:`RULES`).
SUPPRESSION_RULE = "suppression"
SYNTAX_RULE = "syntax"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class SourceFile:
    """A parsed source file plus its suppression table."""

    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            self.syntax_error = exc
        #: line number -> rule ids suppressed on that line
        self.suppressions: dict[int, set[str]] = {}
        #: malformed lint-ok comments, as (line, message)
        self.bad_suppressions: list[tuple[int, str]] = []
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = {part.strip() for part in match.group("rules").split(",") if part.strip()}
            reason = match.group("reason")
            if not rules:
                self.bad_suppressions.append(
                    (lineno, "lint-ok names no rule (use lint-ok[rule-id])")
                )
                continue
            if not reason:
                self.bad_suppressions.append(
                    (lineno, "lint-ok without a reason (append: -- <why this is safe>)")
                )
                continue
            # a standalone comment shields the next line; a trailing one
            # shields its own
            target = lineno
            if line.split("#", 1)[0].strip() == "":
                target = lineno + 1
            self.suppressions.setdefault(target, set()).update(rules)

    def endswith(self, suffix: str) -> bool:
        """Posix-path suffix match (``accel/kernels.py`` style)."""
        posix = self.path.as_posix()
        return posix.endswith(suffix) and (
            len(posix) == len(suffix) or posix[-len(suffix) - 1] == "/"
        )


class Project:
    """All files of one lint run, with suffix lookup for cross-file rules."""

    def __init__(self, files: Sequence[SourceFile]):
        self.files = list(files)

    def find(self, suffix: str) -> Optional[SourceFile]:
        for source in self.files:
            if source.endswith(suffix):
                return source
        return None

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)


class Rule:
    """Base class for lint rules; subclasses register via :func:`rule`."""

    id: str = ""
    doc: str = ""

    def check(self, project: Project) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


#: Registered rules by id (populated by the :func:`rule` decorator when
#: the rule modules import).
RULES: dict[str, type[Rule]] = {}


def rule(cls: type[Rule]) -> type[Rule]:
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULES[cls.id] = cls
    return cls


# --- helpers shared by the rule modules -------------------------------


def module_constants(tree: ast.Module) -> dict[str, object]:
    """Module-level ``NAME = <literal>`` bindings (tuples/strs/numbers)."""
    constants: dict[str, object] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        try:
            literal = ast.literal_eval(value)
        except (ValueError, TypeError, SyntaxError, MemoryError):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = literal
    return constants


def top_level_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Module-level function definitions by name."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def call_name(node: ast.expr) -> str:
    """Dotted rendering of a call target, best effort (``np.empty``)."""
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return ".".join(reversed(parts))
    return "<expr>" + ("." + ".".join(reversed(parts)) if parts else "")


# --- run --------------------------------------------------------------


def collect_files(paths: Iterable[str]) -> list[SourceFile]:
    """Expand ``paths`` (files or directories) into parsed sources."""
    seen: set[Path] = set()
    sources: list[SourceFile] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(
                p for p in root.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif root.exists():
            candidates = [root]
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for path in candidates:
            key = path.resolve()
            if key in seen:
                continue
            seen.add(key)
            sources.append(SourceFile(path, path.as_posix(), path.read_text(encoding="utf-8")))
    return sources


def resolve_rules(
    select: Optional[Iterable[str]] = None, ignore: Optional[Iterable[str]] = None
) -> list[str]:
    """The rule ids a run executes, in registry order."""
    selected = list(select) if select else list(RULES)
    unknown = [rid for rid in selected if rid not in RULES]
    ignored = set(ignore or ())
    unknown += [rid for rid in ignored if rid not in RULES and rid not in (
        SUPPRESSION_RULE, SYNTAX_RULE)]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(set(unknown)))}")
    return [rid for rid in RULES if rid in selected and rid not in ignored]


def run_project(
    project: Project,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Run the selected rules over ``project``; returns sorted findings."""
    findings: list[Finding] = []
    ignored = set(ignore or ())
    for source in project:
        if source.syntax_error is not None and SYNTAX_RULE not in ignored:
            err = source.syntax_error
            findings.append(
                Finding(source.rel, err.lineno or 1, (err.offset or 1) - 1,
                        SYNTAX_RULE, f"file does not parse: {err.msg}")
            )
        if SUPPRESSION_RULE not in ignored:
            for lineno, message in source.bad_suppressions:
                findings.append(Finding(source.rel, lineno, 0, SUPPRESSION_RULE, message))
    suppression_index = {source.rel: source.suppressions for source in project}
    for rule_id in resolve_rules(select, ignore):
        for finding in RULES[rule_id]().check(project):
            suppressed = suppression_index.get(finding.path, {}).get(finding.line, ())
            if finding.rule not in suppressed:
                findings.append(finding)
    return sorted(findings)


def run_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> tuple[list[Finding], int]:
    """Lint ``paths``; returns ``(findings, files_examined)``."""
    sources = collect_files(paths)
    return run_project(Project(sources), select, ignore), len(sources)


def render_text(findings: Sequence[Finding], files: int) -> str:
    lines = [finding.render() for finding in findings]
    noun = "file" if files == 1 else "files"
    if findings:
        lines.append(f"{len(findings)} finding(s) in {files} {noun}")
    else:
        lines.append(f"clean: 0 findings in {files} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files: int, rules: Sequence[str]) -> str:
    return json.dumps(
        {
            "files": files,
            "rules": list(rules),
            "findings": [finding.as_dict() for finding in findings],
        },
        indent=2,
        sort_keys=True,
    )
