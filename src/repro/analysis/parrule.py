"""``par-safety``: what fork-based fan-out cannot survive.

The parallel layer (:mod:`repro.par`) promises results bit-identical to
serial execution.  That promise rests on three syntactic disciplines,
each enforced here because breaking them fails silently (a lambda
pickles on fork-start but not by name; a mutated module global diverges
between parent and workers; an unregistered env read bypasses the typed
registry a worker was configured through):

* **importable pool entries** -- every function handed to
  ``map_components`` must be importable by name in the worker process:
  lambdas and functions defined inside another function are flagged at
  the call site (the runtime check in :func:`repro.par._importable`
  raises too, but only once a pool actually spins up).
* **no stray module globals** -- inside ``repro/par/`` modules, a
  ``global`` statement (module-state rebinding) is allowed only in
  functions named by that module's ``WORKER_INIT_FUNCS`` constant --
  the registered worker-initialisation path that deliberately rewires
  per-process state.  Everything else must mutate shared structures in
  place or pass state explicitly.
* **env reads through the registry** -- ``os.environ`` / ``os.getenv``
  inside ``repro/par/`` duplicates the project-wide ``env-discipline``
  rule with a par-specific message: a worker's behaviour must be a
  function of the typed :mod:`repro.env` registry its parent resolved,
  never of an ad-hoc environment probe.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    call_name,
    module_constants,
    rule,
)

#: Directory name whose files are the parallel layer.
PAR_DIR = "par"

_LAMBDA_MSG = (
    "map_components is handed a lambda; worker processes import pool "
    "entries by name -- define a module-level function instead"
)
_NESTED_MSG = (
    "map_components is handed a nested function; worker processes "
    "import pool entries by name -- move it to module level"
)
_GLOBAL_MSG = (
    "'global' outside the registered worker-init path; par modules may "
    "rebind module state only inside functions named in WORKER_INIT_FUNCS"
)
_ENV_MSG = (
    "direct environment access in the parallel layer; a worker's "
    "behaviour must come from the typed repro.env registry its parent "
    "resolved"
)


def in_par_scope(source: SourceFile) -> bool:
    return PAR_DIR in source.path.parts[:-1]


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function."""
    nested: set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _global_findings(source: SourceFile, rule_id: str) -> Iterator[Finding]:
    allowed = module_constants(source.tree).get("WORKER_INIT_FUNCS", ())
    if not isinstance(allowed, (tuple, list)):
        allowed = ()

    def walk(node: ast.AST, func_name: str | None) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Global) and func_name not in allowed:
                yield Finding(
                    source.rel, child.lineno, child.col_offset, rule_id, _GLOBAL_MSG
                )
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(child, child.name)
            else:
                yield from walk(child, func_name)

    yield from walk(source.tree, None)


@rule
class ParSafety(Rule):
    id = "par-safety"
    doc = (
        "pool entries are module-level importable, par modules rebind "
        "globals only in the worker-init path, and read env through the "
        "registry"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project:
            if source.tree is None:
                continue
            # (a) importable pool entries -- project-wide
            nested = _nested_function_names(source.tree)
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not call_name(node.func).split(".")[-1] == "map_components":
                    continue
                if not node.args:
                    continue
                fn_arg = node.args[0]
                if isinstance(fn_arg, ast.Lambda):
                    yield Finding(
                        source.rel, fn_arg.lineno, fn_arg.col_offset,
                        self.id, _LAMBDA_MSG,
                    )
                elif isinstance(fn_arg, ast.Name) and fn_arg.id in nested:
                    yield Finding(
                        source.rel, fn_arg.lineno, fn_arg.col_offset,
                        self.id, _NESTED_MSG,
                    )
            if not in_par_scope(source):
                continue
            # (b) globals only in the registered worker-init path
            yield from _global_findings(source, self.id)
            # (c) env reads through the registry
            for node in ast.walk(source.tree):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in ("environ", "getenv")
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "os"
                ):
                    yield Finding(
                        source.rel, node.lineno, node.col_offset, self.id, _ENV_MSG
                    )
