"""``obs-coverage``: instrumentation is a contract, not a habit.

Two halves:

**Entry-point coverage.**  The public solver entry points (the
functions the serving layer will wrap) must carry both an ``obs.span``
(so every request yields a profile) and a guard budget checkpoint (so
every request can degrade instead of hanging).  The entry-point table
is explicit -- adding a new public solver means adding it here, which
is the point: the linter asks the question "did you instrument it?"
that review otherwise has to.

**Schema drift.**  Every ``obs.event(<name>, ...)`` emission in the
tree must name an event that has a schema in ``obs/validate.py``'s
``EVENT_SCHEMAS`` registry.  Event names are resolved statically:
string literals directly, and ``obs.FLOW_SOLVE`` / module-level
constant names through the module-constant tables of the analyzed
files.  An unresolvable name is itself a finding -- dynamic event names
would make the trace schema unverifiable.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    module_constants,
    rule,
    top_level_functions,
)

#: Public solver entry points: path suffix -> function names that must
#: carry an obs span and a guard budget checkpoint.
ENTRY_POINTS: dict[str, tuple[str, ...]] = {
    "repro/api.py": ("densest_subgraph",),
    "core/exact.py": ("exact_densest",),
    "core/core_exact.py": ("core_exact_densest",),
    "core/peel.py": ("peel_densest",),
    "serve/__init__.py": ("get_snapshot", "batch_densest"),
}

#: ``guard.<attr>`` reads that count as a budget checkpoint hookup.
GUARD_ATTRS = frozenset({"ACTIVE", "current", "BudgetExceeded", "suspended"})

#: Method calls that count as an explicit budget checkpoint.
TICK_METHODS = frozenset({"tick_solve", "tick_round"})


def _has_obs_span(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "span"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "obs"
        ):
            return True
    return False


def _has_budget_checkpoint(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "guard"
                and node.attr in GUARD_ATTRS
            ):
                return True
            if node.attr in TICK_METHODS:
                return True
    return False


def _resolve_event_name(
    node: ast.expr, source: SourceFile, project: Project
) -> Optional[str]:
    """Static resolution of an ``obs.event`` first argument."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    local = module_constants(source.tree) if source.tree else {}
    if isinstance(node, ast.Name):
        value = local.get(node.id)
        return value if isinstance(value, str) else None
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        # obs.FLOW_SOLVE style: look the constant up in obs/__init__.py
        if node.value.id == "obs":
            obs_module = project.find("obs/__init__.py")
            if obs_module is not None and obs_module.tree is not None:
                value = module_constants(obs_module.tree).get(node.attr)
                return value if isinstance(value, str) else None
    return None


def _schema_names(project: Project) -> Optional[set[str]]:
    """Keys of ``EVENT_SCHEMAS`` in the tree's ``obs/validate.py``."""
    validate = project.find("obs/validate.py")
    if validate is None or validate.tree is None:
        return None
    for node in validate.tree.body:
        value: Optional[ast.expr] = None
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.target.id == "EVENT_SCHEMAS":
                value = node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "EVENT_SCHEMAS":
                value = node.value
        if isinstance(value, ast.Dict):
            return {
                key.value
                for key in value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
    return None


@rule
class ObsCoverage(Rule):
    id = "obs-coverage"
    doc = (
        "public solver entry points carry obs spans + guard checkpoints; "
        "every emitted obs event name has a schema in obs/validate.py"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        yield from self._check_entry_points(project)
        yield from self._check_event_schemas(project)

    def _check_entry_points(self, project: Project) -> Iterator[Finding]:
        for suffix, names in ENTRY_POINTS.items():
            source = project.find(suffix)
            if source is None or source.tree is None:
                continue
            functions = top_level_functions(source.tree)
            for name in names:
                func = functions.get(name)
                if func is None:
                    yield Finding(
                        source.rel, 1, 0, self.id,
                        f"expected public solver entry point {name!r} not found "
                        f"(update the ENTRY_POINTS table if it moved)",
                    )
                    continue
                if not _has_obs_span(func):
                    yield Finding(
                        source.rel, func.lineno, func.col_offset, self.id,
                        f"{name}: public solver entry point has no obs.span "
                        f"(every request must yield a profile)",
                    )
                if not _has_budget_checkpoint(func):
                    yield Finding(
                        source.rel, func.lineno, func.col_offset, self.id,
                        f"{name}: public solver entry point has no guard budget "
                        f"checkpoint (requests could not degrade)",
                    )

    def _check_event_schemas(self, project: Project) -> Iterator[Finding]:
        schemas = _schema_names(project)
        if schemas is None:
            return  # tree has no obs/validate.py: nothing to pin against
        for source in project:
            if source.tree is None or source.endswith("obs/validate.py"):
                continue
            for node in ast.walk(source.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "event"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "obs"
                    and node.args
                ):
                    continue
                name = _resolve_event_name(node.args[0], source, project)
                if name is None:
                    yield Finding(
                        source.rel, node.lineno, node.col_offset, self.id,
                        "obs.event name is not statically resolvable; use a "
                        "string literal or a module-level constant",
                    )
                elif name not in schemas:
                    yield Finding(
                        source.rel, node.lineno, node.col_offset, self.id,
                        f"obs.event {name!r} has no schema in obs/validate.py "
                        f"EVENT_SCHEMAS (declare the event's shape before it "
                        f"ships)",
                    )
