"""``env-discipline``: one place reads the environment.

Every ``REPRO_*`` / ``NUMBA*`` knob is declared in :mod:`repro.env`
with its type, default and documentation, and read through the typed
accessors there.  Scattered ``os.environ`` reads are how the package
accumulated three different truthiness conventions and an undocumented
knob surface; this rule makes the registry load-bearing by flagging
any direct environment access outside ``repro/env.py``:

* ``os.environ`` attribute access (reads *and* writes -- tests mutate
  the environment through monkeypatching, not module code);
* ``os.getenv(...)`` calls;
* ``from os import environ`` / ``from os import getenv`` imports.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Finding, Project, Rule, rule

#: The single module allowed to touch ``os.environ``.
ALLOWED_SUFFIX = "repro/env.py"

_MESSAGE = (
    "direct environment access outside repro/env.py; declare the "
    "variable in the repro.env registry and read it through the typed "
    "accessors"
)


@rule
class EnvDiscipline(Rule):
    id = "env-discipline"
    doc = "os.environ / os.getenv is read only inside the repro.env registry"

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project:
            if source.tree is None or source.endswith(ALLOWED_SUFFIX):
                continue
            for node in ast.walk(source.tree):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in ("environ", "getenv")
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "os"
                ):
                    yield Finding(
                        source.rel, node.lineno, node.col_offset, self.id, _MESSAGE
                    )
                elif isinstance(node, ast.ImportFrom) and node.module == "os":
                    for alias in node.names:
                        if alias.name in ("environ", "getenv"):
                            yield Finding(
                                source.rel, node.lineno, node.col_offset, self.id,
                                _MESSAGE,
                            )
