"""``determinism``: the hazards bit-identical solving cannot survive.

The cross-tier bit-identity suite (and the warm-start checkpoint
machinery it certifies) assumes the solver paths are deterministic
functions of their inputs.  Three syntactic hazards break that silently
and are flagged in the solver-path modules (``core/``, ``flow/``,
``cliques/``, ``extensions/``, plus ``accel/``):

* **unordered iteration** -- a ``for`` loop (or comprehension clause)
  whose iterable is syntactically a set (set literal, set
  comprehension, ``set()`` / ``frozenset()`` call, or a
  ``.intersection`` / ``.union`` / ``.difference`` /
  ``.symmetric_difference`` result), and ``next(iter(<set>))``-style
  arbitrary-element picks.  Set order depends on hash seeding; when the
  loop body breaks ties (``>`` vs ``>=``), results drift between runs.
  Iterating ``sorted(<set>)`` is fine and not flagged.
* **fastmath** -- any call carrying a ``fastmath`` keyword.  It
  licenses float reassociation, so the numba tier would stop being a
  literal translation of the pure loops.
* **unseeded randomness** -- calls through the global RNGs
  (``random.<fn>``, ``np.random.<fn>``) and ``np.random.default_rng()``
  / ``random.Random()`` without an explicit seed argument.

Order-insensitive uses (pure reductions over a set) are silenced with a
reasoned suppression, e.g.::

    for v in doomed:  # repro: lint-ok[determinism] -- removal set, order-free
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Finding, Project, Rule, SourceFile, call_name, rule

#: Directory names whose files are solver-path (plus accel itself).
SOLVER_DIRS = frozenset({"core", "flow", "cliques", "extensions", "accel"})

#: Set-method calls whose result is an unordered set.
SET_METHODS = frozenset({
    "intersection", "union", "difference", "symmetric_difference",
})


def in_scope(source: SourceFile) -> bool:
    return bool(SOLVER_DIRS.intersection(source.path.parts[:-1]))


def _is_set_expr(node: ast.expr) -> bool:
    """Whether ``node`` syntactically produces an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in SET_METHODS:
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitAnd, ast.BitOr)):
        # a & b / a | b on sets; only flagged when an operand is
        # syntactically a set, so int bitops stay clean
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, source: SourceFile, rule_id: str):
        self.source = source
        self.rule_id = rule_id
        self.findings: list[Finding] = []

    def emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                self.source.rel,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                self.rule_id,
                message,
            )
        )

    # --- unordered iteration -----------------------------------------

    def _check_iter(self, node: ast.expr) -> None:
        if _is_set_expr(node):
            self.emit(
                node,
                "iteration over an unordered set feeds solver results; "
                "iterate sorted(...) or a deterministic rank order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # --- calls: fastmath, randomness, iter(set) ----------------------

    def visit_Call(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg == "fastmath":
                self.emit(
                    keyword.value,
                    "fastmath licenses float reassociation and breaks "
                    "cross-tier bit-identity",
                )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "iter"
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self.emit(
                node,
                "arbitrary element pick from an unordered set; use "
                "min/sorted with an explicit key",
            )
        self._check_random(node)
        self.generic_visit(node)

    def _check_random(self, node: ast.Call) -> None:
        dotted = call_name(node.func)
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] == "Random" and node.args:
                return  # explicitly seeded instance
            self.emit(
                node,
                f"{dotted}() uses process-global, unseeded randomness in a "
                f"solver path; thread an explicitly seeded RNG instead",
            )
            return
        if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            if parts[2] == "default_rng" and node.args:
                return  # seeded generator construction
            self.emit(
                node,
                f"{dotted}() draws from numpy's global/unseeded RNG in a "
                f"solver path; construct np.random.default_rng(seed)",
            )


@rule
class Determinism(Rule):
    id = "determinism"
    doc = (
        "no unordered set iteration, fastmath, or unseeded randomness "
        "in the solver-path modules"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project:
            if source.tree is None or not in_scope(source):
                continue
            visitor = _Visitor(source, self.id)
            visitor.visit(source.tree)
            yield from visitor.findings
