"""``jit-safety``: keep ``accel/kernels.py`` inside the nopython subset.

The numba tier compiles every function of ``accel/kernels.py`` with
``njit`` -- but numba is not installed in the dev container, so a
non-jittable edit historically surfaced only in CI's numba job.  This
rule proves jittability-by-construction locally: every function listed
in the module's ``KERNEL_NAMES`` (and every other top-level function in
the file) must stay inside an explicit whitelist of the nopython subset
this project relies on:

* no closures / nested functions / lambdas, no comprehensions or
  generator expressions, no dict/set literals, no try/with, no
  generators, no string or bytes constants beyond the docstring;
* calls only to whitelisted builtins (``range``, ``len``, ``abs``,
  ``min``, ``max``, ``int``, ``float``, ``bool``), whitelisted ``np.*``
  constructors/predicates, and the ``.copy()`` method;
* attribute access only on ``np`` (whitelisted attrs) plus the
  ``.shape`` / ``.copy`` array members;
* no module-global reads except ``np`` and the ``EPS`` literal (numba
  freezes globals into compiled code -- anything else is a trap);
* plain positional parameters only (no defaults, ``*args`` or
  keyword-only args).

The rule also pins the ``EPS`` duplication hazard: ``accel/kernels.py``
keeps its own ``EPS`` literal (again: numba freezes globals), and this
rule statically asserts it equals the ``EPS`` literal in
``flow/network.py`` -- drift would silently break cross-tier
bit-identity.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .core import Finding, Project, Rule, SourceFile, call_name, module_constants, rule

#: Builtins the kernels may call (all njit-supported).
BUILTIN_CALLS = frozenset({"range", "len", "abs", "min", "max", "int", "float", "bool"})

#: ``np.*`` members the kernels may touch -- constructors, predicates,
#: and the dtype names used as their arguments.
NP_ATTRS = frozenset({
    "empty", "zeros", "full", "isinf", "isnan", "int64", "float64", "uint8",
})

#: ``np.*`` members that may be *called* (subset of :data:`NP_ATTRS`).
NP_CALLS = frozenset({"empty", "zeros", "full", "isinf", "isnan"})

#: Methods callable on any expression (array members njit supports and
#: the kernels actually use).
METHOD_CALLS = frozenset({"copy"})

#: Non-np attribute reads allowed on any expression.
ATTR_READS = frozenset({"shape", "copy"})

#: Module globals a kernel body may read.
GLOBAL_READS = frozenset({"EPS", "np"})

#: Statement/expression node types that are never allowed in a kernel.
_BANNED_NODES: tuple = (
    (ast.Lambda, "lambda (closure)"),
    (ast.ListComp, "list comprehension"),
    (ast.SetComp, "set comprehension"),
    (ast.DictComp, "dict comprehension"),
    (ast.GeneratorExp, "generator expression"),
    (ast.Dict, "dict literal"),
    (ast.Set, "set literal"),
    (ast.Try, "try/except"),
    (ast.With, "with block"),
    (ast.Yield, "yield (generator)"),
    (ast.YieldFrom, "yield from (generator)"),
    (ast.Await, "await"),
    (ast.Global, "global statement"),
    (ast.Nonlocal, "nonlocal statement"),
    (ast.Starred, "starred expression"),
    (ast.JoinedStr, "f-string"),
)


def _local_names(func: ast.FunctionDef) -> set[str]:
    """Parameter and assigned names of ``func`` (its local scope)."""
    names = {arg.arg for arg in func.args.posonlyargs + func.args.args}
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
    return names


class _KernelVisitor(ast.NodeVisitor):
    """Walks one kernel function and records whitelist violations."""

    def __init__(self, source: SourceFile, func: ast.FunctionDef):
        self.source = source
        self.func = func
        self.locals = _local_names(func)
        self.findings: list[Finding] = []
        #: call targets already reported, to not double-report their
        #: Name/Attribute children
        self._reported_exprs: set[ast.AST] = set()

    def emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                self.source.rel,
                getattr(node, "lineno", self.func.lineno),
                getattr(node, "col_offset", 0),
                JitSafety.id,
                f"{self.func.name}: {message}",
            )
        )

    def run(self) -> list[Finding]:
        self._check_signature()
        body = self.func.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]  # the docstring is stripped before compilation
        for stmt in body:
            self.visit(stmt)
        return self.findings

    def _check_signature(self) -> None:
        args = self.func.args
        if args.vararg or args.kwarg:
            self.emit(self.func, "*args/**kwargs are not jittable")
        if args.kwonlyargs:
            self.emit(self.func, "keyword-only parameters are not jittable")
        if args.defaults or args.kw_defaults:
            self.emit(self.func, "default parameter values are outside the kernel whitelist")

    # --- structural bans ---------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.emit(node, f"nested function {node.name!r} (closure) is not jittable")
        # do not descend: one finding per closure is enough

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def generic_visit(self, node: ast.AST) -> None:
        for banned, label in _BANNED_NODES:
            if isinstance(node, banned):
                self.emit(node, f"{label} is outside the nopython whitelist")
                return  # don't descend into a construct that is already fatal
        super().generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, (str, bytes)):
            self.emit(node, "string constant (string ops are outside the kernel whitelist)")

    # --- calls, attributes, globals ----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if node.keywords:
            self.emit(node, f"keyword arguments in call to {call_name(node.func)}")
        target = node.func
        ok = False
        if isinstance(target, ast.Name):
            ok = target.id in BUILTIN_CALLS
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "np":
                ok = target.attr in NP_CALLS
            else:
                ok = target.attr in METHOD_CALLS
        if not ok:
            self.emit(node, f"call to {call_name(target)} is outside the kernel whitelist")
        if isinstance(target, (ast.Name, ast.Attribute)):
            self._reported_exprs.add(target)
            if isinstance(target, ast.Attribute):
                # the receiver of an allowed method call is still checked
                self.visit(target.value)
        for child in node.args:
            self.visit(child)
        for kw in node.keywords:
            self.visit(kw.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node in self._reported_exprs:
            return
        if isinstance(node.value, ast.Name) and node.value.id == "np":
            if node.attr not in NP_ATTRS:
                self.emit(node, f"np.{node.attr} is outside the kernel whitelist")
            self._reported_exprs.add(node.value)
            return
        if node.attr not in ATTR_READS:
            self.emit(
                node,
                f"attribute {call_name(node)!r} is outside the kernel whitelist",
            )
        self.visit(node.value)

    def visit_Name(self, node: ast.Name) -> None:
        if node in self._reported_exprs or not isinstance(node.ctx, ast.Load):
            return
        if node.id in self.locals or node.id in BUILTIN_CALLS:
            return
        if node.id in GLOBAL_READS:
            return
        self.emit(
            node,
            f"module-global read of {node.id!r} (numba freezes globals; "
            f"only EPS and np are whitelisted)",
        )


def _eps_literal(tree: ast.Module) -> Optional[tuple[float, int]]:
    """The module's ``EPS = <number>`` literal and its line, if present."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id == "EPS"
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, (int, float))
            ):
                return float(node.value.value), node.lineno
    return None


@rule
class JitSafety(Rule):
    id = "jit-safety"
    doc = (
        "accel/kernels.py stays inside the explicit nopython whitelist "
        "and its EPS literal matches flow/network.py"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        source = project.find("accel/kernels.py")
        if source is None or source.tree is None:
            return
        constants = module_constants(source.tree)
        kernel_names = constants.get("KERNEL_NAMES")
        names_lineno = 1
        for node in source.tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "KERNEL_NAMES"
                    for t in node.targets
                )
            ):
                names_lineno = node.lineno
        functions = {
            node.name: node
            for node in source.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        if isinstance(kernel_names, tuple):
            for name in kernel_names:
                if name not in functions:
                    yield Finding(
                        source.rel, names_lineno, 0, self.id,
                        f"KERNEL_NAMES lists {name!r} but the module defines no "
                        f"such function",
                    )
        for func in functions.values():
            yield from _KernelVisitor(source, func).run()
        yield from self._check_eps(project, source)

    def _check_eps(self, project: Project, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        kernel_eps = _eps_literal(source.tree)
        if kernel_eps is None:
            yield Finding(
                source.rel, 1, 0, self.id,
                "module must define EPS as a numeric literal (numba freezes "
                "globals into compiled code)",
            )
            return
        canonical = project.find("flow/network.py")
        if canonical is None or canonical.tree is None:
            return  # linting a subtree without the flow layer: nothing to pin
        network_eps = _eps_literal(canonical.tree)
        if network_eps is None:
            yield Finding(
                canonical.rel, 1, 0, self.id,
                "flow/network.py must define EPS as a numeric literal (the "
                "canonical epsilon the kernel copy is pinned against)",
            )
            return
        if kernel_eps[0] != network_eps[0]:
            yield Finding(
                source.rel, kernel_eps[1], 0, self.id,
                f"EPS literal {kernel_eps[0]!r} differs from flow/network.py "
                f"EPS {network_eps[0]!r}: cross-tier bit-identity is broken",
            )
