"""Project-specific static analysis: the invariant linter.

The cross-cutting contracts of this package -- numba jittability of the
accel kernels, tier parity of the kernel registry, determinism of the
solver paths, obs/guard instrumentation coverage, and the central env
registry -- were historically enforced by convention plus runtime
tests, and the most fragile of them (jittability) only by CI's numba
job.  This package proves them at lint time instead: an AST-based rule
framework with project-specific rules, run as ``make lint-deep`` /
``python -m repro.analysis src/repro``.

Rules (each documented in its module):

``jit-safety``
    :mod:`repro.analysis.jit` -- ``accel/kernels.py`` must stay inside
    the explicit nopython whitelist, and its ``EPS`` literal must match
    ``flow/network.py``.
``tier-parity``
    :mod:`repro.analysis.parity` -- every registry kernel has a
    registered failover chain ending at the pure tier, and same-named
    tier implementations agree on their positional signatures.
``determinism``
    :mod:`repro.analysis.determinism` -- no unordered set iteration,
    ``fastmath``, or unseeded randomness in the solver paths.
``obs-coverage``
    :mod:`repro.analysis.coverage` -- public solver entry points carry
    obs spans + guard budget checkpoints, and every emitted obs event
    name has a schema in ``obs/validate.py``.
``env-discipline``
    :mod:`repro.analysis.envrule` -- ``os.environ`` is read only inside
    :mod:`repro.env`.
``par-safety``
    :mod:`repro.analysis.parrule` -- functions handed to the worker
    pool are module-level importable, ``repro/par/`` rebinds module
    globals only inside the registered worker-init path, and reads the
    environment through the registry.

False positives are silenced inline with a reasoned suppression::

    x = frobnicate()  # repro: lint-ok[determinism] -- reduction is order-insensitive

(a suppression without a reason is itself a finding).  See the README
("Static analysis") for the CLI, the rule catalog, and the suppression
policy.
"""

from __future__ import annotations

from .core import RULES, Finding, Project, run_paths

# importing the rule modules registers them in RULES
from . import coverage, determinism, envrule, jit, parity, parrule  # noqa: F401, E402

__all__ = ["RULES", "Finding", "Project", "run_paths"]
