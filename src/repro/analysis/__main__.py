"""CLI of the invariant linter: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage error.  ``REPRO_LINT_SELECT``
/ ``REPRO_LINT_IGNORE`` provide environment defaults for ``--select``
/ ``--ignore`` (explicit flags win).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .. import env
from .core import RULES, render_json, render_text, resolve_rules, run_paths


def _split(value: Optional[str]) -> Optional[list[str]]:
    if not value:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific invariant linter (see README 'Static analysis').",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all; "
        "env default REPRO_LINT_SELECT)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip (env default REPRO_LINT_IGNORE)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--env-table", action="store_true",
        help="print the repro.env variable registry as a Markdown table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in RULES.items():
            print(f"{rule_id}: {cls.doc}")
        print("suppression: lint-ok comments must name a rule and carry a reason")
        print("syntax: every linted file must parse")
        return 0
    if args.env_table:
        print(env.markdown_table())
        return 0

    select = _split(args.select) or _split(env.text("REPRO_LINT_SELECT"))
    ignore = _split(args.ignore) or _split(env.text("REPRO_LINT_IGNORE"))
    try:
        rules = resolve_rules(select, ignore)
        findings, files = run_paths(args.paths, select, ignore)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings, files, rules))
    else:
        print(render_text(findings, files))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
