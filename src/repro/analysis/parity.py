"""``tier-parity``: the kernel registry's cross-tier contract.

The accel registry promises that every kernel name dispatches through a
failover chain ending at the pure tier, and that the tiers are drop-in
replacements for each other.  Statically that means:

* the ``chains`` table in ``_build_registry`` (``accel/__init__.py``)
  has exactly one entry per name in the registry's ``KERNEL_NAMES``,
  and every chain contains a terminal ``"python"``-tier entry;
* every function named in ``accel/kernels.py``'s ``KERNEL_NAMES`` that
  also exists in ``accel/pure.py`` or ``accel/vector.py`` agrees with
  its siblings on the *required positional* parameter list (name and
  order).  Trailing defaulted extras are allowed -- the pure tier's
  ``levels_fn`` hook is one -- because positional call sites never see
  them.

A signature drift between tiers would not fail until the drifted tier
is actually selected (possibly only in CI's numba job, possibly only
after a failover demotion mid-request); this rule fails it at lint
time.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .core import Finding, Project, Rule, SourceFile, module_constants, rule


def _registry_chains(source: SourceFile) -> Optional[tuple[ast.Dict, int]]:
    """The ``chains = {...}`` dict literal inside ``_build_registry``."""
    if source.tree is None:
        return None
    for node in source.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "_build_registry":
            for stmt in ast.walk(node):
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "chains"
                    and isinstance(stmt.value, ast.Dict)
                ):
                    return stmt.value, stmt.lineno
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "chains"
                    and isinstance(stmt.value, ast.Dict)
                ):
                    return stmt.value, stmt.lineno
            return None
    return None


def _chain_has_python_tier(value: ast.expr) -> bool:
    """Whether a chain list literal contains a ``("python", ...)`` entry."""
    if not isinstance(value, ast.List):
        return False
    for element in value.elts:
        if (
            isinstance(element, ast.Tuple)
            and element.elts
            and isinstance(element.elts[0], ast.Constant)
            and element.elts[0].value == "python"
        ):
            return True
    return False


def _required_positional(func: ast.FunctionDef) -> list[str]:
    args = func.args
    positional = [arg.arg for arg in args.posonlyargs + args.args]
    if args.defaults:
        positional = positional[: -len(args.defaults)]
    return positional


@rule
class TierParity(Rule):
    id = "tier-parity"
    doc = (
        "every registry kernel has a failover chain ending at the pure "
        "tier, and tier implementations agree on positional signatures"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        yield from self._check_chains(project)
        yield from self._check_signatures(project)

    def _check_chains(self, project: Project) -> Iterator[Finding]:
        registry = project.find("accel/__init__.py")
        if registry is None or registry.tree is None:
            return
        kernel_names = module_constants(registry.tree).get("KERNEL_NAMES")
        if not isinstance(kernel_names, tuple):
            yield Finding(
                registry.rel, 1, 0, self.id,
                "accel/__init__.py must define KERNEL_NAMES as a tuple literal",
            )
            return
        located = _registry_chains(registry)
        if located is None:
            yield Finding(
                registry.rel, 1, 0, self.id,
                "_build_registry must assign the failover table to a "
                "'chains' dict literal",
            )
            return
        chains, lineno = located
        keys: dict[str, ast.expr] = {}
        for key, value in zip(chains.keys, chains.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys[key.value] = value
            else:
                yield Finding(
                    registry.rel, getattr(key, "lineno", lineno), 0, self.id,
                    "chains keys must be string literals (kernel names)",
                )
        for name in kernel_names:
            if name not in keys:
                yield Finding(
                    registry.rel, lineno, 0, self.id,
                    f"kernel {name!r} is in KERNEL_NAMES but has no failover "
                    f"chain in _build_registry",
                )
            elif not _chain_has_python_tier(keys[name]):
                yield Finding(
                    registry.rel, getattr(keys[name], "lineno", lineno), 0, self.id,
                    f"kernel {name!r}'s failover chain has no terminal "
                    f"'python'-tier entry",
                )
        for name in keys:
            if name not in kernel_names:
                yield Finding(
                    registry.rel, getattr(keys[name], "lineno", lineno), 0, self.id,
                    f"chain registered for {name!r}, which is not in KERNEL_NAMES",
                )

    def _check_signatures(self, project: Project) -> Iterator[Finding]:
        kernels = project.find("accel/kernels.py")
        if kernels is None or kernels.tree is None:
            return
        kernel_names = module_constants(kernels.tree).get("KERNEL_NAMES")
        if not isinstance(kernel_names, tuple):
            yield Finding(
                kernels.rel, 1, 0, self.id,
                "accel/kernels.py must define KERNEL_NAMES as a tuple literal",
            )
            return
        tiers: list[tuple[str, SourceFile]] = [("kernels", kernels)]
        for label, suffix in (("pure", "accel/pure.py"), ("vector", "accel/vector.py")):
            source = project.find(suffix)
            if source is not None and source.tree is not None:
                tiers.append((label, source))
        for name in kernel_names:
            defs: list[tuple[str, SourceFile, ast.FunctionDef]] = []
            for label, source in tiers:
                assert source.tree is not None
                for node in source.tree.body:
                    if isinstance(node, ast.FunctionDef) and node.name == name:
                        defs.append((label, source, node))
            if not defs:
                continue  # absence is the jit rule's concern
            reference_label, reference_source, reference = defs[0]
            expected = _required_positional(reference)
            for label, source, func in defs[1:]:
                got = _required_positional(func)
                if got != expected:
                    yield Finding(
                        source.rel, func.lineno, func.col_offset, self.id,
                        f"{name}: {label} tier positional signature {got} "
                        f"differs from {reference_label} tier "
                        f"({reference_source.rel}) {expected}",
                    )
