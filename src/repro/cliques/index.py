"""Array-backed h-clique instance index -- the shared clique layer.

Every solver family in this package consumes h-clique instances: the
(k, Ψ)-core decomposition peels them, PeelApp reads clique-degrees from
them, Exact/CoreExact build flow networks over them.  Historically each
consumer re-derived its own structure (tuple lists, dict posting lists,
per-component re-enumeration); this module replaces all of that with a
single cacheable artifact built once per ``(graph, h)``:

* ``inst`` -- the instances as one flat ``(m_Ψ × h)`` int row array
  over dense internal vertex ids (``vertices[i]`` maps id ``i`` back to
  the external label, in graph-iteration order).  Graph-built indexes
  are *canonical*: ascending within each row, rows lexicographic, and
  bit-identical whether the numpy kernels or the pure-python fallback
  produced them (:mod:`repro.cliques.kernels`).
* ``inc_start`` / ``inc_ids`` -- a per-vertex CSR incidence index:
  the instances containing internal vertex ``v`` are
  ``inc_ids[inc_start[v]:inc_start[v+1]]``.  Peeling a vertex touches
  exactly its incidence range -- no dict scans.
* ``base_degree`` -- clique-degrees (Definition 3) by internal id,
  immutable; the mutable ``alive`` layer on top serves the peeling
  algorithms (Algorithm 3 and PeelApp) and can be :meth:`reset`.

The instance and incidence arrays are never mutated, so one index can
serve a core decomposition, a peel, and the flow builders of the same
call without re-enumeration; :meth:`subindex` restricts it to an
induced subgraph (CoreExact's located components) by row selection
instead of re-enumeration.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from .. import obs
from ..graph.graph import Graph, Vertex
from . import kernels


class CliqueIndex:
    """A materialised index of every h-clique instance in a graph.

    Parameters
    ----------
    graph:
        The indexed graph.  Internal ids ``0..n-1`` follow its
        iteration order (so id-based peels reproduce the legacy
        dict-based peel orders exactly).
    h:
        Instance size: every row has exactly ``h`` vertices.
    instances:
        Optional explicit instance tuples (the pattern algorithms pass
        their isomorphism matches here, duplicates preserved).  When
        omitted, the h-cliques of ``graph`` are enumerated with the
        fastest available kernel.
    use_numpy:
        Force the enumeration kernel (``None`` auto-selects); only
        meaningful when ``instances`` is omitted.
    workers:
        Worker processes for the h = 3/4 enumeration (``None`` defers
        to ``REPRO_WORKERS``); the resulting index is byte-identical to
        a serial build.
    """

    __slots__ = (
        "h",
        "vertices",
        "_id_of",
        "inst",
        "m",
        "inc_start",
        "inc_ids",
        "base_degree",
        "alive",
        "num_alive",
        "canonical",
        "_np_rows",
    )

    def __init__(
        self,
        graph: Graph,
        h: int,
        instances: Optional[Sequence[tuple[Vertex, ...]]] = None,
        use_numpy: Optional[bool] = None,
        workers: Optional[int] = None,
    ):
        self.h = h
        self.vertices: list[Vertex] = list(graph)
        id_of = {v: i for i, v in enumerate(self.vertices)}
        self._id_of = id_of

        with obs.span("cliques.index.build", h=h, n=len(self.vertices)) as sp:
            if instances is None:
                self.inst: list[int] = kernels.clique_rows(
                    graph, h, id_of, use_numpy, workers=workers
                )
                self.canonical = True
                kernel = kernels.LAST_KERNEL
            else:
                flat: list[int] = []
                for inst in instances:
                    if len(inst) != h:
                        raise ValueError(
                            f"instance {inst!r} has {len(inst)} members, expected h={h}"
                        )
                    for v in inst:
                        vid = id_of.get(v)
                        if vid is None:  # instance member outside the graph
                            vid = id_of[v] = len(self.vertices)
                            self.vertices.append(v)
                        flat.append(vid)
                self.inst = flat
                self.canonical = False
                kernel = "explicit"

            self.m = len(self.inst) // h if h else 0
            self._build_incidence()
        self.alive = bytearray(b"\x01") * self.m
        self.num_alive = self.m
        self._np_rows = None
        if obs.ENABLED:
            obs.event(
                "cliques.index",
                h=h, n=len(self.vertices), m=self.m,
                incidence=len(self.inc_ids), kernel=kernel,
                seconds=sp.seconds,
            )

    # --- construction helpers -----------------------------------------

    def _build_incidence(self) -> None:
        """Counting-sort the flat rows into the per-vertex CSR incidence."""
        n = len(self.vertices)
        flat, h = self.inst, self.h
        if kernels.np is not None and len(flat) >= 1024:
            np = kernels.np
            arr = np.asarray(flat, dtype=np.int64)
            counts = np.bincount(arr, minlength=n)
            start = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=start[1:])
            # stable sort of member positions by vertex id; position // h
            # is the instance id, and stability keeps each vertex's
            # incidence list ascending in instance id.
            ids = np.argsort(arr, kind="stable") // h
            self.inc_start = start.tolist()
            self.inc_ids = ids.tolist()
            self.base_degree = counts.tolist()
            return
        degree = [0] * n
        for vid in flat:
            degree[vid] += 1
        start = [0] * (n + 1)
        for i in range(n):
            start[i + 1] = start[i] + degree[i]
        fill = list(start)
        inc = [0] * len(flat)
        for pos, vid in enumerate(flat):
            inc[fill[vid]] = pos // h
            fill[vid] += 1
        self.inc_start = start
        self.inc_ids = inc
        self.base_degree = degree

    # --- read-only array surface --------------------------------------

    @property
    def num_instances(self) -> int:
        """Total instance count ``m_Ψ`` (alive or not)."""
        return self.m

    def id_of(self, v: Vertex) -> int:
        """Internal id of an external vertex label."""
        return self._id_of[v]

    def row(self, i: int) -> tuple[int, ...]:
        """Instance ``i`` as a tuple of internal ids."""
        h = self.h
        return tuple(self.inst[i * h : (i + 1) * h])

    def instance(self, i: int) -> tuple[Vertex, ...]:
        """Instance ``i`` as a tuple of external labels."""
        labels = self.vertices
        h = self.h
        return tuple(labels[vid] for vid in self.inst[i * h : (i + 1) * h])

    def instance_tuples(self) -> list[tuple[Vertex, ...]]:
        """All instances as label tuples (alive or not), row order."""
        return [self.instance(i) for i in range(self.m)]

    def rows_array(self):
        """The instances as an ``(m × h)`` numpy int array (cached).

        Raises RuntimeError when numpy is unavailable; callers use the
        flat :attr:`inst` list on the pure-python path.
        """
        if kernels.np is None:
            raise RuntimeError("rows_array requires numpy")
        if self._np_rows is None:
            self._np_rows = kernels.np.asarray(self.inst, dtype=kernels.np.int64).reshape(
                self.m, self.h
            )
        return self._np_rows

    def degree_list(self) -> list[int]:
        """Initial clique-degrees by internal id (do not mutate)."""
        return self.base_degree

    def member_subsets(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Yield ``(member_id, ψ)`` for every (instance, member) pair.

        ``ψ`` is the instance minus that member as an ascending internal
        id tuple -- the (h-1)-clique node key of the Algorithm-1 flow
        construction.  Canonical rows are already ascending, so the sort
        only runs for explicit-instance indexes; equal keys always
        compare equal, which is what the builders' node dedup relies on.
        """
        inst, h = self.inst, self.h
        canonical = self.canonical
        for base in range(0, len(inst), h):
            row = inst[base : base + h]
            for k in range(h):
                rest = row[:k] + row[k + 1 :]
                yield row[k], tuple(rest) if canonical else tuple(sorted(rest))

    def initial_degrees(self) -> dict[Vertex, int]:
        """Initial (unpeeled) clique-degrees of all indexed vertices."""
        return {v: self.base_degree[i] for i, v in enumerate(self.vertices)}

    def count_within(self, vertex_set) -> int:
        """Number of instances fully contained in ``vertex_set`` (labels).

        Counts over *all* rows, ignoring the alive layer: the instances
        of the induced subgraph ``G[S]`` are exactly the index rows
        inside ``S``, which is how the exact solvers price candidate
        cuts without re-enumeration.
        """
        id_of = self._id_of
        ids = set()
        for v in vertex_set:
            vid = id_of.get(v)
            if vid is not None:
                ids.add(vid)
        if not ids or not self.m:
            return 0
        np = kernels.np
        if np is not None and self.m >= 256:
            members = np.fromiter(ids, dtype=np.int64, count=len(ids))
            mask = np.isin(self.rows_array(), members)
            return int(mask.all(axis=1).sum())
        flat, h = self.inst, self.h
        count = 0
        for i in range(0, len(flat), h):
            if all(flat[k] in ids for k in range(i, i + h)):
                count += 1
        return count

    def density_within(self, vertex_set) -> float:
        """Ψ-density ``μ(G[S]) / |S|`` of a vertex set, 0.0 when empty."""
        size = len(vertex_set)
        if not size:
            return 0.0
        return self.count_within(vertex_set) / size

    @classmethod
    def from_rows(cls, graph: Graph, h: int, flat_rows: list) -> "CliqueIndex":
        """Rebuild an index from already-canonical flat instance rows.

        The parallel layer ships a component's subindex rows (internal
        ids over the component's graph-iteration order) to a worker
        process; this constructor re-materialises the index without any
        enumeration, producing byte-identical ``inst``/incidence arrays
        to the :meth:`subindex` the parent holds.  ``flat_rows`` must
        already be canonical (ascending rows, lexicographic order) in
        ``graph``'s id space.
        """
        idx = cls.__new__(cls)
        idx.h = h
        idx.vertices = list(graph)
        idx._id_of = {v: i for i, v in enumerate(idx.vertices)}
        idx.inst = list(flat_rows)
        idx.canonical = True
        idx.m = len(idx.inst) // h if h else 0
        idx._build_incidence()
        idx.alive = bytearray(b"\x01") * idx.m
        idx.num_alive = idx.m
        idx._np_rows = None
        return idx

    def subindex(self, subgraph: Graph) -> "CliqueIndex":
        """The index restricted to an induced subgraph -- no re-enumeration.

        Selects the rows fully contained in ``subgraph`` (exactly the
        instances of the induced subgraph), remaps them to the
        subgraph's own dense ids, and rebuilds the incidence arrays.
        Canonical indexes stay canonical (rows are re-sorted after the
        remap).  The parent's alive layer is ignored: the result is a
        fresh, fully-alive index.
        """
        sub = CliqueIndex.__new__(CliqueIndex)
        sub.h = self.h
        sub.vertices = list(subgraph)
        sub_id_of = {v: i for i, v in enumerate(sub.vertices)}
        sub._id_of = sub_id_of
        h = self.h

        np = kernels.np
        if np is not None and self.m >= 256:
            remap = np.full(len(self.vertices), -1, dtype=np.int64)
            for v, i in sub_id_of.items():
                old = self._id_of.get(v)
                if old is not None:
                    remap[old] = i
            rows = remap[self.rows_array()]
            rows = rows[(rows >= 0).all(axis=1)]
            if self.canonical and len(rows):
                rows = np.sort(rows, axis=1)
                rows = rows[np.lexsort(rows.T[::-1])]
            sub.inst = rows.reshape(-1).tolist()
        else:
            flat = self.inst
            picked: list[list[int]] = []
            labels = self.vertices
            for i in range(0, len(flat), h):
                row = []
                for k in range(i, i + h):
                    nid = sub_id_of.get(labels[flat[k]])
                    if nid is None:
                        break
                    row.append(nid)
                else:
                    picked.append(sorted(row) if self.canonical else row)
            if self.canonical:
                picked.sort()
            sub.inst = [vid for row in picked for vid in row]

        sub.canonical = self.canonical
        sub.m = len(sub.inst) // h if h else 0
        sub._build_incidence()
        sub.alive = bytearray(b"\x01") * sub.m
        sub.num_alive = sub.m
        sub._np_rows = None
        if obs.ENABLED:
            obs.event(
                "cliques.subindex",
                h=h, n=len(sub.vertices), m=sub.m, parent_m=self.m,
                incidence=len(sub.inc_ids),
            )
        return sub

    # --- mutable peel layer (Algorithm 3 / PeelApp) -------------------

    def degrees(self) -> dict[Vertex, int]:
        """Current (live) clique-degrees of all indexed vertices."""
        if self.num_alive == self.m:  # nothing peeled yet
            return self.initial_degrees()
        live = [0] * len(self.vertices)
        flat, h, alive = self.inst, self.h, self.alive
        for i in range(self.m):
            if alive[i]:
                for k in range(i * h, i * h + h):
                    live[flat[k]] += 1
        return {v: live[i] for i, v in enumerate(self.vertices)}

    def peel_vertex_ids(self, vid: int) -> list[int]:
        """Kill every live instance containing internal vertex ``vid``.

        Returns the flat member ids of the killed instances (``h`` ids
        per instance, ``vid`` included); the caller decrements surviving
        co-members' degrees from it.  O(incidence of ``vid``).
        """
        alive = self.alive
        flat, h = self.inst, self.h
        out: list[int] = []
        for pos in range(self.inc_start[vid], self.inc_start[vid + 1]):
            iid = self.inc_ids[pos]
            if alive[iid]:
                alive[iid] = False
                self.num_alive -= 1
                out.extend(flat[iid * h : iid * h + h])
        return out

    def peel_vertex(self, v: Vertex) -> list[tuple[Vertex, ...]]:
        """Kill every live instance containing ``v``; return those instances.

        Label-level wrapper over :meth:`peel_vertex_ids` kept for the
        consumers that work with external labels (the size-constrained
        extensions, tests).
        """
        vid = self._id_of.get(v)
        if vid is None:
            return []
        labels = self.vertices
        flat = self.peel_vertex_ids(vid)
        h = self.h
        return [
            tuple(labels[flat[k]] for k in range(i, i + h))
            for i in range(0, len(flat), h)
        ]

    def live_instances(self) -> Iterator[tuple[Vertex, ...]]:
        """Iterate over the instances that are still alive."""
        alive = self.alive
        for i in range(self.m):
            if alive[i]:
                yield self.instance(i)

    def reset(self) -> None:
        """Revive every instance (undo all peeling) in O(m)."""
        self.alive = bytearray(b"\x01") * self.m
        self.num_alive = self.m

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CliqueIndex(h={self.h}, n={len(self.vertices)}, m={self.m}, "
            f"alive={self.num_alive})"
        )
