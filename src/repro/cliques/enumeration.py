"""h-clique enumeration (kClist-style, Danisch et al. WWW'18).

The paper's algorithms all rest on listing the instances of an h-clique
``Ψ`` in a graph: computing clique-degrees (Definition 3), materialising
the instance index that drives (k, Ψ)-core peeling (Algorithm 3), and
collecting the (h−1)-clique nodes of the Algorithm-1 flow network.

We reimplement the standard degeneracy-ordering approach: orient every
edge from the earlier to the later vertex of a smallest-last ordering,
then recursively intersect out-neighbourhoods.  Each clique is emitted
exactly once, and the recursion depth is bounded by ``h``.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..graph.graph import Graph, Vertex

CliqueCallback = Callable[[tuple[Vertex, ...]], None]


def _oriented_adjacency(graph: Graph) -> dict[Vertex, list[Vertex]]:
    """Out-neighbour lists under the degeneracy orientation.

    Each undirected edge {u, v} becomes u -> v when u precedes v in a
    smallest-last ordering; every out-neighbourhood then has size at most
    the degeneracy of the graph, which bounds the enumeration cost.
    """
    order, _ = graph.degeneracy_ordering()
    rank = {v: i for i, v in enumerate(order)}
    out: dict[Vertex, list[Vertex]] = {v: [] for v in graph}
    for u, v in graph.edges():
        if rank[u] < rank[v]:
            out[u].append(v)
        else:
            out[v].append(u)
    return out


def enumerate_cliques(graph: Graph, h: int) -> Iterator[tuple[Vertex, ...]]:
    """Yield every h-clique instance of ``graph`` exactly once.

    Instances are vertex tuples in degeneracy order; for ``h == 1`` the
    vertices themselves, for ``h == 2`` the edges.

    >>> from repro.graph.graph import complete_graph
    >>> sum(1 for _ in enumerate_cliques(complete_graph(5), 3))
    10
    """
    if h < 1:
        raise ValueError("clique size h must be >= 1")
    if h == 1:
        for v in graph:
            yield (v,)
        return
    out = _oriented_adjacency(graph)
    if h == 2:
        for u, nbrs in out.items():
            for v in nbrs:
                yield (u, v)
        return

    adjacency = {v: graph.neighbors(v) for v in graph}

    if h == 3:
        # two nested loops instead of two generator frames per triangle
        for u in graph:
            outs = out[u]
            if len(outs) < 2:
                continue
            last = len(outs) - 1
            for i, v in enumerate(outs):
                if i == last:
                    break
                adj_v = adjacency[v]
                for w in outs[i + 1 :]:
                    if w in adj_v:
                        yield (u, v, w)
        return

    if h == 4:
        for u in graph:
            outs = out[u]
            if len(outs) < 3:
                continue
            stop = len(outs) - 2
            for i, v in enumerate(outs):
                if i == stop:
                    break
                adj_v = adjacency[v]
                cand = [w for w in outs[i + 1 :] if w in adj_v]
                if len(cand) < 2:
                    continue
                last = len(cand) - 1
                for j, w in enumerate(cand):
                    if j == last:
                        break
                    adj_w = adjacency[w]
                    base = (u, v, w)
                    for x in cand[j + 1 :]:
                        if x in adj_w:
                            yield base + (x,)
        return

    def expand(prefix: list[Vertex], candidates: list[Vertex], depth: int) -> Iterator[tuple[Vertex, ...]]:
        if depth == h - 1:
            # any single candidate completes the clique: emit directly,
            # skipping the (useless) candidate filtering of a last level
            base = tuple(prefix)
            for v in candidates:
                yield base + (v,)
            return
        # Remaining levels need at least (h - depth) mutually adjacent
        # candidates; prune branches that cannot reach that.
        need = h - depth
        for i, v in enumerate(candidates):
            if len(candidates) - i < need:
                break
            next_candidates = [w for w in candidates[i + 1 :] if w in adjacency[v]]
            if len(next_candidates) >= need - 1:
                prefix.append(v)
                yield from expand(prefix, next_candidates, depth + 1)
                prefix.pop()

    for u in graph:
        outs = out[u]
        if len(outs) >= h - 1:
            yield from expand([u], outs, 1)


def count_cliques(graph: Graph, h: int) -> int:
    """Total number of h-clique instances ``μ(G, Ψ)``."""
    return sum(1 for _ in enumerate_cliques(graph, h))


def clique_degrees(graph: Graph, h: int) -> dict[Vertex, int]:
    """Clique-degree ``deg_G(v, Ψ)`` for every vertex (Definition 3).

    Vertices participating in no instance map to 0.
    """
    degrees: dict[Vertex, int] = {v: 0 for v in graph}
    for clique in enumerate_cliques(graph, h):
        for v in clique:
            degrees[v] += 1
    return degrees


class CliqueIndex:
    """A materialised index of every h-clique instance in a graph.

    The (k, Ψ)-core peeling of Algorithm 3 repeatedly asks "which live
    instances contain v?".  This index stores each instance once, keeps a
    per-vertex posting list, and supports O(h) invalidation when a vertex
    is peeled.

    Attributes
    ----------
    instances:
        List of vertex tuples, one per instance.
    alive:
        Parallel boolean list; an instance dies when any member is peeled.
    member_of:
        ``vertex -> list of instance ids`` posting lists.
    """

    def __init__(self, graph: Graph, h: int, instances: Optional[list[tuple[Vertex, ...]]] = None):
        self.h = h
        self.instances: list[tuple[Vertex, ...]] = (
            list(enumerate_cliques(graph, h)) if instances is None else instances
        )
        self.alive: list[bool] = [True] * len(self.instances)
        self.num_alive = len(self.instances)
        member_of: dict[Vertex, list[int]] = {v: [] for v in graph}
        for idx, inst in enumerate(self.instances):
            for v in inst:
                postings = member_of.get(v)
                if postings is None:
                    postings = member_of[v] = []
                postings.append(idx)
        self.member_of = member_of

    def degrees(self) -> dict[Vertex, int]:
        """Current (live) clique-degrees of all indexed vertices."""
        if self.num_alive == len(self.instances):  # nothing peeled yet
            return {v: len(postings) for v, postings in self.member_of.items()}
        return {
            v: sum(1 for idx in postings if self.alive[idx])
            for v, postings in self.member_of.items()
        }

    def peel_vertex(self, v: Vertex) -> list[tuple[Vertex, ...]]:
        """Kill every live instance containing ``v``; return those instances.

        The caller uses the returned instances to decrement the degrees
        of the surviving co-members.
        """
        killed: list[tuple[Vertex, ...]] = []
        for idx in self.member_of.get(v, ()):
            if self.alive[idx]:
                self.alive[idx] = False
                self.num_alive -= 1
                killed.append(self.instances[idx])
        return killed

    def live_instances(self) -> Iterator[tuple[Vertex, ...]]:
        """Iterate over the instances that are still alive."""
        for idx, inst in enumerate(self.instances):
            if self.alive[idx]:
                yield inst
