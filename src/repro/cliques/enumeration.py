"""h-clique enumeration (kClist-style, Danisch et al. WWW'18).

The paper's algorithms all rest on listing the instances of an h-clique
``Ψ`` in a graph: computing clique-degrees (Definition 3), materialising
the instance index that drives (k, Ψ)-core peeling (Algorithm 3), and
collecting the (h−1)-clique nodes of the Algorithm-1 flow network.

We reimplement the standard degeneracy-ordering approach: orient every
edge from the earlier to the later vertex of a smallest-last ordering,
then recursively intersect out-neighbourhoods.  Each clique is emitted
exactly once, and the recursion depth is bounded by ``h``.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..graph.graph import Graph, Vertex

CliqueCallback = Callable[[tuple[Vertex, ...]], None]


def _oriented_adjacency(graph: Graph) -> dict[Vertex, list[Vertex]]:
    """Out-neighbour lists under the degeneracy orientation.

    Each undirected edge {u, v} becomes u -> v when u precedes v in a
    smallest-last ordering; every out-neighbourhood then has size at most
    the degeneracy of the graph, which bounds the enumeration cost.
    """
    order, _ = graph.degeneracy_ordering()
    rank = {v: i for i, v in enumerate(order)}
    out: dict[Vertex, list[Vertex]] = {v: [] for v in graph}
    for u, v in graph.edges():
        if rank[u] < rank[v]:
            out[u].append(v)
        else:
            out[v].append(u)
    return out


def enumerate_cliques(graph: Graph, h: int) -> Iterator[tuple[Vertex, ...]]:
    """Yield every h-clique instance of ``graph`` exactly once.

    Instances are vertex tuples in degeneracy order; for ``h == 1`` the
    vertices themselves, for ``h == 2`` the edges.

    >>> from repro.graph.graph import complete_graph
    >>> sum(1 for _ in enumerate_cliques(complete_graph(5), 3))
    10
    """
    if h < 1:
        raise ValueError("clique size h must be >= 1")
    if h == 1:
        for v in graph:
            yield (v,)
        return
    out = _oriented_adjacency(graph)
    if h == 2:
        for u, nbrs in out.items():
            for v in nbrs:
                yield (u, v)
        return

    adjacency = {v: graph.neighbors(v) for v in graph}

    if h == 3:
        # two nested loops instead of two generator frames per triangle
        for u in graph:
            outs = out[u]
            if len(outs) < 2:
                continue
            last = len(outs) - 1
            for i, v in enumerate(outs):
                if i == last:
                    break
                adj_v = adjacency[v]
                for w in outs[i + 1 :]:
                    if w in adj_v:
                        yield (u, v, w)
        return

    if h == 4:
        for u in graph:
            outs = out[u]
            if len(outs) < 3:
                continue
            stop = len(outs) - 2
            for i, v in enumerate(outs):
                if i == stop:
                    break
                adj_v = adjacency[v]
                cand = [w for w in outs[i + 1 :] if w in adj_v]
                if len(cand) < 2:
                    continue
                last = len(cand) - 1
                for j, w in enumerate(cand):
                    if j == last:
                        break
                    adj_w = adjacency[w]
                    base = (u, v, w)
                    for x in cand[j + 1 :]:
                        if x in adj_w:
                            yield base + (x,)
        return

    def expand(
        prefix: list[Vertex], candidates: list[Vertex], depth: int
    ) -> Iterator[tuple[Vertex, ...]]:
        if depth == h - 1:
            # any single candidate completes the clique: emit directly,
            # skipping the (useless) candidate filtering of a last level
            base = tuple(prefix)
            for v in candidates:
                yield base + (v,)
            return
        # Remaining levels need at least (h - depth) mutually adjacent
        # candidates; prune branches that cannot reach that.
        need = h - depth
        for i, v in enumerate(candidates):
            if len(candidates) - i < need:
                break
            next_candidates = [w for w in candidates[i + 1 :] if w in adjacency[v]]
            if len(next_candidates) >= need - 1:
                prefix.append(v)
                yield from expand(prefix, next_candidates, depth + 1)
                prefix.pop()

    for u in graph:
        outs = out[u]
        if len(outs) >= h - 1:
            yield from expand([u], outs, 1)


def count_cliques(graph: Graph, h: int) -> int:
    """Total number of h-clique instances ``μ(G, Ψ)``."""
    return sum(1 for _ in enumerate_cliques(graph, h))


def clique_degrees(graph: Graph, h: int) -> dict[Vertex, int]:
    """Clique-degree ``deg_G(v, Ψ)`` for every vertex (Definition 3).

    Vertices participating in no instance map to 0.
    """
    degrees: dict[Vertex, int] = {v: 0 for v in graph}
    for clique in enumerate_cliques(graph, h):
        for v in clique:
            degrees[v] += 1
    return degrees


# The materialised instance index lives in repro.cliques.index these
# days (flat row array + CSR incidence, numpy-kernel enumeration); the
# re-export keeps the many historical `from ..cliques.enumeration
# import CliqueIndex` call sites working.
from .index import CliqueIndex  # noqa: E402  (re-export)

__all__ = [
    "CliqueCallback",
    "CliqueIndex",
    "clique_degrees",
    "count_cliques",
    "enumerate_cliques",
]
