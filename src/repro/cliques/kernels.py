"""Vectorised h-clique instance kernels (numpy; pure-python fallback).

The clique-index layer stores every h-clique instance of a graph as one
row of a flat ``(m_Ψ × h)`` integer array over dense internal vertex
ids.  This module produces that array:

* :func:`triangle_rows` / :func:`k4_rows` -- numpy intersection kernels
  for h = 3 and h = 4, generalising the sorted-adjacency intersection
  of :func:`repro.graph.csr.triangle_degrees` from per-vertex *counts*
  to full *instance rows*.  Both enumerate over the upward orientation
  (edges point from smaller to larger internal id), so each clique is
  emitted exactly once as an ascending row, and the whole enumeration
  is a handful of O(#wedges) array operations instead of nested Python
  loops.
* :func:`clique_rows` -- the public entry point: dispatches to the
  numpy kernels when they apply and to the reference nested-loop
  enumerator (:func:`repro.cliques.enumeration.enumerate_cliques`)
  otherwise (h outside {2, 3, 4}, numpy unavailable, or numpy disabled
  via ``REPRO_NO_NUMPY``).

Both paths emit the *canonical* row array -- each row ascending in
internal id, rows in lexicographic order -- so every downstream
consumer (degrees, incidence index, flow builders, peels) sees
bit-identical data regardless of which kernel produced it; the
property-test suite pins this.

Set the environment variable ``REPRO_NO_NUMPY=1`` to force the
pure-python fallback even when numpy is importable (CI runs the
equivalence tests in both modes).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import env
from ..graph.graph import Graph

if env.flag("REPRO_NO_NUMPY"):  # explicit opt-out for CI / ablations
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - environment-specific
        np = None

#: Wedge-expansion chunk size, in *input rows* per expansion round.
#: The candidate arrays of one round are sum-of-out-degrees sized, so
#: the true peak is ``O(_CHUNK × max_out_degree)`` entries -- the chunk
#: caps the row side only, which keeps the common (degeneracy-bounded)
#: case at a few hundred MB worst-case while staying a single
#: ``np.repeat``/gather per round.
_CHUNK = 1 << 22

#: Use a dense boolean adjacency bitmap for edge-membership tests while
#: ``n²`` stays below this (16M entries = 16 MB); larger graphs fall
#: back to binary search on the sorted edge-key array.
_BITMAP_MAX_CELLS = 1 << 24

#: Kernel family the most recent :func:`clique_rows` call used
#: (``"numpy"`` or ``"python"``) -- the telemetry side channel
#: :class:`repro.cliques.index.CliqueIndex` copies into its
#: ``cliques.index`` build events.
LAST_KERNEL = "python"


def have_numpy() -> bool:
    """Whether the vectorised kernels are available (and not disabled)."""
    return np is not None


def _id_edges(graph: Graph, id_of: dict) -> tuple[list[int], list[int]]:
    """The edges as two flat id lists with ``src < dst`` per pair.

    Walks adjacency sets directly (each undirected edge seen from both
    ends, kept once by the id comparison) -- measurably cheaper than
    the ``edges()`` generator plus a list of tuples.
    """
    srcs: list[int] = []
    dsts: list[int] = []
    sa, da = srcs.append, dsts.append
    for u in graph:
        iu = id_of[u]
        for v in graph.neighbors(u):
            iv = id_of[v]
            if iu < iv:
                sa(iu), da(iv)
    return srcs, dsts


def _upward_csr(n: int, id_edges: tuple[Sequence[int], Sequence[int]]):
    """CSR of the upward orientation: arcs ``u -> v`` with ``u < v``.

    ``id_edges`` is a ``(srcs, dsts)`` pair with ``src < dst`` per
    edge.  Returns ``(dptr, ddst, keys)`` where
    ``ddst[dptr[u]:dptr[u+1]]`` are the ascending out-neighbours of
    ``u`` and ``keys`` is the sorted ``u * n + v`` key array behind the
    edge-membership tests.
    """
    srcs, dsts = id_edges
    if len(srcs):
        src = np.asarray(srcs, dtype=np.int64)
        dst = np.asarray(dsts, dtype=np.int64)
        keys = src * n + dst
        keys.sort()
        src, dst = keys // n, keys % n
    else:
        src = dst = keys = np.empty(0, dtype=np.int64)
    dptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=dptr[1:])
    return dptr, dst, keys


def _edge_membership(n: int, keys):
    """A vectorised ``member(probe_keys) -> bool array`` edge test.

    A dense adjacency bitmap (one O(1) gather per probe) while ``n²``
    is small enough; binary search on the sorted key array beyond.
    """
    if not len(keys):
        return lambda probe: np.zeros(len(probe), dtype=bool)
    if n * n <= _BITMAP_MAX_CELLS:
        bitmap = np.zeros(n * n, dtype=bool)
        bitmap[keys] = True
        return lambda probe: bitmap[probe]

    def member(probe):
        pos = np.minimum(np.searchsorted(keys, probe), len(keys) - 1)
        return keys[pos] == probe

    return member


def _expand_rows(rows, dptr, ddst):
    """All (row, x) pairs with ``x`` an upward neighbour of the row's last id.

    ``rows`` is an (r × k) array; returns ``(rep, x)`` where ``rep``
    indexes rows and ``x`` runs over ``ddst[dptr[last]:dptr[last + 1]]``
    in ascending order, preserving the lexicographic order of the
    expansion.  Callers chunk over ``rows`` to bound peak memory.
    """
    last = rows[:, -1]
    cnt = dptr[last + 1] - dptr[last]
    total = int(cnt.sum())
    if total == 0:
        return (np.empty(0, dtype=np.int64),) * 2
    rep = np.repeat(np.arange(len(rows), dtype=np.int64), cnt)
    starts = np.concatenate(([0], np.cumsum(cnt[:-1])))
    offset = np.arange(total, dtype=np.int64) - np.repeat(starts, cnt)
    x = ddst[dptr[last[rep]] + offset]
    return rep, x


def _extend_rows(rows, dptr, ddst, member, n, depth):
    """One expansion level: extend each row by an upward neighbour of
    its last vertex that is adjacent to the row's first ``depth``
    members (``depth`` vectorised edge-membership probes)."""
    width = rows.shape[1]
    out: list = []
    for lo in range(0, len(rows), _CHUNK):
        chunk = rows[lo : lo + _CHUNK]
        rep, x = _expand_rows(chunk, dptr, ddst)
        if not len(rep):
            continue
        ok = member(chunk[rep, 0] * n + x)
        for col in range(1, depth):
            ok &= member(chunk[rep, col] * n + x)
        if ok.any():
            out.append(np.concatenate([chunk[rep[ok]], x[ok, None]], axis=1))
    if not out:
        return np.empty((0, width + 1), dtype=np.int64)
    return np.concatenate(out, axis=0)


def triangle_rows(n: int, id_edges: Sequence[tuple[int, int]], csr=None):
    """All triangles as an ascending, lexicographically sorted (m × 3) array.

    For every upward edge ``(u, v)`` the third corners are
    ``out(u) ∩ out(v)``; the intersection is evaluated for *all* edges at
    once by expanding each edge with the out-neighbours of ``v`` and
    testing ``(u, x)`` edge membership on the sorted key array.
    """
    dptr, ddst, keys = csr if csr is not None else _upward_csr(n, id_edges)
    edges = _edge_rows_from_csr(n, dptr, ddst)
    return _extend_rows(edges, dptr, ddst, _edge_membership(n, keys), n, depth=1)


def k4_rows(n: int, id_edges: Sequence[tuple[int, int]], csr=None):
    """All 4-cliques as an ascending, lexicographically sorted (m × 4) array.

    Extends each triangle row ``(u, v, w)`` with the upward neighbours
    ``x`` of ``w`` and keeps those where both ``(u, x)`` and ``(v, x)``
    are edges -- the same one-shot membership test as the triangle
    kernel, one level deeper.
    """
    csr = csr if csr is not None else _upward_csr(n, id_edges)
    dptr, ddst, keys = csr
    member = _edge_membership(n, keys)
    edges = _edge_rows_from_csr(n, dptr, ddst)
    tri = _extend_rows(edges, dptr, ddst, member, n, depth=1)
    return _extend_rows(tri, dptr, ddst, member, n, depth=2)


def _edge_rows_from_csr(n, dptr, ddst):
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(dptr))
    return np.stack([src, ddst], axis=1)


def edge_rows(n: int, id_edges: Sequence[tuple[int, int]]):
    """All edges as an ascending, lexicographically sorted (m × 2) array."""
    dptr, ddst, _ = _upward_csr(n, id_edges)
    return _edge_rows_from_csr(n, dptr, ddst)


def rows_for_range(n: int, h: int, lo: int, hi: int, dptr, ddst, keys):
    """The canonical h-clique rows whose first vertex lies in ``[lo, hi)``.

    The rows of the full enumeration are lexicographic, so the rows
    owned by a vertex range are a contiguous slice of the serial
    output; concatenating the per-range arrays in range order
    reproduces the whole array exactly.  ``dptr``/``ddst``/``keys`` are
    the :func:`_upward_csr` arrays (typically read-only shared-memory
    views in a worker process).
    """
    member = _edge_membership(n, keys)
    counts = np.diff(dptr[lo : hi + 1])
    src = np.repeat(np.arange(lo, hi, dtype=np.int64), counts)
    dst = np.asarray(ddst[int(dptr[lo]) : int(dptr[hi])], dtype=np.int64)
    rows = np.stack([src, dst], axis=1)
    if h == 2:
        return rows
    rows = _extend_rows(rows, dptr, ddst, member, n, depth=1)
    if h == 3:
        return rows
    return _extend_rows(rows, dptr, ddst, member, n, depth=2)


def _range_bounds(dptr, n: int, nworkers: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into up to ``nworkers`` ranges balanced by edge count."""
    total = int(dptr[-1])
    bounds: list[tuple[int, int]] = []
    lo = 0
    for k in range(1, nworkers + 1):
        if k < nworkers:
            hi = int(np.searchsorted(dptr, total * k // nworkers, side="left"))
            hi = min(max(hi, lo), n)
        else:
            hi = n
        if hi > lo:
            bounds.append((lo, hi))
        lo = hi
    return bounds


def _parallel_rows(n: int, h: int, id_edges, workers: Optional[int]):
    """Fan the h=3/4 wedge expansion over vertex ranges; None = stay serial."""
    from .. import par
    from ..par.worker import clique_range

    nworkers = par.resolve_workers(workers)
    if nworkers <= 1 or len(id_edges[0]) < par.PAR_MIN_EDGES or n < 2:
        return None
    dptr, ddst, keys = _upward_csr(n, id_edges)
    bounds = _range_bounds(dptr, n, nworkers)
    if len(bounds) <= 1:
        return None
    payloads = [{"n": n, "h": h, "lo": lo, "hi": hi} for lo, hi in bounds]
    outcomes = par.map_components(
        clique_range,
        payloads,
        workers=nworkers,
        shared={"dptr": dptr, "ddst": ddst, "keys": keys},
        surface="cliques.rows",
    )
    if any(o["status"] != "ok" for o in outcomes):  # pragma: no cover
        return None
    flat = np.frombuffer(b"".join(o["result"] for o in outcomes), dtype=np.int64)
    return flat.tolist()


def _rows_python(graph: Graph, h: int, id_of: dict) -> list[int]:
    """Reference fallback: enumerate, map to ids, canonicalise.

    Returns the flat row list (length ``m · h``) in the same canonical
    order as the numpy kernels: rows ascending, lexicographically
    sorted.
    """
    from .enumeration import enumerate_cliques  # deferred: avoids a cycle

    rows = [sorted(id_of[v] for v in inst) for inst in enumerate_cliques(graph, h)]
    rows.sort()
    flat: list[int] = []
    for row in rows:
        flat.extend(row)
    return flat


def clique_rows(
    graph: Graph,
    h: int,
    id_of: dict,
    use_numpy: Optional[bool] = None,
    workers: Optional[int] = None,
) -> list[int]:
    """Canonical flat instance-row list for the h-cliques of ``graph``.

    Parameters
    ----------
    graph, h:
        Input graph and clique size (h >= 1).
    id_of:
        Dense internal-id mapping covering every vertex of ``graph``.
    use_numpy:
        Force the kernel choice (used by the equivalence tests and the
        enumeration-split bench); ``None`` auto-selects the numpy
        kernels for h in {2, 3, 4} when numpy is importable.
    workers:
        Worker processes for the h = 3/4 wedge expansion (``None``
        defers to ``REPRO_WORKERS``); engages only above
        :data:`repro.par.PAR_MIN_EDGES` edges and produces the same
        flat list bit for bit (vertex ranges own contiguous row
        slices, concatenated in order).

    Returns the flat list of length ``m_Ψ · h``: row ``i`` occupies
    ``[i*h, (i+1)*h)``, ascending within the row, rows lexicographic.
    Both kernel families produce bit-identical output (tested).
    """
    global LAST_KERNEL
    if use_numpy is None:
        use_numpy = np is not None
    if use_numpy and np is None:
        raise RuntimeError("numpy kernels requested but numpy is unavailable")
    if use_numpy and h in (2, 3, 4):
        LAST_KERNEL = "numpy"
        n = len(id_of)
        id_edges = _id_edges(graph, id_of)
        if h in (3, 4):
            par_flat = _parallel_rows(n, h, id_edges, workers)
            if par_flat is not None:
                return par_flat
        if h == 2:
            rows = edge_rows(n, id_edges)
        elif h == 3:
            rows = triangle_rows(n, id_edges)
        else:
            rows = k4_rows(n, id_edges)
        return rows.reshape(-1).tolist()
    LAST_KERNEL = "python"
    return _rows_python(graph, h, id_of)
