"""h-clique enumeration and clique-degree machinery."""

from .enumeration import CliqueIndex, clique_degrees, count_cliques, enumerate_cliques

__all__ = ["CliqueIndex", "clique_degrees", "count_cliques", "enumerate_cliques"]
