"""h-clique enumeration, vectorised instance kernels, and the shared index."""

from .enumeration import clique_degrees, count_cliques, enumerate_cliques
from .index import CliqueIndex

__all__ = ["CliqueIndex", "clique_degrees", "count_cliques", "enumerate_cliques"]
