"""Central typed registry of every environment variable this package reads.

Environment knobs used to be scattered ``os.environ.get`` calls across
``accel``, ``obs``, ``guard``, ``flow`` and ``cliques`` -- each with its
own truthiness convention and no single place to learn what exists.
This module is now the only place in ``repro`` that touches
``os.environ`` (the ``env-discipline`` rule of :mod:`repro.analysis`
enforces it): every variable is declared once with its type, default,
and documentation, and read through one of the typed accessors.

Two boolean conventions predate this module and are preserved exactly:

``flag``
    Any non-empty string is true (so ``REPRO_NO_NUMPY=0`` still
    disables numpy -- the historical opt-out semantics).
``switch``
    Only ``1 / true / yes / on`` (case-insensitive, stripped) is true;
    anything else is false (``REPRO_CHECK`` semantics).

``python -m repro.env`` prints the variable table as Markdown -- the
README's "Environment variables" table is generated from it (the doc
test pins the two against each other).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "EnvVar",
    "REGISTRY",
    "flag",
    "switch",
    "text",
    "number",
    "markdown_table",
]


@dataclass(frozen=True)
class EnvVar:
    """One registered environment variable.

    ``kind`` selects the accessor that applies (``"flag"``,
    ``"switch"``, ``"text"``, ``"number"``); ``external`` marks
    variables consumed by a dependency or by CI rather than read by this
    package (registered so the generated documentation is complete, but
    not readable through the typed accessors).
    """

    name: str
    kind: str
    default: Union[bool, str, float, None]
    doc: str
    external: bool = False


def _var(name: str, kind: str, default, doc: str, external: bool = False) -> EnvVar:
    return EnvVar(name=name, kind=kind, default=default, doc=doc, external=external)


#: Every environment variable the package (or its CI) consumes, by name.
#: Reads of anything not in this table raise ``KeyError`` -- adding a
#: knob means declaring it here first.
REGISTRY: dict[str, EnvVar] = {
    v.name: v
    for v in (
        _var(
            "REPRO_NO_NUMPY", "flag", False,
            "Force the pure-python tier everywhere numpy would be used: the "
            "accel registry, the vectorised Dinic BFS, CSR assembly, and the "
            "clique enumeration kernels.  Any non-empty value counts.",
        ),
        _var(
            "REPRO_NO_NUMBA", "flag", False,
            "Disable just the numba accel tier (numpy paths stay on).",
        ),
        _var(
            "REPRO_NUMBA_INTERP", "flag", False,
            "Select the numba tier with the kernels run *interpreted* when "
            "numba itself is missing -- slow, but byte-for-byte the code the "
            "JIT would compile; how no-numba CI pins the tier's bit-identity.",
        ),
        _var(
            "REPRO_TRACE", "text", "",
            "Enable the obs trace at import: ``1/true/yes/on`` turns on the "
            "in-memory collector; any other non-empty value is a path that "
            "additionally receives the trace as JSON lines.",
        ),
        _var(
            "REPRO_CHECK", "switch", False,
            "Arm the invariant sanitizer: audit every flow solve "
            "(conservation, capacity, min-cut duality) and recompute every "
            "result density from scratch.  ``1/true/yes/on`` only.",
        ),
        _var(
            "REPRO_FAULT", "text", "",
            "Deterministic fault plan for the accel kernels: "
            "``<kernel>:<nth>[,<kernel>:<nth>...]`` makes the nth call of "
            "each named kernel raise, exercising the failover chains.",
        ),
        _var(
            "REPRO_WORKERS", "number", 0,
            "Default worker-process count for the parallel execution layer "
            "(``repro.par``): component solves and the h=3/4 clique "
            "enumeration fan out across this many forked workers.  0 or 1 "
            "means serial; an explicit ``workers=`` argument wins over the "
            "variable.",
        ),
        _var(
            "REPRO_SNAPSHOT_DIR", "text", "",
            "Directory of the default snapshot store (``repro.serve``): "
            "precomputed query artifacts persist to "
            "``<dir>/snapshots.sqlite`` (WAL) and survive process "
            "restarts.  Empty (the default) keeps the default cache "
            "memory-only.",
        ),
        _var(
            "REPRO_SNAPSHOT_CAP", "number", 0,
            "LRU byte cap for the default snapshot store: after each "
            "save, least-recently-used snapshots are evicted until the "
            "store fits (eviction counters feed the obs serve rollup).  "
            "0 means unbounded.",
        ),
        _var(
            "REPRO_BENCH_SCALE", "number", 0.25,
            "Scale factor for the benchmark surrogate datasets (the bench "
            "suite's smoke runs use 0.1).",
        ),
        _var(
            "REPRO_LINT_SELECT", "text", "",
            "Default ``--select`` for ``python -m repro.analysis``: a "
            "comma-separated list of rule ids to run (empty = all rules).",
        ),
        _var(
            "REPRO_LINT_IGNORE", "text", "",
            "Default ``--ignore`` for ``python -m repro.analysis``: a "
            "comma-separated list of rule ids to skip.",
        ),
        _var(
            "NUMBA_CACHE_DIR", "text", "",
            "Where ``njit(cache=True)`` persists compiled kernels (read by "
            "numba itself; CI caches this directory keyed on the kernel "
            "source).",
            external=True,
        ),
        _var(
            "NUMBA_DISABLE_JIT", "flag", False,
            "Numba's own kill-switch: compiled kernels run interpreted.  Not "
            "read by this package (prefer REPRO_NO_NUMBA, which re-tiers the "
            "registry instead of silently slowing it down).",
            external=True,
        ),
        _var(
            "PYTHONPATH", "text", "",
            "Must include ``src`` for the no-install developer workflow "
            "(every Makefile target sets it).",
            external=True,
        ),
    )
}


def _raw(name: str, kind: str) -> Optional[str]:
    """The single ``os.environ`` touchpoint of the whole package."""
    spec = REGISTRY[name]  # KeyError = undeclared variable: declare it above
    if spec.external:
        raise KeyError(
            f"{name} is registered as external (consumed by a dependency, "
            f"not readable through repro.env)"
        )
    if spec.kind != kind:
        raise TypeError(f"{name} is a {spec.kind!r} variable, not {kind!r}")
    return os.environ.get(name)


def flag(name: str) -> bool:
    """Historical opt-out semantics: any non-empty string is true."""
    return bool(_raw(name, "flag"))


def switch(name: str) -> bool:
    """Strict boolean: ``1 / true / yes / on`` (stripped, lowercased)."""
    value = _raw(name, "switch")
    return (value or "").strip().lower() in ("1", "true", "yes", "on")


def text(name: str) -> str:
    """String value, empty string when unset."""
    return _raw(name, "text") or ""


def number(name: str) -> float:
    """Float value, the registered default when unset or empty."""
    value = _raw(name, "number")
    if value is None or value == "":
        spec = REGISTRY[name]
        return float(spec.default)  # type: ignore[arg-type]
    return float(value)


def markdown_table() -> str:
    """The registry as a Markdown table (the README's env-var section)."""
    rows = [
        "| Variable | Type | Default | Meaning |",
        "| --- | --- | --- | --- |",
    ]
    for spec in REGISTRY.values():
        default = "" if spec.default in (False, "", None) else str(spec.default)
        doc = " ".join(spec.doc.replace("``", "`").split())
        kind = spec.kind + (" (external)" if spec.external else "")
        rows.append(f"| `{spec.name}` | {kind} | {default} | {doc} |")
    return "\n".join(rows)


if __name__ == "__main__":
    print(markdown_table())
