"""repro -- reproduction of "Efficient Algorithms for Densest Subgraph
Discovery" (Fang, Yu, Cheng, Lakshmanan, Lin; PVLDB 12(11), 2019).

Core-based exact and approximation algorithms for edge-, h-clique- and
pattern-densest subgraph discovery, with every substrate (graph store,
clique/pattern enumeration, max-flow, core decompositions, baselines,
dataset surrogates) implemented from scratch.

Quickstart
----------
>>> from repro import Graph, densest_subgraph
>>> g = Graph([(0, 1), (0, 2), (1, 2), (2, 3)])
>>> result = densest_subgraph(g, psi="triangle", method="core-exact")
>>> sorted(result.vertices)
[0, 1, 2]
"""

from .api import densest_subgraph, resolve_pattern
from .core.exact import DensestSubgraphResult
from .graph.graph import Graph
from .guard import Budget, BudgetExceeded
from .patterns.pattern import Pattern, get_pattern, pattern_names

__version__ = "1.0.0"

__all__ = [
    "Budget",
    "BudgetExceeded",
    "Graph",
    "Pattern",
    "DensestSubgraphResult",
    "densest_subgraph",
    "get_pattern",
    "pattern_names",
    "resolve_pattern",
    "__version__",
]
