"""Density measures (Definitions 1, 4 and 10 of the paper)."""

from __future__ import annotations

from typing import Iterable

from ..cliques.enumeration import count_cliques
from ..graph.graph import Graph, Vertex


def edge_density(graph: Graph) -> float:
    """``τ(G) = |E| / |V|`` (Definition 1); 0.0 for the empty graph."""
    return graph.edge_density()


def clique_density(graph: Graph, h: int) -> float:
    """h-clique-density ``ρ(G, Ψ) = μ(G, Ψ) / |V|`` (Definition 4)."""
    if graph.num_vertices == 0:
        return 0.0
    return count_cliques(graph, h) / graph.num_vertices


def subgraph_clique_density(graph: Graph, vertices: Iterable[Vertex], h: int) -> float:
    """Clique-density of the subgraph of ``graph`` induced by ``vertices``."""
    return clique_density(graph.subgraph(vertices), h)
