"""``CoreExact`` (Algorithm 4): core-located exact densest subgraph.

The paper's headline exact algorithm.  It improves Algorithm 1 with
three core-based optimisations (Section 6.1):

1. **Tighter bounds on α** -- Theorem 1 gives ``kmax/|V_Ψ| ≤ ρ_opt ≤
   kmax``, collapsing the binary-search window.
2. **Locating the CDS in a core** -- Lemma 7 places the CDS inside the
   (⌈ρ⌉, Ψ)-core for any valid lower bound ρ, so flow networks are
   built on small cores (and on single connected components) instead of
   the whole graph.  Pruning1 uses the best residual density ρ' seen
   during core decomposition; Pruning2 sharpens it with per-component
   densities ρ''; Pruning3 relaxes the stopping criterion to the
   component size.
3. **Shrinking flow networks** -- every time the binary search raises
   the lower bound past the next integer, the component is intersected
   with a higher core and the network rebuilt smaller.

Each pruning is independently switchable so the Figure-10 ablation can
measure its contribution.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from ..cliques.enumeration import enumerate_cliques
from ..flow import dinic
from ..flow.builders import (
    build_cds_network,
    build_cds_parametric,
    build_eds_network,
    build_eds_parametric,
    vertices_of_cut,
)
from ..graph.graph import Graph, Vertex
from .clique_core import CliqueCoreResult, clique_core_decomposition
from .exact import DensestSubgraphResult, check_flow_engine


class _ComponentState:
    """A component subgraph plus the clique material its networks need.

    Rebuilt whenever CoreExact shrinks the component to a higher core,
    so clique enumeration is paid once per shrink, not per iteration.
    With the default ``"reuse"`` engine the α-parametric flow network is
    likewise built once per shrink and re-solved across the binary
    search; ``"rebuild"`` reconstructs it per iteration.
    """

    def __init__(self, graph: Graph, h: int, flow_engine: str = "reuse"):
        self.graph = graph
        self.h = h
        self.flow_engine = flow_engine
        self._net = None
        self.network_nodes = 0  # node count of the last-solved network
        if h >= 3:
            self.h_cliques = list(enumerate_cliques(graph, h))
            self.sub_cliques = list(enumerate_cliques(graph, h - 1))
            self.degrees: dict[Vertex, int] = {v: 0 for v in graph}
            for inst in self.h_cliques:
                for v in inst:
                    self.degrees[v] += 1
        else:
            self.h_cliques = None
            self.sub_cliques = None
            self.degrees = None

    def build_network(self, alpha: float):
        if self.h == 2:
            return build_eds_network(self.graph, alpha)
        return build_cds_network(
            self.graph,
            self.h,
            alpha,
            h_cliques=self.h_cliques,
            sub_cliques=self.sub_cliques,
            degrees=self.degrees,
        )

    def solve(self, alpha: float) -> set[Vertex]:
        """Source-side cut vertex set of the min cut at guess ``alpha``."""
        if self.flow_engine == "rebuild":
            network = self.build_network(alpha)
            self.network_nodes = network.num_nodes
            dinic.max_flow(network)
            return vertices_of_cut(network.min_cut_source_side())
        net = self._parametric()
        self.network_nodes = net.num_nodes
        return net.solve(alpha)

    def _parametric(self):
        if self._net is None:
            if self.h == 2:
                self._net = build_eds_parametric(self.graph)
            else:
                self._net = build_cds_parametric(
                    self.graph,
                    self.h,
                    h_cliques=self.h_cliques,
                    sub_cliques=self.sub_cliques,
                    degrees=self.degrees,
                )
        return self._net

    def density_of(self, vertices: set[Vertex]) -> float:
        """Exact Ψ-density of a subset of this component's vertices."""
        if self.h == 2:
            return self.graph.subgraph(vertices).num_edges / len(vertices)
        return sum(1 for inst in self.h_cliques if vertices.issuperset(inst)) / len(vertices)

    def solve_max_density(self, low: float):
        """GGT breakpoint walk from lower bound ``low``: (cut, ρ, solves)."""
        net = self._parametric()
        self.network_nodes = net.num_nodes
        return net.max_density(self.density_of, low=low)

    def checkpoint(self) -> None:
        """Record the current flow as the warm-start base (new lower bound)."""
        if self._net is not None:
            self._net.checkpoint()

    def density(self) -> float:
        if self.graph.num_vertices == 0:
            return 0.0
        if self.h == 2:
            return self.graph.num_edges / self.graph.num_vertices
        return len(self.h_cliques) / self.graph.num_vertices

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices


def _subgraph_density(graph: Graph, vertices: set[Vertex], h: int) -> float:
    sub = graph.subgraph(vertices)
    if sub.num_vertices == 0:
        return 0.0
    return sum(1 for _ in enumerate_cliques(sub, h)) / sub.num_vertices


def core_exact_densest(
    graph: Graph,
    h: int = 2,
    *,
    pruning1: bool = True,
    pruning2: bool = True,
    pruning3: bool = True,
    decomposition: Optional[CliqueCoreResult] = None,
    flow_engine: str = "reuse",
) -> DensestSubgraphResult:
    """CoreExact: exact CDS with core-based pruning.

    Parameters
    ----------
    graph, h:
        Input graph and clique size of Ψ (h = 2 for classical EDS).
    pruning1 / pruning2 / pruning3:
        Toggles for the Section-6.1 pruning criteria (all on by default;
        the Figure-10 ablation turns them off selectively).
    decomposition:
        Optionally a precomputed Algorithm-3 result, to amortise the
        decomposition across calls.
    flow_engine:
        ``"ggt"`` walks the min-cut breakpoints of one α-parametric
        network per component (no binary search; a handful of warm
        solves); ``"reuse"`` (default) builds one α-parametric network
        per component (rebuilt on core shrinks) and re-solves it across
        the binary search with warm-started flows; ``"rebuild"``
        reconstructs the network every iteration (the pre-parametric
        behaviour; both kept for the flow-engine ablation bench).  All
        three return bit-identical vertex sets and densities.

    Returns
    -------
    DensestSubgraphResult whose ``stats`` carry the instrumentation the
    evaluation figures need: per-iteration flow-network sizes
    (Figure 9), decomposition vs total time (Table 3).
    """
    check_flow_engine(flow_engine)
    n = graph.num_vertices
    start = time.perf_counter()
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "CoreExact")
    if h < 2:
        raise ValueError("h must be >= 2")

    if decomposition is None:
        decomposition = clique_core_decomposition(graph, h)
    decomp_seconds = time.perf_counter() - start

    kmax = decomposition.kmax
    if kmax == 0:
        return DensestSubgraphResult(
            set(graph.vertices()), 0.0, "CoreExact", stats={"decomposition_seconds": decomp_seconds}
        )

    # --- bounds and location core (optimisations 1 + Pruning1/2) ------
    low = kmax / float(h)
    high = float(kmax)
    k_locate = math.ceil(low)
    best_vertices = decomposition.best_residual_vertices
    if pruning1:
        if decomposition.best_residual_density > low:
            low = decomposition.best_residual_density
        k_locate = max(k_locate, math.ceil(low))

    core_vertices = {v for v, c in decomposition.core.items() if c >= k_locate}
    located = graph.subgraph(core_vertices)
    # Component states cache the clique material *and* the α-parametric
    # network; building them up front lets Pruning2 reuse the h-clique
    # lists instead of re-enumerating every component.
    comp_states = [
        _ComponentState(located.subgraph(cc), h, flow_engine)
        for cc in located.connected_components()
    ]

    if pruning2:
        rho2 = 0.0
        for comp_state in comp_states:
            density = comp_state.density()
            if density > rho2:
                rho2 = density
                if density > low:
                    best_vertices = set(comp_state.graph.vertices())
        if rho2 > low:
            low = rho2
        if math.ceil(rho2) > k_locate:
            k_locate = math.ceil(rho2)
            core_vertices = {v for v, c in decomposition.core.items() if c >= k_locate}
            located = graph.subgraph(core_vertices)
            comp_states = [
                _ComponentState(located.subgraph(cc), h, flow_engine)
                for cc in located.connected_components()
            ]

    iterations = 0
    network_sizes: list[int] = []
    candidate: Optional[set[Vertex]] = None
    # Densities already known from the decomposition and the component
    # states seed the cache, so the finalists below rarely trigger a
    # fresh clique enumeration.
    density_cache: dict[frozenset, float] = {
        frozenset(decomposition.best_residual_vertices): decomposition.best_residual_density
    }
    for comp_state in comp_states:
        density_cache[frozenset(comp_state.graph.vertices())] = comp_state.density()

    def cached_density(vertices: set[Vertex]) -> float:
        key = frozenset(vertices)
        found = density_cache.get(key)
        if found is None:
            found = density_cache[key] = _subgraph_density(graph, vertices, h)
        return found

    for state in sorted(comp_states, key=lambda s: -s.num_vertices):
        # The upper bound must be per-component: infeasibility inside one
        # component says nothing about another, while kmax bounds every
        # subgraph's density (Lemma 5).  (The paper's pseudocode shares u
        # across components; resetting it is the sound reading.)
        high = float(kmax)
        # line 6: if the global lower bound outgrew this core level,
        # intersect the component with the (⌈l⌉, Ψ)-core.
        if low > k_locate:
            keep = {v for v in state.graph if decomposition.core.get(v, 0) >= math.ceil(low)}
            if len(keep) < state.num_vertices:
                state = _ComponentState(state.graph.subgraph(keep), h, flow_engine)
        if state.num_vertices == 0:
            continue

        if flow_engine == "ggt":
            # One parametric sweep replaces probe + binary search: the
            # Newton walk starts at the global lower bound l (solving at
            # l IS the feasibility probe) and ends at the component's
            # exact optimal density, raising l for later components.
            cut, rho, solves = state.solve_max_density(low)
            iterations += solves
            network_sizes.extend([state.network_nodes] * solves)
            if not cut:
                continue
            density_cache.setdefault(frozenset(cut), rho)
            if rho > low:
                low = rho
            if candidate is None or cached_density(cut) > cached_density(candidate):
                candidate = cut
            continue

        # lines 7-9: feasibility probe at α = l.
        probe = state.solve(low)
        network_sizes.append(state.network_nodes)
        iterations += 1
        if not probe:
            continue
        candidate_local = probe
        state.checkpoint()  # all later guesses exceed l: warm-start base

        # lines 10-19: binary search within the component.
        while True:
            nc = state.num_vertices
            resolution = (
                1.0 / (nc * (nc - 1)) if pruning3 and nc > 1 else (1.0 / (n * (n - 1)) if n > 1 else 0.5)
            )
            if high - low < resolution:
                break
            alpha = (low + high) / 2.0
            cut_vertices = state.solve(alpha)
            network_sizes.append(state.network_nodes)
            iterations += 1
            if not cut_vertices:
                high = alpha
            else:
                if alpha > math.ceil(low):
                    keep = {
                        v for v in state.graph if decomposition.core.get(v, 0) >= math.ceil(alpha)
                    }
                    if len(keep) < state.num_vertices:
                        state = _ComponentState(state.graph.subgraph(keep), h, flow_engine)
                low = alpha
                candidate_local = cut_vertices
                state.checkpoint()

        if candidate_local:
            if candidate is None or cached_density(candidate_local) > cached_density(candidate):
                candidate = candidate_local

    # --- pick the best of: binary-search result, Pruning1/2 seeds -----
    finalists = [best_vertices]
    if candidate:
        finalists.append(candidate)
    best = max(finalists, key=cached_density)
    density = cached_density(best)
    total_seconds = time.perf_counter() - start
    return DensestSubgraphResult(
        vertices=set(best),
        density=density,
        method="CoreExact",
        iterations=iterations,
        stats={
            "network_sizes": network_sizes,
            "decomposition_seconds": decomp_seconds,
            "total_seconds": total_seconds,
            "kmax": kmax,
            "k_locate": k_locate,
            "located_vertices": located.num_vertices,
            "flow_engine": flow_engine,
        },
    )
