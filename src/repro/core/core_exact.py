"""``CoreExact`` (Algorithm 4): core-located exact densest subgraph.

The paper's headline exact algorithm.  It improves Algorithm 1 with
three core-based optimisations (Section 6.1):

1. **Tighter bounds on α** -- Theorem 1 gives ``kmax/|V_Ψ| ≤ ρ_opt ≤
   kmax``, collapsing the binary-search window.
2. **Locating the CDS in a core** -- Lemma 7 places the CDS inside the
   (⌈ρ⌉, Ψ)-core for any valid lower bound ρ, so flow networks are
   built on small cores (and on single connected components) instead of
   the whole graph.  Pruning1 uses the best residual density ρ' seen
   during core decomposition; Pruning2 sharpens it with per-component
   densities ρ''; Pruning3 relaxes the stopping criterion to the
   component size.
3. **Shrinking flow networks** -- every time the binary search raises
   the lower bound past the next integer, the component is intersected
   with a higher core and the network rebuilt smaller.

Each pruning is independently switchable so the Figure-10 ablation can
measure its contribution.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from .. import guard, obs
from ..cliques.index import CliqueIndex
from ..guard import sanitize
from ..flow import dinic
from ..flow.builders import (
    build_cds_network,
    build_cds_parametric,
    build_eds_network,
    build_eds_parametric,
    vertices_of_cut,
)
from ..graph.graph import Graph, Vertex
from .clique_core import CliqueCoreResult, clique_core_decomposition
from .exact import DensestSubgraphResult, check_flow_engine


class _ComponentState:
    """A component subgraph plus the slice of the clique index it owns.

    The clique material is a :meth:`~repro.cliques.index.CliqueIndex.subindex`
    of the call-level index -- row selection, never re-enumeration --
    rebuilt whenever CoreExact shrinks the component to a higher core.
    With the parametric engines the α-parametric flow network is
    likewise built once per shrink (straight from the instance rows)
    and re-solved; ``"rebuild"`` reconstructs it per iteration.
    """

    def __init__(
        self,
        graph: Graph,
        h: int,
        flow_engine: str = "ggt",
        index: CliqueIndex | None = None,
    ):
        self.graph = graph
        self.h = h
        self.flow_engine = flow_engine
        self._net = None
        self.network_nodes = 0  # node count of the last-solved network
        if h >= 3:
            self.index = index if index is not None else CliqueIndex(graph, h)
        else:
            self.index = None

    def shrink(self, keep: set[Vertex]) -> "_ComponentState":
        """A new state on the induced subgraph ``G[keep]`` (index sliced)."""
        sub = self.graph.subgraph(keep)
        sub_index = self.index.subindex(sub) if self.index is not None else None
        return _ComponentState(sub, self.h, self.flow_engine, index=sub_index)

    def build_network(self, alpha: float):
        if self.h == 2:
            return build_eds_network(self.graph, alpha)
        return build_cds_network(self.graph, self.h, alpha, index=self.index)

    def solve(self, alpha: float) -> set[Vertex]:
        """Source-side cut vertex set of the min cut at guess ``alpha``."""
        if self.flow_engine == "rebuild":
            network = self.build_network(alpha)
            budget = guard.ACTIVE
            if budget is not None:
                budget.tick_solve(network.num_arcs)
            self.network_nodes = network.num_nodes
            dinic.max_flow(network)
            if guard.CHECK:
                sanitize.check_flow_network(network)
            return vertices_of_cut(network.min_cut_source_side())
        net = self._parametric()
        self.network_nodes = net.num_nodes
        return net.solve(alpha)

    def _parametric(self):
        if self._net is None:
            if self.h == 2:
                self._net = build_eds_parametric(self.graph)
            else:
                self._net = build_cds_parametric(self.graph, self.h, index=self.index)
        return self._net

    def density_of(self, vertices: set[Vertex]) -> float:
        """Exact Ψ-density of a subset of this component's vertices."""
        if self.h == 2:
            return self.graph.subgraph(vertices).num_edges / len(vertices)
        return self.index.density_within(vertices)

    def checkpoint(self) -> None:
        """Record the current flow as the warm-start base (new lower bound)."""
        if self._net is not None:
            self._net.checkpoint()

    def density(self) -> float:
        if self.graph.num_vertices == 0:
            return 0.0
        if self.h == 2:
            return self.graph.num_edges / self.graph.num_vertices
        return self.index.m / self.graph.num_vertices

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices


def _subgraph_density(graph: Graph, vertices: set[Vertex], h: int, index=None) -> float:
    if not vertices:
        return 0.0
    if index is not None:
        return index.density_within(vertices)
    sub = graph.subgraph(vertices)
    if sub.num_vertices == 0:
        return 0.0
    if h == 2:
        return sub.num_edges / sub.num_vertices
    return CliqueIndex(sub, h).m / sub.num_vertices


def _core_shrink(state: _ComponentState, level: float, core_of: dict) -> _ComponentState:
    """Intersect the component with the (⌈level⌉, Ψ)-core (Lemma 7)."""
    need = math.ceil(level)
    keep = {v for v in state.graph if core_of.get(v, 0) >= need}
    if len(keep) < state.num_vertices:
        state = state.shrink(keep)
    return state


def _ggt_newton_walk(state: _ComponentState, low: float, core_of: dict):
    """Discrete-Newton breakpoint walk with mid-search core shrinks.

    The per-component half of :meth:`ParametricNetwork.max_density`,
    lifted here so that every time the walk raises α past the next
    integer, the component is re-intersected with the (⌈α⌉, Ψ)-core
    (exactly the shrink the binary search performs on line 16) and the
    remaining hops run on a smaller network.  Sound for the same reason
    (Lemma 7): each iterate α is the exact density of a real subgraph,
    hence a valid lower bound, and any denser subgraph has all its
    clique-core numbers >= ⌈α⌉.  Returns ``(cut, ρ, solves, sizes)``.
    """
    best: Optional[set[Vertex]] = None
    best_rho = low
    alpha = low
    solves = 0
    sizes: list[int] = []
    while True:
        try:
            cut = state.solve(alpha)
        except guard.BudgetExceeded as exc:
            # the walk's incumbent is this component's best cut so far
            # -- the densest pruned-core answer available
            exc.attach_incumbent(best, best_rho)
            raise
        solves += 1
        sizes.append(state.network_nodes)
        if not cut:
            break
        rho = state.density_of(cut)
        if best is None or rho > best_rho:
            best, best_rho = cut, rho
        if rho <= alpha:
            break  # float-exact optimum: the cut re-certifies itself
        if math.ceil(rho) > math.ceil(alpha):
            state = _core_shrink(state, rho, core_of)
            if state.num_vertices == 0:
                break
        alpha = rho
    return best, best_rho, solves, sizes


def solve_component_state(
    state: _ComponentState,
    *,
    low: float,
    kmax: int,
    k_locate: int,
    core_of: dict,
    pruning3: bool,
    n: int,
) -> dict:
    """One component of the CoreExact search, started at lower bound ``low``.

    The extracted body of the serial component loop, shared verbatim by
    the parent process and the parallel workers
    (:func:`repro.par.worker.solve_component`).  ``core_of`` maps
    vertex label to clique-core number (the mid-search shrinks read
    it); ``n`` is the whole graph's vertex count (the pruning3-off
    binary resolution).

    Returns ``{"cut", "rho", "solves", "network_sizes", "final_low"}``:
    ``cut`` is None when the search at ``low`` is infeasible, ``rho``
    the cut's exact density, and ``final_low`` the lower bound the
    serial loop carries to the next component.  On budget expiry a
    :class:`~repro.guard.BudgetExceeded` escapes with the component
    incumbent attached.
    """
    # cuts found after shrinks are still subsets of this state's graph,
    # so it can price any of them (bit-identical to the call-level index:
    # both count exactly the instances inside the cut)
    origin = state
    sizes: list[int] = []
    # The upper bound must be per-component: infeasibility inside one
    # component says nothing about another, while kmax bounds every
    # subgraph's density (Lemma 5).  (The paper's pseudocode shares u
    # across components; resetting it is the sound reading.)
    high = float(kmax)
    # line 6: if the global lower bound outgrew this core level,
    # intersect the component with the (⌈l⌉, Ψ)-core.
    if low > k_locate:
        state = _core_shrink(state, low, core_of)
    if state.num_vertices == 0:
        return {"cut": None, "rho": 0.0, "solves": 0, "network_sizes": sizes,
                "final_low": low}

    if state.flow_engine == "ggt":
        # One parametric sweep replaces probe + binary search: the
        # Newton walk starts at the lower bound l (solving at l IS the
        # feasibility probe) and ends at the component's exact optimal
        # density, raising l for later components.
        cut, rho, solves, sizes = _ggt_newton_walk(state, low, core_of)
        if cut is None:
            return {"cut": None, "rho": 0.0, "solves": solves,
                    "network_sizes": sizes, "final_low": low}
        return {"cut": cut, "rho": rho, "solves": solves,
                "network_sizes": sizes, "final_low": rho if rho > low else low}

    # lines 7-9: feasibility probe at α = l.
    probe = state.solve(low)
    sizes.append(state.network_nodes)
    solves = 1
    if not probe:
        return {"cut": None, "rho": 0.0, "solves": solves,
                "network_sizes": sizes, "final_low": low}
    candidate_local = probe
    state.checkpoint()  # all later guesses exceed l: warm-start base

    # lines 10-19: binary search within the component.
    try:
        while True:
            nc = state.num_vertices
            resolution = (
                1.0 / (nc * (nc - 1))
                if pruning3 and nc > 1
                else (1.0 / (n * (n - 1)) if n > 1 else 0.5)
            )
            if high - low < resolution:
                break
            alpha = (low + high) / 2.0
            cut_vertices = state.solve(alpha)
            sizes.append(state.network_nodes)
            solves += 1
            if not cut_vertices:
                high = alpha
            else:
                if alpha > math.ceil(low):
                    state = _core_shrink(state, alpha, core_of)
                low = alpha
                candidate_local = cut_vertices
                state.checkpoint()
    except guard.BudgetExceeded as exc:
        # the search's last feasible cut is this component's incumbent
        exc.attach_incumbent(candidate_local, origin.density_of(candidate_local))
        raise

    return {"cut": candidate_local, "rho": origin.density_of(candidate_local),
            "solves": solves, "network_sizes": sizes, "final_low": low}


def _component_payloads(
    states: list[_ComponentState],
    *,
    h: int,
    flow_engine: str,
    low: float,
    kmax: int,
    k_locate: int,
    core_of: dict,
    pruning3: bool,
    n: int,
) -> tuple[list[dict], dict]:
    """(payloads, shared arrays) for the worker-side component rebuilds.

    Labels travel in the payload in graph-iteration order (the worker
    re-inserts them in that order, so its internal id space matches the
    parent's); edges, clique rows and core numbers travel as flat int64
    arrays through the shared-memory arena.
    """
    from ..cliques import kernels

    np = kernels.np
    shared: dict = {}
    payloads: list[dict] = []
    for cid, state in enumerate(states):
        labels = list(state.graph)
        id_of = {v: i for i, v in enumerate(labels)}
        esrc: list[int] = []
        edst: list[int] = []
        for u in state.graph:
            iu = id_of[u]
            for v in state.graph.neighbors(u):
                iv = id_of[v]
                if iu < iv:
                    esrc.append(iu)
                    edst.append(iv)
        fields: dict = {
            f"c{cid}.esrc": esrc,
            f"c{cid}.edst": edst,
            f"c{cid}.core": [core_of.get(v, 0) for v in labels],
        }
        if state.index is not None:
            fields[f"c{cid}.rows"] = state.index.inst
        for key, val in fields.items():
            shared[key] = np.asarray(val, dtype=np.int64) if np is not None else list(val)
        payloads.append(
            {
                "cid": cid, "labels": labels, "h": h, "flow_engine": flow_engine,
                "low": low, "kmax": kmax, "k_locate": k_locate,
                "pruning3": pruning3, "n": n,
            }
        )
    return payloads, shared


def core_exact_densest(
    graph: Graph,
    h: int = 2,
    *,
    pruning1: bool = True,
    pruning2: bool = True,
    pruning3: bool = True,
    decomposition: Optional[CliqueCoreResult] = None,
    flow_engine: str = "ggt",
    index: Optional[CliqueIndex] = None,
    workers: Optional[int] = None,
) -> DensestSubgraphResult:
    """CoreExact: exact CDS with core-based pruning.

    Parameters
    ----------
    graph, h:
        Input graph and clique size of Ψ (h = 2 for classical EDS).
    pruning1 / pruning2 / pruning3:
        Toggles for the Section-6.1 pruning criteria (all on by default;
        the Figure-10 ablation turns them off selectively).
    decomposition:
        Optionally a precomputed Algorithm-3 result, to amortise the
        decomposition across calls.
    flow_engine:
        ``"ggt"`` (default) walks the min-cut breakpoints of one
        α-parametric network per component (no binary search; a handful
        of warm solves, re-intersecting the component with the
        ⌈α⌉-core between Newton hops so networks shrink mid-search);
        ``"reuse"`` builds one α-parametric network per component
        (rebuilt on core shrinks) and re-solves it across the binary
        search with warm-started flows; ``"rebuild"`` reconstructs the
        network every iteration (the pre-parametric behaviour; both
        kept for the flow-engine ablation bench).  All three return
        bit-identical vertex sets and densities.
    index:
        Optional pre-built, unpeeled :class:`CliqueIndex` of ``graph``
        (the API layer builds one per call).  Built here when omitted
        (h >= 3); it feeds the decomposition, every component state
        (via row-selecting subindexes) and the flow builders, so the
        clique instances of a call are enumerated exactly once.

    Returns
    -------
    DensestSubgraphResult whose ``stats`` carry the instrumentation the
    evaluation figures need: per-iteration flow-network sizes
    (Figure 9), decomposition vs total time (Table 3), and the
    enumeration/flow wall-clock split.
    """
    check_flow_engine(flow_engine)
    n = graph.num_vertices
    start = time.perf_counter()
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "CoreExact")
    if h < 2:
        raise ValueError("h must be >= 2")

    with obs.span("core_exact.enumeration", h=h) as enum_sp:
        if h >= 3 and index is None:
            index = CliqueIndex(graph, h)
    enum_seconds = enum_sp.seconds

    with obs.span("core_exact.decomposition", h=h) as decomp_sp:
        if decomposition is None:
            decomposition = clique_core_decomposition(graph, h, index=index)
    # Algorithm-3 cost as the paper accounts it (Table 3): instance
    # enumeration + peel.  ``enumeration_seconds`` is the subset spent
    # building the index, so ``decomposition_seconds -
    # enumeration_seconds`` is the pure peel share.
    decomp_seconds = enum_seconds + decomp_sp.seconds

    kmax = decomposition.kmax
    if kmax == 0:
        return DensestSubgraphResult(
            set(graph.vertices()),
            0.0,
            "CoreExact",
            stats={
                "decomposition_seconds": decomp_seconds,
                "enumeration_seconds": enum_seconds,
            },
        )

    # --- bounds and location core (optimisations 1 + Pruning1/2) ------
    low = kmax / float(h)
    high = float(kmax)
    k_locate = math.ceil(low)
    best_vertices = decomposition.best_residual_vertices
    if pruning1:
        if decomposition.best_residual_density > low:
            low = decomposition.best_residual_density
        k_locate = max(k_locate, math.ceil(low))

    def component_states(located_graph: Graph) -> list[_ComponentState]:
        """One state per connected component, clique rows sliced from
        the call-level index (no per-component re-enumeration)."""
        states = []
        for cc in located_graph.connected_components():
            sub = located_graph.subgraph(cc)
            sub_index = index.subindex(sub) if index is not None else None
            states.append(_ComponentState(sub, h, flow_engine, index=sub_index))
        return states

    core_vertices = {v for v, c in decomposition.core.items() if c >= k_locate}
    located = graph.subgraph(core_vertices)
    # Component states slice the clique index *and* cache the
    # α-parametric network; building them up front lets Pruning2 read
    # per-component densities straight off the row counts.
    comp_states = component_states(located)

    if pruning2:
        rho2 = 0.0
        for comp_state in comp_states:
            density = comp_state.density()
            if density > rho2:
                rho2 = density
                if density > low:
                    best_vertices = set(comp_state.graph.vertices())
        if rho2 > low:
            low = rho2
        if math.ceil(rho2) > k_locate:
            k_locate = math.ceil(rho2)
            core_vertices = {v for v, c in decomposition.core.items() if c >= k_locate}
            located = graph.subgraph(core_vertices)
            comp_states = component_states(located)

    iterations = 0
    network_sizes: list[int] = []
    candidate: Optional[set[Vertex]] = None
    degraded: Optional[guard.BudgetExceeded] = None
    # The span's duration *is* the legacy ``flow_seconds`` stat, so
    # trace and stats reconcile exactly.
    with obs.span("core_exact.flow", engine=flow_engine, h=h) as flow_sp:
        # Densities already known from the decomposition and the component
        # states seed the cache, so the finalists below rarely trigger a
        # fresh row count.
        density_cache: dict[frozenset, float] = {
            frozenset(decomposition.best_residual_vertices): decomposition.best_residual_density
        }
        for comp_state in comp_states:
            density_cache[frozenset(comp_state.graph.vertices())] = comp_state.density()

        def cached_density(vertices: set[Vertex]) -> float:
            key = frozenset(vertices)
            found = density_cache.get(key)
            if found is None:
                found = density_cache[key] = _subgraph_density(graph, vertices, h, index)
            return found

        def merge_component(cut: Optional[set[Vertex]], rho: float) -> None:
            """Fold one component's answer into the running candidate."""
            nonlocal candidate
            if not cut:
                return
            density_cache.setdefault(frozenset(cut), rho)
            if candidate is None or cached_density(cut) > cached_density(candidate):
                candidate = cut

        ordered = sorted(comp_states, key=lambda s: -s.num_vertices)
        par_workers = 1
        if len(ordered) > 1:
            from .. import par

            par_workers = par.resolve_workers(workers)

        try:
            if par_workers > 1:
                # Fan the components out.  Every worker starts from the
                # pre-loop lower bound instead of the serially raised one
                # -- merely a less aggressive shrink (Lemma 7), same
                # answers -- and the merge below replays the serial
                # loop's decisions in the serial order, so the result is
                # bit-identical (see docs/par.md for the argument).
                from .. import par
                from ..par import worker as par_worker

                payloads, shared = _component_payloads(
                    ordered, h=h, flow_engine=flow_engine, low=low, kmax=kmax,
                    k_locate=k_locate, core_of=decomposition.core,
                    pruning3=pruning3, n=n,
                )
                outcomes = par.map_components(
                    par_worker.solve_component, payloads, workers=par_workers,
                    shared=shared, surface="core_exact.components",
                )
                expiry: Optional[tuple[str, str]] = None
                exc_cut: Optional[set[Vertex]] = None
                exc_rho = 0.0
                for outcome in outcomes:
                    if outcome["status"] != "ok":
                        # a worker's budget expired mid-component: note the
                        # first expiry site and keep the densest incumbent
                        info = outcome.get("degraded") or {}
                        if expiry is None:
                            expiry = (
                                info.get("site") or "core_exact.flow",
                                info.get("reason") or "worker budget expired",
                            )
                        inc = info.get("incumbent")
                        rho_inc = info.get("density") or 0.0
                        if inc and (exc_cut is None or rho_inc > exc_rho):
                            exc_cut, exc_rho = set(inc), rho_inc
                        continue
                    out = outcome["result"]
                    iterations += out["solves"]
                    network_sizes.extend(out["network_sizes"])
                    if out["cut"] is None:
                        continue
                    rho = out["rho"]
                    # Replay the serial probe at the running lower bound:
                    # the component is included exactly when its optimal
                    # density beats every earlier (larger) component --
                    # the same strict comparison the serial loop makes.
                    if rho <= low:
                        continue
                    low = rho
                    merge_component(set(out["cut"]), rho)
                if expiry is not None and guard.ACTIVE is not None:
                    # re-raise in the parent so the degradation path below
                    # (and api-level fallbacks) see one canonical expiry
                    guard.ACTIVE.adopt_expiry(expiry[0], expiry[1])
                    exc = guard.BudgetExceeded(expiry[0], expiry[1], guard.ACTIVE)
                    exc.attach_incumbent(exc_cut, exc_rho)
                    raise exc
            else:
                for comp_state in ordered:
                    out = solve_component_state(
                        comp_state, low=low, kmax=kmax, k_locate=k_locate,
                        core_of=decomposition.core, pruning3=pruning3, n=n,
                    )
                    iterations += out["solves"]
                    network_sizes.extend(out["network_sizes"])
                    if out["final_low"] > low:
                        low = out["final_low"]
                    merge_component(out["cut"], out["rho"])
        except guard.BudgetExceeded as exc:
            # degrade: keep the densest incumbent seen anywhere -- the
            # pruned-core seeds (best_vertices) are always available, and
            # the raise site may have attached a better mid-search cut
            degraded = exc
            if exc.incumbent is not None:
                density_cache.setdefault(frozenset(exc.incumbent), exc.incumbent_density)
                candidate_from_exc = set(exc.incumbent)
                if (candidate is None
                        or cached_density(candidate_from_exc) > cached_density(candidate)):
                    candidate = candidate_from_exc

        # --- pick the best of: binary-search result, Pruning1/2 seeds -----
        finalists = [best_vertices]
        if candidate:
            finalists.append(candidate)
        best = max(finalists, key=cached_density)
        density = cached_density(best)
    total_seconds = time.perf_counter() - start
    result = DensestSubgraphResult(
        vertices=set(best),
        density=density,
        method="CoreExact",
        iterations=iterations,
        stats={
            "network_sizes": network_sizes,
            "decomposition_seconds": decomp_seconds,
            "enumeration_seconds": enum_seconds,
            "flow_seconds": flow_sp.seconds,
            "total_seconds": total_seconds,
            "kmax": kmax,
            "k_locate": k_locate,
            "located_vertices": located.num_vertices,
            "flow_engine": flow_engine,
        },
    )
    if degraded is not None:
        # Theorem 1: ρ_opt <= kmax, so kmax bounds how far the pruned-core
        # incumbent can be from the optimum
        result.stats.update(
            guard.degraded_stats(
                degraded,
                incumbent_source="core",
                lower=density,
                upper=float(kmax),
            )
        )
    if guard.CHECK:
        sanitize.check_result_density(
            graph, result.vertices, h, result.density, "core_exact_densest"
        )
    return result
