"""``CoreExact`` (Algorithm 4): core-located exact densest subgraph.

The paper's headline exact algorithm.  It improves Algorithm 1 with
three core-based optimisations (Section 6.1):

1. **Tighter bounds on α** -- Theorem 1 gives ``kmax/|V_Ψ| ≤ ρ_opt ≤
   kmax``, collapsing the binary-search window.
2. **Locating the CDS in a core** -- Lemma 7 places the CDS inside the
   (⌈ρ⌉, Ψ)-core for any valid lower bound ρ, so flow networks are
   built on small cores (and on single connected components) instead of
   the whole graph.  Pruning1 uses the best residual density ρ' seen
   during core decomposition; Pruning2 sharpens it with per-component
   densities ρ''; Pruning3 relaxes the stopping criterion to the
   component size.
3. **Shrinking flow networks** -- every time the binary search raises
   the lower bound past the next integer, the component is intersected
   with a higher core and the network rebuilt smaller.

Each pruning is independently switchable so the Figure-10 ablation can
measure its contribution.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from ..cliques.enumeration import enumerate_cliques
from ..flow import dinic
from ..flow.builders import build_cds_network, build_eds_network, vertices_of_cut
from ..graph.graph import Graph, Vertex
from .clique_core import CliqueCoreResult, clique_core_decomposition
from .exact import DensestSubgraphResult


class _ComponentState:
    """A component subgraph plus the clique material its networks need.

    Rebuilt whenever CoreExact shrinks the component to a higher core,
    so clique enumeration is paid once per shrink, not per iteration.
    """

    def __init__(self, graph: Graph, h: int):
        self.graph = graph
        self.h = h
        if h >= 3:
            self.h_cliques = list(enumerate_cliques(graph, h))
            self.sub_cliques = list(enumerate_cliques(graph, h - 1))
            self.degrees: dict[Vertex, int] = {v: 0 for v in graph}
            for inst in self.h_cliques:
                for v in inst:
                    self.degrees[v] += 1
        else:
            self.h_cliques = None
            self.sub_cliques = None
            self.degrees = None

    def build_network(self, alpha: float):
        if self.h == 2:
            return build_eds_network(self.graph, alpha)
        return build_cds_network(
            self.graph,
            self.h,
            alpha,
            h_cliques=self.h_cliques,
            sub_cliques=self.sub_cliques,
            degrees=self.degrees,
        )

    def density(self) -> float:
        if self.graph.num_vertices == 0:
            return 0.0
        if self.h == 2:
            return self.graph.num_edges / self.graph.num_vertices
        return len(self.h_cliques) / self.graph.num_vertices

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices


def _subgraph_density(graph: Graph, vertices: set[Vertex], h: int) -> float:
    sub = graph.subgraph(vertices)
    if sub.num_vertices == 0:
        return 0.0
    return sum(1 for _ in enumerate_cliques(sub, h)) / sub.num_vertices


def core_exact_densest(
    graph: Graph,
    h: int = 2,
    *,
    pruning1: bool = True,
    pruning2: bool = True,
    pruning3: bool = True,
    decomposition: Optional[CliqueCoreResult] = None,
) -> DensestSubgraphResult:
    """CoreExact: exact CDS with core-based pruning.

    Parameters
    ----------
    graph, h:
        Input graph and clique size of Ψ (h = 2 for classical EDS).
    pruning1 / pruning2 / pruning3:
        Toggles for the Section-6.1 pruning criteria (all on by default;
        the Figure-10 ablation turns them off selectively).
    decomposition:
        Optionally a precomputed Algorithm-3 result, to amortise the
        decomposition across calls.

    Returns
    -------
    DensestSubgraphResult whose ``stats`` carry the instrumentation the
    evaluation figures need: per-iteration flow-network sizes
    (Figure 9), decomposition vs total time (Table 3).
    """
    n = graph.num_vertices
    start = time.perf_counter()
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "CoreExact")
    if h < 2:
        raise ValueError("h must be >= 2")

    if decomposition is None:
        decomposition = clique_core_decomposition(graph, h)
    decomp_seconds = time.perf_counter() - start

    kmax = decomposition.kmax
    if kmax == 0:
        return DensestSubgraphResult(
            set(graph.vertices()), 0.0, "CoreExact", stats={"decomposition_seconds": decomp_seconds}
        )

    # --- bounds and location core (optimisations 1 + Pruning1/2) ------
    low = kmax / float(h)
    high = float(kmax)
    k_locate = math.ceil(low)
    best_vertices = decomposition.best_residual_vertices
    if pruning1:
        if decomposition.best_residual_density > low:
            low = decomposition.best_residual_density
        k_locate = max(k_locate, math.ceil(low))

    core_vertices = {v for v, c in decomposition.core.items() if c >= k_locate}
    located = graph.subgraph(core_vertices)
    components = [located.subgraph(cc) for cc in located.connected_components()]

    if pruning2:
        rho2 = 0.0
        for comp in components:
            mu = sum(1 for _ in enumerate_cliques(comp, h)) if h >= 3 else comp.num_edges
            if comp.num_vertices:
                density = mu / comp.num_vertices
                if density > rho2:
                    rho2 = density
                    if density > low:
                        best_vertices = set(comp.vertices())
        if rho2 > low:
            low = rho2
        if math.ceil(rho2) > k_locate:
            k_locate = math.ceil(rho2)
            core_vertices = {v for v, c in decomposition.core.items() if c >= k_locate}
            located = graph.subgraph(core_vertices)
            components = [located.subgraph(cc) for cc in located.connected_components()]

    iterations = 0
    network_sizes: list[int] = []
    candidate: Optional[set[Vertex]] = None

    for comp_graph in sorted(components, key=lambda g: -g.num_vertices):
        # The upper bound must be per-component: infeasibility inside one
        # component says nothing about another, while kmax bounds every
        # subgraph's density (Lemma 5).  (The paper's pseudocode shares u
        # across components; resetting it is the sound reading.)
        high = float(kmax)
        # line 6: if the global lower bound outgrew this core level,
        # intersect the component with the (⌈l⌉, Ψ)-core.
        if low > k_locate:
            keep = {v for v in comp_graph if decomposition.core.get(v, 0) >= math.ceil(low)}
            comp_graph = comp_graph.subgraph(keep)
        if comp_graph.num_vertices == 0:
            continue
        state = _ComponentState(comp_graph, h)

        # lines 7-9: feasibility probe at α = l.
        network = state.build_network(low)
        network_sizes.append(network.num_nodes)
        iterations += 1
        dinic.max_flow(network)
        probe = vertices_of_cut(network.min_cut_source_side())
        if not probe:
            continue
        candidate_local = probe

        # lines 10-19: binary search within the component.
        while True:
            nc = state.num_vertices
            resolution = (
                1.0 / (nc * (nc - 1)) if pruning3 and nc > 1 else (1.0 / (n * (n - 1)) if n > 1 else 0.5)
            )
            if high - low < resolution:
                break
            alpha = (low + high) / 2.0
            network = state.build_network(alpha)
            network_sizes.append(network.num_nodes)
            iterations += 1
            dinic.max_flow(network)
            cut_vertices = vertices_of_cut(network.min_cut_source_side())
            if not cut_vertices:
                high = alpha
            else:
                if alpha > math.ceil(low):
                    keep = {
                        v for v in state.graph if decomposition.core.get(v, 0) >= math.ceil(alpha)
                    }
                    if len(keep) < state.num_vertices:
                        state = _ComponentState(state.graph.subgraph(keep), h)
                low = alpha
                candidate_local = cut_vertices

        if candidate_local:
            if candidate is None or _subgraph_density(graph, candidate_local, h) > _subgraph_density(
                graph, candidate, h
            ):
                candidate = candidate_local

    # --- pick the best of: binary-search result, Pruning1/2 seeds -----
    finalists = [best_vertices]
    if candidate:
        finalists.append(candidate)
    best = max(finalists, key=lambda vs: _subgraph_density(graph, vs, h))
    density = _subgraph_density(graph, best, h)
    total_seconds = time.perf_counter() - start
    return DensestSubgraphResult(
        vertices=set(best),
        density=density,
        method="CoreExact",
        iterations=iterations,
        stats={
            "network_sizes": network_sizes,
            "decomposition_seconds": decomp_seconds,
            "total_seconds": total_seconds,
            "kmax": kmax,
            "k_locate": k_locate,
            "located_vertices": located.num_vertices,
        },
    )
