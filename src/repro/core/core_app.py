"""``CoreApp`` (Algorithm 6): top-down (kmax, Ψ)-core discovery.

The paper's fastest approximation.  Instead of decomposing every core
bottom-up (IncApp), CoreApp exploits the observation that the
(kmax, Ψ)-core hides among the vertices with the highest clique-degrees:

1. Compute a cheap upper bound ``γ(v, Ψ) = C(core(v), h-1)`` on every
   clique-degree from the *classical* k-core decomposition (a vertex of
   an x-core has at most ``C(x, h-1)`` h-cliques through it inside that
   core).
2. Take the top-|W| vertices by γ, run the (k, Ψ)-core peeling on the
   induced subgraph G[W], and record the best core found.
3. Double |W| until every remaining vertex has γ below the best kmax so
   far -- at that point no outside vertex can join a deeper core, so
   the (kmax, Ψ)-core of G has been found (correctness argument of
   Section 6.2).

The returned subgraph is identical to IncApp's; only the work to find
it differs -- which is precisely what the Figure-8 benchmarks measure.
"""

from __future__ import annotations

import math

from ..cliques.index import CliqueIndex
from ..graph.graph import Graph, Vertex
from .clique_core import degree_bucket_queue
from .exact import DensestSubgraphResult
from .kcore import core_decomposition


def _gamma_bounds(graph: Graph, h: int) -> dict[Vertex, int]:
    """Clique-degree upper bounds ``γ(v, Ψ) = C(core(v), h-1)``."""
    core = core_decomposition(graph)
    return {v: math.comb(c, h - 1) for v, c in core.items()}


def core_app_densest(
    graph: Graph,
    h: int = 2,
    *,
    initial_size: int = 64,
) -> DensestSubgraphResult:
    """Algorithm 6: compute the (kmax, Ψ)-core top-down.

    Parameters
    ----------
    graph, h:
        Input graph and clique size of Ψ.
    initial_size:
        Size of the first vertex prefix W (doubled each round).  The
        paper leaves this unspecified; 64 keeps early rounds cheap while
        converging in O(log n) rounds.

    Returns
    -------
    DensestSubgraphResult for the (kmax, Ψ)-core; ``stats['rounds']``
    records how many prefixes were examined and
    ``stats['vertices_touched']`` the size of the last prefix, the
    quantities behind CoreApp's speedup over IncApp.
    """
    if h < 2:
        raise ValueError("h must be >= 2")
    n = graph.num_vertices
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "CoreApp")

    gamma = _gamma_bounds(graph, h)
    ordered = sorted(graph.vertices(), key=lambda v: -gamma[v])

    kmax = 0
    best_core: set[Vertex] = set()
    size = min(max(initial_size, 1), n)
    rounds = 0

    while True:
        rounds += 1
        prefix = ordered[:size]
        subgraph = graph.subgraph(prefix)
        sub_kmax, sub_core = _kmax_core_at_least(subgraph, h, kmax + 1)
        if sub_kmax > kmax:
            kmax = sub_kmax
            best_core = sub_core
        # Stopping criterion (line 4): every vertex outside W has a
        # clique-degree upper bound below the best kmax found, so its
        # clique-core number cannot reach kmax.
        if size >= n:
            break
        max_outside = gamma[ordered[size]]
        if max_outside < kmax:
            break
        size = min(size * 2, n)

    if not best_core:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "CoreApp")

    # Polish: the best core found inside a prefix G[W] can miss vertices
    # of G whose clique-core number also reaches kmax.  Only vertices
    # with γ >= kmax are eligible, so one more peel over that (small)
    # candidate set yields exactly the (kmax, Ψ)-core of G -- making
    # CoreApp return the same subgraph as IncApp, as the paper states.
    eligible = [v for v in graph if gamma[v] >= kmax]
    if len(eligible) > len(best_core):
        _, polished = _kmax_core_at_least(graph.subgraph(eligible), h, kmax)
        if polished:
            best_core = polished

    core_graph = graph.subgraph(best_core)
    density = CliqueIndex(core_graph, h).m / core_graph.num_vertices
    return DensestSubgraphResult(
        vertices=set(best_core),
        density=density,
        method="CoreApp",
        stats={"kmax": kmax, "rounds": rounds, "vertices_touched": size},
    )


def _kmax_core_at_least(graph: Graph, h: int, floor: int) -> tuple[int, set[Vertex]]:
    """(kmax, kmax-core vertices) of ``graph``, reported only if >= floor.

    Implements lines 5-14 of Algorithm 6: peel G[W] bottom-up over the
    instance index's flat incidence arrays (the same Batagelj–Zaveršnik
    array bucket queue as the full decomposition).  Only cores with
    number >= ``floor`` matter, so the peel returns (0, empty) when the
    deepest core falls short.
    """
    index = CliqueIndex(graph, h)
    labels = index.vertices
    n = len(labels)
    deg = list(index.base_degree)
    max_deg = max(deg, default=0)
    if max_deg == 0:
        return 0, set()
    inst, inc_start, inc_ids = index.inst, index.inc_start, index.inc_ids
    alive = index.alive

    position, order, bin_ptr = degree_bucket_queue(deg)

    removed = bytearray(n)
    kmax = 0
    kmax_at = 0  # peel step where kmax was last raised
    for i in range(n):
        vi = order[i]
        dv = deg[vi]
        if dv > kmax:
            # every vertex still unpeeled (vi included) survives at
            # level `dv`: they form the (dv, Ψ)-core of G[W].
            kmax = dv
            kmax_at = i
        removed[vi] = 1
        for pos in range(inc_start[vi], inc_start[vi + 1]):
            iid = inc_ids[pos]
            if not alive[iid]:
                continue
            alive[iid] = 0
            for k in range(iid * h, iid * h + h):
                ui = inst[k]
                if not removed[ui] and deg[ui] > dv:
                    du = deg[ui]
                    first = bin_ptr[du]
                    w = order[first]
                    if w != ui:
                        pu = position[ui]
                        order[first], order[pu] = ui, w
                        position[ui], position[w] = first, pu
                    bin_ptr[du] += 1
                    deg[ui] = du - 1
    if kmax < floor:
        return 0, set()
    # the processed prefix of `order` is final once passed, so the
    # survivors at step `kmax_at` are exactly order[kmax_at:]
    return kmax, {labels[order[j]] for j in range(kmax_at, n)}
