"""PDS algorithms: ``PExact``, ``CorePExact`` and pattern approximations.

Section 7 of the paper generalises densest-subgraph discovery from
h-cliques to arbitrary connected patterns:

* :func:`p_exact_densest` -- Algorithm 8, binary search with one flow
  node per pattern instance.
* :func:`core_p_exact_densest` -- CorePExact: pattern-core location
  plus the ``construct+`` grouped network (Algorithm 7), whose min cut
  Lemma 11 proves equal to PExact's.
* :func:`pattern_peel_densest` / :func:`pattern_inc_app_densest` /
  :func:`pattern_core_app_densest` -- the Section-6 approximations with
  clique machinery swapped for pattern machinery (Lemma 10 keeps the
  ``1/|V_Ψ|`` guarantee).
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from typing import Optional, Sequence

from ..cliques.enumeration import CliqueIndex
from ..flow import dinic
from ..flow.builders import (
    build_pds_network,
    build_pds_network_grouped,
    build_pds_parametric,
    vertices_of_cut,
)
from ..graph.graph import Graph, Vertex
from ..patterns.isomorphism import (
    Instance,
    enumerate_pattern_instances,
    instance_vertices,
)
from ..patterns.pattern import Pattern
from .clique_core import CliqueCoreResult, peel_index_decomposition
from .exact import DensestSubgraphResult, check_flow_engine
from .pattern_core import pattern_core_decomposition, pattern_index
from .peel import peel_densest


def _instance_sets(instances: Sequence[Instance]) -> list[frozenset]:
    return [instance_vertices(inst) for inst in instances]


def _decompose_from_sets(
    graph: Graph, pattern_size: int, vertex_sets: Sequence[frozenset]
) -> CliqueCoreResult:
    """Pattern-core decomposition given instance vertex sets directly.

    Duplicate vertex sets (distinct instances on the same vertices)
    are preserved: each contributes separately to pattern-degrees.
    """
    index = CliqueIndex(graph, pattern_size, instances=[tuple(s) for s in vertex_sets])
    return peel_index_decomposition(graph, index)


def _density_of(graph: Graph, vertices: set[Vertex], pattern: Pattern) -> float:
    sub = graph.subgraph(vertices)
    if sub.num_vertices == 0:
        return 0.0
    return len(enumerate_pattern_instances(sub, pattern)) / sub.num_vertices


def p_exact_densest(
    graph: Graph, pattern: Pattern, *, flow_engine: str = "ggt"
) -> DensestSubgraphResult:
    """Algorithm 8 (PExact): exact PDS on the full graph.

    One flow node per pattern instance; arcs ``v -> ψ`` capacity 1 and
    ``ψ -> v`` capacity ``|V_Ψ| - 1``.  The default ``"ggt"`` engine
    walks the min-cut breakpoints of one α-parametric network; the
    binary-search engines re-solve ("reuse") or rebuild ("rebuild") it.
    """
    check_flow_engine(flow_engine)
    n = graph.num_vertices
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "PExact")
    instances = enumerate_pattern_instances(graph, pattern)
    if not instances:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "PExact")
    vertex_sets = _instance_sets(instances)
    degrees: dict[Vertex, int] = defaultdict(int)
    for members in vertex_sets:
        for v in members:
            degrees[v] += 1

    net = None
    if flow_engine in ("reuse", "ggt"):
        net = build_pds_parametric(graph, pattern.size, vertex_sets, degrees=degrees)

    if flow_engine == "ggt":
        density_of = lambda s: sum(1 for members in vertex_sets if members <= s) / len(s)
        cut, rho, solves = net.max_density(density_of, low=0.0)
        if cut:
            best, density = cut, rho  # ρ is the exact count/size ratio
        else:
            best = set(graph.vertices())
            density = _density_of(graph, best, pattern)
        return DensestSubgraphResult(
            vertices=best,
            density=density,
            method="PExact",
            iterations=solves,
            stats={"network_sizes": [net.num_nodes] * solves, "instances": len(instances)},
        )

    low, high = 0.0, float(max(degrees.values()))
    resolution = 1.0 / (n * (n - 1)) if n > 1 else 0.5
    best: Optional[set[Vertex]] = None
    iterations = 0
    network_sizes: list[int] = []
    while high - low >= resolution:
        iterations += 1
        alpha = (low + high) / 2.0
        if net is not None:
            cut = net.solve(alpha)
            network_sizes.append(net.num_nodes)
        else:
            network = build_pds_network(graph, pattern.size, alpha, vertex_sets, degrees=degrees)
            network_sizes.append(network.num_nodes)
            dinic.max_flow(network)
            cut = vertices_of_cut(network.min_cut_source_side())
        if not cut:
            high = alpha
        else:
            low = alpha
            best = cut
            if net is not None:
                net.checkpoint()
    if best is None:
        best = set(graph.vertices())
    return DensestSubgraphResult(
        vertices=best,
        density=_density_of(graph, best, pattern),
        method="PExact",
        iterations=iterations,
        stats={"network_sizes": network_sizes, "instances": len(instances)},
    )


class _PatternComponentState:
    """A component plus its pattern instances, rebuilt on each shrink.

    With the parametric engines the grouped ``construct+`` network is
    built once per shrink as an α-parametric network and re-solved.
    """

    def __init__(
        self,
        graph: Graph,
        pattern: Pattern,
        instances: Sequence[frozenset],
        flow_engine: str = "ggt",
    ):
        self.graph = graph
        self.pattern = pattern
        self.flow_engine = flow_engine
        self._net = None
        self.network_nodes = 0  # node count of the last-solved network
        members = set(graph.vertices())
        self.vertex_sets = [s for s in instances if s <= members]
        self.degrees: dict[Vertex, int] = defaultdict(int)
        for s in self.vertex_sets:
            for v in s:
                self.degrees[v] += 1

    def build_network(self, alpha: float):
        return build_pds_network_grouped(
            self.graph, self.pattern.size, alpha, self.vertex_sets, degrees=self.degrees
        )

    def solve(self, alpha: float) -> set[Vertex]:
        """Source-side cut vertex set of the min cut at guess ``alpha``."""
        if self.flow_engine == "rebuild":
            network = self.build_network(alpha)
            self.network_nodes = network.num_nodes
            dinic.max_flow(network)
            return vertices_of_cut(network.min_cut_source_side())
        net = self._parametric()
        self.network_nodes = net.num_nodes
        return net.solve(alpha)

    def _parametric(self):
        if self._net is None:
            self._net = build_pds_parametric(
                self.graph,
                self.pattern.size,
                self.vertex_sets,
                degrees=self.degrees,
                grouped=True,
            )
        return self._net

    def density_of(self, vertices: set[Vertex]) -> float:
        """Exact pattern-density of a subset of this component's vertices."""
        return sum(1 for members in self.vertex_sets if members <= vertices) / len(vertices)

    def solve_max_density(self, low: float):
        """GGT breakpoint walk from lower bound ``low``: (cut, ρ, solves)."""
        net = self._parametric()
        self.network_nodes = net.num_nodes
        return net.max_density(self.density_of, low=low)

    def checkpoint(self) -> None:
        """Record the current flow as the warm-start base (new lower bound)."""
        if self._net is not None:
            self._net.checkpoint()

    def density(self) -> float:
        if self.graph.num_vertices == 0:
            return 0.0
        return len(self.vertex_sets) / self.graph.num_vertices

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices


def core_p_exact_densest(
    graph: Graph,
    pattern: Pattern,
    *,
    decomposition: Optional[CliqueCoreResult] = None,
    flow_engine: str = "ggt",
) -> DensestSubgraphResult:
    """CorePExact: exact PDS with pattern-core location and ``construct+``.

    Mirrors CoreExact (Algorithm 4) with pattern-cores in place of
    clique-cores and the grouped flow network of Algorithm 7 in place
    of the per-instance network, plus the same Pruning1/2/3.  The
    ``flow_engine`` knob matches :func:`~repro.core.core_exact.core_exact_densest`.
    """
    check_flow_engine(flow_engine)
    n = graph.num_vertices
    start = time.perf_counter()
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "CorePExact")
    instances = enumerate_pattern_instances(graph, pattern)
    if not instances:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "CorePExact")
    vertex_sets = _instance_sets(instances)
    if decomposition is None:
        decomposition = pattern_core_decomposition(graph, pattern, instances=instances)
    decomp_seconds = time.perf_counter() - start

    kmax = decomposition.kmax
    size = pattern.size
    low = kmax / float(size)
    best_vertices = decomposition.best_residual_vertices
    if decomposition.best_residual_density > low:
        low = decomposition.best_residual_density
    k_locate = math.ceil(low)

    core_vertices = {v for v, c in decomposition.core.items() if c >= k_locate}
    located = graph.subgraph(core_vertices)
    components = [located.subgraph(cc) for cc in located.connected_components()]

    # Pruning2: per-component densities
    comp_states = [
        _PatternComponentState(c, pattern, vertex_sets, flow_engine) for c in components
    ]
    rho2 = 0.0
    for state in comp_states:
        density = state.density()
        if density > rho2:
            rho2 = density
            if density > low:
                best_vertices = set(state.graph.vertices())
    if rho2 > low:
        low = rho2
    if math.ceil(rho2) > k_locate:
        k_locate = math.ceil(rho2)
        core_vertices = {v for v, c in decomposition.core.items() if c >= k_locate}
        located = graph.subgraph(core_vertices)
        comp_states = [
            _PatternComponentState(located.subgraph(cc), pattern, vertex_sets, flow_engine)
            for cc in located.connected_components()
        ]

    iterations = 0
    network_sizes: list[int] = []
    candidate: Optional[set[Vertex]] = None
    density_cache: dict[frozenset, float] = {}

    def cached_density(vertices) -> float:
        key = frozenset(vertices)
        found = density_cache.get(key)
        if found is None:
            found = density_cache[key] = _density_of(graph, vertices, pattern)
        return found

    for state in sorted(comp_states, key=lambda s: -s.num_vertices):
        high = float(kmax)
        if low > k_locate:
            keep = {v for v in state.graph if decomposition.core.get(v, 0) >= math.ceil(low)}
            if len(keep) < state.num_vertices:
                state = _PatternComponentState(
                    state.graph.subgraph(keep), pattern, vertex_sets, flow_engine
                )
        if state.num_vertices == 0:
            continue

        if flow_engine == "ggt":
            # One parametric sweep replaces probe + binary search (see
            # core_exact_densest): solving at l is the feasibility probe
            # and the walk ends at the component's exact optimum.
            cut, rho, solves = state.solve_max_density(low)
            iterations += solves
            network_sizes.extend([state.network_nodes] * solves)
            if not cut:
                continue
            density_cache.setdefault(frozenset(cut), rho)
            if rho > low:
                low = rho
            if candidate is None or cached_density(cut) > cached_density(candidate):
                candidate = cut
            continue

        probe = state.solve(low)
        network_sizes.append(state.network_nodes)
        iterations += 1
        if not probe:
            continue
        candidate_local = probe
        state.checkpoint()  # all later guesses exceed l: warm-start base

        while True:
            nc = state.num_vertices
            resolution = 1.0 / (nc * (nc - 1)) if nc > 1 else 0.5
            if high - low < resolution:
                break
            alpha = (low + high) / 2.0
            cut = state.solve(alpha)
            network_sizes.append(state.network_nodes)
            iterations += 1
            if not cut:
                high = alpha
            else:
                if alpha > math.ceil(low):
                    keep = {
                        v for v in state.graph if decomposition.core.get(v, 0) >= math.ceil(alpha)
                    }
                    if len(keep) < state.num_vertices:
                        state = _PatternComponentState(
                            state.graph.subgraph(keep), pattern, vertex_sets, flow_engine
                        )
                low = alpha
                candidate_local = cut
                state.checkpoint()

        if candidate_local and (
            candidate is None or cached_density(candidate_local) > cached_density(candidate)
        ):
            candidate = candidate_local

    finalists = [best_vertices]
    if candidate:
        finalists.append(candidate)
    best = max(finalists, key=cached_density)
    return DensestSubgraphResult(
        vertices=set(best),
        density=cached_density(best),
        method="CorePExact",
        iterations=iterations,
        stats={
            "network_sizes": network_sizes,
            "decomposition_seconds": decomp_seconds,
            "total_seconds": time.perf_counter() - start,
            "kmax": kmax,
            "instances": len(instances),
        },
    )


# ----------------------------------------------------------------------
# Pattern approximations (Section 7.2, first paragraph)
# ----------------------------------------------------------------------


def pattern_peel_densest(graph: Graph, pattern: Pattern) -> DensestSubgraphResult:
    """PeelApp with pattern-degrees (1/|V_Ψ|-approximation, Lemma 10).

    Starred patterns (stars, the C4 "diamond") peel with the Appendix-D
    closed-form degree updates and never materialise instances -- the
    difference between seconds and hours around power-law hubs, whose
    star counts grow as C(deg, x).
    """
    if _has_fast_core_path(pattern):
        from .pattern_core import c4_peel_densest, star_peel_densest

        if pattern.num_edges == pattern.size - 1:
            vertices, density, iterations = star_peel_densest(graph, pattern.size - 1)
        else:
            vertices, density, iterations = c4_peel_densest(graph)
        if density <= 0.0 and graph.num_vertices:
            vertices = set(graph.vertices())
        return DensestSubgraphResult(
            vertices=vertices,
            density=density,
            method="PeelApp(pattern)",
            iterations=iterations,
            stats={"fast_path": True},
        )
    index = pattern_index(graph, pattern)
    # check_density=False: the REPRO_CHECK recompute counts h-cliques,
    # this density counts pattern instances
    result = peel_densest(graph, h=pattern.size, index=index, check_density=False)
    return DensestSubgraphResult(
        vertices=result.vertices,
        density=result.density,
        method="PeelApp(pattern)",
        iterations=result.iterations,
    )


def _has_fast_core_path(pattern: Pattern) -> bool:
    """Whether an Appendix-D closed-form peel exists for this pattern."""
    degree_seq = pattern.degrees()
    size = pattern.size
    is_star = pattern.num_edges == size - 1 and degree_seq == [1] * (size - 1) + [size - 1]
    is_c4 = size == 4 and pattern.num_edges == 4 and degree_seq == [2, 2, 2, 2]
    return is_star or is_c4


def pattern_inc_app_densest(graph: Graph, pattern: Pattern) -> DensestSubgraphResult:
    """IncApp with pattern-cores: return the (kmax, Ψ)-core.

    Starred patterns (stars, the C4 "diamond") take the Appendix-D fast
    peel, which never materialises instances; only the final core's
    density requires enumeration, on the (small) core itself.
    """
    if graph.num_vertices == 0:
        return DensestSubgraphResult(set(), 0.0, "IncApp(pattern)")
    if _has_fast_core_path(pattern):
        from .pattern_core import fast_pattern_core_decomposition, fast_pattern_mu

        core_numbers = fast_pattern_core_decomposition(graph, pattern)
        kmax = max(core_numbers.values(), default=0)
        if kmax == 0:
            return DensestSubgraphResult(set(graph.vertices()), 0.0, "IncApp(pattern)")
        core = {v for v, c in core_numbers.items() if c >= kmax}
        core_graph = graph.subgraph(core)
        mu = fast_pattern_mu(core_graph, pattern) or 0
        return DensestSubgraphResult(
            vertices=core,
            density=mu / core_graph.num_vertices if core_graph.num_vertices else 0.0,
            method="IncApp(pattern)",
            stats={"kmax": kmax, "fast_path": True},
        )
    instances = enumerate_pattern_instances(graph, pattern)
    if not instances:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "IncApp(pattern)")
    result = _decompose_from_sets(graph, pattern.size, _instance_sets(instances))
    core = {v for v, c in result.core.items() if c >= result.kmax}
    return DensestSubgraphResult(
        vertices=core,
        density=_density_of(graph, core, pattern),
        method="IncApp(pattern)",
        stats={"kmax": result.kmax},
    )


def pattern_core_app_densest(graph: Graph, pattern: Pattern) -> DensestSubgraphResult:
    """CoreApp for patterns: top-down (kmax, Ψ)-core discovery.

    The clique-degree bound γ = C(core(v), h-1) is clique-specific, so
    the pattern variant orders vertices by their *exact* pattern-degree
    in G (a sound upper bound on the pattern-core number, property 3 of
    Section 5.1) computed from the instance list, then doubles prefixes
    exactly like Algorithm 6.
    """
    n = graph.num_vertices
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "CoreApp(pattern)")
    if _has_fast_core_path(pattern):
        return _fast_pattern_core_app(graph, pattern)
    instances = enumerate_pattern_instances(graph, pattern)
    if not instances:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "CoreApp(pattern)")
    vertex_sets = _instance_sets(instances)
    gamma: dict[Vertex, int] = defaultdict(int)
    for s in vertex_sets:
        for v in s:
            gamma[v] += 1
    ordered = sorted(graph.vertices(), key=lambda v: -gamma.get(v, 0))

    kmax = 0
    best_core: set[Vertex] = set()
    size = min(64, n)
    rounds = 0
    while True:
        rounds += 1
        prefix = set(ordered[:size])
        sub = graph.subgraph(prefix)
        result = _decompose_from_sets(sub, pattern.size, [s for s in vertex_sets if s <= prefix])
        if result.kmax > kmax:
            kmax = result.kmax
            best_core = {v for v, c in result.core.items() if c >= result.kmax}
        if size >= n or gamma.get(ordered[size], 0) < kmax:
            break
        size = min(size * 2, n)

    if not best_core:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "CoreApp(pattern)")
    # polish to the exact (kmax, Ψ)-core of G (same rationale as CoreApp)
    eligible = {v for v in graph if gamma.get(v, 0) >= kmax}
    if len(eligible) > len(best_core):
        result = _decompose_from_sets(
            graph.subgraph(eligible), pattern.size, [s for s in vertex_sets if s <= eligible]
        )
        polished = {v for v, c in result.core.items() if c >= kmax}
        if polished:
            best_core = polished
    return DensestSubgraphResult(
        vertices=best_core,
        density=_density_of(graph, best_core, pattern),
        method="CoreApp(pattern)",
        stats={"kmax": kmax, "rounds": rounds, "vertices_touched": size},
    )


def _fast_pattern_core_app(graph: Graph, pattern: Pattern) -> DensestSubgraphResult:
    """CoreApp for starred patterns via the Appendix-D fast peels.

    γ(v) is the exact pattern-degree from the closed-form counters (a
    sound upper bound on the pattern-core number); prefixes double as
    in Algorithm 6, each decomposed with the instance-free peel.
    """
    from ..patterns.degree import fast_pattern_degrees
    from .pattern_core import fast_pattern_core_decomposition, fast_pattern_mu

    n = graph.num_vertices
    gamma = fast_pattern_degrees(graph, pattern)
    if max(gamma.values(), default=0) == 0:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "CoreApp(pattern)")
    ordered = sorted(graph.vertices(), key=lambda v: -gamma[v])

    kmax = 0
    best_core: set[Vertex] = set()
    size = min(64, n)
    rounds = 0
    while True:
        rounds += 1
        sub = graph.subgraph(ordered[:size])
        core_numbers = fast_pattern_core_decomposition(sub, pattern)
        local_kmax = max(core_numbers.values(), default=0)
        if local_kmax > kmax:
            kmax = local_kmax
            best_core = {v for v, c in core_numbers.items() if c >= local_kmax}
        if size >= n or gamma[ordered[size]] < kmax:
            break
        size = min(size * 2, n)

    if not best_core:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "CoreApp(pattern)")
    eligible = {v for v in graph if gamma[v] >= kmax}
    if len(eligible) > len(best_core):
        core_numbers = fast_pattern_core_decomposition(graph.subgraph(eligible), pattern)
        polished = {v for v, c in core_numbers.items() if c >= kmax}
        if polished:
            best_core = polished
    core_graph = graph.subgraph(best_core)
    mu = fast_pattern_mu(core_graph, pattern)
    density = (mu or 0) / core_graph.num_vertices if core_graph.num_vertices else 0.0
    return DensestSubgraphResult(
        vertices=set(best_core),
        density=density,
        method="CoreApp(pattern)",
        stats={"kmax": kmax, "rounds": rounds, "vertices_touched": size, "fast_path": True},
    )
