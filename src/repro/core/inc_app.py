"""``IncApp`` (Algorithm 5): approximation via full core decomposition.

Runs the (k, Ψ)-core decomposition bottom-up (Algorithm 3) and returns
the (kmax, Ψ)-core, which Lemma 8 shows is a ``1/|V_Ψ|``-approximation
to the CDS.  Same asymptotic cost as the decomposition itself; the
point of comparison for CoreApp, which gets the same subgraph top-down
without touching low cores.
"""

from __future__ import annotations

from ..cliques.index import CliqueIndex
from ..graph.graph import Graph
from .clique_core import clique_core_decomposition
from .exact import DensestSubgraphResult


def inc_app_densest(
    graph: Graph, h: int = 2, index: CliqueIndex | None = None
) -> DensestSubgraphResult:
    """Algorithm 5: return the (kmax, Ψ)-core of ``graph``.

    For a graph with no Ψ instance, the full vertex set at density 0.
    The instance index is built once (or passed in by the caller) and
    serves both the decomposition and the final core's density -- a
    row-subset count instead of a re-enumeration of the core subgraph.
    """
    if h < 2:
        raise ValueError("h must be >= 2")
    if graph.num_vertices == 0:
        return DensestSubgraphResult(set(), 0.0, "IncApp")
    if index is None:
        index = CliqueIndex(graph, h)
    result = clique_core_decomposition(graph, h, index=index)
    core = result.kmax_core(graph)
    if core.num_vertices == 0:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "IncApp")
    density = index.count_within(set(core.vertices())) / core.num_vertices
    return DensestSubgraphResult(
        vertices=set(core.vertices()),
        density=density,
        method="IncApp",
        stats={"kmax": result.kmax},
    )
