"""The paper's primary contribution: core-based DSD algorithms."""

from .clique_core import (
    CliqueCoreResult,
    clique_core_decomposition,
    clique_core_subgraph,
    kmax_clique_core,
)
from .core_app import core_app_densest
from .core_exact import core_exact_densest
from .density import clique_density, edge_density
from .exact import DensestSubgraphResult, exact_densest
from .inc_app import inc_app_densest
from .kcore import core_decomposition, degeneracy, k_core, max_core
from .peel import peel_densest

__all__ = [
    "CliqueCoreResult",
    "DensestSubgraphResult",
    "clique_core_decomposition",
    "clique_core_subgraph",
    "clique_density",
    "core_app_densest",
    "core_decomposition",
    "core_exact_densest",
    "degeneracy",
    "edge_density",
    "exact_densest",
    "inc_app_densest",
    "k_core",
    "kmax_clique_core",
    "max_core",
    "peel_densest",
]
