"""Query-constrained densest subgraph (Section 6.3 variant).

Tsourakakis et al. [65] study the variant that returns the densest
subgraph containing a given query vertex set Q.  The paper sketches how
cores localise it for edge-density: with ``x`` the minimum classical
core number over Q, the x-core contains Q and has density >= x/2
(Theorem 1), so ``ρ_opt(Q) >= x/2`` and the flow search can run on a
small anchored core instead of the whole graph.

The anchored k-core used here is the peel that never removes a query
vertex; the standard exchange argument shows the optimal S is contained
in the anchored ⌈ρ⌉-core for any valid lower bound ρ (every non-query
vertex of S has degree >= ρ_opt inside S).
"""

from __future__ import annotations

import math
from typing import Iterable

from ..flow import dinic
from ..flow.builders import (
    SOURCE,
    build_eds_network,
    build_eds_parametric,
    vertices_of_cut,
)
from ..graph.graph import Graph, Vertex
from .exact import DensestSubgraphResult, check_flow_engine
from .kcore import core_decomposition


def anchored_core(graph: Graph, anchors: set[Vertex], k: int) -> Graph:
    """The anchored k-core: peel non-anchor vertices of degree < k.

    Anchors always survive; the result contains every subgraph S ⊇
    anchors whose non-anchor vertices all have degree >= k inside S.
    """
    work = graph.copy()
    changed = True
    while changed:
        changed = False
        doomed = [v for v in work if v not in anchors and work.degree(v) < k]
        for v in doomed:
            work.remove_vertex(v)
            changed = True
    return work


def query_densest(
    graph: Graph, query: Iterable[Vertex], *, flow_engine: str = "ggt"
) -> DensestSubgraphResult:
    """Densest (edge-density) subgraph containing every query vertex.

    Binary search over α on a Goldberg network restricted to the
    anchored core, with infinite source arcs pinning the query vertices
    to the source side of every cut.  The default ``"ggt"`` engine
    replaces the binary search with the discrete-Newton breakpoint
    walk (each α guess is the exact density of the previous cut);
    ``"reuse"`` keeps the binary search on one α-parametric anchored
    network, rebuilt only when the anchored core shrinks, and
    ``"rebuild"`` reconstructs it per iteration -- identical results,
    the GGT walk in far fewer max-flow solves.

    Raises
    ------
    KeyError
        If a query vertex is missing from the graph.
    ValueError
        If the query set is empty.
    """
    check_flow_engine(flow_engine)
    anchors = set(query)
    if not anchors:
        raise ValueError("query set must be non-empty")
    for q in anchors:
        if q not in graph:
            raise KeyError(f"query vertex {q!r} not in graph")

    core = core_decomposition(graph)
    x = min(core[q] for q in anchors)
    # The x-core contains every anchor and has density >= x/2
    # (Theorem 1); it is the witness that seeds both the lower bound
    # and the best-so-far answer, so an optimum that exactly equals the
    # bound is still returned.
    x_core = {v for v, c in core.items() if c >= x} | anchors
    best = set(x_core)
    low = max(x / 2.0, graph.subgraph(x_core).edge_density())
    # the anchored ⌈low⌉-core contains the optimum (exchange argument:
    # every non-anchor vertex of the optimum has degree >= ρ_opt >= low
    # inside it)
    domain = anchored_core(graph, anchors, math.ceil(low))
    n = domain.num_vertices
    high = float(domain.max_degree())
    resolution = 1.0 / (n * (n - 1)) if n > 1 else 0.5
    iterations = 0
    net = None

    if flow_engine == "ggt":
        # Newton walk: the anchored min cut is never empty (anchors are
        # pinned), so feasibility is the density test; each new α is the
        # exact density of the cut just found, and the walk stops the
        # first time the cut cannot beat its own α.
        net = build_eds_parametric(domain, anchors=anchors)
        alpha = low
        best_density = graph.subgraph(best).edge_density()
        while True:
            cut = net.solve(alpha)
            iterations += 1
            sub = domain.subgraph(cut)
            density = sub.edge_density() if sub.num_vertices else 0.0
            if density <= alpha:
                break
            if density > best_density:
                best = cut
                best_density = density
            alpha = density
        return DensestSubgraphResult(
            vertices=set(best),
            density=best_density,
            method="QueryDensest",
            iterations=iterations,
        )

    while high - low >= resolution:
        iterations += 1
        alpha = (low + high) / 2.0
        if flow_engine == "reuse":
            if net is None:
                net = build_eds_parametric(domain, anchors=anchors)
            cut = net.solve(alpha)
        else:
            network = build_eds_network(domain, alpha)
            for q in anchors:
                network.add_arc(SOURCE, ("v", q), float("inf"))
            dinic.max_flow(network)
            cut = vertices_of_cut(network.min_cut_source_side())
        sub = domain.subgraph(cut)
        if sub.num_vertices and sub.edge_density() > alpha:
            low = alpha
            if sub.edge_density() > graph.subgraph(best).edge_density():
                best = cut
            if net is not None:
                net.checkpoint()
            shrunk = anchored_core(domain, anchors, math.ceil(low))
            if shrunk.num_vertices < domain.num_vertices:
                net = None  # topology changed: rebuild the parametric net
            domain = shrunk
        else:
            high = alpha
    sub = graph.subgraph(best)
    return DensestSubgraphResult(
        vertices=set(best),
        density=sub.edge_density(),
        method="QueryDensest",
        iterations=iterations,
    )
