"""Classical k-core decomposition (Batagelj–Zaveršnik, O(m)).

Definition 5 of the paper: the k-core ``H_k`` is the largest subgraph in
which every vertex has degree at least ``k``; the core number of a
vertex is the largest ``k`` of a k-core containing it.  Used directly
for the EDS case (Ψ = edge) and to derive the clique-degree upper bound
``γ(v, Ψ) = C(core(v), h-1)`` inside CoreApp (Algorithm 6).
"""

from __future__ import annotations

from ..graph.graph import Graph, Vertex


def core_decomposition(graph: Graph) -> dict[Vertex, int]:
    """Core number of every vertex via bin-sort peeling.

    Returns
    -------
    dict mapping each vertex to its core number; empty graph -> empty dict.

    >>> from repro.graph.graph import complete_graph
    >>> core_decomposition(complete_graph(4)) == {0: 3, 1: 3, 2: 3, 3: 3}
    True
    """
    degree = {v: graph.degree(v) for v in graph}
    if not degree:
        return {}
    max_deg = max(degree.values())
    buckets: list[set[Vertex]] = [set() for _ in range(max_deg + 1)]
    for v, d in degree.items():
        buckets[d].add(v)
    core: dict[Vertex, int] = {}
    removed: set[Vertex] = set()
    current = 0
    for _ in range(len(degree)):
        while current <= max_deg and not buckets[current]:
            current += 1
        v = buckets[current].pop()
        core[v] = current
        removed.add(v)
        for u in graph.neighbors(v):
            if u not in removed and degree[u] > current:
                buckets[degree[u]].discard(u)
                degree[u] -= 1
                buckets[degree[u]].add(u)
        current = max(current - 1, 0)
    return core


def k_core(graph: Graph, k: int) -> Graph:
    """The k-core subgraph ``H_k`` (possibly empty, possibly disconnected)."""
    core = core_decomposition(graph)
    return graph.subgraph(v for v, c in core.items() if c >= k)


def max_core(graph: Graph) -> tuple[int, Graph]:
    """``(kmax, H_kmax)``: the maximum core number and its core subgraph."""
    core = core_decomposition(graph)
    if not core:
        return 0, Graph()
    kmax = max(core.values())
    return kmax, graph.subgraph(v for v, c in core.items() if c >= kmax)


def degeneracy(graph: Graph) -> int:
    """The degeneracy of the graph = classical ``kmax``."""
    core = core_decomposition(graph)
    return max(core.values(), default=0)
