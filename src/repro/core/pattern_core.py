"""k-pattern-core decomposition (Section 5.4 + Appendix D).

The (k, Ψ)-core for a general pattern Ψ: the largest subgraph in which
every vertex participates in at least ``k`` pattern instances.  The
generic route materialises the instance list and reuses the Algorithm-3
peel; the starred patterns of Figure 7 get the Appendix-D fast paths
that peel with closed-form degree updates and never materialise
instances:

* **x-star**: removing ``v`` lowers a neighbour ``u`` by
  ``C(deg(v)-1, x-1) + C(deg(u)-1, x-1)`` (stars centred at v with u a
  tail + stars centred at u with v a tail) and each 2-hop neighbour
  ``w`` (via centre ``u``) by ``C(deg(u)-2, x-2)``.
* **C4 ("diamond")**: removing ``v`` lowers each opposite corner ``u``
  by ``C(p_vu, 2)`` and each shared neighbour, per corner, by
  ``p_vu - 1``, where ``p_vu`` counts the parallel 2-paths.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..cliques.enumeration import CliqueIndex
from ..graph.graph import Graph, Vertex
from ..patterns.degree import c4_degrees, star_degrees, two_paths_by_endpoint
from ..patterns.isomorphism import Instance, enumerate_pattern_instances, instance_vertices
from ..patterns.pattern import Pattern
from .clique_core import CliqueCoreResult, peel_index_decomposition


def pattern_index(
    graph: Graph, pattern: Pattern, instances: Optional[Sequence[Instance]] = None
) -> CliqueIndex:
    """Build a peelable instance index for ``pattern`` over ``graph``."""
    if instances is None:
        instances = enumerate_pattern_instances(graph, pattern)
    tuples = [tuple(instance_vertices(inst)) for inst in instances]
    return CliqueIndex(graph, pattern.size, instances=tuples)


def pattern_core_decomposition(
    graph: Graph,
    pattern: Pattern,
    instances: Optional[Sequence[Instance]] = None,
) -> CliqueCoreResult:
    """Pattern-core numbers of all vertices (Algorithm 3 generalised).

    ``instances`` may be passed in when the caller already enumerated
    them (CorePExact does); otherwise they are enumerated here.
    """
    return peel_index_decomposition(graph, pattern_index(graph, pattern, instances))


def pattern_core_subgraph(graph: Graph, pattern: Pattern, k: int) -> Graph:
    """The (k, Ψ)-core subgraph for a general pattern Ψ."""
    return pattern_core_decomposition(graph, pattern).core_subgraph(graph, k)


# ----------------------------------------------------------------------
# Appendix-D fast paths: peel without materialising instances
# ----------------------------------------------------------------------


def star_core_decomposition(graph: Graph, tails: int) -> dict[Vertex, int]:
    """x-star pattern-core numbers via closed-form degree updates.

    O(n · d²) instead of O(n · dˣ); returns the same numbers as
    :func:`pattern_core_decomposition` with the x-star pattern (the
    test suite verifies the agreement).
    """
    if tails < 2:
        raise ValueError("star fast path needs >= 2 tails")
    work = graph.copy()
    degree = star_degrees(work, tails)
    core: dict[Vertex, int] = {}
    current = 0
    while work.num_vertices:
        v = min(work.vertices(), key=lambda u: degree[u])
        current = max(current, degree[v])
        core[v] = current
        y = work.degree(v)
        neighbors = list(work.neighbors(v))
        for u in neighbors:
            zu = work.degree(u)
            delta = math.comb(y - 1, tails - 1) + math.comb(zu - 1, tails - 1)
            degree[u] -= delta
            two_hop_delta = math.comb(zu - 2, tails - 2) if zu >= 2 else 0
            if two_hop_delta:
                for w in work.neighbors(u):
                    if w != v:
                        degree[w] -= two_hop_delta
        work.remove_vertex(v)
        degree.pop(v, None)
    return core


def c4_core_decomposition(graph: Graph) -> dict[Vertex, int]:
    """C4 ("diamond") pattern-core numbers via 2-path bookkeeping.

    O(n · d²) peel; agrees with the generic decomposition (tested).
    """
    work = graph.copy()
    degree = c4_degrees(work)
    core: dict[Vertex, int] = {}
    current = 0
    while work.num_vertices:
        v = min(work.vertices(), key=lambda u: degree[u])
        current = max(current, degree[v])
        core[v] = current
        paths = two_paths_by_endpoint(work, v)
        for u, p in paths.items():
            if p >= 2:
                degree[u] -= math.comb(p, 2)
            if p >= 2:
                # each common neighbour w of v and u sides p-1 cycles
                for w in work.neighbors(v):
                    if w != u and work.has_edge(w, u):
                        degree[w] -= p - 1
        work.remove_vertex(v)
        degree.pop(v, None)
    return core


def star_peel_densest(graph: Graph, tails: int) -> tuple[set[Vertex], float, int]:
    """PeelApp for the x-star with closed-form degree updates.

    Never materialises instances: the instance count of the residual
    graph is ``Σ deg(v, Ψ) / (x + 1)`` (every star spans x+1 vertices),
    and removals adjust degrees by the Appendix-D deltas.  Returns
    ``(best_vertices, best_density, iterations)``.
    """
    import heapq

    if tails < 2:
        raise ValueError("star fast path needs >= 2 tails")
    n = graph.num_vertices
    if n == 0:
        return set(), 0.0, 0
    work = graph.copy()
    degree = star_degrees(work, tails)
    mu = sum(degree.values()) // (tails + 1)
    alive = set(work.vertices())
    best_density = mu / n
    best_vertices = set(alive)
    heap = [(d, str(v), v) for v, d in degree.items()]
    heapq.heapify(heap)
    iterations = 0
    while len(alive) > 1:
        iterations += 1
        while True:
            d, _, v = heapq.heappop(heap)
            if v in alive and degree[v] == d:
                break
        mu -= degree[v]
        y = work.degree(v)
        for u in list(work.neighbors(v)):
            zu = work.degree(u)
            degree[u] -= math.comb(y - 1, tails - 1) + math.comb(zu - 1, tails - 1)
            heapq.heappush(heap, (degree[u], str(u), u))
            two_hop = math.comb(zu - 2, tails - 2) if zu >= 2 else 0
            if two_hop:
                for w in work.neighbors(u):
                    if w != v:
                        degree[w] -= two_hop
                        heapq.heappush(heap, (degree[w], str(w), w))
        work.remove_vertex(v)
        alive.discard(v)
        density = mu / len(alive)
        if density > best_density:
            best_density = density
            best_vertices = set(alive)
    return best_vertices, best_density, iterations


def c4_peel_densest(graph: Graph) -> tuple[set[Vertex], float, int]:
    """PeelApp for the C4 ("diamond") with 2-path bookkeeping.

    Same contract as :func:`star_peel_densest`; each cycle spans four
    vertices, so ``μ = Σ deg / 4``.
    """
    import heapq

    n = graph.num_vertices
    if n == 0:
        return set(), 0.0, 0
    work = graph.copy()
    degree = c4_degrees(work)
    mu = sum(degree.values()) // 4
    alive = set(work.vertices())
    best_density = mu / n
    best_vertices = set(alive)
    heap = [(d, str(v), v) for v, d in degree.items()]
    heapq.heapify(heap)
    iterations = 0
    while len(alive) > 1:
        iterations += 1
        while True:
            d, _, v = heapq.heappop(heap)
            if v in alive and degree[v] == d:
                break
        mu -= degree[v]
        paths = two_paths_by_endpoint(work, v)
        for u, p in paths.items():
            if p >= 2:
                degree[u] -= math.comb(p, 2)
                heapq.heappush(heap, (degree[u], str(u), u))
                for w in work.neighbors(v):
                    if w != u and work.has_edge(w, u):
                        degree[w] -= p - 1
                        heapq.heappush(heap, (degree[w], str(w), w))
        work.remove_vertex(v)
        alive.discard(v)
        density = mu / len(alive)
        if density > best_density:
            best_density = density
            best_vertices = set(alive)
    return best_vertices, best_density, iterations


def fast_pattern_mu(graph: Graph, pattern: Pattern) -> Optional[int]:
    """Closed-form instance count for starred patterns, else ``None``.

    ``μ = Σ_v deg(v, Ψ) / |V_Ψ|`` because every instance is counted
    once per member vertex.
    """
    degree_seq = pattern.degrees()
    size = pattern.size
    if pattern.num_edges == size - 1 and degree_seq == [1] * (size - 1) + [size - 1]:
        return sum(star_degrees(graph, size - 1).values()) // size
    if size == 4 and pattern.num_edges == 4 and degree_seq == [2, 2, 2, 2]:
        return sum(c4_degrees(graph).values()) // 4
    return None


def fast_pattern_core_decomposition(graph: Graph, pattern: Pattern) -> dict[Vertex, int]:
    """Dispatch to an Appendix-D fast path when one applies.

    Returns pattern-core numbers; falls back to the generic
    enumeration-based decomposition for unoptimised patterns.
    """
    degree_seq = pattern.degrees()
    size = pattern.size
    if pattern.num_edges == size - 1 and degree_seq == [1] * (size - 1) + [size - 1]:
        return star_core_decomposition(graph, size - 1)
    if size == 4 and pattern.num_edges == 4 and degree_seq == [2, 2, 2, 2]:
        return c4_core_decomposition(graph)
    return pattern_core_decomposition(graph, pattern).core
