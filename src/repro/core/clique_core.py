"""(k, Ψ)-core decomposition for h-cliques (Algorithm 3 of the paper).

Definition 6: the (k, Ψ)-core ``R_k`` is the largest subgraph in which
every vertex participates in at least ``k`` instances of the h-clique
``Ψ``.  Peeling vertices of minimum clique-degree with a bucket queue
yields the clique-core number of every vertex, exactly as the classical
Batagelj–Zaveršnik algorithm does for edges.

The decomposition additionally tracks the h-clique-density of every
residual graph encountered during the peel.  The best residual density
``ρ'`` is the lower bound that powers Pruning1 of CoreExact
(Section 6.1), so we return it alongside the core numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import accel
from ..accel.pure import degree_bucket_queue  # re-export: CoreApp's prefix peel uses it
from ..cliques.index import CliqueIndex
from ..graph.graph import Graph, Vertex

__all__ = [
    "CliqueCoreResult",
    "clique_core_decomposition",
    "degree_bucket_queue",
    "peel_index_decomposition",
    "clique_core_subgraph",
    "kmax_clique_core",
]


@dataclass
class CliqueCoreResult:
    """Output of the (k, Ψ)-core decomposition.

    Attributes
    ----------
    core:
        Clique-core number of every vertex.
    kmax:
        Maximum clique-core number (0 for a graph with no instances).
    best_residual_density:
        ``ρ'``: the highest h-clique-density among all residual graphs
        seen while peeling (Pruning1 lower bound on ``ρ_opt``).
    best_residual_vertices:
        The vertex set achieving ``ρ'``.
    peel_order:
        Vertices in removal order (useful for tests and baselines).
    """

    core: dict[Vertex, int]
    kmax: int
    best_residual_density: float
    best_residual_vertices: set[Vertex]
    peel_order: list[Vertex] = field(default_factory=list)

    def core_subgraph(self, graph: Graph, k: int) -> Graph:
        """The (k, Ψ)-core subgraph of ``graph``."""
        return graph.subgraph(v for v, c in self.core.items() if c >= k)

    def kmax_core(self, graph: Graph) -> Graph:
        """The (kmax, Ψ)-core subgraph of ``graph``."""
        return self.core_subgraph(graph, self.kmax)


def clique_core_decomposition(
    graph: Graph,
    h: int,
    index: CliqueIndex | None = None,
) -> CliqueCoreResult:
    """Algorithm 3: clique-core numbers of all vertices.

    Parameters
    ----------
    graph:
        The input graph.
    h:
        Clique size of Ψ (h >= 2; ``h == 2`` reduces to the classical
        k-core, which :mod:`repro.core.kcore` computes faster).
    index:
        Optionally a pre-built :class:`CliqueIndex`.  The decomposition
        peels a private alive-layer copy, so the index comes back
        untouched and can keep serving the flow builders of the same
        call.  Built from scratch when omitted.

    Notes
    -----
    Vertices that participate in no instance get core number 0.  Cores
    are nested (property 1 of Section 5.1); tests verify this.
    """
    if h < 2:
        raise ValueError("h-clique requires h >= 2")
    if index is None:
        index = CliqueIndex(graph, h)
    return peel_index_decomposition(graph, index)


def peel_index_decomposition(graph: Graph, index: CliqueIndex) -> CliqueCoreResult:
    """Algorithm-3 peeling over any materialised instance index.

    Shared engine for clique cores and pattern cores: the index only
    needs to know which vertices each live instance spans, so the same
    bucket-queue peel decomposes (k, Ψ)-cores for h-cliques and for
    arbitrary patterns alike.  The peel runs entirely on the index's
    flat arrays -- instance kills walk the per-vertex CSR incidence
    ranges -- against a *private copy* of the alive layer, so the index
    itself is left untouched for later consumers (CoreExact's flow
    phase reuses it).  The bucket-queue loop itself dispatches through
    the :mod:`repro.accel` kernel registry (numba-compiled on the numba
    tier, the pure loop otherwise; outputs bit-identical).
    """
    labels = index.vertices
    n = len(labels)
    n_graph = graph.num_vertices
    in_graph = bytearray(v in graph for v in labels)

    alive = bytearray(index.alive)
    num_alive = index.num_alive
    if num_alive == index.m:
        deg = list(index.base_degree)
    else:  # respect a partially peeled index
        degree = index.degrees()
        deg = [degree[v] for v in labels]

    # The best residual is reconstructed from the peel prefix at the end
    # instead of copying the alive set on every improvement (O(n^2) on
    # graphs whose density keeps rising while peeling).
    core_by_id, order, best_removed, best_density = accel.bucket_peel(
        index.inst, index.inc_start, index.inc_ids, deg, alive, in_graph,
        index.h, n_graph, num_alive,
    )

    core: dict[Vertex, int] = {}
    peel_order: list[Vertex] = []
    for i in range(n):
        vi = order[i]
        core[labels[vi]] = core_by_id[vi]
        peel_order.append(labels[vi])
    graph_vertices = set(graph.vertices())
    if best_removed:
        peeled = set(peel_order[:best_removed])
        best_vertices = {v for v in graph_vertices if v not in peeled}
    else:
        best_vertices = set(graph_vertices)
    kmax = max(core.values(), default=0)
    return CliqueCoreResult(
        core=core,
        kmax=kmax,
        best_residual_density=best_density,
        best_residual_vertices=best_vertices,
        peel_order=peel_order,
    )


def clique_core_subgraph(graph: Graph, h: int, k: int) -> Graph:
    """Convenience: the (k, Ψ)-core of ``graph`` for the h-clique Ψ."""
    return clique_core_decomposition(graph, h).core_subgraph(graph, k)


def kmax_clique_core(graph: Graph, h: int) -> tuple[int, Graph]:
    """``(kmax, (kmax, Ψ)-core)`` via full decomposition (IncApp's engine)."""
    result = clique_core_decomposition(graph, h)
    return result.kmax, result.kmax_core(graph)
