"""(k, Ψ)-core decomposition for h-cliques (Algorithm 3 of the paper).

Definition 6: the (k, Ψ)-core ``R_k`` is the largest subgraph in which
every vertex participates in at least ``k`` instances of the h-clique
``Ψ``.  Peeling vertices of minimum clique-degree with a bucket queue
yields the clique-core number of every vertex, exactly as the classical
Batagelj–Zaveršnik algorithm does for edges.

The decomposition additionally tracks the h-clique-density of every
residual graph encountered during the peel.  The best residual density
``ρ'`` is the lower bound that powers Pruning1 of CoreExact
(Section 6.1), so we return it alongside the core numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cliques.index import CliqueIndex
from ..graph.graph import Graph, Vertex


@dataclass
class CliqueCoreResult:
    """Output of the (k, Ψ)-core decomposition.

    Attributes
    ----------
    core:
        Clique-core number of every vertex.
    kmax:
        Maximum clique-core number (0 for a graph with no instances).
    best_residual_density:
        ``ρ'``: the highest h-clique-density among all residual graphs
        seen while peeling (Pruning1 lower bound on ``ρ_opt``).
    best_residual_vertices:
        The vertex set achieving ``ρ'``.
    peel_order:
        Vertices in removal order (useful for tests and baselines).
    """

    core: dict[Vertex, int]
    kmax: int
    best_residual_density: float
    best_residual_vertices: set[Vertex]
    peel_order: list[Vertex] = field(default_factory=list)

    def core_subgraph(self, graph: Graph, k: int) -> Graph:
        """The (k, Ψ)-core subgraph of ``graph``."""
        return graph.subgraph(v for v, c in self.core.items() if c >= k)

    def kmax_core(self, graph: Graph) -> Graph:
        """The (kmax, Ψ)-core subgraph of ``graph``."""
        return self.core_subgraph(graph, self.kmax)


def clique_core_decomposition(
    graph: Graph,
    h: int,
    index: CliqueIndex | None = None,
) -> CliqueCoreResult:
    """Algorithm 3: clique-core numbers of all vertices.

    Parameters
    ----------
    graph:
        The input graph.
    h:
        Clique size of Ψ (h >= 2; ``h == 2`` reduces to the classical
        k-core, which :mod:`repro.core.kcore` computes faster).
    index:
        Optionally a pre-built :class:`CliqueIndex`.  The decomposition
        peels a private alive-layer copy, so the index comes back
        untouched and can keep serving the flow builders of the same
        call.  Built from scratch when omitted.

    Notes
    -----
    Vertices that participate in no instance get core number 0.  Cores
    are nested (property 1 of Section 5.1); tests verify this.
    """
    if h < 2:
        raise ValueError("h-clique requires h >= 2")
    if index is None:
        index = CliqueIndex(graph, h)
    return peel_index_decomposition(graph, index)


def degree_bucket_queue(deg: list[int]) -> tuple[list[int], list[int], list[int]]:
    """Counting-sort setup of the Batagelj–Zaveršnik bucket queue.

    Returns ``(position, order, bin_ptr)``: ``order`` lists vertex ids
    ascending by degree with ``position`` its inverse, and ``bin_ptr[d]``
    points at the first entry of degree-``d``'s bucket.  Shared by the
    full decomposition here and CoreApp's floor-clamped prefix peel
    (:func:`repro.core.core_app._kmax_core_at_least`); both then run
    the standard one-swap-per-decrement loop over these arrays.
    """
    n = len(deg)
    max_deg = max(deg, default=0)
    bin_start = [0] * (max_deg + 2)
    for d in deg:
        bin_start[d + 1] += 1
    for i in range(max_deg + 1):
        bin_start[i + 1] += bin_start[i]
    fill = bin_start[: max_deg + 1]
    position = [0] * n
    order = [0] * n
    for i in range(n):
        d = deg[i]
        p = fill[d]
        position[i] = p
        order[p] = i
        fill[d] += 1
    return position, order, bin_start[: max_deg + 1]


def peel_index_decomposition(graph: Graph, index: CliqueIndex) -> CliqueCoreResult:
    """Algorithm-3 peeling over any materialised instance index.

    Shared engine for clique cores and pattern cores: the index only
    needs to know which vertices each live instance spans, so the same
    bucket-queue peel decomposes (k, Ψ)-cores for h-cliques and for
    arbitrary patterns alike.  The peel runs entirely on the index's
    flat arrays -- instance kills walk the per-vertex CSR incidence
    ranges -- against a *private copy* of the alive layer, so the index
    itself is left untouched for later consumers (CoreExact's flow
    phase reuses it).
    """
    labels = index.vertices
    n = len(labels)
    n_graph = graph.num_vertices
    in_graph = bytearray(v in graph for v in labels)
    inst, inc_start, inc_ids, h = index.inst, index.inc_start, index.inc_ids, index.h

    alive = bytearray(index.alive)
    num_alive = index.num_alive
    if num_alive == index.m:
        deg = list(index.base_degree)
    else:  # respect a partially peeled index
        degree = index.degrees()
        deg = [degree[v] for v in labels]

    core: dict[Vertex, int] = {}
    peel_order: list[Vertex] = []
    best_density = (num_alive / n_graph) if n_graph else 0.0
    # The best residual is reconstructed from the peel prefix at the end
    # instead of copying the alive set on every improvement (O(n^2) on
    # graphs whose density keeps rising while peeling).
    best_removed = 0

    # Array-backed bucket queue (Batagelj–Zaveršnik layout, as in
    # repro.graph.csr.core_numbers): vertices sorted by current degree
    # in ``order``, one swap per degree decrement.
    position, order, bin_ptr = degree_bucket_queue(deg)

    removed = bytearray(n)
    alive_graph = n_graph
    for i in range(n):
        vi = order[i]
        dv = deg[vi]
        removed[vi] = 1
        core[labels[vi]] = dv
        peel_order.append(labels[vi])
        if in_graph[vi]:
            alive_graph -= 1
        for pos in range(inc_start[vi], inc_start[vi + 1]):
            iid = inc_ids[pos]
            if not alive[iid]:
                continue
            alive[iid] = 0
            num_alive -= 1
            for k in range(iid * h, iid * h + h):
                ui = inst[k]
                if not removed[ui] and deg[ui] > dv:
                    du = deg[ui]
                    first = bin_ptr[du]
                    w = order[first]
                    if w != ui:
                        pu = position[ui]
                        order[first], order[pu] = ui, w
                        position[ui], position[w] = first, pu
                    bin_ptr[du] += 1
                    deg[ui] = du - 1
        if alive_graph:
            density = num_alive / alive_graph
            if density > best_density:
                best_density = density
                best_removed = len(peel_order)
    graph_vertices = set(graph.vertices())
    if best_removed:
        peeled = set(peel_order[:best_removed])
        best_vertices = {v for v in graph_vertices if v not in peeled}
    else:
        best_vertices = set(graph_vertices)
    kmax = max(core.values(), default=0)
    return CliqueCoreResult(
        core=core,
        kmax=kmax,
        best_residual_density=best_density,
        best_residual_vertices=best_vertices,
        peel_order=peel_order,
    )


def clique_core_subgraph(graph: Graph, h: int, k: int) -> Graph:
    """Convenience: the (k, Ψ)-core of ``graph`` for the h-clique Ψ."""
    return clique_core_decomposition(graph, h).core_subgraph(graph, k)


def kmax_clique_core(graph: Graph, h: int) -> tuple[int, Graph]:
    """``(kmax, (kmax, Ψ)-core)`` via full decomposition (IncApp's engine)."""
    result = clique_core_decomposition(graph, h)
    return result.kmax, result.kmax_core(graph)
