"""The baseline exact algorithm ``Exact`` (Algorithm 1).

Binary search over the density guess ``α`` combined with a min-cut
computation on a flow network built over the *entire* graph in every
iteration.  This is the state-of-the-art the paper compares against
(Goldberg's construction for Ψ = edge, the Mitzenmacher et al. /
Tsourakakis construction for h-cliques) and the reference
implementation that CoreExact must beat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import guard, obs
from ..cliques.index import CliqueIndex
from ..guard import sanitize
from ..flow import dinic
from ..flow.builders import (
    build_cds_network,
    build_cds_parametric,
    build_eds_network,
    build_eds_parametric,
    vertices_of_cut,
)
from ..graph.graph import Graph, Vertex

#: Valid values for the ``flow_engine`` knob of the exact algorithms:
#: ``"ggt"`` (the default) walks the min-cut breakpoints of one
#: α-parametric network (discrete Newton; no binary search, a handful
#: of warm solves); ``"reuse"`` runs the classical binary search but
#: re-solves one α-parametric network, rewriting only the sink
#: capacities; ``"rebuild"`` reconstructs a fresh network every
#: iteration (the pre-parametric behaviour; both non-GGT engines are
#: kept for the three-way ablation bench).
FLOW_ENGINES = ("ggt", "reuse", "rebuild")


def check_flow_engine(flow_engine: str) -> None:
    """Raise ValueError on an unknown ``flow_engine`` value."""
    if flow_engine not in FLOW_ENGINES:
        raise ValueError(
            f"unknown flow_engine {flow_engine!r}; choose from {list(FLOW_ENGINES)}"
        )


@dataclass
class DensestSubgraphResult:
    """Result of a densest-subgraph computation.

    Attributes
    ----------
    vertices:
        Vertex set of the returned subgraph.
    density:
        Its Ψ-density ``μ / |V|``.
    method:
        Name of the algorithm that produced it.
    iterations:
        Number of binary-search (or peeling) iterations executed.
    stats:
        Free-form instrumentation (flow-network sizes, timings, ...).
    """

    vertices: set[Vertex]
    density: float
    method: str
    iterations: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of vertices in the subgraph."""
        return len(self.vertices)


def _best_subgraph_density(graph: Graph, vertices: set[Vertex], h: int, index=None) -> float:
    if not vertices:
        return 0.0
    if index is not None:
        return index.density_within(vertices)
    if h == 2:
        sub = graph.subgraph(vertices)
        return sub.num_edges / sub.num_vertices if sub.num_vertices else 0.0
    return CliqueIndex(graph.subgraph(vertices), h).m / len(vertices)


def ggt_component_walk(graph: Graph, h: int, index: Optional[CliqueIndex]) -> dict:
    """One connected component's share of the Exact GGT walk.

    Builds the component's α-parametric network and runs the discrete
    Newton walk from α = 0 -- exactly what the whole-graph walk does to
    this component's nodes, since flow never crosses components.  Shared
    by the serial merge proof and the parallel workers
    (:func:`repro.par.worker.exact_component`).  Returns ``{"cut",
    "rho", "solves", "nodes"}``; a ``BudgetExceeded`` escapes with the
    walk's incumbent attached.
    """
    if h == 2:
        net = build_eds_parametric(graph)
        density_of = lambda s: graph.subgraph(s).num_edges / len(s)
    else:
        net = build_cds_parametric(graph, h, index=index)
        density_of = index.density_within
    cut, rho, solves = net.max_density(density_of, low=0.0)
    return {"cut": cut, "rho": rho, "solves": solves, "nodes": net.num_nodes}


def _parallel_ggt_parts(
    graph: Graph, h: int, index: Optional[CliqueIndex], workers: Optional[int]
) -> Optional[dict]:
    """Fan the GGT walk over connected components; ``None`` stays serial.

    Returns ``{"parts": [(cut, ρ, solves, nodes)], "expiry": (site,
    reason) | None, "incumbent": (cut, ρ)}`` -- the raw per-component
    walk results plus the densest incumbent salvaged from any worker
    whose budget expired.
    """
    from .. import par

    if par.resolve_workers(workers) <= 1:
        return None
    comps = graph.connected_components()
    if len(comps) <= 1:
        return None
    from ..cliques import kernels
    from ..par import worker as par_worker

    np = kernels.np
    shared: dict = {}
    payloads: list[dict] = []
    for cid, cc in enumerate(comps):
        sub = graph.subgraph(cc)
        labels = list(sub)
        id_of = {v: i for i, v in enumerate(labels)}
        esrc: list[int] = []
        edst: list[int] = []
        for u in sub:
            iu = id_of[u]
            for v in sub.neighbors(u):
                iv = id_of[v]
                if iu < iv:
                    esrc.append(iu)
                    edst.append(iv)
        fields: dict = {f"c{cid}.esrc": esrc, f"c{cid}.edst": edst}
        if index is not None:
            fields[f"c{cid}.rows"] = index.subindex(sub).inst
        for key, val in fields.items():
            shared[key] = np.asarray(val, dtype=np.int64) if np is not None else list(val)
        payloads.append({"cid": cid, "labels": labels, "h": h})

    outcomes = par.map_components(
        par_worker.exact_component,
        payloads,
        workers=workers,
        shared=shared,
        surface="exact.components",
    )
    parts: list[tuple] = []
    expiry: Optional[tuple[str, str]] = None
    inc_cut: Optional[set[Vertex]] = None
    inc_rho = 0.0
    for outcome in outcomes:
        if outcome["status"] != "ok":
            info = outcome.get("degraded") or {}
            if expiry is None:
                expiry = (
                    info.get("site") or "exact.flow",
                    info.get("reason") or "worker budget expired",
                )
            inc = info.get("incumbent")
            rho_i = info.get("density") or 0.0
            if inc and (inc_cut is None or rho_i > inc_rho):
                inc_cut, inc_rho = set(inc), rho_i
            continue
        out = outcome["result"]
        cut = set(out["cut"]) if out["cut"] is not None else None
        parts.append((cut, out["rho"], out["solves"], out["nodes"]))
    return {"parts": parts, "expiry": expiry, "incumbent": (inc_cut, inc_rho)}


def exact_densest(
    graph: Graph,
    h: int = 2,
    *,
    flow_engine: str = "ggt",
    index: Optional[CliqueIndex] = None,
    workers: Optional[int] = None,
) -> DensestSubgraphResult:
    """Algorithm 1: exact CDS via parametric min cuts on the full graph.

    Parameters
    ----------
    graph:
        Input graph.
    h:
        Clique size of Ψ (h = 2 gives the classical EDS).
    flow_engine:
        ``"ggt"`` (default) replaces the binary search with a
        breakpoint walk on one α-parametric network (a handful of warm
        max-flow solves); ``"reuse"`` solves every binary-search
        iteration on one α-parametric network; ``"rebuild"``
        reconstructs the network per iteration (pre-parametric
        behaviour, for the ablation).  All three return bit-identical
        vertex sets and densities.
    index:
        Optional pre-built, unpeeled :class:`CliqueIndex` of
        ``graph`` for this ``h`` (the API layer builds one per call and
        threads it through).  Built here when omitted (h >= 3).

    Returns
    -------
    DensestSubgraphResult with the optimum h-clique-density subgraph.
    For a graph with no Ψ instance, the whole vertex set at density 0.
    ``stats`` records the enumeration/flow wall-clock split.

    Notes
    -----
    The binary search stops when ``u - l < 1/(n(n-1))``: two distinct
    subgraph densities differ by at least that much (Lemma 12), so the
    last feasible cut is the optimum.
    """
    check_flow_engine(flow_engine)
    n = graph.num_vertices
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "Exact")
    if h < 2:
        raise ValueError("h must be >= 2")

    with obs.span("exact.enumeration", h=h) as enum_sp:
        if h >= 3 and index is None:
            index = CliqueIndex(graph, h)
        if h == 2:
            degrees = {v: graph.degree(v) for v in graph}
        else:
            degrees = index.initial_degrees()
    enum_seconds = enum_sp.seconds

    upper = max(degrees.values(), default=0)
    if upper == 0:
        return DensestSubgraphResult(
            set(graph.vertices()), 0.0, "Exact", stats={"enumeration_seconds": enum_seconds}
        )

    # The span's duration *is* the legacy ``flow_seconds`` stat (network
    # construction included), so trace and stats reconcile exactly.
    degraded: Optional[guard.BudgetExceeded] = None
    incumbent_source = "none"
    with obs.span("exact.flow", engine=flow_engine, h=h) as flow_sp:
        net = None
        if flow_engine == "reuse":
            if h == 2:
                net = build_eds_parametric(graph)
            else:
                net = build_cds_parametric(graph, h, index=index)

        if flow_engine == "ggt":
            if h == 2:
                density_of = lambda s: graph.subgraph(s).num_edges / len(s)
            else:
                density_of = index.density_within
            par_res = _parallel_ggt_parts(graph, h, index, workers)
            if par_res is not None:
                # Merge the per-component walks into the whole-graph
                # answer: flow never crosses components, so the graph's
                # minimal min cut at the optimum is the union of the
                # cuts of every component tied at the maximum density
                # (exact-float ties -- equal rationals round identically).
                iterations = 0
                network_sizes = []
                maxrho = 0.0
                union: set[Vertex] = set()
                for cut_c, rho_c, solves_c, nodes_c in par_res["parts"]:
                    iterations += solves_c
                    network_sizes.extend([nodes_c] * solves_c)
                    if not cut_c:
                        continue
                    if rho_c > maxrho:
                        maxrho = rho_c
                        union = set(cut_c)
                    elif rho_c == maxrho:
                        union |= cut_c
                cut = union if union else None
                rho = density_of(cut) if cut else 0.0
                if par_res["expiry"] is not None and guard.ACTIVE is not None:
                    # re-raise the worker expiry in the parent budget so
                    # callers see one canonical degradation, keeping the
                    # densest incumbent from finished and expired walks
                    site, reason = par_res["expiry"]
                    guard.ACTIVE.adopt_expiry(site, reason)
                    exc = guard.BudgetExceeded(site, reason, guard.ACTIVE)
                    inc_cut, inc_rho = par_res["incumbent"]
                    if cut is not None and (inc_cut is None or rho >= inc_rho):
                        inc_cut, inc_rho = cut, rho
                    exc.attach_incumbent(inc_cut, inc_rho)
                    degraded = exc
                    cut, rho = exc.incumbent, exc.incumbent_density
            else:
                if h == 2:
                    net = build_eds_parametric(graph)
                else:
                    net = build_cds_parametric(graph, h, index=index)
                try:
                    cut, rho, iterations = net.max_density(density_of, low=0.0)
                except guard.BudgetExceeded as exc:
                    # degrade: the walk's best breakpoint incumbent is an
                    # exact density of a real subgraph, just maybe not
                    # the optimum
                    degraded = exc
                    cut, rho = exc.incumbent, exc.incumbent_density
                    iterations = exc.budget.solves
                network_sizes = [net.num_nodes] * iterations
            if cut:
                best, density = cut, rho  # ρ is the exact count/size ratio
                incumbent_source = "walk"
            else:
                best = set(graph.vertices())
                density = _best_subgraph_density(graph, best, h, index)
        else:
            low, high = 0.0, float(upper)
            best: Optional[set[Vertex]] = None
            iterations = 0
            resolution = 1.0 / (n * (n - 1)) if n > 1 else 0.5
            network_sizes: list[int] = []

            try:
                while high - low >= resolution:
                    iterations += 1
                    alpha = (low + high) / 2.0
                    if net is not None:
                        cut_vertices = net.solve(alpha)
                        network_sizes.append(net.num_nodes)
                    else:
                        if h == 2:
                            network = build_eds_network(graph, alpha)
                        else:
                            network = build_cds_network(graph, h, alpha, index=index)
                        budget = guard.ACTIVE
                        if budget is not None:
                            budget.tick_solve(network.num_arcs)
                        network_sizes.append(network.num_nodes)
                        dinic.max_flow(network)
                        if guard.CHECK:
                            sanitize.check_flow_network(network)
                        cut_vertices = vertices_of_cut(network.min_cut_source_side())
                    if not cut_vertices:
                        high = alpha
                    else:
                        low = alpha
                        best = cut_vertices
                        if net is not None:
                            net.checkpoint()
            except guard.BudgetExceeded as exc:
                # degrade: the last feasible cut is a real subgraph whose
                # density the search had already certified to be >= low
                degraded = exc

            if best is not None:
                incumbent_source = "search"
            else:
                # ρ_opt below the first guess resolution (or the budget
                # died before any feasible cut): densest is the
                # max-degree vertex's best trivial subgraph; fall back to
                # the whole graph.
                best = set(graph.vertices())
            density = _best_subgraph_density(graph, best, h, index)

    result = DensestSubgraphResult(
        vertices=best,
        density=density,
        method="Exact",
        iterations=iterations,
        stats={
            "network_sizes": network_sizes,
            "enumeration_seconds": enum_seconds,
            "flow_seconds": flow_sp.seconds,
        },
    )
    if degraded is not None:
        # sound bound: h·μ(S) = Σ_{v∈S} deg_Ψ,S(v) <= |S|·dmax, so the
        # optimum density is at most dmax/h
        result.stats.update(
            guard.degraded_stats(
                degraded,
                incumbent_source=incumbent_source,
                lower=density,
                upper=upper / float(h),
            )
        )
    if guard.CHECK:
        sanitize.check_result_density(graph, result.vertices, h, result.density, "exact_densest")
    return result
