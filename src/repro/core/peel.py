"""``PeelApp`` (Algorithm 2): greedy peeling approximation.

Charikar's peeling generalised to h-cliques (and, via
:mod:`repro.core.pds`, to patterns): repeatedly remove the vertex with
the minimum Ψ-degree, track the density of every residual graph, and
return the densest one.  Deterministic ``1/|V_Ψ|``-approximation
(Lemma 8 / Lemma 10) in ``O(n * C(d-1, h-1))`` time.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from .. import accel, guard, obs
from ..cliques.index import CliqueIndex
from ..graph.graph import Graph, Vertex
from ..guard import sanitize
from .exact import DensestSubgraphResult


def min_degree_peel(
    graph: Graph, index: CliqueIndex
) -> Iterator[tuple[Vertex, set[Vertex], int]]:
    """Min-Ψ-degree peel as a generator over a lazy-deletion heap.

    The shared peel loop behind :func:`peel_densest` and the
    size-constrained variants
    (:mod:`repro.extensions.size_constrained`): repeatedly remove the
    vertex of minimum ``(Ψ-degree, graph-order rank)``, updating
    degrees through the instance index.  The queue is a lazy-deletion
    binary heap over ``(degree, rank)`` -- O(log n) per operation even
    when every vertex shares one degree (a plain per-degree bucket
    scan degenerates to O(n) per pop on regular graphs), and stale
    entries are skipped on pop.  The rank tie-break makes the peel
    order a pure function of the graph -- reproducible under
    string-hash randomisation, and exactly replicable by a naive
    min-scan with the same key (which is how the tests pin it).  The
    heap works directly over the index's internal vertex ids (which
    follow graph-iteration order, so id == rank) and degree updates
    walk the flat incidence arrays.  Yields ``(removed, alive,
    num_alive_instances)`` after each removal, down to a single
    remaining vertex; ``alive`` is the live set mutated in place --
    copy it to keep a snapshot.  ``index`` is consumed.

    On the numba tier of the :mod:`repro.accel` registry the whole peel
    runs in one compiled kernel call up front and the generator merely
    replays the removal sequence (byte-identical yields: the heap keys
    ``(degree, id)`` are unique, so the valid-pop order is a pure
    function of the graph).  The index's alive layer then reaches its
    fully-consumed state as soon as the generator starts rather than
    step by step -- no consumer reads the index mid-iteration.
    """
    labels = index.vertices
    n = graph.num_vertices  # labels[:n] are the graph's vertices in rank order
    degrees = index.degrees()
    deg = [degrees[v] for v in labels]

    if accel.get("heap_peel") is not None:
        try:
            order, num_alive_after, final_alive = accel.heap_peel(
                index.inst, index.inc_start, index.inc_ids, deg, index.alive,
                index.num_alive, n, index.h,
            )
        except accel.KernelFallback:
            # the kernel failed with nothing left to demote to; ``deg``
            # and ``alive`` were restored, so the reference loop below
            # peels the untouched state
            pass
        else:
            index.num_alive = final_alive
            alive = set(labels[:n])
            for vid, num_alive in zip(order, num_alive_after):
                alive.discard(labels[vid])
                yield labels[vid], alive, num_alive
            return

    heap = [(deg[i], i) for i in range(n)]
    heapq.heapify(heap)

    alive = set(labels[:n])
    removed = bytearray(len(labels))
    push = heapq.heappush
    pop = heapq.heappop
    for _ in range(n - 1):
        vid = -1
        while heap:
            d, i = pop(heap)
            if not removed[i] and deg[i] == d:
                vid = i
                break
        if vid < 0:
            break
        removed[vid] = 1
        alive.discard(labels[vid])
        for uid in index.peel_vertex_ids(vid):
            if not removed[uid]:
                deg[uid] -= 1
                if uid < n:
                    push(heap, (deg[uid], uid))
        yield labels[vid], alive, index.num_alive


def peel_densest(
    graph: Graph,
    h: int = 2,
    index: CliqueIndex | None = None,
    *,
    check_density: bool = True,
) -> DensestSubgraphResult:
    """Algorithm 2 for the h-clique Ψ.

    Parameters
    ----------
    graph, h:
        Input graph and clique size (h = 2 recovers Charikar's
        0.5-approximation for edge density).
    index:
        Optional pre-built instance index (consumed).
    check_density:
        Run the ``REPRO_CHECK`` result-density recompute (which counts
        h-cliques).  Callers that reuse this loop over a *pattern*
        instance index (:func:`repro.core.pds.pattern_peel_densest`)
        pass ``False``: their density counts pattern instances, which
        the h-clique recompute cannot reproduce.

    Returns
    -------
    The densest residual subgraph encountered while peeling; for a
    graph with no instance, the full vertex set at density 0.
    """
    if h < 2:
        raise ValueError("h must be >= 2")
    n = graph.num_vertices
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "PeelApp")
    if index is None:
        index = CliqueIndex(graph, h)

    max_degree = (
        max(index.base_degree, default=0)
        if index.num_alive == index.m
        else max(index.degrees().values(), default=0)
    )
    if max_degree == 0:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "PeelApp")

    best_density = index.num_alive / n
    best_vertices = set(graph.vertices())
    iterations = 0
    degraded: guard.BudgetExceeded | None = None
    budget = guard.ACTIVE

    with obs.span("peel.run", h=h, n=n, m=index.num_alive):
        prev_num_alive = index.num_alive
        try:
            for _, alive, num_alive in min_degree_peel(graph, index):
                if budget is not None:
                    budget.tick_round()
                iterations += 1
                if guard.CHECK:
                    sanitize.check_peel_round(prev_num_alive, num_alive)
                    prev_num_alive = num_alive
                density = num_alive / len(alive)
                if density > best_density:
                    best_density = density
                    best_vertices = set(alive)
        except guard.BudgetExceeded as exc:
            # degrade: the best residual graph seen so far is a valid
            # subgraph (the whole graph before the first round), just
            # without the 1/h-approximation guarantee
            degraded = exc
            exc.attach_incumbent(best_vertices, best_density)

    result = DensestSubgraphResult(
        vertices=best_vertices,
        density=best_density,
        method="PeelApp",
        iterations=iterations,
    )
    if degraded is not None:
        # h·μ(S) <= |S|·dmax bounds the optimum by dmax/h, so the
        # partial peel's incumbent carries a verifiable gap
        result.stats.update(
            guard.degraded_stats(
                degraded,
                incumbent_source="partial-peel",
                lower=best_density,
                upper=max_degree / float(h),
            )
        )
    if guard.CHECK and check_density:
        sanitize.check_result_density(graph, result.vertices, h, result.density, "peel_densest")
    return result
