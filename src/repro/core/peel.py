"""``PeelApp`` (Algorithm 2): greedy peeling approximation.

Charikar's peeling generalised to h-cliques (and, via
:mod:`repro.core.pds`, to patterns): repeatedly remove the vertex with
the minimum Ψ-degree, track the density of every residual graph, and
return the densest one.  Deterministic ``1/|V_Ψ|``-approximation
(Lemma 8 / Lemma 10) in ``O(n * C(d-1, h-1))`` time.
"""

from __future__ import annotations

from ..cliques.enumeration import CliqueIndex
from ..graph.graph import Graph, Vertex
from .exact import DensestSubgraphResult


def peel_densest(graph: Graph, h: int = 2, index: CliqueIndex | None = None) -> DensestSubgraphResult:
    """Algorithm 2 for the h-clique Ψ.

    Parameters
    ----------
    graph, h:
        Input graph and clique size (h = 2 recovers Charikar's
        0.5-approximation for edge density).
    index:
        Optional pre-built instance index (consumed).

    Returns
    -------
    The densest residual subgraph encountered while peeling; for a
    graph with no instance, the full vertex set at density 0.
    """
    if h < 2:
        raise ValueError("h must be >= 2")
    n = graph.num_vertices
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "PeelApp")
    if index is None:
        index = CliqueIndex(graph, h)

    degree = index.degrees()
    max_deg = max(degree.values(), default=0)
    if max_deg == 0:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "PeelApp")

    buckets: list[set[Vertex]] = [set() for _ in range(max_deg + 1)]
    for v, d in degree.items():
        buckets[d].add(v)

    alive = set(graph.vertices())
    removed: set[Vertex] = set()
    best_density = index.num_alive / n
    best_vertices = set(alive)
    iterations = 0
    cursor = 0

    for _ in range(n - 1):
        iterations += 1
        # The minimum clique-degree can drop arbitrarily when shared
        # instances die, so rescan from zero (bucket sizes keep this
        # cheap in practice; PeelApp is the baseline, not the headline).
        cursor = 0
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        if cursor > max_deg:
            break
        v = buckets[cursor].pop()
        removed.add(v)
        alive.discard(v)
        for killed in index.peel_vertex(v):
            for u in killed:
                if u not in removed:
                    buckets[degree[u]].discard(u)
                    degree[u] -= 1
                    buckets[degree[u]].add(u)
        density = index.num_alive / len(alive)
        if density > best_density:
            best_density = density
            best_vertices = set(alive)

    return DensestSubgraphResult(
        vertices=best_vertices,
        density=best_density,
        method="PeelApp",
        iterations=iterations,
    )
