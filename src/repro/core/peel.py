"""``PeelApp`` (Algorithm 2): greedy peeling approximation.

Charikar's peeling generalised to h-cliques (and, via
:mod:`repro.core.pds`, to patterns): repeatedly remove the vertex with
the minimum Ψ-degree, track the density of every residual graph, and
return the densest one.  Deterministic ``1/|V_Ψ|``-approximation
(Lemma 8 / Lemma 10) in ``O(n * C(d-1, h-1))`` time.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from .. import accel, obs
from ..cliques.index import CliqueIndex
from ..graph.graph import Graph, Vertex
from .exact import DensestSubgraphResult


def min_degree_peel(
    graph: Graph, index: CliqueIndex
) -> Iterator[tuple[Vertex, set[Vertex], int]]:
    """Min-Ψ-degree peel as a generator over a lazy-deletion heap.

    The shared peel loop behind :func:`peel_densest` and the
    size-constrained variants
    (:mod:`repro.extensions.size_constrained`): repeatedly remove the
    vertex of minimum ``(Ψ-degree, graph-order rank)``, updating
    degrees through the instance index.  The queue is a lazy-deletion
    binary heap over ``(degree, rank)`` -- O(log n) per operation even
    when every vertex shares one degree (a plain per-degree bucket
    scan degenerates to O(n) per pop on regular graphs), and stale
    entries are skipped on pop.  The rank tie-break makes the peel
    order a pure function of the graph -- reproducible under
    string-hash randomisation, and exactly replicable by a naive
    min-scan with the same key (which is how the tests pin it).  The
    heap works directly over the index's internal vertex ids (which
    follow graph-iteration order, so id == rank) and degree updates
    walk the flat incidence arrays.  Yields ``(removed, alive,
    num_alive_instances)`` after each removal, down to a single
    remaining vertex; ``alive`` is the live set mutated in place --
    copy it to keep a snapshot.  ``index`` is consumed.

    On the numba tier of the :mod:`repro.accel` registry the whole peel
    runs in one compiled kernel call up front and the generator merely
    replays the removal sequence (byte-identical yields: the heap keys
    ``(degree, id)`` are unique, so the valid-pop order is a pure
    function of the graph).  The index's alive layer then reaches its
    fully-consumed state as soon as the generator starts rather than
    step by step -- no consumer reads the index mid-iteration.
    """
    labels = index.vertices
    n = graph.num_vertices  # labels[:n] are the graph's vertices in rank order
    degrees = index.degrees()
    deg = [degrees[v] for v in labels]

    kern = accel.get("heap_peel")
    if kern is not None:
        order, num_alive_after, final_alive = kern(
            index.inst, index.inc_start, index.inc_ids, deg, index.alive,
            index.num_alive, n, index.h,
        )
        index.num_alive = final_alive
        alive = set(labels[:n])
        for vid, num_alive in zip(order, num_alive_after):
            alive.discard(labels[vid])
            yield labels[vid], alive, num_alive
        return

    heap = [(deg[i], i) for i in range(n)]
    heapq.heapify(heap)

    alive = set(labels[:n])
    removed = bytearray(len(labels))
    push = heapq.heappush
    pop = heapq.heappop
    for _ in range(n - 1):
        vid = -1
        while heap:
            d, i = pop(heap)
            if not removed[i] and deg[i] == d:
                vid = i
                break
        if vid < 0:
            break
        removed[vid] = 1
        alive.discard(labels[vid])
        for uid in index.peel_vertex_ids(vid):
            if not removed[uid]:
                deg[uid] -= 1
                if uid < n:
                    push(heap, (deg[uid], uid))
        yield labels[vid], alive, index.num_alive


def peel_densest(graph: Graph, h: int = 2, index: CliqueIndex | None = None) -> DensestSubgraphResult:
    """Algorithm 2 for the h-clique Ψ.

    Parameters
    ----------
    graph, h:
        Input graph and clique size (h = 2 recovers Charikar's
        0.5-approximation for edge density).
    index:
        Optional pre-built instance index (consumed).

    Returns
    -------
    The densest residual subgraph encountered while peeling; for a
    graph with no instance, the full vertex set at density 0.
    """
    if h < 2:
        raise ValueError("h must be >= 2")
    n = graph.num_vertices
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "PeelApp")
    if index is None:
        index = CliqueIndex(graph, h)

    max_degree = (
        max(index.base_degree, default=0)
        if index.num_alive == index.m
        else max(index.degrees().values(), default=0)
    )
    if max_degree == 0:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "PeelApp")

    best_density = index.num_alive / n
    best_vertices = set(graph.vertices())
    iterations = 0

    with obs.span("peel.run", h=h, n=n, m=index.num_alive):
        for _, alive, num_alive in min_degree_peel(graph, index):
            iterations += 1
            density = num_alive / len(alive)
            if density > best_density:
                best_density = density
                best_vertices = set(alive)

    return DensestSubgraphResult(
        vertices=best_vertices,
        density=best_density,
        method="PeelApp",
        iterations=iterations,
    )
