"""Top-level convenience API.

One entry point, :func:`densest_subgraph`, dispatches across the
paper's algorithm matrix:

=============  ===========================  ================================
``method``     Ψ an h-clique                Ψ a general pattern
=============  ===========================  ================================
``"exact"``    Algorithm 1 (Exact)          Algorithm 8 (PExact)
``"core-exact"``  Algorithm 4 (CoreExact)   CorePExact (construct+)
``"peel"``     Algorithm 2 (PeelApp)        pattern PeelApp
``"inc-app"``  Algorithm 5 (IncApp)         pattern IncApp
``"core-app"`` Algorithm 6 (CoreApp)        pattern CoreApp
``"auto"``     CoreExact if small, else CoreApp
=============  ===========================  ================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from . import guard, obs
from .cliques.index import CliqueIndex
from .core.core_app import core_app_densest
from .core.core_exact import core_exact_densest
from .core.exact import DensestSubgraphResult, exact_densest
from .core.inc_app import inc_app_densest
from .core.pds import (
    core_p_exact_densest,
    p_exact_densest,
    pattern_core_app_densest,
    pattern_inc_app_densest,
    pattern_peel_densest,
)
from .core.peel import peel_densest
from .graph.graph import Graph
from .graph.validate import validate_graph
from .guard import sanitize
from .patterns.pattern import Pattern, get_pattern

if TYPE_CHECKING:  # import-light: the serve package imports api lazily
    from .serve.snapshot import Snapshot

PatternLike = Union[int, str, Pattern]

#: Above this vertex count, ``method="auto"`` switches from the exact
#: CoreExact to the CoreApp approximation (the paper's Section-8 advice:
#: exact for small-to-moderate graphs, CoreApp beyond).
AUTO_EXACT_LIMIT = 5_000


def resolve_pattern(psi: PatternLike) -> Pattern:
    """Normalise an ``int`` (h-clique), catalogue name, or Pattern."""
    if isinstance(psi, Pattern):
        return psi
    if isinstance(psi, int):
        from .patterns.pattern import clique_pattern

        return clique_pattern(psi)
    return get_pattern(psi)


def _peel_fallback(
    graph: Graph,
    pattern: Pattern,
    degraded_info: dict,
    incumbent: Optional[set],
    incumbent_density: float,
) -> DensestSubgraphResult:
    """Budget-expired last resort: the peel 1/|V_Ψ|-approximation.

    Runs with the (expired) budget masked -- peeling is the cheap,
    bounded-quality escape hatch, so it must not immediately re-raise.
    Returns the denser of the peel result and the incumbent the
    interrupted solver attached, annotated with the verifiable bound
    ``ρ_opt <= |V_Ψ| * ρ_peel`` (Lemma 8 / Lemma 10).
    """
    size = pattern.size
    with guard.suspended():
        if pattern.is_clique():
            result = peel_densest(graph, size)
        else:
            result = pattern_peel_densest(graph, pattern)
    peel_density = result.density
    if incumbent and incumbent_density > result.density:
        result = DensestSubgraphResult(
            vertices=set(incumbent),
            density=incumbent_density,
            method=result.method,
            iterations=result.iterations,
            stats=dict(result.stats),
        )
    result.stats.update(degraded_info)
    result.stats.update(
        {
            "degraded": True,
            "degraded_incumbent": "peel-fallback",
            "fallback": "peel",
            "approx_ratio": 1.0 / size,
            "density_lower_bound": result.density,
            "density_upper_bound": size * peel_density,
        }
    )
    return result


def densest_subgraph(
    graph: Graph,
    psi: PatternLike = 2,
    method: str = "auto",
    flow_engine: str = "ggt",
    *,
    strict: bool = True,
    workers: Optional[int] = None,
    snapshot: Optional["Snapshot"] = None,
) -> DensestSubgraphResult:
    """Find the Ψ-densest subgraph of ``graph``.

    Parameters
    ----------
    graph:
        The input graph.
    psi:
        The motif: an int ``h`` for the h-clique, a Figure-7 pattern
        name (e.g. ``"diamond"``), or a :class:`Pattern`.
    method:
        One of ``auto``, ``exact``, ``core-exact``, ``peel``,
        ``inc-app``, ``core-app``.
    flow_engine:
        How the exact methods drive their max-flow solves.  ``"ggt"``
        (default) walks the min-cut breakpoints of one α-parametric
        arc-array network (Gallo–Grigoriadis–Tarjan style; no binary
        search, a handful of warm solves); ``"reuse"`` runs the binary
        search but re-solves one α-parametric network, rewriting only
        the sink capacities per iteration; ``"rebuild"`` reconstructs
        the network every iteration.  All three return bit-identical
        vertex sets and densities; the peeling-based approximations
        take no flow engine.
    strict:
        Validate the input up front (the default): a non-``Graph``
        raises ``TypeError``; an empty graph or a ``NaN`` vertex id
        raises ``ValueError`` with a pointer at the fix.
        ``strict=False`` skips the gate and keeps the historical
        behaviour (an empty graph returns an empty result).
    workers:
        Process count for the parallel execution layer
        (:mod:`repro.par`): the exact solvers fan independent
        connected-component subproblems across forked workers, and the
        h = 3/4 clique enumeration chunks its vertex ranges.  ``None``
        defers to ``REPRO_WORKERS`` (default 0); values <= 1 run
        serially.  Results are bit-identical to serial execution at any
        worker count.
    snapshot:
        A precomputed :class:`repro.serve.Snapshot` of ``(graph, h)``:
        the call becomes a pure lookup over the stored breakpoint
        family -- zero enumeration, zero flow solves -- returning the
        bit-identical exact answer.  Valid only for h-clique motifs
        with the exact methods (``auto`` / ``exact`` / ``core-exact``);
        ``strict`` additionally verifies the snapshot's content-hash
        key against ``graph`` (an O(n + m) hash, still no solver work).

    Notes
    -----
    Under an active :class:`repro.guard.Budget`, a solver that cannot
    finish degrades instead of failing: the result carries
    ``stats["degraded"]`` with a verifiable density bound, and when the
    interrupted solver had no incumbent at all the call falls back to
    the peel ``1/|V_Ψ|``-approximation (``stats["fallback"] ==
    "peel"``).

    For h-clique motifs with h >= 3 the clique instances are indexed
    exactly once per call (:class:`~repro.cliques.index.CliqueIndex`)
    and threaded through the solver, so e.g. CoreExact's locate-core
    and flow phases never re-enumerate.

    Examples
    --------
    >>> from repro.graph.graph import complete_graph
    >>> densest_subgraph(complete_graph(5), 3, method="core-exact").density
    2.0
    """
    if strict:
        validate_graph(graph)
    pattern = resolve_pattern(psi)
    if snapshot is not None:
        if not pattern.is_clique():
            raise ValueError(
                "snapshot= serves h-clique motifs only; pattern queries "
                "take the regular solver path"
            )
        if snapshot.h != pattern.size:
            raise ValueError(
                f"snapshot was precomputed for h={snapshot.h}, "
                f"query asks for h={pattern.size}"
            )
        if method not in ("auto", "exact", "core-exact"):
            raise ValueError(
                f"snapshot= answers the exact methods (auto/exact/core-exact); "
                f"got method={method!r}"
            )
        if strict and not snapshot.matches(graph):
            raise ValueError(
                "snapshot key does not match this graph (content hash "
                "differs -- different vertices, edges, or flow-layer EPS); "
                "rebuild the snapshot or pass strict=False"
            )
        with obs.span(
            "api.densest_subgraph",
            method="snapshot",
            psi=pattern.size,
            n=graph.num_vertices,
        ):
            result = snapshot.densest_subgraph()
        if guard.CHECK:
            sanitize.check_result_density(
                graph, result.vertices, pattern.size, result.density,
                "densest_subgraph",
            )
        return result
    if method == "auto":
        method = "core-exact" if graph.num_vertices <= AUTO_EXACT_LIMIT else "core-app"

    if pattern.is_clique():
        h = pattern.size

        def clique_index() -> CliqueIndex | None:
            # built once per call, after method validation; every
            # index-aware solver below receives the same artifact
            return CliqueIndex(graph, h, workers=workers) if h >= 3 else None

        dispatch = {
            "exact": lambda: exact_densest(
                graph, h, flow_engine=flow_engine, index=clique_index(), workers=workers
            ),
            "core-exact": lambda: core_exact_densest(
                graph, h, flow_engine=flow_engine, index=clique_index(), workers=workers
            ),
            "peel": lambda: peel_densest(graph, h, index=clique_index()),
            "inc-app": lambda: inc_app_densest(graph, h, index=clique_index()),
            "core-app": lambda: core_app_densest(graph, h),
        }
    else:
        dispatch = {
            "exact": lambda: p_exact_densest(graph, pattern, flow_engine=flow_engine),
            "core-exact": lambda: core_p_exact_densest(
                graph, pattern, flow_engine=flow_engine
            ),
            "peel": lambda: pattern_peel_densest(graph, pattern),
            "inc-app": lambda: pattern_inc_app_densest(graph, pattern),
            "core-app": lambda: pattern_core_app_densest(graph, pattern),
        }
    try:
        run = dispatch[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; choose from {sorted(dispatch) + ['auto']}"
        ) from None
    with obs.span(
        "api.densest_subgraph",
        method=method,
        psi=pattern.name if not pattern.is_clique() else pattern.size,
        n=graph.num_vertices,
    ):
        try:
            result = run()
        except guard.BudgetExceeded as exc:
            # a solver without its own degradation path (the pattern
            # algorithms, or a raw parametric walk) let the budget
            # propagate: answer with the peel approximation instead
            result = _peel_fallback(
                graph,
                pattern,
                guard.degraded_stats(
                    exc, incumbent_source="none", lower=0.0, upper=float("inf")
                ),
                exc.incumbent,
                exc.incumbent_density,
            )
        else:
            if (
                result.stats.get("degraded")
                and result.stats.get("degraded_incumbent") == "none"
            ):
                # the solver degraded but never saw a feasible cut: its
                # whole-graph placeholder has no quality story, the peel
                # approximation does
                degraded_info = {
                    k: result.stats[k]
                    for k in ("degraded_at", "degraded_reason", "budget")
                    if k in result.stats
                }
                result = _peel_fallback(graph, pattern, degraded_info, None, 0.0)
    if guard.CHECK and pattern.is_clique():
        sanitize.check_result_density(
            graph, result.vertices, pattern.size, result.density, "densest_subgraph"
        )
    return result
