"""Schema validation for JSONL trace files.

A trace (as written by ``obs.enable(sink=path)`` / ``REPRO_TRACE=path``)
is one JSON object per line.  Four record types:

``meta``
    The header: ``{"type": "meta", "env": {...}, "clock": str}``.
    ``env`` must carry the fingerprint keys (python, platform, numpy,
    numba, numba_available, active_tier, kernel_tiers).
``span``
    A closed timed scope: name (str), seq (int >= 1), depth (int >= 0),
    parent (str or null), dur_s (float >= 0), optional t0_s (monotonic
    start time, float >= 0), optional worker (int >= 0, stamped on
    records merged from a worker process), optional attrs (object).
``event``
    A one-shot record: name (str), seq, depth, fields (object).  Every
    event name the package emits has an entry in :data:`EVENT_SCHEMAS`
    describing its required and optional fields -- the registry is the
    single source of truth consumed both by this validator and by the
    ``obs-coverage`` rule of :mod:`repro.analysis`, which flags any
    ``obs.event(...)`` call whose name is missing here (schema drift
    fails the lint, not a production trace read).
``summary``
    The trailer: the :meth:`repro.obs.Collector.summary` rollup keys
    (env, spans, events, counters, flow).

Hand-rolled on purpose: no jsonschema dependency, and the checks double
as executable documentation of the trace format.  CLI::

    python -m repro.obs.validate trace.jsonl
"""

from __future__ import annotations

import json
import sys
from typing import Iterable, NamedTuple

ENV_KEYS = (
    "python", "platform", "numpy", "numba", "numba_available", "active_tier",
    "kernel_tiers",
)
FLOW_MODES = ("noop", "advance", "checkpoint", "retreat", "cold")
SUMMARY_KEYS = ("env", "spans", "events", "counters", "flow", "serve")


class Field(NamedTuple):
    """One field of an event schema.

    ``kind`` is ``"str"`` / ``"number"`` / ``"int"``; ``choices``
    restricts string values; ``nonneg`` restricts numeric ones.
    """

    kind: str
    required: bool = True
    choices: tuple = ()
    nonneg: bool = False


#: Schema of every obs event the package emits, by event name.  An
#: ``obs.event("x", ...)`` call anywhere in ``repro`` without an ``"x"``
#: entry here is a lint error (``obs-coverage``): new telemetry must
#: declare its shape before it ships.
EVENT_SCHEMAS: dict[str, dict[str, Field]] = {
    # one per parametric max-flow solve (flow/parametric.py)
    "flow.solve": {
        "alpha": Field("number"),
        "mode": Field("str", choices=FLOW_MODES),
        "tier": Field("str"),
        "nodes": Field("int"),
        "arcs": Field("int"),
        "engine": Field("str", required=False),
        "seconds": Field("number", required=False, nonneg=True),
        "bfs_mode": Field("str", required=False),
        "bfs_passes": Field("int", required=False, nonneg=True),
        "augments": Field("int", required=False, nonneg=True),
        "pushes": Field("int", required=False, nonneg=True),
        "relabels": Field("int", required=False, nonneg=True),
    },
    # a cooperative budget expiring (guard/__init__.py)
    "guard.deadline": {
        "site": Field("str"),
        "reason": Field("str"),
        "elapsed_s": Field("number", nonneg=True),
        "solves": Field("int", required=False, nonneg=True),
        "rounds": Field("int", required=False, nonneg=True),
    },
    # a kernel demoted down its tier chain (accel/__init__.py)
    "accel.failover": {
        "kernel": Field("str"),
        "from_tier": Field("str"),
        "to_tier": Field("str"),
        "error": Field("str"),
    },
    # one per CliqueIndex build (cliques/index.py)
    "cliques.index": {
        "h": Field("int"),
        "n": Field("int", nonneg=True),
        "m": Field("int", nonneg=True),
        "incidence": Field("int", nonneg=True),
        "kernel": Field("str"),
        "seconds": Field("number", nonneg=True),
    },
    # one per induced-subgraph row selection (cliques/index.py)
    "cliques.subindex": {
        "h": Field("int"),
        "n": Field("int", nonneg=True),
        "m": Field("int", nonneg=True),
        "parent_m": Field("int", nonneg=True),
        "incidence": Field("int", nonneg=True),
    },
    # one per parallel fan-out batch (par/__init__.py)
    "par.batch": {
        "surface": Field("str"),
        "tasks": Field("int", nonneg=True),
        "workers": Field("int", nonneg=True),
        "failures": Field("int", nonneg=True),
        "seconds": Field("number", nonneg=True),
    },
    # a worker task retried serially in the parent (par/pool.py)
    "par.failover": {
        "task": Field("int", nonneg=True),
        "worker": Field("int", nonneg=True),
        "error": Field("str"),
    },
    # snapshot resolved from the in-memory cache tier (serve/cache.py)
    "serve.hit": {
        "key": Field("str"),
        "h": Field("int"),
    },
    # snapshot not cached anywhere: the full precompute ran (serve/cache.py)
    "serve.miss": {
        "key": Field("str"),
        "h": Field("int"),
        "seconds": Field("number", required=False, nonneg=True),
    },
    # snapshot reconstructed from the persistence tier (serve/store.py)
    "serve.load": {
        "key": Field("str"),
        "h": Field("int"),
        "seconds": Field("number", required=False, nonneg=True),
        "bytes": Field("int", required=False, nonneg=True),
    },
}


def _check(cond: bool, errors: list, lineno: int, message: str) -> None:
    if not cond:
        errors.append(f"line {lineno}: {message}")


def _check_field(
    name: str, field: Field, value, errors: list, lineno: int, context: str
) -> None:
    if field.kind == "str":
        _check(isinstance(value, str), errors, lineno, f"{context} {name} must be str")
        if field.choices:
            _check(
                value in field.choices, errors, lineno,
                f"{context} {name} must be one of {field.choices}",
            )
        return
    if field.kind == "int":
        ok = isinstance(value, int) and not isinstance(value, bool)
    else:  # "number"
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    _check(ok, errors, lineno, f"{context} {name} must be a number")
    if ok and field.nonneg:
        _check(value >= 0, errors, lineno, f"{context} {name} must be >= 0")


def _check_event_fields(name: str, fields: dict, errors: list, lineno: int) -> None:
    schema = EVENT_SCHEMAS.get(name)
    if schema is None:
        # Unknown names are tolerated at trace-read time (old readers,
        # new traces); the lint gate is what keeps the registry complete.
        return
    for fname, field in schema.items():
        if fname not in fields:
            _check(not field.required, errors, lineno, f"{name} missing {fname!r}")
            continue
        _check_field(fname, field, fields[fname], errors, lineno, name)


def validate_records(lines: Iterable[str]) -> tuple[int, list[str]]:
    """Validate trace lines; returns ``(record_count, errors)``."""
    errors: list[str] = []
    count = 0
    last_seq = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(rec, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue
        kind = rec.get("type")
        if kind == "meta":
            env = rec.get("env")
            _check(isinstance(env, dict), errors, lineno, "meta.env must be an object")
            if isinstance(env, dict):
                for key in ENV_KEYS:
                    _check(key in env, errors, lineno, f"meta.env missing {key!r}")
        elif kind == "span":
            _check(isinstance(rec.get("name"), str), errors, lineno, "span.name must be str")
            seq = rec.get("seq")
            _check(isinstance(seq, int) and seq >= 1, errors, lineno, "span.seq must be int >= 1")
            if isinstance(seq, int):
                _check(seq > last_seq, errors, lineno, "span.seq must increase")
                last_seq = max(last_seq, seq)
            depth = rec.get("depth")
            _check(
                isinstance(depth, int) and depth >= 0, errors, lineno,
                "span.depth must be int >= 0",
            )
            _check(
                rec.get("parent") is None or isinstance(rec["parent"], str),
                errors, lineno, "span.parent must be str or null",
            )
            dur = rec.get("dur_s")
            _check(
                isinstance(dur, (int, float)) and dur >= 0, errors, lineno,
                "span.dur_s must be a number >= 0",
            )
            if "t0_s" in rec:
                t0 = rec["t0_s"]
                _check(
                    isinstance(t0, (int, float)) and t0 >= 0, errors, lineno,
                    "span.t0_s must be a number >= 0",
                )
            if "worker" in rec:
                _check(
                    isinstance(rec["worker"], int) and rec["worker"] >= 0,
                    errors, lineno, "span.worker must be int >= 0",
                )
            _check(
                "attrs" not in rec or isinstance(rec["attrs"], dict),
                errors, lineno, "span.attrs must be an object",
            )
        elif kind == "event":
            name = rec.get("name")
            _check(isinstance(name, str), errors, lineno, "event.name must be str")
            seq = rec.get("seq")
            _check(isinstance(seq, int) and seq >= 1, errors, lineno, "event.seq must be int >= 1")
            if isinstance(seq, int):
                _check(seq > last_seq, errors, lineno, "event.seq must increase")
                last_seq = max(last_seq, seq)
            fields = rec.get("fields")
            _check(isinstance(fields, dict), errors, lineno, "event.fields must be an object")
            if isinstance(name, str) and isinstance(fields, dict):
                _check_event_fields(name, fields, errors, lineno)
        elif kind == "summary":
            for key in SUMMARY_KEYS:
                _check(key in rec, errors, lineno, f"summary missing {key!r}")
        else:
            errors.append(f"line {lineno}: unknown record type {kind!r}")
    if count == 0:
        errors.append("trace is empty")
    return count, errors


def validate_trace(path: str) -> tuple[int, list[str]]:
    """Validate the JSONL trace file at ``path``."""
    with open(path, encoding="utf-8") as handle:
        return validate_records(handle)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate <trace.jsonl>", file=sys.stderr)
        return 2
    count, errors = validate_trace(argv[0])
    if errors:
        for err in errors:
            print(err, file=sys.stderr)
        print(f"INVALID: {len(errors)} error(s) in {count} record(s)", file=sys.stderr)
        return 1
    print(f"OK: {count} schema-valid record(s) in {argv[0]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
