"""Schema validation for JSONL trace files.

A trace (as written by ``obs.enable(sink=path)`` / ``REPRO_TRACE=path``)
is one JSON object per line.  Four record types:

``meta``
    The header: ``{"type": "meta", "env": {...}, "clock": str}``.
    ``env`` must carry the fingerprint keys (python, platform, numpy,
    numba, numba_available, active_tier, kernel_tiers).
``span``
    A closed timed scope: name (str), seq (int >= 1), depth (int >= 0),
    parent (str or null), dur_s (float >= 0), optional attrs (object).
``event``
    A one-shot record: name (str), seq, depth, fields (object).
    ``flow.solve`` events additionally must carry alpha (number),
    mode (one of the warm modes or "cold"), tier (str), nodes / arcs
    (ints).  ``guard.deadline`` events (a budget expiring) must carry
    site / reason (str) and elapsed_s (number >= 0);
    ``accel.failover`` events (a kernel demotion) must carry kernel /
    from_tier / to_tier / error (str).
``summary``
    The trailer: the :meth:`repro.obs.Collector.summary` rollup keys
    (env, spans, events, counters, flow).

Hand-rolled on purpose: no jsonschema dependency, and the checks double
as executable documentation of the trace format.  CLI::

    python -m repro.obs.validate trace.jsonl
"""

from __future__ import annotations

import json
import sys
from typing import Iterable

ENV_KEYS = (
    "python", "platform", "numpy", "numba", "numba_available", "active_tier",
    "kernel_tiers",
)
FLOW_SOLVE_KEYS = ("alpha", "mode", "tier", "nodes", "arcs")
FLOW_MODES = ("noop", "advance", "checkpoint", "retreat", "cold")
GUARD_DEADLINE_KEYS = ("site", "reason", "elapsed_s")
FAILOVER_KEYS = ("kernel", "from_tier", "to_tier", "error")
SUMMARY_KEYS = ("env", "spans", "events", "counters", "flow")


def _check(cond: bool, errors: list, lineno: int, message: str) -> None:
    if not cond:
        errors.append(f"line {lineno}: {message}")


def validate_records(lines: Iterable[str]) -> tuple[int, list[str]]:
    """Validate trace lines; returns ``(record_count, errors)``."""
    errors: list[str] = []
    count = 0
    last_seq = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(rec, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue
        kind = rec.get("type")
        if kind == "meta":
            env = rec.get("env")
            _check(isinstance(env, dict), errors, lineno, "meta.env must be an object")
            if isinstance(env, dict):
                for key in ENV_KEYS:
                    _check(key in env, errors, lineno, f"meta.env missing {key!r}")
        elif kind == "span":
            _check(isinstance(rec.get("name"), str), errors, lineno, "span.name must be str")
            seq = rec.get("seq")
            _check(isinstance(seq, int) and seq >= 1, errors, lineno, "span.seq must be int >= 1")
            if isinstance(seq, int):
                _check(seq > last_seq, errors, lineno, "span.seq must increase")
                last_seq = max(last_seq, seq)
            depth = rec.get("depth")
            _check(
                isinstance(depth, int) and depth >= 0, errors, lineno,
                "span.depth must be int >= 0",
            )
            _check(
                rec.get("parent") is None or isinstance(rec["parent"], str),
                errors, lineno, "span.parent must be str or null",
            )
            dur = rec.get("dur_s")
            _check(
                isinstance(dur, (int, float)) and dur >= 0, errors, lineno,
                "span.dur_s must be a number >= 0",
            )
            _check(
                "attrs" not in rec or isinstance(rec["attrs"], dict),
                errors, lineno, "span.attrs must be an object",
            )
        elif kind == "event":
            _check(isinstance(rec.get("name"), str), errors, lineno, "event.name must be str")
            seq = rec.get("seq")
            _check(isinstance(seq, int) and seq >= 1, errors, lineno, "event.seq must be int >= 1")
            if isinstance(seq, int):
                _check(seq > last_seq, errors, lineno, "event.seq must increase")
                last_seq = max(last_seq, seq)
            fields = rec.get("fields")
            _check(isinstance(fields, dict), errors, lineno, "event.fields must be an object")
            if rec.get("name") == "flow.solve" and isinstance(fields, dict):
                for key in FLOW_SOLVE_KEYS:
                    _check(key in fields, errors, lineno, f"flow.solve missing {key!r}")
                _check(
                    fields.get("mode") in FLOW_MODES, errors, lineno,
                    f"flow.solve mode must be one of {FLOW_MODES}",
                )
                _check(
                    isinstance(fields.get("alpha"), (int, float)), errors, lineno,
                    "flow.solve alpha must be a number",
                )
            if rec.get("name") == "guard.deadline" and isinstance(fields, dict):
                for key in GUARD_DEADLINE_KEYS:
                    _check(key in fields, errors, lineno, f"guard.deadline missing {key!r}")
                for key in ("site", "reason"):
                    _check(
                        isinstance(fields.get(key), str), errors, lineno,
                        f"guard.deadline {key} must be str",
                    )
                elapsed = fields.get("elapsed_s")
                _check(
                    isinstance(elapsed, (int, float)) and elapsed >= 0, errors, lineno,
                    "guard.deadline elapsed_s must be a number >= 0",
                )
            if rec.get("name") == "accel.failover" and isinstance(fields, dict):
                for key in FAILOVER_KEYS:
                    _check(key in fields, errors, lineno, f"accel.failover missing {key!r}")
                    _check(
                        isinstance(fields.get(key), str), errors, lineno,
                        f"accel.failover {key} must be str",
                    )
        elif kind == "summary":
            for key in SUMMARY_KEYS:
                _check(key in rec, errors, lineno, f"summary missing {key!r}")
        else:
            errors.append(f"line {lineno}: unknown record type {kind!r}")
    if count == 0:
        errors.append("trace is empty")
    return count, errors


def validate_trace(path: str) -> tuple[int, list[str]]:
    """Validate the JSONL trace file at ``path``."""
    with open(path, encoding="utf-8") as handle:
        return validate_records(handle)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate <trace.jsonl>", file=sys.stderr)
        return 2
    count, errors = validate_trace(argv[0])
    if errors:
        for err in errors:
            print(err, file=sys.stderr)
        print(f"INVALID: {len(errors)} error(s) in {count} record(s)", file=sys.stderr)
        return 1
    print(f"OK: {count} schema-valid record(s) in {argv[0]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
