"""Solver-wide tracing & metrics -- the observability layer.

Every layer of this package (flow solvers, the accel kernel registry,
the clique index, the exact/approximate solvers, the public API)
reports what it does through this module, so a single run yields a
complete nested profile: which phases ran, how long each took, how many
max-flow solves happened at which α, warm or cold, on which accel tier,
with how many BFS/DFS or discharge passes.

Three primitives, one collector:

* :func:`span` -- a hierarchical timed scope (context manager).  Spans
  *always* time themselves with the monotonic clock (the solvers build
  their legacy ``stats`` dicts from ``span.seconds``, so the numbers in
  ``stats`` and in the trace are the same floats); recording into the
  collector / sink happens only while tracing is enabled.
* :func:`event` -- a one-shot structured record (e.g. one per max-flow
  solve).  No-op unless enabled.
* :func:`counter` -- a named monotonic counter.  No-op unless enabled.

**Overhead discipline.**  The module-level :data:`ENABLED` flag is
checked once per call; hot paths (the accel dispatchers, the per-solve
telemetry in :mod:`repro.flow.parametric`) guard *all* their
record-building behind it, so with tracing off the cost is one module
attribute read per instrumentation point (the overhead guard in
``tests/test_obs.py`` bounds it at <= 2% of a bench-smoke cell on every
accel tier).

**Enabling.**  ``obs.enable()`` in code, or the ``REPRO_TRACE``
environment variable at import: ``REPRO_TRACE=1`` turns on the
in-memory collector; any other non-empty value is taken as a file path
and additionally streams every record as JSON lines to that file
(schema in :mod:`repro.obs.validate`; the file gains a ``meta`` header
line with the environment fingerprint and a final ``summary`` line on
:func:`close`).

**Reading a trace.**  In memory: ``obs.get_collector().records`` (raw),
``obs.summary()`` (rollup: per-span totals, event counts, counters, and
the flow-solve aggregate -- warm/cold split, per-mode and per-tier solve
counts, BFS/DFS pass totals).  On disk: one JSON object per line; see
``README.md`` ("Observability") for the event-name reference.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import time
from typing import Optional, TextIO

from .. import env

__all__ = [
    "ENABLED",
    "Collector",
    "Span",
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "event",
    "counter",
    "merge_child_records",
    "detach_sink",
    "get_collector",
    "summary",
    "close",
    "env_fingerprint",
]

#: Module-level enabled flag -- the single check every instrumentation
#: point performs.  Toggle via :func:`enable` / :func:`disable` (or
#: ``REPRO_TRACE`` at import), never by assignment from outside.
ENABLED = False

#: Event name of the per-max-flow-solve record emitted by
#: :meth:`repro.flow.parametric.ParametricNetwork._solve_residual`.
FLOW_SOLVE = "flow.solve"

#: Span-event modes counted as warm in the flow rollup (everything the
#: warm-start repertoire covers; ``"cold"`` is the set_alpha reset).
WARM_MODES = ("noop", "advance", "checkpoint", "retreat")


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of ``[start, end)`` intervals."""
    total = 0.0
    cur_start = cur_end = None
    for start, end in sorted(intervals):
        if cur_end is None or start > cur_end:
            if cur_end is not None:
                total += cur_end - cur_start  # type: ignore[operator]
            cur_start, cur_end = start, end
        elif end > cur_end:
            cur_end = end
    if cur_end is not None:
        total += cur_end - cur_start  # type: ignore[operator]
    return total


class Collector:
    """In-memory trace store: ordered records plus named counters.

    ``records`` is the flat, time-ordered list of span/event dicts;
    ``counters`` maps counter name to its running total.  The
    :meth:`summary` rollup is the machine-readable per-run profile the
    benches attach to their JSON artefacts.
    """

    __slots__ = ("records", "counters", "_seq")

    def __init__(self) -> None:
        self.records: list[dict] = []
        self.counters: dict[str, int] = {}
        self._seq = 0

    def clear(self) -> None:
        self.records.clear()
        self.counters.clear()
        self._seq = 0

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def add(self, record: dict) -> None:
        self.records.append(record)
        if _sink is not None:
            _flush_meta()
            _sink.write(json.dumps(record, sort_keys=True) + "\n")

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # --- read access ---------------------------------------------------

    def spans(self, name: Optional[str] = None) -> list[dict]:
        """Span records, optionally filtered by name."""
        return [
            r for r in self.records
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> list[dict]:
        """Event records, optionally filtered by name."""
        return [
            r for r in self.records
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]

    def summary(self) -> dict:
        """Roll the raw records up into a per-run profile.

        Returns ``{"env", "spans", "events", "counters", "flow",
        "serve"}``: per-span-name call counts and total seconds,
        per-event-name counts, the counter map, the flow-solve
        aggregate (solve count, warm/cold split, per-mode / per-tier /
        per-BFS-mode counts, pass totals, total solve seconds), and the
        snapshot-cache rollup (hit/miss/load counts, evictions per
        tier, and the hit ratio ``(hits + loads) / lookups`` -- the
        serving layer's load metric; ``None`` before any lookup).

        Each span aggregate carries both ``total_s`` -- the *work*, the
        plain sum of durations -- and ``wall_s``, the length of the
        union of the ``[t0_s, t0_s + dur_s)`` intervals.  Serial traces
        never overlap, so the two coincide; when worker spans merged
        from a parallel run overlap, ``total_s`` keeps summing the work
        while ``wall_s`` reports elapsed time (the number a single
        thread of execution would have shown).  Wall-clock derivations
        (fig8, the bench tables) must read ``wall_s``.
        """
        spans: dict[str, dict] = {}
        intervals: dict[str, list[tuple[float, float]]] = {}
        events: dict[str, int] = {}
        flow = {
            "solves": 0,
            "warm": 0,
            "cold": 0,
            "modes": {},
            "tiers": {},
            "bfs_modes": {},
            "bfs_passes": 0,
            "augments": 0,
            "seconds": 0.0,
        }
        for rec in self.records:
            if rec["type"] == "span":
                agg = spans.setdefault(
                    rec["name"], {"count": 0, "total_s": 0.0, "wall_s": 0.0}
                )
                agg["count"] += 1
                agg["total_s"] += rec["dur_s"]
                if "t0_s" in rec:
                    intervals.setdefault(rec["name"], []).append(
                        (rec["t0_s"], rec["t0_s"] + rec["dur_s"])
                    )
                else:  # legacy record without a start time: count as disjoint
                    agg["wall_s"] += rec["dur_s"]
                continue
            name = rec["name"]
            events[name] = events.get(name, 0) + 1
            if name == FLOW_SOLVE:
                fields = rec["fields"]
                flow["solves"] += 1
                mode = fields.get("mode", "cold")
                flow["warm" if mode in WARM_MODES else "cold"] += 1
                flow["modes"][mode] = flow["modes"].get(mode, 0) + 1
                tier = fields.get("tier")
                if tier is not None:
                    flow["tiers"][tier] = flow["tiers"].get(tier, 0) + 1
                bfs_mode = fields.get("bfs_mode")
                if bfs_mode is not None:
                    flow["bfs_modes"][bfs_mode] = flow["bfs_modes"].get(bfs_mode, 0) + 1
                flow["bfs_passes"] += fields.get("bfs_passes", 0) or 0
                flow["augments"] += fields.get("augments", 0) or 0
                flow["seconds"] += fields.get("seconds", 0.0) or 0.0
        for name, spans_of in intervals.items():
            spans[name]["wall_s"] += _union_length(spans_of)
        counters = dict(self.counters)
        hits = counters.get("serve.hits", 0)
        misses = counters.get("serve.misses", 0)
        loads = counters.get("serve.loads", 0)
        lookups = hits + misses + loads
        serve = {
            "hits": hits,
            "misses": misses,
            "loads": loads,
            "precomputes": counters.get("serve.precomputes", 0),
            "evictions": {
                "memory": counters.get("serve.evictions.memory", 0),
                "store": counters.get("serve.evictions.store", 0),
            },
            "hit_ratio": ((hits + loads) / lookups) if lookups else None,
        }
        return {
            "env": env_fingerprint(),
            "spans": spans,
            "events": events,
            "counters": counters,
            "flow": flow,
            "serve": serve,
        }


_collector = Collector()
_stack: list[str] = []  # names of the open spans, innermost last
_sink: Optional[TextIO] = None
_sink_owned = False
_meta_pending = False  # write the meta header before the first record


def _flush_meta() -> None:
    """Write the deferred ``meta`` header line to the sink.

    Deferred (rather than written inside :func:`enable`) because with
    ``REPRO_TRACE=<path>`` enabling happens at import, when the accel
    registry the fingerprint reports may still be mid-initialisation.
    """
    global _meta_pending
    if _meta_pending and _sink is not None:
        _meta_pending = False
        _sink.write(
            json.dumps(
                {"type": "meta", "env": env_fingerprint(), "clock": "perf_counter"},
                sort_keys=True,
            )
            + "\n"
        )


class Span:
    """A timed scope.  Always measures ``seconds``; records only when
    tracing was enabled at ``__enter__``.

    Usage::

        with obs.span("exact.flow", engine="ggt") as sp:
            ...
        stats["flow_seconds"] = sp.seconds
    """

    __slots__ = ("name", "attrs", "seconds", "_t0", "_recording", "_parent")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.seconds = 0.0
        self._t0 = 0.0
        self._recording = False
        self._parent: Optional[str] = None

    def __enter__(self) -> "Span":
        if ENABLED:
            self._recording = True
            self._parent = _stack[-1] if _stack else None
            _stack.append(self.name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._t0
        if self._recording:
            # pop our own frame even if inner code misbehaved; the name
            # search tolerates spans closed out of order under exceptions
            if _stack and _stack[-1] == self.name:
                _stack.pop()
            elif self.name in _stack:  # pragma: no cover - exception paths
                _stack.remove(self.name)
            rec = {
                "type": "span",
                "name": self.name,
                "seq": _collector.next_seq(),
                "depth": len(_stack),
                "parent": self._parent,
                "t0_s": self._t0,
                "dur_s": self.seconds,
            }
            if self.attrs:
                rec["attrs"] = self.attrs
            _collector.add(rec)


def enabled() -> bool:
    """Whether tracing is currently on."""
    return ENABLED


def enable(sink: Optional[object] = None, fresh: bool = True) -> None:
    """Turn tracing on.

    Parameters
    ----------
    sink:
        Optional JSONL destination: a path (str / PathLike, opened and
        owned by this module -- :func:`close` closes it) or a file-like
        object with ``write``.  Omitted: in-memory collection only.
    fresh:
        Clear the collector first (default).  Pass ``False`` to resume
        accumulating into the existing records.
    """
    global ENABLED, _sink, _sink_owned, _meta_pending
    if fresh:
        reset()
    if sink is not None:
        if hasattr(sink, "write"):
            _sink = sink
            _sink_owned = False
        else:
            _sink = open(os.fspath(sink), "w", encoding="utf-8")
            _sink_owned = True
        _meta_pending = True
    ENABLED = True


def disable() -> None:
    """Turn tracing off (collector contents are kept until :func:`reset`)."""
    global ENABLED
    ENABLED = False
    _stack.clear()


def reset() -> None:
    """Clear the collector and the span stack (does not touch the sink)."""
    _collector.clear()
    _stack.clear()


def close() -> None:
    """Write the summary line to the sink (if any) and release it."""
    global _sink, _sink_owned, _meta_pending
    if _sink is not None:
        _flush_meta()
        _sink.write(
            json.dumps({"type": "summary", **_collector.summary()}, sort_keys=True) + "\n"
        )
        if _sink_owned:
            _sink.close()
        _sink = None
        _sink_owned = False
        _meta_pending = False


def detach_sink() -> None:
    """Drop the JSONL sink without writing the summary trailer.

    Called in forked worker processes (:mod:`repro.par`): the sink file
    handle inherited from the parent must not receive writes from two
    processes, so a worker detaches it before touching the collector.
    The parent's handle is unaffected -- only this process's reference
    is dropped, and the file itself stays open in the parent.
    """
    global _sink, _sink_owned, _meta_pending
    _sink = None
    _sink_owned = False
    _meta_pending = False


def get_collector() -> Collector:
    """The module's collector (a process-wide singleton)."""
    return _collector


def summary() -> dict:
    """Shortcut for ``get_collector().summary()``."""
    return _collector.summary()


def span(name: str, **attrs) -> Span:
    """A new :class:`Span`; enter it with ``with``."""
    return Span(name, attrs)


def event(name: str, **fields) -> None:
    """Record a one-shot structured event (no-op unless enabled)."""
    if not ENABLED:
        return
    _collector.add(
        {
            "type": "event",
            "name": name,
            "seq": _collector.next_seq(),
            "depth": len(_stack),
            "fields": fields,
        }
    )


def counter(name: str, n: int = 1) -> None:
    """Increment a named counter (no-op unless enabled)."""
    if ENABLED:
        _collector.inc(name, n)


def merge_child_records(
    records: list[dict], counters: dict[str, int], worker: int
) -> None:
    """Fold a worker process's trace into the parent collector.

    Each record is re-stamped with a fresh parent ``seq`` (the schema
    requires strictly increasing sequence numbers per stream) and tagged
    with the originating ``worker`` id; counters accumulate into the
    parent's.  Span ``t0_s`` values are ``perf_counter`` readings, which
    on Linux is CLOCK_MONOTONIC -- system-wide, so parent and worker
    timestamps share one timeline and :meth:`Collector.summary`'s
    ``wall_s`` interval union is meaningful across them.  No-op unless
    tracing is enabled.
    """
    if not ENABLED:
        return
    for rec in records:
        merged = dict(rec)
        merged["seq"] = _collector.next_seq()
        merged["worker"] = worker
        _collector.add(merged)
    for name, n in counters.items():
        _collector.inc(name, n)


def env_fingerprint() -> dict:
    """The run environment, for cross-run comparability of artefacts.

    Python version and platform, numpy / numba importability (with
    versions; respects the ``REPRO_NO_*`` opt-outs, so it reports what
    the *solvers* see, not what pip installed), whether the numba tier
    is actually jitted, and the active accel tier with its per-kernel
    resolution.
    """
    import platform

    fp: dict = {
        "python": platform.python_version(),
        "platform": sys.platform,
    }
    from .. import accel  # late: accel itself imports this module

    np_mod = getattr(accel, "np", None)
    numba_mod = getattr(accel, "numba", None)
    fp["numpy"] = getattr(np_mod, "__version__", None) if np_mod is not None else None
    fp["numba"] = getattr(numba_mod, "__version__", None) if numba_mod is not None else None
    fp["numba_available"] = getattr(accel, "NUMBA_JITTED", False)
    fp["active_tier"] = getattr(accel, "TIER", None)
    fp["kernel_tiers"] = dict(getattr(accel, "KERNEL_TIERS", {}))
    return fp


# --- REPRO_TRACE: configure at import --------------------------------

_env_value = env.text("REPRO_TRACE")
if _env_value:
    if _env_value.lower() in ("1", "true", "yes", "on"):
        enable()
    else:
        enable(sink=_env_value)
        atexit.register(close)
