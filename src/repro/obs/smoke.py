"""Trace smoke test: run traced solves, validate the JSONL trace.

The ``make trace-smoke`` entry point (CI runs it too).  Solves a small
but non-trivial workload -- Exact and CoreExact, edge and triangle
densities, all three flow engines -- with tracing streamed to a JSONL
file, then validates every record against the schema in
:mod:`repro.obs.validate` and prints the per-phase rollup.  Exits
non-zero on any schema error, on a trace with no ``flow.solve``
events, or when the legacy ``stats`` timings stop reconciling with the
span durations (they are built from the same floats, so the comparison
is exact equality).

Usage::

    python -m repro.obs.smoke [out/trace_smoke.jsonl]
"""

from __future__ import annotations

import json
import os
import random
import sys

from .. import api, obs
from ..graph.graph import Graph
from .validate import validate_trace


def _workload_graph(n: int = 80, m: int = 400, seed: int = 7) -> Graph:
    """A reproducible random graph dense enough to exercise warm starts."""
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph(sorted(edges))


def run(path: str) -> int:
    """Run the traced workload, validate ``path``, print the rollup."""
    graph = _workload_graph()
    obs.enable(sink=path)

    failures: list[str] = []
    for method in ("exact", "core-exact"):
        for h in (2, 3):
            for engine in ("ggt", "reuse", "rebuild"):
                result = api.densest_subgraph(
                    graph, h, method=method, flow_engine=engine
                )
                stats = result.stats
                # stats are built from span.seconds, so the last span of
                # each phase must carry exactly the stats float.
                sp = obs.get_collector().spans(
                    f"{method.replace('-', '_')}.flow"
                )
                if sp and "flow_seconds" in stats:
                    if sp[-1]["dur_s"] != stats["flow_seconds"]:
                        failures.append(
                            f"{method} h={h} {engine}: flow span "
                            f"{sp[-1]['dur_s']} != stats {stats['flow_seconds']}"
                        )

    rollup = obs.summary()
    obs.close()
    obs.disable()

    count, errors = validate_trace(path)
    flow = rollup["flow"]

    print(f"trace: {path} ({count} records)")
    print(f"flow solves: {flow['solves']} "
          f"(warm {flow['warm']} / cold {flow['cold']}; modes {flow['modes']})")
    print("phase rollup:")
    for name, agg in sorted(rollup["spans"].items()):
        print(f"  {name:28s} x{agg['count']:<4d} {agg['total_s'] * 1e3:9.2f} ms")
    print(f"counters: {json.dumps(rollup['counters'], sort_keys=True)}")

    ok = True
    if errors:
        ok = False
        for err in errors:
            print(f"SCHEMA ERROR: {err}", file=sys.stderr)
    if flow["solves"] == 0:
        ok = False
        print("ERROR: no flow.solve events in the trace", file=sys.stderr)
    if flow["warm"] == 0:
        ok = False
        print("ERROR: no warm-started solves in the trace", file=sys.stderr)
    for failure in failures:
        ok = False
        print(f"STATS MISMATCH: {failure}", file=sys.stderr)
    print("trace-smoke: OK" if ok else "trace-smoke: FAILED")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    path = argv[0] if argv else "benchmarks/out/trace_smoke.jsonl"
    out_dir = os.path.dirname(path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    return run(path)


if __name__ == "__main__":
    raise SystemExit(main())
