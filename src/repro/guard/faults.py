"""Deterministic fault injection for the accel kernel registry.

Failover code that only runs when a kernel actually crashes is failover
code that never runs in CI.  This module makes kernel failures a
first-class, *reproducible* input: a fault plan names a kernel and the
exact call number at which its next invocation must raise
:class:`InjectedFault`, and the accel dispatchers consult the plan
immediately before every kernel call.  Because the plan fires on exact
call counts (not timers or randomness), a failing chaos run replays
bit-identically.

Two ways to arm a plan:

* ``REPRO_FAULT=<kernel>:<nth>[,<kernel>:<nth>...]`` in the environment
  (parsed at import, so it works for subprocesses and CI legs), e.g.
  ``REPRO_FAULT=dinic:3`` fails the third dinic kernel call of the
  process;
* programmatically via :func:`inject` / :func:`reset` (what the tests
  and ``make chaos-smoke`` use).

Call counting starts when the plan is armed: the dispatchers skip the
counting entirely while :data:`ARMED` is false, so an un-faulted
process pays one module-attribute read per kernel call and nothing
else.
"""

from __future__ import annotations

from .. import env


class InjectedFault(RuntimeError):
    """The failure :func:`maybe_raise` injects on a planned call."""


#: Fast-path flag the dispatchers read before anything else; true iff a
#: fault plan is loaded (fired or not).
ARMED = False

_plan: dict[str, set[int]] = {}  # kernel -> call numbers that must fail
_calls: dict[str, int] = {}  # kernel -> calls counted since arming
_fired: list[dict] = []  # what actually fired, in order


def inject(kernel: str, nth: int = 1) -> None:
    """Arm a fault: the ``nth`` call of ``kernel`` (1-based) raises."""
    global ARMED
    if nth < 1:
        raise ValueError(f"fault call number must be >= 1, got {nth}")
    _plan.setdefault(kernel, set()).add(nth)
    ARMED = True


def reset() -> None:
    """Drop the plan, the call counters, and the fired log."""
    global ARMED
    _plan.clear()
    _calls.clear()
    _fired.clear()
    ARMED = False


def parse(spec: str) -> None:
    """Arm every fault in a ``<kernel>:<nth>[,...]`` spec string."""
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        kernel, sep, nth = part.partition(":")
        if not sep or not kernel:
            raise ValueError(
                f"bad REPRO_FAULT entry {part!r}: expected <kernel>:<nth>"
            )
        try:
            n = int(nth)
        except ValueError:
            raise ValueError(
                f"bad REPRO_FAULT entry {part!r}: call number must be an int"
            ) from None
        inject(kernel, n)


def maybe_raise(kernel: str, tier: str) -> None:
    """Count one ``kernel`` call on ``tier``; raise if the plan says so.

    Called by the accel dispatchers right before the kernel runs, so an
    injected fault never leaves half-mutated arrays behind.
    """
    if not ARMED:
        return
    n = _calls.get(kernel, 0) + 1
    _calls[kernel] = n
    if n in _plan.get(kernel, ()):
        _fired.append({"kernel": kernel, "call": n, "tier": tier})
        raise InjectedFault(
            f"injected failure: kernel {kernel!r} call #{n} on tier {tier!r}"
        )


def fired() -> list[dict]:
    """Copy of the faults that actually fired (kernel, call, tier)."""
    return list(_fired)


_env_spec = env.text("REPRO_FAULT")
if _env_spec:
    parse(_env_spec)
