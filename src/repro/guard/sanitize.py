"""Invariant sanitizer: turn silent wrong answers into loud ones.

Enabled by ``REPRO_CHECK=1`` (or :func:`repro.guard.enable_checks`),
this module re-derives the mathematical invariants a correct solve must
satisfy and raises :class:`SanitizerError` on any violation:

* **Flow state** (after every max-flow solve): non-negative residuals,
  per-node flow conservation, capacity feasibility of every arc,
  residual consistency (``cap - residual == flow`` on finite arcs), the
  sink unreachable in the residual graph, no infinite arc crossing the
  cut, and **max-flow value == min-cut capacity** recomputed from the
  original capacities (for a parametric network, ``base + coeff * α``)
  -- the duality that certifies the cut, and through Lemma 14 the
  density verdict, exact.
* **Peel monotonicity** (per peel round): the live-instance count never
  increases and exactly one vertex leaves per round.
* **Result density** (at the solver/api boundary): the reported density
  equals ``μ(S) / |S|`` recomputed from scratch on the returned vertex
  set -- both sides divide the same two integers, so the check is
  float-exact.

The checks are pure readers: they never mutate solver state, so a suite
run under ``REPRO_CHECK=1`` computes bit-identical answers.  Cost is
O(V + E) per solve -- fine for CI, not for production; the disabled
path is one module-flag read.
"""

from __future__ import annotations

import math

from ..flow.network import source_reachable

#: Absolute/relative tolerance for the float checks.  The engines work
#: in IEEE doubles on capacities that are small integer combinations of
#: degrees, so real violations overshoot this by orders of magnitude.
TOL = 1e-6


class SanitizerError(AssertionError):
    """An invariant the solver stack must maintain was violated."""


def _fail(context: str, message: str) -> None:
    raise SanitizerError(f"[{context}] {message}")


def _check_flow_state(source, sink, head, cap, orig, adj_start, adj_arcs, context):
    """Core invariant battery over a residual flow state.

    ``orig[a]`` is the original capacity of arc ``a`` at the solved
    parameter value (reverse arcs carry 0 in every builder; ``inf`` is
    allowed on forward arcs).
    """
    n = len(adj_start) - 1
    excess = [0.0] * n
    absflow = [0.0] * n
    for a in range(0, len(head), 2):
        r_fwd, r_rev = cap[a], cap[a ^ 1]
        if r_fwd < -TOL or r_rev < -TOL:
            _fail(context, f"negative residual on arc pair {a}: ({r_fwd}, {r_rev})")
        c = orig[a]
        flow = r_rev  # reverse residual == flow pushed on the forward arc
        if not math.isinf(c):
            scale = TOL * (1.0 + abs(c))
            if flow > c + scale:
                _fail(context, f"arc {a}: flow {flow} exceeds capacity {c}")
            if abs((c - r_fwd) - flow) > scale:
                _fail(
                    context,
                    f"arc {a}: residual {r_fwd} inconsistent with capacity {c} "
                    f"and flow {flow}",
                )
        v, u = head[a], head[a ^ 1]
        excess[v] += flow
        excess[u] -= flow
        absflow[v] += abs(flow)
        absflow[u] += abs(flow)
    for node in range(n):
        if node in (source, sink):
            continue
        if abs(excess[node]) > TOL * (1.0 + absflow[node]):
            _fail(context, f"flow conservation violated at node {node}: excess {excess[node]}")

    seen = source_reachable(head, cap, adj_start, adj_arcs, source)
    if seen[sink]:
        _fail(context, "sink reachable in the residual graph: not a max flow")
    cut_capacity = 0.0
    for a in range(0, len(head), 2):
        if seen[head[a ^ 1]] and not seen[head[a]]:
            if math.isinf(orig[a]):
                _fail(context, f"infinite-capacity arc {a} crosses the min cut")
            cut_capacity += orig[a]
    value = -excess[source]  # excess(source) = inflow - outflow = -|f|
    if abs(value - cut_capacity) > TOL * (1.0 + abs(cut_capacity)):
        _fail(
            context,
            f"max-flow value {value} != min-cut capacity {cut_capacity} "
            "(duality violated)",
        )


def check_parametric(net) -> None:
    """Validate a solved :class:`~repro.flow.parametric.ParametricNetwork`.

    Must be called on the *plain* (un-cancelled) residual state --
    ``_solve_residual`` calls it right after its ``_uncancel``.
    """
    alpha = net._alpha
    orig = list(net.base_cap)
    for a, c in zip(net.alpha_arcs, net.alpha_coeff):
        orig[a] = net.base_cap[a] + c * alpha
    _check_flow_state(
        net.source, net.sink, net.head, net.cap, orig,
        net.adj_start, net.adj_arcs, f"parametric solve at alpha={alpha}",
    )


def check_flow_network(network) -> None:
    """Validate a solved one-shot :class:`~repro.flow.network.FlowNetwork`.

    One-shot networks start from zero flow, so each forward arc's
    original capacity is recoverable as ``residual + reverse-residual``
    (infinite arcs keep their infinite residual).
    """
    source, sink, head, cap, adj_start, adj_arcs = network.flow_arrays()
    orig = [0.0] * len(head)
    for a in range(0, len(head), 2):
        orig[a] = cap[a] if math.isinf(cap[a]) else cap[a] + cap[a ^ 1]
    _check_flow_state(source, sink, head, cap, orig, adj_start, adj_arcs, "flow network solve")


def check_peel_round(prev_num_alive: int, num_alive: int, context: str = "peel") -> None:
    """Peel monotonicity: live instances never increase across a round."""
    if num_alive > prev_num_alive:
        _fail(
            context,
            f"live instance count increased across a peel round: "
            f"{prev_num_alive} -> {num_alive}",
        )


def check_result_density(graph, vertices, h: int, density: float, where: str) -> None:
    """Recompute ``μ(S)/|S|`` from scratch and demand float-exact agreement."""
    if not vertices:
        if density != 0.0:
            _fail(where, f"empty vertex set reported with density {density}")
        return
    sub = graph.subgraph(vertices)
    if sub.num_vertices != len(vertices):
        _fail(where, "returned vertex set is not a subset of the graph")
    if h == 2:
        mu = sub.num_edges
    else:
        from ..cliques.index import CliqueIndex  # late: keep guard import-light

        mu = CliqueIndex(sub, h).m
    expect = mu / len(vertices)
    if expect != density and abs(expect - density) > 1e-12 * (1.0 + expect):
        _fail(
            where,
            f"reported density {density} != recomputed {expect} "
            f"(mu={mu}, |S|={len(vertices)}, h={h})",
        )
