"""Solver resilience layer: budgets, degradation, failover, sanitizing.

The solvers in this package are exact algorithms with unbounded worst
cases: a hostile graph can hold one :func:`~repro.api.densest_subgraph`
call in flow solves indefinitely, a crashing accel kernel kills the
whole request, and silently malformed input produces silently wrong
densities.  This package is the containment layer the serving tentpole
builds on.  Four pieces:

**Budgets** (:class:`Budget`).  A context manager installing a
cooperative budget -- wall-clock deadline, max flow solves, max network
size -- that the solvers check at the instrumentation points the obs
layer already owns: one flag test per flow solve and per peel round.
On expiry the checkpoint raises :class:`BudgetExceeded`; the solvers
catch it and **degrade instead of failing**: Exact returns its best
breakpoint-walk incumbent, CoreExact the densest pruned-core incumbent,
peel its best residual subgraph so far, and the api falls back to the
peel ``1/h``-approximation when the exact search died before producing
any cut.  Every degraded result carries ``stats["degraded"]`` with the
site, the recomputed density lower bound, a sound upper bound, and the
budget post-mortem; a ``guard.deadline`` obs event records where the
budget died.  Disabled cost is one module-attribute read per
checkpoint, same discipline as ``obs.ENABLED``.

**Tier failover** (:mod:`repro.accel`).  The kernel dispatchers retry a
raising kernel on the next tier down (numba -> numpy -> pure), demote
that kernel for the process, and emit ``accel.failover`` counters and
events.  Results stay bit-identical because the tiers already are.

**Fault injection** (:mod:`repro.guard.faults`).  ``REPRO_FAULT=
<kernel>:<nth>`` makes the ``nth`` call of a kernel raise, so the
failover and degradation paths above are CI-tested, not theorized.
``make chaos-smoke`` drives the scenarios.

**Invariant sanitizer** (:mod:`repro.guard.sanitize`).  ``REPRO_CHECK=1``
(or :func:`enable_checks`) validates flow conservation, capacity
feasibility and the max-flow/min-cut duality after every solve, plus
peel monotonicity and final-result density recomputation -- silent
wrong answers become loud ones.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from .. import env, obs
from . import faults
from .sanitize import SanitizerError

__all__ = [
    "Budget",
    "BudgetExceeded",
    "SanitizerError",
    "current",
    "suspended",
    "enable_checks",
    "disable_checks",
    "degraded_stats",
    "faults",
]

#: The installed budget (or None).  Solvers read this once per
#: checkpoint -- the entire disabled-mode cost of the deadline layer.
ACTIVE: Optional["Budget"] = None

#: Whether the invariant sanitizer runs after each solve.  Seeded from
#: ``REPRO_CHECK`` at import; flip at runtime with
#: :func:`enable_checks` / :func:`disable_checks`.
CHECK = False

#: Event name for budget expiry (schema in :mod:`repro.obs.validate`).
GUARD_DEADLINE = "guard.deadline"


class BudgetExceeded(RuntimeError):
    """Raised at a cooperative checkpoint when the active budget is spent.

    Solver layers that hold a partial answer catch this on the way up,
    attach it via :meth:`attach_incumbent` (innermost attachment wins:
    it is the most refined), and re-raise; the top-level solver turns
    the exception into a degraded result.
    """

    def __init__(self, site: str, reason: str, budget: "Budget"):
        super().__init__(f"budget exhausted at {site}: {reason}")
        self.site = site
        self.reason = reason
        self.budget = budget
        self.incumbent: Optional[set] = None
        self.incumbent_density: float = 0.0

    def attach_incumbent(self, vertices: Optional[set], density: float) -> None:
        """Record the best feasible subgraph known at the raise site."""
        if self.incumbent is None and vertices:
            self.incumbent = set(vertices)
            self.incumbent_density = density


class Budget:
    """Cooperative resource budget for a block of solver work.

    Parameters
    ----------
    deadline_s:
        Wall-clock allowance in seconds (monotonic clock), checked at
        every flow solve and peel round.
    max_solves:
        Maximum number of max-flow solves.
    max_arcs:
        Largest flow network (forward-arc count) the budget permits; a
        solve on a bigger network expires the budget *before* running,
        so a request degrades instead of attempting work it was sized
        against.

    All limits are optional and combine with AND-of-violations (the
    first one hit expires the budget).  Budgets nest: the innermost
    installed budget is the one checked, and the outer one is restored
    on exit.  Once expired, a budget stays expired -- later checkpoints
    under it re-raise immediately.
    """

    __slots__ = (
        "deadline_s", "max_solves", "max_arcs",
        "started", "_deadline_at", "solves", "rounds", "expired", "_prev",
    )

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        max_solves: Optional[int] = None,
        max_arcs: Optional[int] = None,
    ):
        if deadline_s is not None and deadline_s < 0:
            raise ValueError(f"deadline_s must be >= 0, got {deadline_s}")
        if max_solves is not None and max_solves < 0:
            raise ValueError(f"max_solves must be >= 0, got {max_solves}")
        if max_arcs is not None and max_arcs < 0:
            raise ValueError(f"max_arcs must be >= 0, got {max_arcs}")
        if deadline_s is None and max_solves is None and max_arcs is None:
            raise ValueError("Budget needs at least one limit")
        self.deadline_s = deadline_s
        self.max_solves = max_solves
        self.max_arcs = max_arcs
        self.started = 0.0
        self._deadline_at = math.inf
        self.solves = 0
        self.rounds = 0
        self.expired: Optional[tuple[str, str]] = None
        self._prev: Optional[Budget] = None

    def __enter__(self) -> "Budget":
        global ACTIVE
        self.started = time.monotonic()
        if self.deadline_s is not None:
            self._deadline_at = self.started + self.deadline_s
        self.solves = 0
        self.rounds = 0
        self.expired = None
        self._prev = ACTIVE
        ACTIVE = self
        return self

    def __exit__(self, *exc_info) -> None:
        global ACTIVE
        ACTIVE = self._prev
        self._prev = None

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def _expire(self, site: str, reason: str) -> None:
        self.expired = (site, reason)
        if obs.ENABLED:
            obs.event(
                GUARD_DEADLINE,
                site=site,
                reason=reason,
                elapsed_s=self.elapsed(),
                solves=self.solves,
                rounds=self.rounds,
            )
            obs.counter("guard.expired")
        raise BudgetExceeded(site, reason, self)

    def tick_solve(self, arcs: int, site: str = "flow.solve") -> None:
        """Checkpoint before a max-flow solve on an ``arcs``-arc network."""
        if self.expired is not None:
            raise BudgetExceeded(self.expired[0], self.expired[1], self)
        if self.max_arcs is not None and arcs > self.max_arcs:
            self._expire(site, f"network of {arcs} arcs exceeds max_arcs={self.max_arcs}")
        self.solves += 1
        if self.max_solves is not None and self.solves > self.max_solves:
            self._expire(site, f"solve #{self.solves} exceeds max_solves={self.max_solves}")
        if time.monotonic() >= self._deadline_at:
            self._expire(site, f"deadline_s={self.deadline_s} elapsed")

    def tick_round(self, site: str = "peel.round") -> None:
        """Checkpoint at a peel-round boundary (deadline only)."""
        if self.expired is not None:
            raise BudgetExceeded(self.expired[0], self.expired[1], self)
        self.rounds += 1
        if time.monotonic() >= self._deadline_at:
            self._expire(site, f"deadline_s={self.deadline_s} elapsed")

    def remaining_limits(self) -> Optional[dict]:
        """The unspent portion of each limit, for a worker-process budget.

        The parallel layer cannot share this object across processes, so
        each worker installs its own :class:`Budget` built from what the
        parent has left: remaining wall-clock (never negative), the
        remaining solve allowance, and ``max_arcs`` unchanged (it bounds
        single networks, not cumulative work).  Returns ``None`` when
        the budget somehow has no finite limit left to propagate.
        """
        limits: dict = {}
        if self.deadline_s is not None:
            limits["deadline_s"] = max(0.0, self._deadline_at - time.monotonic())
        if self.max_solves is not None:
            limits["max_solves"] = max(0, self.max_solves - self.solves)
        if self.max_arcs is not None:
            limits["max_arcs"] = self.max_arcs
        return limits or None

    def absorb_child(self, solves: int, rounds: int = 0) -> None:
        """Fold a worker budget's consumption into this budget's tallies.

        Keeps the parent's post-mortem (:meth:`snapshot`) and its
        ``max_solves`` accounting truthful under fan-out: work done in
        workers counts against the parent exactly as if it ran inline.
        Deliberately does *not* expire the parent -- expiry decisions
        ride back as explicit degraded outcomes (:meth:`adopt_expiry`).
        """
        self.solves += solves
        self.rounds += rounds

    def adopt_expiry(self, site: str, reason: str) -> None:
        """Mark this budget expired on behalf of a worker that expired.

        A worker's :class:`BudgetExceeded` carries the worker-side
        budget object, which the parent's solvers do not hold; the
        parent adopts the expiry into *its* budget so the post-mortem in
        ``stats["budget"]`` describes the request's budget and later
        checkpoints re-raise immediately, same as a local expiry.
        """
        if self.expired is None:
            self.expired = (site, reason)
            if obs.ENABLED:
                obs.event(
                    GUARD_DEADLINE,
                    site=site,
                    reason=reason,
                    elapsed_s=self.elapsed(),
                    solves=self.solves,
                    rounds=self.rounds,
                )
                obs.counter("guard.expired")

    def snapshot(self) -> dict:
        """Post-mortem dict for ``stats["budget"]`` of a degraded result."""
        return {
            "deadline_s": self.deadline_s,
            "max_solves": self.max_solves,
            "max_arcs": self.max_arcs,
            "elapsed_s": self.elapsed(),
            "solves": self.solves,
            "rounds": self.rounds,
            "expired": self.expired is not None,
            "expired_site": self.expired[0] if self.expired else None,
            "expired_reason": self.expired[1] if self.expired else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Budget(deadline_s={self.deadline_s}, max_solves={self.max_solves}, "
            f"max_arcs={self.max_arcs}, expired={self.expired})"
        )


def current() -> Optional[Budget]:
    """The installed budget, if any."""
    return ACTIVE


class suspended:
    """Context manager masking the active budget inside its block.

    Used by the api's degradation fallback: the cheap peel pass that
    replaces a budget-killed exact solve must itself run to completion,
    or degradation could recurse forever.
    """

    __slots__ = ("_prev",)

    def __enter__(self) -> None:
        global ACTIVE
        self._prev = ACTIVE
        ACTIVE = None

    def __exit__(self, *exc_info) -> None:
        global ACTIVE
        ACTIVE = self._prev


def enable_checks() -> None:
    """Turn the invariant sanitizer on (same effect as ``REPRO_CHECK=1``)."""
    global CHECK
    CHECK = True


def disable_checks() -> None:
    global CHECK
    CHECK = False


def degraded_stats(
    exc: BudgetExceeded,
    *,
    incumbent_source: str,
    lower: float,
    upper: Optional[float],
) -> dict:
    """Uniform ``stats`` annotation for a budget-degraded result.

    ``lower`` is the returned subgraph's (exact, recomputable) density;
    ``upper`` a sound bound on the true optimum -- together they bracket
    how far the degraded answer can be from optimal.
    """
    return {
        "degraded": True,
        "degraded_at": exc.site,
        "degraded_reason": exc.reason,
        "degraded_incumbent": incumbent_source,
        "density_lower_bound": lower,
        "density_upper_bound": upper,
        "budget": exc.budget.snapshot(),
    }


if env.switch("REPRO_CHECK"):
    CHECK = True
