"""Chaos smoke: exercise the resilience layer end to end.

Runs a battery of fault-injection, budget-degradation, and sanitizer
scenarios against small random graphs and exits non-zero if any
contract is violated::

    python -m repro.guard.chaos        # or: make chaos-smoke

Scenarios
---------
* every accel kernel that has a fallback tier on this interpreter is
  made to fail (``guard.faults``) mid-run; the run must complete with a
  bit-identical result, a demotion in ``accel.failover_log()``, and the
  ``accel.failover`` counter;
* exhausting a kernel's whole chain must surface the injected fault to
  the caller (no silent wrong answer);
* a dead deadline and a one-solve budget must both yield degraded
  results whose ``stats`` carry a verifiable density bracket, and the
  API fallback must honour the peel 1/h bound;
* the invariant sanitizer must stay silent on healthy solves.

Everything is restored in a ``finally`` (registry rebuild, fault plan
reset, checks off), so the process is reusable afterwards.
"""

from __future__ import annotations

import random
import sys
import warnings

from .. import accel, guard, obs
from ..core.clique_core import clique_core_decomposition
from ..core.core_exact import core_exact_densest
from ..core.exact import exact_densest
from ..core.peel import peel_densest
from ..flow import push_relabel
from ..flow.builders import build_eds_parametric
from ..graph.graph import Graph
from . import faults

FAILURES: list[str] = []


def _scenario(name: str, ok: bool, detail: str = "") -> None:
    status = "ok" if ok else "FAIL"
    line = f"[{status}] {name}" + (f": {detail}" if detail else "")
    print(line)
    if not ok:
        FAILURES.append(line)


def _random_graph(n: int = 60, m: int = 300, seed: int = 11) -> Graph:
    rng = random.Random(seed)
    g = Graph()
    while g.num_edges < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    return g


def _reset() -> None:
    faults.reset()
    accel.select_tier(accel.TIER)  # rebuild: clears demotions + failover log


# --- per-kernel drive functions (clean vs faulted comparable output) --


def _drive_dinic(g: Graph):
    r = exact_densest(g, 2, flow_engine="ggt")
    return (frozenset(r.vertices), r.density)


def _drive_push_relabel(g: Graph):
    net = build_eds_parametric(g)
    return frozenset(net.solve(g.num_edges / (2.0 * g.num_vertices), push_relabel))


def _drive_ggt_retreat(g: Graph):
    net = build_eds_parametric(g)
    hi = net.solve(2.0)
    lo = net.solve(0.5)  # decreasing alpha: the retreat/drain path
    return (frozenset(hi), frozenset(lo))


def _drive_bucket_peel(g: Graph):
    r = clique_core_decomposition(g, 2)
    return (tuple(sorted(r.core.items())), frozenset(r.best_residual_vertices))


def _drive_heap_peel(g: Graph):
    r = peel_densest(g, 2)
    return (frozenset(r.vertices), r.density)


DRIVERS = {
    "dinic": _drive_dinic,
    "push_relabel": _drive_push_relabel,
    "ggt_retreat": _drive_ggt_retreat,
    "bucket_peel": _drive_bucket_peel,
    "heap_peel": _drive_heap_peel,
}


def run() -> int:
    g = _random_graph()
    was_checking = guard.CHECK
    try:
        # ---- kernel failover: inject, complete, compare -------------
        for kernel, drive in DRIVERS.items():
            chain = accel.kernel_chain(kernel)
            if accel.get(kernel) is None or len(chain) < 2:
                _scenario(f"failover.{kernel}", True, f"skipped (chain={chain})")
                continue
            _reset()
            clean = drive(g)
            _reset()
            faults.inject(kernel, nth=1)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                faulted = drive(g)
            log = accel.failover_log()
            _scenario(
                f"failover.{kernel}",
                faulted == clean
                and len(log) == 1
                and log[0]["kernel"] == kernel
                and log[0]["from_tier"] == chain[0]
                and len(faults.fired()) == 1,
                f"{chain[0]} -> {accel.kernel_tiers()[kernel]}",
            )
            _reset()

        # ---- chain exhaustion: the fault must surface ---------------
        chain = accel.kernel_chain("dinic")
        _reset()
        for nth in range(1, len(chain) + 1):
            faults.inject("dinic", nth=nth)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                _drive_dinic(g)
            _scenario("exhaustion.dinic", False, "injected fault was swallowed")
        except faults.InjectedFault:
            _scenario("exhaustion.dinic", True, f"surfaced after {len(chain)} tiers")
        _reset()

        # ---- budget degradation -------------------------------------
        from ..api import densest_subgraph

        clean = densest_subgraph(g, 2, method="exact")
        with guard.Budget(deadline_s=0.0):
            r = densest_subgraph(g, 2, method="exact")
        ok = (
            r.stats.get("degraded") is True
            and r.stats["density_lower_bound"] - 1e-9
            <= clean.density
            <= r.stats["density_upper_bound"] + 1e-9
            and r.density >= clean.density / 2.0 - 1e-9  # peel 1/h bound, h=2
        )
        _scenario("budget.deadline", ok, f"incumbent={r.stats.get('degraded_incumbent')}")

        with guard.Budget(max_solves=2):
            r = core_exact_densest(g, 2)
        ok = not r.stats.get("degraded") or (
            r.stats["density_lower_bound"] - 1e-9
            <= clean.density
            <= r.stats["density_upper_bound"] + 1e-9
        )
        _scenario(
            "budget.max_solves",
            ok,
            "degraded" if r.stats.get("degraded") else "finished within budget",
        )

        # ---- sanitizer: silent on healthy solves --------------------
        guard.enable_checks()
        try:
            core_exact_densest(g, 2)
            peel_densest(_random_graph(seed=12), 2)
            exact_densest(_random_graph(seed=13), 3, flow_engine="rebuild")
            _scenario("sanitizer.healthy", True)
        except guard.SanitizerError as exc:
            _scenario("sanitizer.healthy", False, str(exc))
        finally:
            if not was_checking:
                guard.disable_checks()
    finally:
        faults.reset()
        accel.select_tier(accel.TIER)
        if was_checking:
            guard.enable_checks()

    if FAILURES:
        print(f"\nCHAOS SMOKE FAILED: {len(FAILURES)} scenario(s)", file=sys.stderr)
        return 1
    print("\nchaos smoke passed")
    return 0


def main() -> int:
    if obs.ENABLED:  # keep the smoke's counters out of a live trace
        print("warning: tracing enabled; chaos counters will land in the trace")
    return run()


if __name__ == "__main__":
    raise SystemExit(main())
