"""Flow-network representation used by the exact DSD algorithms.

A :class:`FlowNetwork` is a directed graph with float capacities, a
distinguished source ``s`` and sink ``t``, stored as arc arrays with the
usual paired reverse-arc layout so residual updates are O(1).

Capacities may be ``float('inf')`` (the Ψ→v arcs of Algorithm 1).  The
binary-search guesses ``α`` are reals, so all solvers work on floats
with an explicit epsilon discipline; at the scale of this reproduction
the accumulated error stays far below the ``1/(n(n-1))`` density
resolution that terminates the search (Lemma 12).
"""

from __future__ import annotations

import math
from typing import Hashable

Node = Hashable

#: Capacity below which an arc is treated as saturated / absent.
EPS = 1e-9


class FlowNetwork:
    """Directed flow network with paired residual arcs.

    Nodes are arbitrary hashables registered on first use.  ``add_arc``
    creates a forward arc with the given capacity and a reverse arc with
    capacity 0; parallel arcs are allowed (capacities effectively add).
    """

    def __init__(self, source: Node, sink: Node):
        self.source = source
        self.sink = sink
        self._ids: dict[Node, int] = {}
        self._nodes: list[Node] = []
        # arc arrays: to[i], cap[i]; arc i^1 is the reverse of arc i
        self.head: list[int] = []
        self.cap: list[float] = []
        self.adj: list[list[int]] = []
        self.node_id(source)
        self.node_id(sink)

    def node_id(self, node: Node) -> int:
        """Integer id of ``node``, registering it if new."""
        nid = self._ids.get(node)
        if nid is None:
            nid = len(self._nodes)
            self._ids[node] = nid
            self._nodes.append(node)
            self.adj.append([])
        return nid

    @property
    def num_nodes(self) -> int:
        """Number of registered nodes (including source and sink)."""
        return len(self._nodes)

    @property
    def num_arcs(self) -> int:
        """Number of forward arcs (reverse arcs not counted)."""
        return len(self.head) // 2

    def node(self, nid: int) -> Node:
        """The node object with integer id ``nid``."""
        return self._nodes[nid]

    def add_arc(self, u: Node, v: Node, capacity: float) -> None:
        """Add a directed arc ``u -> v`` with the given capacity (>= 0)."""
        if capacity < 0:
            raise ValueError("arc capacity must be non-negative")
        ui, vi = self.node_id(u), self.node_id(v)
        self.adj[ui].append(len(self.head))
        self.head.append(vi)
        self.cap.append(capacity)
        self.adj[vi].append(len(self.head))
        self.head.append(ui)
        self.cap.append(0.0)

    def reset(self, capacities: list[float]) -> None:
        """Restore all arc capacities (e.g. to re-run a solver)."""
        if len(capacities) != len(self.cap):
            raise ValueError("capacity snapshot has wrong length")
        self.cap = list(capacities)

    def snapshot(self) -> list[float]:
        """Copy of the current capacities (pairs with :meth:`reset`)."""
        return list(self.cap)

    def min_cut_source_side(self) -> set[Node]:
        """Source side ``S`` of the min cut in the *current residual* graph.

        Call only after a max-flow solver has run; returns every node
        reachable from the source through arcs with residual capacity
        above :data:`EPS`.
        """
        sid = self._ids[self.source]
        seen = [False] * len(self._nodes)
        seen[sid] = True
        stack = [sid]
        while stack:
            u = stack.pop()
            for arc in self.adj[u]:
                if self.cap[arc] > EPS and not seen[self.head[arc]]:
                    seen[self.head[arc]] = True
                    stack.append(self.head[arc])
        return {self._nodes[i] for i, flag in enumerate(seen) if flag}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlowNetwork(nodes={self.num_nodes}, arcs={self.num_arcs})"


def is_finite(x: float) -> bool:
    """Whether a capacity is finite (infinite arcs never saturate)."""
    return not math.isinf(x)
