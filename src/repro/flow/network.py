"""Flow-network representation used by the exact DSD algorithms.

A :class:`FlowNetwork` is a directed graph with float capacities, a
distinguished source ``s`` and sink ``t``, stored as flat arc arrays
with the usual paired reverse-arc layout so residual updates are O(1).
Adjacency is a CSR index over the arc arrays (``adj_start`` offsets into
``adj_arcs``), built lazily once arcs stop being added; the solvers in
:mod:`repro.flow.dinic` and :mod:`repro.flow.push_relabel` run directly
on these arrays via :meth:`FlowNetwork.flow_arrays`.

Capacities may be ``float('inf')`` (the Ψ→v arcs of Algorithm 1).  The
binary-search guesses ``α`` are reals, so all solvers work on floats
with an explicit epsilon discipline; at the scale of this reproduction
the accumulated error stays far below the ``1/(n(n-1))`` density
resolution that terminates the search (Lemma 12).
"""

from __future__ import annotations

import math
from typing import Hashable

from .. import env

if env.flag("REPRO_NO_NUMPY"):  # explicit opt-out for CI / ablations
    np = None
else:
    try:  # numpy accelerates CSR assembly; the flow layer works without it
        import numpy as np
    except ImportError:  # pragma: no cover - environment-specific
        np = None

Node = Hashable

#: Capacity below which an arc is treated as saturated / absent.
EPS = 1e-9

#: Below this arc count the pure-Python CSR build beats the numpy one.
_NUMPY_CSR_MIN_ARCS = 1024


def build_csr(head: list[int], num_nodes: int) -> tuple[list[int], list[int]]:
    """CSR adjacency over paired arc arrays.

    ``head[i]`` is the head node of arc ``i`` and arc ``i ^ 1`` is its
    reverse, so the tail of arc ``i`` is ``head[i ^ 1]``.  Returns
    ``(adj_start, adj_arcs)`` with the arcs leaving node ``u`` at
    ``adj_arcs[adj_start[u]:adj_start[u + 1]]`` in insertion order
    (both builds are stable, so solver traversal order is deterministic).
    """
    num_arcs = len(head)
    if np is not None and num_arcs >= _NUMPY_CSR_MIN_ARCS:
        head_np = np.asarray(head, dtype=np.int64)
        tails = head_np.reshape(-1, 2)[:, ::-1].reshape(-1)
        counts = np.bincount(tails, minlength=num_nodes)
        adj_start = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=adj_start[1:])
        adj_arcs = np.argsort(tails, kind="stable")
        return adj_start.tolist(), adj_arcs.tolist()
    adj_start = [0] * (num_nodes + 1)
    for a in range(num_arcs):
        adj_start[head[a ^ 1] + 1] += 1
    for i in range(num_nodes):
        adj_start[i + 1] += adj_start[i]
    fill = list(adj_start)
    adj_arcs = [0] * num_arcs
    for a in range(num_arcs):
        t = head[a ^ 1]
        adj_arcs[fill[t]] = a
        fill[t] += 1
    return adj_start, adj_arcs


def source_reachable(
    head: list[int],
    cap: list[float],
    adj_start: list[int],
    adj_arcs: list[int],
    source: int,
) -> bytearray:
    """Nodes reachable from ``source`` through residual arcs (> EPS).

    Run after a max-flow solver: the reachable set is the unique
    minimal source side of a minimum s-t cut.  Shared by
    :class:`FlowNetwork` and ``ParametricNetwork``.
    """
    seen = bytearray(len(adj_start) - 1)
    seen[source] = 1
    stack = [source]
    while stack:
        u = stack.pop()
        for idx in range(adj_start[u], adj_start[u + 1]):
            arc = adj_arcs[idx]
            v = head[arc]
            if not seen[v] and cap[arc] > EPS:
                seen[v] = 1
                stack.append(v)
    return seen


class FlowNetwork:
    """Directed flow network with paired residual arcs.

    Nodes are arbitrary hashables registered on first use.  ``add_arc``
    creates a forward arc with the given capacity and a reverse arc with
    capacity 0; parallel arcs are allowed (capacities effectively add).
    """

    def __init__(self, source: Node, sink: Node):
        self.source = source
        self.sink = sink
        self._ids: dict[Node, int] = {}
        self._nodes: list[Node] = []
        # arc arrays: to[i], cap[i]; arc i^1 is the reverse of arc i
        self.head: list[int] = []
        self.cap: list[float] = []
        self._adj_start: list[int] | None = None
        self._adj_arcs: list[int] | None = None
        self.node_id(source)
        self.node_id(sink)

    def node_id(self, node: Node) -> int:
        """Integer id of ``node``, registering it if new."""
        nid = self._ids.get(node)
        if nid is None:
            nid = len(self._nodes)
            self._ids[node] = nid
            self._nodes.append(node)
            self._adj_start = None
        return nid

    @property
    def num_nodes(self) -> int:
        """Number of registered nodes (including source and sink)."""
        return len(self._nodes)

    @property
    def num_arcs(self) -> int:
        """Number of forward arcs (reverse arcs not counted)."""
        return len(self.head) // 2

    def node(self, nid: int) -> Node:
        """The node object with integer id ``nid``."""
        return self._nodes[nid]

    def add_arc(self, u: Node, v: Node, capacity: float) -> None:
        """Add a directed arc ``u -> v`` with the given capacity (>= 0)."""
        if capacity < 0:
            raise ValueError("arc capacity must be non-negative")
        ui, vi = self.node_id(u), self.node_id(v)
        self.head.append(vi)
        self.cap.append(capacity)
        self.head.append(ui)
        self.cap.append(0.0)
        self._adj_start = None

    def csr(self) -> tuple[list[int], list[int]]:
        """``(adj_start, adj_arcs)``: lazy CSR index over the arc arrays."""
        if self._adj_start is None:
            self._adj_start, self._adj_arcs = build_csr(self.head, len(self._nodes))
        return self._adj_start, self._adj_arcs

    @property
    def adj(self) -> list[list[int]]:
        """Per-node arc lists (materialised from the CSR index on demand)."""
        adj_start, adj_arcs = self.csr()
        return [
            adj_arcs[adj_start[u] : adj_start[u + 1]] for u in range(len(self._nodes))
        ]

    def flow_arrays(self) -> tuple[int, int, list[int], list[float], list[int], list[int]]:
        """``(source, sink, head, cap, adj_start, adj_arcs)`` for the solvers.

        The returned ``cap`` list is the live residual array: solvers
        mutate it in place.
        """
        adj_start, adj_arcs = self.csr()
        return (self._ids[self.source], self._ids[self.sink], self.head, self.cap,
                adj_start, adj_arcs)

    def reset(self, capacities: list[float]) -> None:
        """Restore all arc capacities (e.g. to re-run a solver)."""
        if len(capacities) != len(self.cap):
            raise ValueError("capacity snapshot has wrong length")
        self.cap = list(capacities)

    def snapshot(self) -> list[float]:
        """Copy of the current capacities (pairs with :meth:`reset`)."""
        return list(self.cap)

    def min_cut_source_side(self) -> set[Node]:
        """Source side ``S`` of the min cut in the *current residual* graph.

        Call only after a max-flow solver has run; returns every node
        reachable from the source through arcs with residual capacity
        above :data:`EPS`.
        """
        adj_start, adj_arcs = self.csr()
        seen = source_reachable(self.head, self.cap, adj_start, adj_arcs, self._ids[self.source])
        return {self._nodes[i] for i, flag in enumerate(seen) if flag}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlowNetwork(nodes={self.num_nodes}, arcs={self.num_arcs})"


def is_finite(x: float) -> bool:
    """Whether a capacity is finite (infinite arcs never saturate)."""
    return not math.isinf(x)
