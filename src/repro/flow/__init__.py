"""Max-flow / min-cut substrate and DSD network builders."""

from . import builders, dinic, push_relabel
from .network import FlowNetwork

__all__ = ["FlowNetwork", "dinic", "push_relabel", "builders"]
