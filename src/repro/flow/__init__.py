"""Max-flow / min-cut substrate and DSD network builders."""

from . import builders, dinic, push_relabel
from .network import FlowNetwork
from .parametric import ParametricNetwork

__all__ = ["FlowNetwork", "ParametricNetwork", "dinic", "push_relabel", "builders"]
