"""Flow-network constructions for the exact DSD algorithms.

Four builders, one per construction in the paper:

* :func:`build_eds_network` -- Goldberg's simplified network for the
  edge-density case (Section 4.1, remark after Algorithm 1).
* :func:`build_cds_network` -- Algorithm 1 lines 5-15: vertex nodes plus
  one node per (h-1)-clique instance.
* :func:`build_pds_network` -- PExact (Algorithm 8): one node per
  pattern instance, arcs ``v -> ψ`` capacity 1, ``ψ -> v`` capacity
  ``|V_Ψ| - 1``.
* :func:`build_pds_network_grouped` -- ``construct+`` (Algorithm 7):
  instances sharing a vertex set collapse into a group node ``g`` with
  arcs ``v -> g`` capacity ``|g|`` and ``g -> v`` capacity
  ``|g|(|V_Ψ| - 1)``.

Each construction also has a ``*_parametric`` twin that emits a
:class:`~repro.flow.parametric.ParametricNetwork`: the α-independent
arc arrays are assembled once and the α-dependent sink capacities are
rewritten in place by ``set_alpha`` across a whole binary search.

All builders answer the decision question "is there a subgraph with
Ψ-density > α?": after a max-flow run, the source side of the min cut
minus ``s`` induces such a subgraph iff it is non-empty (Lemma 14).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping, Optional, Sequence

from ..cliques.enumeration import enumerate_cliques
from ..cliques.index import CliqueIndex
from ..graph.graph import Graph, Vertex
from .network import FlowNetwork
from .parametric import ParametricNetwork

#: Sentinel source / sink node labels (tuples cannot collide with vertices
#: used by this package's builders, which wrap vertices as ("v", x)).
SOURCE = ("s",)
SINK = ("t",)

INF = float("inf")


def _vertex_node(v: Vertex) -> tuple:
    return ("v", v)


def _instance_node(idx: int) -> tuple:
    return ("i", idx)


def vertices_of_cut(cut_source_side: Iterable) -> set[Vertex]:
    """Extract graph vertices from the source side of a min cut."""
    return {node[1] for node in cut_source_side if isinstance(node, tuple) and node[0] == "v"}


def build_eds_network(graph: Graph, alpha: float) -> FlowNetwork:
    """Goldberg's EDS network for density guess ``alpha`` (Ψ = edge).

    ``s -> v`` capacity ``m``; ``v -> t`` capacity ``m + 2α - deg(v)``;
    each edge contributes unit arcs in both directions.
    """
    m = graph.num_edges
    net = FlowNetwork(SOURCE, SINK)
    for v in graph:
        net.add_arc(SOURCE, _vertex_node(v), float(m))
        net.add_arc(_vertex_node(v), SINK, m + 2.0 * alpha - graph.degree(v))
    for u, v in graph.edges():
        net.add_arc(_vertex_node(u), _vertex_node(v), 1.0)
        net.add_arc(_vertex_node(v), _vertex_node(u), 1.0)
    return net


def build_cds_network(
    graph: Graph,
    h: int,
    alpha: float,
    h_cliques: Optional[Sequence[tuple[Vertex, ...]]] = None,
    sub_cliques: Optional[Sequence[tuple[Vertex, ...]]] = None,
    degrees: Optional[Mapping[Vertex, int]] = None,
    index: Optional[CliqueIndex] = None,
) -> FlowNetwork:
    """Algorithm 1 network for the h-clique Ψ (h >= 3) and guess ``alpha``.

    Parameters
    ----------
    h_cliques / sub_cliques / degrees:
        Optional precomputed h-clique instances, (h-1)-clique instances
        and clique-degrees; recomputed when omitted.  CoreExact passes
        them in so each binary-search iteration only pays network
        assembly, not clique enumeration.
    index:
        Alternatively a :class:`CliqueIndex` of ``graph``: the network
        is assembled straight from the instance rows (the (h-1)-clique
        nodes are the rows' member subsets, so uncovered (h-1)-cliques
        -- isolated nodes that cannot carry flow -- are never created
        and no (h-1)-enumeration happens at all).  Min cuts are
        identical either way.
    """
    if h < 3:
        raise ValueError("use build_eds_network for h == 2")
    if index is not None:
        return _cds_network_from_index(index, h, alpha)
    if h_cliques is None:
        h_cliques = list(enumerate_cliques(graph, h))
    if sub_cliques is None:
        sub_cliques = list(enumerate_cliques(graph, h - 1))
    if degrees is None:
        degrees = defaultdict(int)
        for inst in h_cliques:
            for v in inst:
                degrees[v] += 1

    net = FlowNetwork(SOURCE, SINK)
    for v in graph:
        net.add_arc(SOURCE, _vertex_node(v), float(degrees.get(v, 0)))
        net.add_arc(_vertex_node(v), SINK, alpha * h)

    psi_id: dict[frozenset, int] = {}
    for idx, psi in enumerate(sub_cliques):
        psi_id[frozenset(psi)] = idx
        node = _instance_node(idx)
        for v in psi:
            net.add_arc(node, _vertex_node(v), INF)

    # v -> ψ arcs: for each h-clique K and member v, ψ = K \ {v}.
    for inst in h_cliques:
        members = frozenset(inst)
        for v in inst:
            idx = psi_id.get(members - {v})
            if idx is not None:
                net.add_arc(_vertex_node(v), _instance_node(idx), 1.0)
    return net


def _cds_network_from_index(index: CliqueIndex, h: int, alpha: float) -> FlowNetwork:
    """Algorithm-1 :class:`FlowNetwork` straight from the instance rows."""
    labels = index.vertices
    net = FlowNetwork(SOURCE, SINK)
    for i, v in enumerate(labels):
        net.add_arc(SOURCE, _vertex_node(v), float(index.base_degree[i]))
        net.add_arc(_vertex_node(v), SINK, alpha * h)
    psi_id: dict[tuple[int, ...], int] = {}
    for vid, psi in index.member_subsets():
        idx = psi_id.get(psi)
        if idx is None:
            idx = psi_id[psi] = len(psi_id)
            node = _instance_node(idx)
            for uid in psi:
                net.add_arc(node, _vertex_node(labels[uid]), INF)
        net.add_arc(_vertex_node(labels[vid]), _instance_node(idx), 1.0)
    return net


def build_pds_network(
    graph: Graph,
    pattern_size: int,
    alpha: float,
    instances: Sequence[frozenset],
    degrees: Optional[Mapping[Vertex, int]] = None,
) -> FlowNetwork:
    """PExact network (Algorithm 8) for a general pattern.

    ``instances`` are the pattern instances as vertex frozensets (the
    flow construction only needs the vertex membership of each
    instance).  Multiple instances on the same vertex set appear as
    separate nodes -- that is exactly the redundancy ``construct+``
    removes.
    """
    if degrees is None:
        degrees = defaultdict(int)
        for inst in instances:
            for v in inst:
                degrees[v] += 1
    net = FlowNetwork(SOURCE, SINK)
    for v in graph:
        net.add_arc(SOURCE, _vertex_node(v), float(degrees.get(v, 0)))
        net.add_arc(_vertex_node(v), SINK, alpha * pattern_size)
    for idx, inst in enumerate(instances):
        node = _instance_node(idx)
        for v in inst:
            net.add_arc(_vertex_node(v), node, 1.0)
            net.add_arc(node, _vertex_node(v), float(pattern_size - 1))
    return net


class _ParametricAssembler:
    """Accumulates paired arcs over dense integer node ids.

    Graph vertices take ids ``0..nv-1``, then source and sink; instance
    or group nodes are allocated on demand after those.  Arc insertion
    order matches the legacy per-α builders so the solvers traverse both
    representations identically.
    """

    def __init__(self, vertices: Sequence[Vertex]):
        self.vertices = list(vertices)
        self.index = {v: i for i, v in enumerate(self.vertices)}
        self.source = len(self.vertices)
        self.sink = self.source + 1
        self.num_nodes = self.sink + 1
        self.head: list[int] = []
        self.cap: list[float] = []
        self.alpha_arcs: list[int] = []
        self.alpha_coeff: list[float] = []
        self.alpha_src: list[int] = []

    def arc(self, u: int, v: int, capacity: float) -> int:
        arc_id = len(self.head)
        self.head.append(v)
        self.cap.append(capacity)
        self.head.append(u)
        self.cap.append(0.0)
        return arc_id

    def alpha_arc(self, u: int, v: int, base: float, coeff: float, source_arc: int = -1) -> None:
        """An arc with capacity ``base + coeff * α`` (capacity at α=0: base).

        ``source_arc`` names the vertex's paired ``s -> u`` arc, enabling
        the pass-through cancellation on cold solves.
        """
        self.alpha_arcs.append(len(self.head))
        self.alpha_coeff.append(coeff)
        self.alpha_src.append(source_arc)
        self.arc(u, v, base)

    def aux_node(self) -> int:
        nid = self.num_nodes
        self.num_nodes += 1
        return nid

    def build(self) -> ParametricNetwork:
        return ParametricNetwork(
            self.num_nodes,
            self.source,
            self.sink,
            self.head,
            self.cap,
            self.alpha_arcs,
            self.alpha_coeff,
            self.vertices,
            alpha_src=self.alpha_src,
        )


def build_eds_parametric(graph: Graph, anchors: Iterable[Vertex] = ()) -> ParametricNetwork:
    """Parametric Goldberg EDS network: sink caps ``(m - deg(v)) + 2α``.

    ``anchors`` get an extra infinite ``s -> v`` arc pinning them to the
    source side of every cut (the query-variant construction).
    """
    m = float(graph.num_edges)
    asm = _ParametricAssembler(list(graph))
    for i, v in enumerate(asm.vertices):
        src = asm.arc(asm.source, i, m)
        asm.alpha_arc(i, asm.sink, m - graph.degree(v), 2.0, source_arc=src)
    index = asm.index
    ha, ca = asm.head.append, asm.cap.append  # inlined asm.arc: hot loop
    for u, v in graph.edges():
        ui, vi = index[u], index[v]
        ha(vi), ca(1.0), ha(ui), ca(0.0)
        ha(ui), ca(1.0), ha(vi), ca(0.0)
    for q in anchors:
        asm.arc(asm.source, index[q], INF)
    return asm.build()


def build_cds_parametric(
    graph: Graph,
    h: int,
    h_cliques: Optional[Sequence[tuple[Vertex, ...]]] = None,
    sub_cliques: Optional[Sequence[tuple[Vertex, ...]]] = None,
    degrees: Optional[Mapping[Vertex, int]] = None,
    index: Optional[CliqueIndex] = None,
) -> ParametricNetwork:
    """Parametric Algorithm-1 network (h >= 3): sink caps ``α·h``.

    When ``index`` is given the arc arrays are emitted directly from
    the flat instance rows: vertex ids are the index's internal ids,
    source capacities are the precomputed clique-degrees, and the
    (h-1)-clique nodes are allocated on first encounter while walking
    the rows -- no tuple or frozenset materialisation, and no (h-1)
    enumeration (uncovered (h-1)-cliques cannot carry flow, so
    omitting their nodes leaves every min cut unchanged).
    """
    if h < 3:
        raise ValueError("use build_eds_parametric for h == 2")
    if index is not None:
        return _cds_parametric_from_index(index, h)
    if h_cliques is None:
        h_cliques = list(enumerate_cliques(graph, h))
    if sub_cliques is None:
        sub_cliques = list(enumerate_cliques(graph, h - 1))
    if degrees is None:
        degrees = defaultdict(int)
        for inst in h_cliques:
            for v in inst:
                degrees[v] += 1

    asm = _ParametricAssembler(list(graph))
    for i, v in enumerate(asm.vertices):
        src = asm.arc(asm.source, i, float(degrees.get(v, 0)))
        asm.alpha_arc(i, asm.sink, 0.0, float(h), source_arc=src)

    index = asm.index
    ha, ca = asm.head.append, asm.cap.append  # inlined asm.arc: hot loops
    psi_id: dict[frozenset, int] = {}
    for psi in sub_cliques:
        node = asm.aux_node()
        psi_id[frozenset(psi)] = node
        for v in psi:
            ha(index[v]), ca(INF), ha(node), ca(0.0)

    # v -> ψ arcs: for each h-clique K and member v, ψ = K \ {v}.
    get_psi = psi_id.get
    for inst in h_cliques:
        members = frozenset(inst)
        for v in inst:
            node = get_psi(members - {v})
            if node is not None:
                ha(node), ca(1.0), ha(index[v]), ca(0.0)
    return asm.build()


def _cds_parametric_from_index(index: CliqueIndex, h: int) -> ParametricNetwork:
    """Parametric Algorithm-1 arc arrays straight from the instance rows."""
    asm = _ParametricAssembler(index.vertices)
    degree = index.base_degree
    for i in range(len(asm.vertices)):
        src = asm.arc(asm.source, i, float(degree[i]))
        asm.alpha_arc(i, asm.sink, 0.0, float(h), source_arc=src)

    ha, ca = asm.head.append, asm.cap.append  # inlined asm.arc: hot loops
    psi_node: dict[tuple[int, ...], int] = {}
    get_psi = psi_node.get
    for vid, psi in index.member_subsets():
        node = get_psi(psi)
        if node is None:
            node = psi_node[psi] = asm.aux_node()
            for uid in psi:
                ha(uid), ca(INF), ha(node), ca(0.0)
        ha(node), ca(1.0), ha(vid), ca(0.0)
    return asm.build()


def build_pds_parametric(
    graph: Graph,
    pattern_size: int,
    instances: Sequence[frozenset],
    degrees: Optional[Mapping[Vertex, int]] = None,
    grouped: bool = False,
) -> ParametricNetwork:
    """Parametric PDS network: Algorithm 8, or ``construct+`` if grouped.

    Sink caps are ``α·|V_Ψ|``; the instance/group arcs are exactly those
    of :func:`build_pds_network` / :func:`build_pds_network_grouped`.
    """
    if degrees is None:
        degrees = defaultdict(int)
        for inst in instances:
            for v in inst:
                degrees[v] += 1
    asm = _ParametricAssembler(list(graph))
    for i, v in enumerate(asm.vertices):
        src = asm.arc(asm.source, i, float(degrees.get(v, 0)))
        asm.alpha_arc(i, asm.sink, 0.0, float(pattern_size), source_arc=src)
    index = asm.index
    ha, ca = asm.head.append, asm.cap.append  # inlined asm.arc: hot loops
    if grouped:
        groups: dict[frozenset, int] = defaultdict(int)
        for inst in instances:
            groups[frozenset(inst)] += 1
        for members, size in groups.items():
            node = asm.aux_node()
            back = float(size * (pattern_size - 1))
            for v in members:
                iv = index[v]
                ha(node), ca(float(size)), ha(iv), ca(0.0)
                ha(iv), ca(back), ha(node), ca(0.0)
    else:
        back = float(pattern_size - 1)
        for inst in instances:
            node = asm.aux_node()
            for v in inst:
                iv = index[v]
                ha(node), ca(1.0), ha(iv), ca(0.0)
                ha(iv), ca(back), ha(node), ca(0.0)
    return asm.build()


def build_pds_network_grouped(
    graph: Graph,
    pattern_size: int,
    alpha: float,
    instances: Sequence[frozenset],
    degrees: Optional[Mapping[Vertex, int]] = None,
) -> FlowNetwork:
    """``construct+`` network (Algorithm 7): instance groups by vertex set.

    Groups of instances sharing one vertex set become a single node
    ``g``; ``v -> g`` has capacity ``|g|`` and ``g -> v`` capacity
    ``|g|(|V_Ψ| - 1)`` (Lemma 11 proves cut equivalence with PExact).
    """
    if degrees is None:
        degrees = defaultdict(int)
        for inst in instances:
            for v in inst:
                degrees[v] += 1
    groups: dict[frozenset, int] = defaultdict(int)
    for inst in instances:
        groups[frozenset(inst)] += 1

    net = FlowNetwork(SOURCE, SINK)
    for v in graph:
        net.add_arc(SOURCE, _vertex_node(v), float(degrees.get(v, 0)))
        net.add_arc(_vertex_node(v), SINK, alpha * pattern_size)
    for idx, (members, size) in enumerate(groups.items()):
        node = _instance_node(idx)
        for v in members:
            net.add_arc(_vertex_node(v), node, float(size))
            net.add_arc(node, _vertex_node(v), float(size * (pattern_size - 1)))
    return net
