"""Flow-network constructions for the exact DSD algorithms.

Four builders, one per construction in the paper:

* :func:`build_eds_network` -- Goldberg's simplified network for the
  edge-density case (Section 4.1, remark after Algorithm 1).
* :func:`build_cds_network` -- Algorithm 1 lines 5-15: vertex nodes plus
  one node per (h-1)-clique instance.
* :func:`build_pds_network` -- PExact (Algorithm 8): one node per
  pattern instance, arcs ``v -> ψ`` capacity 1, ``ψ -> v`` capacity
  ``|V_Ψ| - 1``.
* :func:`build_pds_network_grouped` -- ``construct+`` (Algorithm 7):
  instances sharing a vertex set collapse into a group node ``g`` with
  arcs ``v -> g`` capacity ``|g|`` and ``g -> v`` capacity
  ``|g|(|V_Ψ| - 1)``.

All builders answer the decision question "is there a subgraph with
Ψ-density > α?": after a max-flow run, the source side of the min cut
minus ``s`` induces such a subgraph iff it is non-empty (Lemma 14).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping, Optional, Sequence

from ..cliques.enumeration import clique_degrees, enumerate_cliques
from ..graph.graph import Graph, Vertex
from .network import FlowNetwork

#: Sentinel source / sink node labels (tuples cannot collide with vertices
#: used by this package's builders, which wrap vertices as ("v", x)).
SOURCE = ("s",)
SINK = ("t",)

INF = float("inf")


def _vertex_node(v: Vertex) -> tuple:
    return ("v", v)


def _instance_node(idx: int) -> tuple:
    return ("i", idx)


def vertices_of_cut(cut_source_side: Iterable) -> set[Vertex]:
    """Extract graph vertices from the source side of a min cut."""
    return {node[1] for node in cut_source_side if isinstance(node, tuple) and node[0] == "v"}


def build_eds_network(graph: Graph, alpha: float) -> FlowNetwork:
    """Goldberg's EDS network for density guess ``alpha`` (Ψ = edge).

    ``s -> v`` capacity ``m``; ``v -> t`` capacity ``m + 2α - deg(v)``;
    each edge contributes unit arcs in both directions.
    """
    m = graph.num_edges
    net = FlowNetwork(SOURCE, SINK)
    for v in graph:
        net.add_arc(SOURCE, _vertex_node(v), float(m))
        net.add_arc(_vertex_node(v), SINK, m + 2.0 * alpha - graph.degree(v))
    for u, v in graph.edges():
        net.add_arc(_vertex_node(u), _vertex_node(v), 1.0)
        net.add_arc(_vertex_node(v), _vertex_node(u), 1.0)
    return net


def build_cds_network(
    graph: Graph,
    h: int,
    alpha: float,
    h_cliques: Optional[Sequence[tuple[Vertex, ...]]] = None,
    sub_cliques: Optional[Sequence[tuple[Vertex, ...]]] = None,
    degrees: Optional[Mapping[Vertex, int]] = None,
) -> FlowNetwork:
    """Algorithm 1 network for the h-clique Ψ (h >= 3) and guess ``alpha``.

    Parameters
    ----------
    h_cliques / sub_cliques / degrees:
        Optional precomputed h-clique instances, (h-1)-clique instances
        and clique-degrees; recomputed when omitted.  CoreExact passes
        them in so each binary-search iteration only pays network
        assembly, not clique enumeration.
    """
    if h < 3:
        raise ValueError("use build_eds_network for h == 2")
    if h_cliques is None:
        h_cliques = list(enumerate_cliques(graph, h))
    if sub_cliques is None:
        sub_cliques = list(enumerate_cliques(graph, h - 1))
    if degrees is None:
        degrees = defaultdict(int)
        for inst in h_cliques:
            for v in inst:
                degrees[v] += 1

    net = FlowNetwork(SOURCE, SINK)
    for v in graph:
        net.add_arc(SOURCE, _vertex_node(v), float(degrees.get(v, 0)))
        net.add_arc(_vertex_node(v), SINK, alpha * h)

    psi_id: dict[frozenset, int] = {}
    for idx, psi in enumerate(sub_cliques):
        psi_id[frozenset(psi)] = idx
        node = _instance_node(idx)
        for v in psi:
            net.add_arc(node, _vertex_node(v), INF)

    # v -> ψ arcs: for each h-clique K and member v, ψ = K \ {v}.
    for inst in h_cliques:
        members = frozenset(inst)
        for v in inst:
            idx = psi_id.get(members - {v})
            if idx is not None:
                net.add_arc(_vertex_node(v), _instance_node(idx), 1.0)
    return net


def build_pds_network(
    graph: Graph,
    pattern_size: int,
    alpha: float,
    instances: Sequence[frozenset],
    degrees: Optional[Mapping[Vertex, int]] = None,
) -> FlowNetwork:
    """PExact network (Algorithm 8) for a general pattern.

    ``instances`` are the pattern instances as vertex frozensets (the
    flow construction only needs the vertex membership of each
    instance).  Multiple instances on the same vertex set appear as
    separate nodes -- that is exactly the redundancy ``construct+``
    removes.
    """
    if degrees is None:
        degrees = defaultdict(int)
        for inst in instances:
            for v in inst:
                degrees[v] += 1
    net = FlowNetwork(SOURCE, SINK)
    for v in graph:
        net.add_arc(SOURCE, _vertex_node(v), float(degrees.get(v, 0)))
        net.add_arc(_vertex_node(v), SINK, alpha * pattern_size)
    for idx, inst in enumerate(instances):
        node = _instance_node(idx)
        for v in inst:
            net.add_arc(_vertex_node(v), node, 1.0)
            net.add_arc(node, _vertex_node(v), float(pattern_size - 1))
    return net


def build_pds_network_grouped(
    graph: Graph,
    pattern_size: int,
    alpha: float,
    instances: Sequence[frozenset],
    degrees: Optional[Mapping[Vertex, int]] = None,
) -> FlowNetwork:
    """``construct+`` network (Algorithm 7): instance groups by vertex set.

    Groups of instances sharing one vertex set become a single node
    ``g``; ``v -> g`` has capacity ``|g|`` and ``g -> v`` capacity
    ``|g|(|V_Ψ| - 1)`` (Lemma 11 proves cut equivalence with PExact).
    """
    if degrees is None:
        degrees = defaultdict(int)
        for inst in instances:
            for v in inst:
                degrees[v] += 1
    groups: dict[frozenset, int] = defaultdict(int)
    for inst in instances:
        groups[frozenset(inst)] += 1

    net = FlowNetwork(SOURCE, SINK)
    for v in graph:
        net.add_arc(SOURCE, _vertex_node(v), float(degrees.get(v, 0)))
        net.add_arc(_vertex_node(v), SINK, alpha * pattern_size)
    for idx, (members, size) in enumerate(groups.items()):
        node = _instance_node(idx)
        for v in members:
            net.add_arc(_vertex_node(v), node, float(size))
            net.add_arc(node, _vertex_node(v), float(size * (pattern_size - 1)))
    return net
