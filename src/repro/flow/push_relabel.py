"""FIFO push–relabel max-flow (Goldberg–Tarjan).

A second, independently implemented solver.  It exists for two reasons:
differential testing of :mod:`repro.flow.dinic` (both must agree on the
flow value and cut capacity on every network), and the solver ablation
bench -- the paper notes any exact max-flow algorithm slots into the
framework.  Like Dinic it runs on the flat arc arrays exposed by
``network.flow_arrays()``.
"""

from __future__ import annotations

import math
from collections import deque

from .network import EPS


def max_flow(network) -> float:
    """Run FIFO push–relabel on ``network`` in place; return the value.

    Infinite capacities are clamped to a finite "big-M" above the total
    finite capacity leaving the source, which cannot change the min cut.
    """
    source, sink, head, cap, adj_start, adj_arcs = network.flow_arrays()
    n = len(adj_start) - 1

    # Clamp infinities: any flow this run pushes is bounded by the total
    # finite capacity in the network (every augmenting path crosses at
    # least one finite arc), so arcs clamped above that can never
    # saturate.  Summing over *all* arcs -- not just the source's --
    # keeps the bound valid on warm-started / cancelled parametric
    # networks whose residual source capacities may already be zero.
    finite_total = sum(c for c in cap if not math.isinf(c))
    big = finite_total * 2.0 + 1.0
    for i, c in enumerate(cap):
        if math.isinf(c):
            cap[i] = big

    height = [0] * n
    excess = [0.0] * n
    height[source] = n

    active: deque[int] = deque()
    in_queue = [False] * n

    # Saturate all source arcs.
    for idx in range(adj_start[source], adj_start[source + 1]):
        arc = adj_arcs[idx]
        flow = cap[arc]
        if flow > EPS:
            v = head[arc]
            cap[arc] = 0.0
            cap[arc ^ 1] += flow
            excess[v] += flow
            if v not in (source, sink) and not in_queue[v]:
                active.append(v)
                in_queue[v] = True

    cursor = adj_start[:n]  # per-node cursor into adj_arcs
    while active:
        u = active.popleft()
        in_queue[u] = False
        end = adj_start[u + 1]
        while excess[u] > EPS:
            if cursor[u] == end:
                # relabel: one above the lowest admissible neighbour
                min_height = None
                for idx in range(adj_start[u], end):
                    arc = adj_arcs[idx]
                    if cap[arc] > EPS:
                        h = height[head[arc]]
                        if min_height is None or h < min_height:
                            min_height = h
                if min_height is None:
                    break  # isolated excess; cannot happen on sane networks
                height[u] = min_height + 1
                cursor[u] = adj_start[u]
                continue
            arc = adj_arcs[cursor[u]]
            v = head[arc]
            if cap[arc] > EPS and height[u] == height[v] + 1:
                delta = min(excess[u], cap[arc])
                cap[arc] -= delta
                cap[arc ^ 1] += delta
                excess[u] -= delta
                excess[v] += delta
                if v not in (source, sink) and not in_queue[v]:
                    active.append(v)
                    in_queue[v] = True
            else:
                cursor[u] += 1
    return excess[sink]


def min_cut(network) -> tuple[float, set]:
    """Max-flow value and the source-side node set of a minimum s-t cut."""
    value = max_flow(network)
    return value, network.min_cut_source_side()
