"""Highest-label push-relabel max flow with gap relabeling.

A second, independently implemented solver.  It exists for two reasons:
differential testing of :mod:`repro.flow.dinic` (both must agree on the
flow value and cut capacity on every network), and the solver ablation
bench -- the paper notes any exact max-flow algorithm slots into the
framework.  Like Dinic it runs on the flat arc arrays exposed by
``network.flow_arrays()`` and dispatches through the
:mod:`repro.accel` kernel registry (numba-compiled discharge loop on
the numba tier, the pure-python loop otherwise).

The discharge loop uses **highest-label selection** (per-height active
stacks; the highest active node discharges to exhaustion) and the
**gap-relabeling heuristic**: when a relabel empties a height level
below ``n``, no residual path can cross it any more, so every node
strictly above the gap is lifted straight to ``n + 1``, skipping the
dead one-by-one relabel ladder.  The solver runs to completion (both
phases), so the residual state on exit is a genuine max flow and
``min_cut_source_side`` stays valid.
"""

from __future__ import annotations

from .. import accel

__all__ = ["max_flow", "min_cut", "solve_stats"]


def solve_stats() -> dict:
    """Work counters of the most recent traced max-flow call.

    A copy of :data:`repro.accel.last_solve` (kernel, tier, arcs,
    pushes, relabels, seconds).  Populated only while tracing is
    enabled (``obs.enable()`` / ``REPRO_TRACE``); empty otherwise.
    """
    return dict(accel.last_solve)


def max_flow(network) -> float:
    """Run highest-label push-relabel on ``network`` in place.

    Infinite capacities are clamped to a finite "big-M" above the total
    finite capacity of the whole network (valid on warm-started /
    cancelled parametric networks too), which cannot change the min cut.
    """
    source, sink, head, cap, adj_start, adj_arcs = network.flow_arrays()
    if source == sink:
        raise ValueError("source and sink must differ")
    return accel.push_relabel_max_flow(source, sink, head, cap, adj_start, adj_arcs)


def min_cut(network) -> tuple[float, set]:
    """Max-flow value and the source-side node set of a minimum s-t cut."""
    value = max_flow(network)
    return value, network.min_cut_source_side()
