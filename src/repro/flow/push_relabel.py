"""FIFO push–relabel max-flow (Goldberg–Tarjan).

A second, independently implemented solver.  It exists for two reasons:
differential testing of :mod:`repro.flow.dinic` (both must agree on the
flow value and cut capacity on every network), and the solver ablation
bench -- the paper notes any exact max-flow algorithm slots into the
framework.
"""

from __future__ import annotations

import math
from collections import deque

from .network import EPS, FlowNetwork


def max_flow(network: FlowNetwork) -> float:
    """Run FIFO push–relabel on ``network`` in place; return the value.

    Infinite capacities are clamped to a finite "big-M" above the total
    finite capacity leaving the source, which cannot change the min cut.
    """
    source = network.node_id(network.source)
    sink = network.node_id(network.sink)
    head, cap, adj = network.head, network.cap, network.adj
    n = network.num_nodes

    # Clamp infinities: anything above the total finite source capacity
    # can never saturate.
    finite_out = sum(
        cap[arc] for arc in adj[source] if not math.isinf(cap[arc])
    )
    big = max(finite_out * 2.0, 1.0)
    for i, c in enumerate(cap):
        if math.isinf(c):
            cap[i] = big

    height = [0] * n
    excess = [0.0] * n
    height[source] = n

    active: deque[int] = deque()
    in_queue = [False] * n

    # Saturate all source arcs.
    for arc in adj[source]:
        flow = cap[arc]
        if flow > EPS:
            v = head[arc]
            cap[arc] = 0.0
            cap[arc ^ 1] += flow
            excess[v] += flow
            if v not in (source, sink) and not in_queue[v]:
                active.append(v)
                in_queue[v] = True

    cursor = [0] * n
    while active:
        u = active.popleft()
        in_queue[u] = False
        while excess[u] > EPS:
            if cursor[u] == len(adj[u]):
                # relabel: one above the lowest admissible neighbour
                min_height = None
                for arc in adj[u]:
                    if cap[arc] > EPS:
                        h = height[head[arc]]
                        if min_height is None or h < min_height:
                            min_height = h
                if min_height is None:
                    break  # isolated excess; cannot happen on sane networks
                height[u] = min_height + 1
                cursor[u] = 0
                continue
            arc = adj[u][cursor[u]]
            v = head[arc]
            if cap[arc] > EPS and height[u] == height[v] + 1:
                delta = min(excess[u], cap[arc])
                cap[arc] -= delta
                cap[arc ^ 1] += delta
                excess[u] -= delta
                excess[v] += delta
                if v not in (source, sink) and not in_queue[v]:
                    active.append(v)
                    in_queue[v] = True
            else:
                cursor[u] += 1
    return excess[sink]


def min_cut(network: FlowNetwork) -> tuple[float, set]:
    """Max-flow value and the source-side node set of a minimum s-t cut."""
    value = max_flow(network)
    return value, network.min_cut_source_side()
