"""α-parametric flow networks: build the arcs once, re-solve many times.

Every flow construction in the paper (Goldberg EDS, the Algorithm-1 CDS
network, the PDS networks of Algorithms 7/8) shares one shape across the
binary search on the density guess α: *only the ``v → t`` sink-arc
capacities depend on α*, and each is an affine function ``base +
coeff·α`` with ``coeff > 0``.  The topology, the source arcs and the
middle arcs never change.

:class:`ParametricNetwork` exploits that.  It stores the network as flat
paired arc arrays plus a CSR adjacency index (built once, with numpy
when available), remembers which arcs are α-dependent, and offers three
re-solve strategies, cheapest first:

* **advance** -- the requested α is at least the α of the current
  residual state.  Capacities only grow, so the flow already in the
  network stays feasible; Dinic merely augments the difference.
* **checkpoint restore** -- the caller recorded the residual state at
  the best feasible lower bound (``checkpoint()``); any later guess of
  the binary search exceeds that bound, so the network restores the
  checkpointed max flow in one O(E) copy and advances from there.
* **retreat** -- the requested α is below the α of the current residual
  state.  Sink capacities shrink, so the flow on some ``v → t`` arcs may
  exceed the new capacity; each such arc is clamped and the excess is
  drained back to the source along flow-carrying residual paths (the
  decreasing-α half of Gallo–Grigoriadis–Tarjan).  The result is a
  feasible warm flow the solver only needs to augment.
* **cold reset** -- otherwise, capacities are recomputed from
  ``base + coeff·α`` and the flow starts from zero (bit-equal to a
  fresh build at that α).

On top of the warm-start repertoire sit two breakpoint drivers that
remove the binary search from the exact algorithms entirely:

* :meth:`ParametricNetwork.max_density` -- a discrete-Newton /
  Dinkelbach walk over the breakpoints of the parametric min-cut
  function.  Every iterate is the exact density of a cut it just
  produced, so the walk lands on true breakpoints and terminates at the
  optimal α with its minimal cut after a handful of solves (instead of
  the ``O(log n²)`` iterations of the ``1/(n(n-1))``-resolution binary
  search).
* :meth:`ParametricNetwork.solve_breakpoints` -- the full GGT divide
  and conquer: enumerate *all* breakpoints of the piecewise-linear
  min-cut capacity on an interval by recursively probing cut-line
  intersections, O(#breakpoints) max-flow solves in total.

Monotonicity argument: for α' ≥ α every capacity satisfies
``cap(α') ≥ cap(α)``, so a feasible (in particular a maximum) flow for α
is feasible for α', and augmenting it to a maximum flow yields the same
*minimal* source-side min cut as a cold solve -- the source-reachable
set in the residual graph of a maximum flow is the unique minimal min
cut, independent of which maximum flow was reached.  Sink-arc residuals
are recomputed as ``(base + coeff·α) − flow`` (flow read off the
reverse arc), not accumulated, so no float drift builds up across a
warm chain.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from .. import accel, guard, obs
from ..guard import sanitize
from .network import EPS, build_csr, source_reachable


class ParametricNetwork:
    """CSR arc-array flow network whose sink capacities are affine in α.

    Node ids are dense integers: the graph vertices occupy ``0..nv-1``
    (``vertex_labels[i]`` maps back to the external label), then source,
    sink, and any instance/group nodes.  Use the builders in
    :mod:`repro.flow.builders` (``build_eds_parametric`` and friends)
    rather than constructing directly.
    """

    __slots__ = (
        "num_nodes",
        "source",
        "sink",
        "head",
        "base_cap",
        "cap",
        "adj_start",
        "adj_arcs",
        "alpha_arcs",
        "alpha_coeff",
        "alpha_src",
        "vertex_labels",
        "_alpha",
        "_canceled",
        "_warm_hint",
        "_checkpoint_alpha",
        "_checkpoint_cap",
        "_min_coeff",
        "_coeff_by_arc",
    )

    def __init__(
        self,
        num_nodes: int,
        source: int,
        sink: int,
        head: list[int],
        base_cap: list[float],
        alpha_arcs: list[int],
        alpha_coeff: list[float],
        vertex_labels: Sequence,
        alpha_src: Optional[list[int]] = None,
    ):
        self.num_nodes = num_nodes
        self.source = source
        self.sink = sink
        self.head = head
        self.base_cap = base_cap
        self.alpha_arcs = alpha_arcs
        self.alpha_coeff = alpha_coeff
        # alpha_src[i]: arc id of the paired (finite) s -> v arc of the
        # vertex whose sink arc is alpha_arcs[i], or -1 when unknown --
        # enables the pass-through cancellation on cold solves.
        self.alpha_src = alpha_src if alpha_src is not None else [-1] * len(alpha_arcs)
        self.vertex_labels = list(vertex_labels)
        self.adj_start, self.adj_arcs = build_csr(head, num_nodes)
        self.cap = list(base_cap)
        self._alpha: Optional[float] = None
        self._canceled = False
        self._warm_hint = False
        self._checkpoint_alpha: Optional[float] = None
        self._checkpoint_cap: Optional[list[float]] = None
        self._min_coeff = min(alpha_coeff, default=0.0)
        self._coeff_by_arc: Optional[dict[int, float]] = None

    @property
    def num_arcs(self) -> int:
        """Number of forward arcs (reverse arcs not counted)."""
        return len(self.head) // 2

    def flow_arrays(self) -> tuple[int, int, list[int], list[float], list[int], list[int]]:
        """``(source, sink, head, cap, adj_start, adj_arcs)`` for the solvers."""
        return self.source, self.sink, self.head, self.cap, self.adj_start, self.adj_arcs

    # --- α management -------------------------------------------------

    def set_alpha(self, alpha: float) -> None:
        """Cold reset: capacities for ``alpha``, zero flow (O(E), in place).

        Where the paired source arc is known, the pass-through volume
        ``c_v = min(cap(s→v), cap(v→t))`` is cancelled from both arcs:
        every s-t cut contains exactly one of the two, so all cut values
        shift by the constant ``Σ c_v`` and the min-cut *sets* are
        untouched, while the max-flow volume (the augmenting-path count
        of the saturating probe solves) collapses from ``Σ deg`` to
        ``Σ (deg − coeff·α)⁺``.  :meth:`_uncancel` converts the residual
        state back to the plain network before any warm start.
        """
        self.cap = list(self.base_cap)
        cap, base = self.cap, self.base_cap
        for a, c, s in zip(self.alpha_arcs, self.alpha_coeff, self.alpha_src):
            t = base[a] + c * alpha
            if s >= 0:
                cv = t if t < base[s] else base[s]
                cap[a] = t - cv
                cap[s] = base[s] - cv
            else:
                cap[a] = t
        self._alpha = alpha
        self._canceled = True

    def _uncancel(self) -> None:
        """Convert a cancelled residual state to the plain network's.

        Adding the pass-through ``c_v`` back as flow on both arcs keeps
        conservation (in and out of ``v`` grow by ``c_v``) and respects
        the plain capacities, so only the two reverse-arc residuals
        change; forward residuals are already identical.  The result is
        a maximum flow of the plain network at the current α, fit to
        warm-start from.
        """
        cap, base = self.cap, self.base_cap
        alpha = self._alpha
        for a, c, s in zip(self.alpha_arcs, self.alpha_coeff, self.alpha_src):
            if s >= 0:
                t = base[a] + c * alpha
                cv = t if t < base[s] else base[s]
                if cv > 0.0:
                    cap[a ^ 1] += cv
                    cap[s ^ 1] += cv
        self._canceled = False

    def _advance_alpha(self, alpha: float) -> None:
        """Raise α keeping the current flow (requires ``alpha >= self._alpha``).

        Each α-arc's residual is recomputed exactly as capacity minus the
        flow it carries (read off the reverse arc), so a warm chain
        reproduces the same floats as a single jump from the base state.
        """
        accel.ggt_advance(self.cap, self.base_cap, self.alpha_arcs, self.alpha_coeff, alpha)
        self._alpha = alpha

    def _retreat_alpha(self, alpha: float) -> None:
        """Lower α keeping a feasible warm flow (requires ``alpha <= self._alpha``).

        The decreasing-α half of GGT.  Each α-arc whose flow exceeds its
        shrunken capacity is clamped to saturation; the difference
        becomes an excess at the arc's tail vertex and is drained back to
        the source through residual paths.  Flow decomposition
        guarantees the drain succeeds: every unit that reached ``v``
        came from the source, so the reverse arcs of its path carry
        enough residual.  The state on exit is a *feasible* (not yet
        maximum) flow of the plain network at the new α; the solver's
        next run augments it to a max flow.
        """
        if self._canceled:
            self._uncancel()
        accel.ggt_retreat(
            self.head, self.cap, self.base_cap, self.adj_start, self.adj_arcs,
            self.alpha_arcs, self.alpha_coeff, self.num_nodes, self.source, alpha,
        )
        self._alpha = alpha

    def _warm_step_ok(self, delta: float) -> bool:
        """Whether a warm start is safe for an α step of ``delta``.

        The solvers treat residuals below :data:`~repro.flow.network.EPS`
        as saturated, so a step that opens each sink arc by less than a
        comfortable multiple of EPS could leave true augmenting paths
        invisible and flip the feasibility verdict; such steps take the
        cold reset instead.  Binary searches stop at a resolution of
        ``1/(n(n-1))``, far above this threshold at any tractable scale.
        """
        return delta * self._min_coeff > 10.0 * EPS

    def checkpoint(self) -> None:
        """Record the current residual state as a warm-start base.

        Call after a solve whose α became the binary search's new lower
        bound: every later guess is ≥ that α, so every later solve can
        restore this max flow instead of starting from zero.
        """
        if self._canceled:  # normalise direct set_alpha/max_flow usage
            self._uncancel()
        self._checkpoint_alpha = self._alpha
        self._checkpoint_cap = list(self.cap)

    def solve(self, alpha: float, solver=None) -> set:
        """Max-flow at ``alpha``; return the source-side cut vertex set.

        Picks the cheapest valid warm-start (advance > checkpoint >
        retreat > cold reset), runs the solver (Dinic by default), and returns the
        graph vertices on the source side of the minimal min cut
        (excluding source/instance nodes) -- non-empty iff a subgraph
        with Ψ-density above ``alpha`` exists (Lemma 14).
        """
        self._solve_residual(alpha, solver)
        return self.cut_vertices()

    def _solve_residual(self, alpha: float, solver=None) -> None:
        """Warm-start to ``alpha`` and run the solver; no cut extraction.

        When tracing is on (:data:`repro.obs.ENABLED`) each call emits
        one ``flow.solve`` event carrying α, the warm-start mode chosen
        by the decision chain below, the engine, the active kernel tier,
        the network size, the wall time, and the kernel work counters
        (BFS passes / augments for Dinic, pushes / relabels for
        push-relabel) read back from :data:`repro.accel.last_solve`.

        This is also the guard layer's checkpoint: an active
        :class:`repro.guard.Budget` is ticked *before* any warm-start
        mutation, so :class:`~repro.guard.BudgetExceeded` always leaves
        the residual state exactly as the previous solve did.  With
        ``REPRO_CHECK`` on, the full flow-invariant battery
        (:func:`repro.guard.sanitize.check_parametric`) runs on the
        solved state.
        """
        budget = guard.ACTIVE
        if budget is not None:
            budget.tick_solve(self.num_arcs)
        t0 = time.perf_counter() if obs.ENABLED else 0.0
        if self._alpha is not None and alpha == self._alpha:
            mode = "noop"  # residual state is already a max flow at this α
        elif (
            self._alpha is not None
            and alpha >= self._alpha
            and self._warm_step_ok(alpha - self._alpha)
        ):
            mode = "advance"
            self._advance_alpha(alpha)
        elif (
            self._checkpoint_cap is not None
            and self._checkpoint_alpha is not None
            and alpha >= self._checkpoint_alpha
            and self._warm_step_ok(alpha - self._checkpoint_alpha)
        ):
            mode = "checkpoint"
            self.cap = list(self._checkpoint_cap)
            self._alpha = self._checkpoint_alpha
            self._advance_alpha(alpha)
        elif (
            self._alpha is not None
            and alpha < self._alpha
            and self._warm_step_ok(self._alpha - alpha)
        ):
            mode = "retreat"
            self._retreat_alpha(alpha)
        else:
            mode = "cold"
            self.set_alpha(alpha)
        self._warm_hint = mode != "cold"
        if solver is None:
            from . import dinic as solver  # late import avoids a cycle
        solver.max_flow(self)
        if self._canceled:
            self._uncancel()
        if guard.CHECK:
            sanitize.check_parametric(self)
        if obs.ENABLED:
            work = dict(accel.last_solve)
            fields = {
                "alpha": alpha,
                "mode": mode,
                "engine": solver.__name__.rsplit(".", 1)[-1],
                "tier": work.pop("tier", accel.TIER),
                "nodes": self.num_nodes,
                "arcs": self.num_arcs,
                "seconds": time.perf_counter() - t0,
            }
            work.pop("kernel", None)
            work.pop("arcs", None)
            work.pop("seconds", None)
            fields.update(work)  # bfs_mode + kernel work counters
            obs.event(obs.FLOW_SOLVE, **fields)
            obs.counter("flow.solves")
            obs.counter(f"flow.solves.{mode}")

    # --- breakpoint drivers (GGT) ------------------------------------

    def cut_line(self, nodes: Optional[set[int]] = None) -> tuple[float, float]:
        """Affine coefficients ``(A, B)`` of a cut's capacity ``A + B·α``.

        ``nodes`` is the source-side node set as *internal* ids; when
        omitted, the current residual min cut is used.  Computed from
        the base capacities, so the line is valid at every α regardless
        of the residual state.
        """
        if nodes is None:
            nodes = self.min_cut_source_side()
        if self._coeff_by_arc is None:
            self._coeff_by_arc = dict(zip(self.alpha_arcs, self.alpha_coeff))
        coeff_of = self._coeff_by_arc.get
        head, base = self.head, self.base_cap
        a_term = 0.0
        b_term = 0.0
        for arc in range(0, len(head), 2):  # forward arcs only; reverses carry base 0
            if head[arc ^ 1] in nodes and head[arc] not in nodes:
                a_term += base[arc]
                b_term += coeff_of(arc, 0.0)
        return a_term, b_term

    def max_density(
        self, density_of, low: float = 0.0, solver=None
    ) -> tuple[Optional[set], float, int]:
        """Optimal α and its minimal cut, no binary search (GGT/Newton walk).

        A discrete-Newton (Dinkelbach) iteration on the parametric
        min-cut function: solve at α, read the minimal cut ``S``, jump
        to ``α' = density_of(S)``.  Since ``α'`` is the exact Ψ-density
        of an actual subgraph, every jump lands on a breakpoint of the
        piecewise-linear concave min-cut capacity, and each solve is a
        warm advance of the previous one (α only grows).  Terminates
        when the cut at ``α = ρ(S)`` is trivial -- which certifies
        ``ρ(S)`` optimal -- after at most #breakpoints solves.

        Parameters
        ----------
        density_of:
            Callback mapping a cut vertex set (external labels) to its
            exact Ψ-density ``μ(S)/|S|``; the caller owns the clique or
            instance material, the network does not.
        low:
            Starting guess, a valid lower bound on the optimum (0 is
            always sound).
        solver:
            Max-flow solver module; Dinic by default.

        Returns
        -------
        ``(cut, alpha, solves)``: the minimal min cut of the optimal α
        (``None`` when even ``low`` is infeasible, i.e. no subgraph has
        density above ``low``), the optimal density, and the number of
        max-flow solves spent.
        """
        best: Optional[set] = None
        best_density = low
        alpha = low
        solves = 0
        while True:
            try:
                cut = self.solve(alpha, solver)
            except guard.BudgetExceeded as exc:
                # hand the walk's incumbent to whoever degrades gracefully
                exc.attach_incumbent(best, best_density)
                raise
            solves += 1
            if not cut:
                break
            # no checkpoint: α never decreases in the walk, so the
            # advance warm start always applies and a snapshot would
            # be an O(E) copy that is provably never restored
            density = density_of(cut)
            if best is None or density > best_density:
                best = cut
                best_density = density
            if density <= alpha:
                break  # float-exact optimum: the cut re-certifies itself
            alpha = density
        return best, (best_density if best is not None else low), solves

    def solve_breakpoints(
        self, alpha_lo: float, alpha_hi: float, solver=None, tol: float = 1e-9
    ) -> list[tuple[float, set]]:
        """All breakpoints of the min-cut function on ``[alpha_lo, alpha_hi]``.

        Gallo–Grigoriadis–Tarjan divide and conquer: solve both
        endpoints, intersect their cut lines, probe the intersection,
        and recurse into any half where the cut still changes.  Because
        the source-side cuts are nested and each probe either certifies
        a breakpoint or splits off a new distinct cut, the total work is
        O(#breakpoints) max-flow solves -- each warm-started from a
        neighbouring α by the advance/retreat machinery.

        Returns ``[(α_0, S_0), (α_1, S_1), ...]`` sorted by α:
        ``S_0`` is the minimal cut at ``alpha_lo`` and each subsequent
        ``(α_i, S_i)`` says the minimal cut changes to ``S_i`` (as
        external vertex labels) at ``α_i``.
        """
        if alpha_hi < alpha_lo:
            raise ValueError("alpha_hi must be >= alpha_lo")
        labels = self.vertex_labels
        nv = len(labels)

        def probe(alpha: float) -> tuple[frozenset, tuple[float, float]]:
            self._solve_residual(alpha, solver)
            nodes = self.min_cut_source_side()
            return frozenset(nodes), self.cut_line(nodes)

        lo_nodes, lo_line = probe(alpha_lo)
        hi_nodes, hi_line = probe(alpha_hi)
        breaks: list[tuple[float, frozenset]] = []

        # explicit work stack: the split tree can be one level per
        # breakpoint, which would blow Python's recursion limit on
        # networks with thousands of breakpoints
        work = [(alpha_lo, lo_nodes, lo_line, alpha_hi, hi_nodes, hi_line)]
        while work:
            a_lo, nodes_lo, line_lo, a_hi, nodes_hi, line_hi = work.pop()
            if nodes_lo == nodes_hi or a_hi - a_lo <= tol:
                continue
            (A_lo, B_lo), (A_hi, B_hi) = line_lo, line_hi
            if B_lo == B_hi:  # parallel lines never cross: no breakpoint between
                continue
            cross = (A_hi - A_lo) / (B_lo - B_hi)
            if not (a_lo - tol <= cross <= a_hi + tol):  # pragma: no cover - numeric guard
                continue
            mid_nodes, mid_line = probe(cross)
            mid_value = mid_line[0] + mid_line[1] * cross
            lo_value_at_cross = A_lo + B_lo * cross
            value_tol = tol * (1.0 + abs(lo_value_at_cross))
            if mid_value >= lo_value_at_cross - value_tol or mid_nodes in (nodes_lo, nodes_hi):
                # the two endpoint lines meet on the lower envelope:
                # cross is the single breakpoint separating their cuts
                breaks.append((cross, nodes_hi))
                continue
            # lower half last so it pops first: probes sweep mostly
            # downward-adjacent α values, keeping warm starts cheap
            work.append((cross, mid_nodes, mid_line, a_hi, nodes_hi, line_hi))
            work.append((a_lo, nodes_lo, line_lo, cross, mid_nodes, mid_line))
        breaks.sort(key=lambda item: item[0])

        def to_labels(nodes: frozenset) -> set:
            return {labels[i] for i in nodes if i < nv}

        out = [(alpha_lo, to_labels(lo_nodes))]
        for alpha, nodes in breaks:
            out.append((alpha, to_labels(nodes)))
        return out

    # --- cut extraction ----------------------------------------------

    def min_cut_source_side(self) -> set[int]:
        """Source side of the min cut, as internal node ids."""
        seen = source_reachable(self.head, self.cap, self.adj_start, self.adj_arcs, self.source)
        return {i for i in range(self.num_nodes) if seen[i]}

    def cut_vertices(self) -> set:
        """Graph vertices (external labels) on the source side of the cut."""
        labels = self.vertex_labels
        seen = source_reachable(self.head, self.cap, self.adj_start, self.adj_arcs, self.source)
        return {labels[i] for i in range(len(labels)) if seen[i]}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ParametricNetwork(nodes={self.num_nodes}, arcs={self.num_arcs}, "
            f"alpha={self._alpha})"
        )
