"""α-parametric flow networks: build the arcs once, re-solve many times.

Every flow construction in the paper (Goldberg EDS, the Algorithm-1 CDS
network, the PDS networks of Algorithms 7/8) shares one shape across the
binary search on the density guess α: *only the ``v → t`` sink-arc
capacities depend on α*, and each is an affine function ``base +
coeff·α`` with ``coeff > 0``.  The topology, the source arcs and the
middle arcs never change.

:class:`ParametricNetwork` exploits that.  It stores the network as flat
paired arc arrays plus a CSR adjacency index (built once, with numpy
when available), remembers which arcs are α-dependent, and offers three
re-solve strategies, cheapest first:

* **advance** -- the requested α is at least the α of the current
  residual state.  Capacities only grow, so the flow already in the
  network stays feasible; Dinic merely augments the difference.
* **checkpoint restore** -- the caller recorded the residual state at
  the best feasible lower bound (``checkpoint()``); any later guess of
  the binary search exceeds that bound, so the network restores the
  checkpointed max flow in one O(E) copy and advances from there.
* **cold reset** -- otherwise, capacities are recomputed from
  ``base + coeff·α`` and the flow starts from zero (bit-equal to a
  fresh build at that α).

Monotonicity argument: for α' ≥ α every capacity satisfies
``cap(α') ≥ cap(α)``, so a feasible (in particular a maximum) flow for α
is feasible for α', and augmenting it to a maximum flow yields the same
*minimal* source-side min cut as a cold solve -- the source-reachable
set in the residual graph of a maximum flow is the unique minimal min
cut, independent of which maximum flow was reached.  Sink-arc residuals
are recomputed as ``(base + coeff·α) − flow`` (flow read off the
reverse arc), not accumulated, so no float drift builds up across a
warm chain.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .network import EPS, build_csr, source_reachable


class ParametricNetwork:
    """CSR arc-array flow network whose sink capacities are affine in α.

    Node ids are dense integers: the graph vertices occupy ``0..nv-1``
    (``vertex_labels[i]`` maps back to the external label), then source,
    sink, and any instance/group nodes.  Use the builders in
    :mod:`repro.flow.builders` (``build_eds_parametric`` and friends)
    rather than constructing directly.
    """

    __slots__ = (
        "num_nodes",
        "source",
        "sink",
        "head",
        "base_cap",
        "cap",
        "adj_start",
        "adj_arcs",
        "alpha_arcs",
        "alpha_coeff",
        "alpha_src",
        "vertex_labels",
        "_alpha",
        "_canceled",
        "_checkpoint_alpha",
        "_checkpoint_cap",
        "_min_coeff",
    )

    def __init__(
        self,
        num_nodes: int,
        source: int,
        sink: int,
        head: list[int],
        base_cap: list[float],
        alpha_arcs: list[int],
        alpha_coeff: list[float],
        vertex_labels: Sequence,
        alpha_src: Optional[list[int]] = None,
    ):
        self.num_nodes = num_nodes
        self.source = source
        self.sink = sink
        self.head = head
        self.base_cap = base_cap
        self.alpha_arcs = alpha_arcs
        self.alpha_coeff = alpha_coeff
        # alpha_src[i]: arc id of the paired (finite) s -> v arc of the
        # vertex whose sink arc is alpha_arcs[i], or -1 when unknown --
        # enables the pass-through cancellation on cold solves.
        self.alpha_src = alpha_src if alpha_src is not None else [-1] * len(alpha_arcs)
        self.vertex_labels = list(vertex_labels)
        self.adj_start, self.adj_arcs = build_csr(head, num_nodes)
        self.cap = list(base_cap)
        self._alpha: Optional[float] = None
        self._canceled = False
        self._checkpoint_alpha: Optional[float] = None
        self._checkpoint_cap: Optional[list[float]] = None
        self._min_coeff = min(alpha_coeff, default=0.0)

    @property
    def num_arcs(self) -> int:
        """Number of forward arcs (reverse arcs not counted)."""
        return len(self.head) // 2

    def flow_arrays(self) -> tuple[int, int, list[int], list[float], list[int], list[int]]:
        """``(source, sink, head, cap, adj_start, adj_arcs)`` for the solvers."""
        return self.source, self.sink, self.head, self.cap, self.adj_start, self.adj_arcs

    # --- α management -------------------------------------------------

    def set_alpha(self, alpha: float) -> None:
        """Cold reset: capacities for ``alpha``, zero flow (O(E), in place).

        Where the paired source arc is known, the pass-through volume
        ``c_v = min(cap(s→v), cap(v→t))`` is cancelled from both arcs:
        every s-t cut contains exactly one of the two, so all cut values
        shift by the constant ``Σ c_v`` and the min-cut *sets* are
        untouched, while the max-flow volume (the augmenting-path count
        of the saturating probe solves) collapses from ``Σ deg`` to
        ``Σ (deg − coeff·α)⁺``.  :meth:`_uncancel` converts the residual
        state back to the plain network before any warm start.
        """
        self.cap = list(self.base_cap)
        cap, base = self.cap, self.base_cap
        for a, c, s in zip(self.alpha_arcs, self.alpha_coeff, self.alpha_src):
            t = base[a] + c * alpha
            if s >= 0:
                cv = t if t < base[s] else base[s]
                cap[a] = t - cv
                cap[s] = base[s] - cv
            else:
                cap[a] = t
        self._alpha = alpha
        self._canceled = True

    def _uncancel(self) -> None:
        """Convert a cancelled residual state to the plain network's.

        Adding the pass-through ``c_v`` back as flow on both arcs keeps
        conservation (in and out of ``v`` grow by ``c_v``) and respects
        the plain capacities, so only the two reverse-arc residuals
        change; forward residuals are already identical.  The result is
        a maximum flow of the plain network at the current α, fit to
        warm-start from.
        """
        cap, base = self.cap, self.base_cap
        alpha = self._alpha
        for a, c, s in zip(self.alpha_arcs, self.alpha_coeff, self.alpha_src):
            if s >= 0:
                t = base[a] + c * alpha
                cv = t if t < base[s] else base[s]
                if cv > 0.0:
                    cap[a ^ 1] += cv
                    cap[s ^ 1] += cv
        self._canceled = False

    def _advance_alpha(self, alpha: float) -> None:
        """Raise α keeping the current flow (requires ``alpha >= self._alpha``).

        Each α-arc's residual is recomputed exactly as capacity minus the
        flow it carries (read off the reverse arc), so a warm chain
        reproduces the same floats as a single jump from the base state.
        """
        cap, base = self.cap, self.base_cap
        for a, c in zip(self.alpha_arcs, self.alpha_coeff):
            flow = cap[a ^ 1] - base[a ^ 1]
            cap[a] = base[a] + c * alpha - flow
        self._alpha = alpha

    def _warm_step_ok(self, delta: float) -> bool:
        """Whether a warm start is safe for an α step of ``delta``.

        The solvers treat residuals below :data:`~repro.flow.network.EPS`
        as saturated, so a step that opens each sink arc by less than a
        comfortable multiple of EPS could leave true augmenting paths
        invisible and flip the feasibility verdict; such steps take the
        cold reset instead.  Binary searches stop at a resolution of
        ``1/(n(n-1))``, far above this threshold at any tractable scale.
        """
        return delta * self._min_coeff > 10.0 * EPS

    def checkpoint(self) -> None:
        """Record the current residual state as a warm-start base.

        Call after a solve whose α became the binary search's new lower
        bound: every later guess is ≥ that α, so every later solve can
        restore this max flow instead of starting from zero.
        """
        if self._canceled:  # normalise direct set_alpha/max_flow usage
            self._uncancel()
        self._checkpoint_alpha = self._alpha
        self._checkpoint_cap = list(self.cap)

    def solve(self, alpha: float, solver=None) -> set:
        """Max-flow at ``alpha``; return the source-side cut vertex set.

        Picks the cheapest valid warm-start (advance > checkpoint >
        cold reset), runs the solver (Dinic by default), and returns the
        graph vertices on the source side of the minimal min cut
        (excluding source/instance nodes) -- non-empty iff a subgraph
        with Ψ-density above ``alpha`` exists (Lemma 14).
        """
        if self._alpha is not None and alpha == self._alpha:
            pass  # residual state is already a max flow at this α
        elif (
            self._alpha is not None
            and alpha >= self._alpha
            and self._warm_step_ok(alpha - self._alpha)
        ):
            self._advance_alpha(alpha)
        elif (
            self._checkpoint_cap is not None
            and self._checkpoint_alpha is not None
            and alpha >= self._checkpoint_alpha
            and self._warm_step_ok(alpha - self._checkpoint_alpha)
        ):
            self.cap = list(self._checkpoint_cap)
            self._alpha = self._checkpoint_alpha
            self._advance_alpha(alpha)
        else:
            self.set_alpha(alpha)
        if solver is None:
            from . import dinic as solver  # late import avoids a cycle
        solver.max_flow(self)
        if self._canceled:
            self._uncancel()
        return self.cut_vertices()

    # --- cut extraction ----------------------------------------------

    def min_cut_source_side(self) -> set[int]:
        """Source side of the min cut, as internal node ids."""
        seen = source_reachable(self.head, self.cap, self.adj_start, self.adj_arcs, self.source)
        return {i for i in range(self.num_nodes) if seen[i]}

    def cut_vertices(self) -> set:
        """Graph vertices (external labels) on the source side of the cut."""
        labels = self.vertex_labels
        seen = source_reachable(self.head, self.cap, self.adj_start, self.adj_arcs, self.source)
        return {labels[i] for i in range(len(labels)) if seen[i]}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ParametricNetwork(nodes={self.num_nodes}, arcs={self.num_arcs}, "
            f"alpha={self._alpha})"
        )
