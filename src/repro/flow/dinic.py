"""Dinic's max-flow algorithm (BFS level graph + iterative blocking flow).

The default min-cut engine of the reproduction.  O(V^2 E) in general,
much faster on the shallow, unit-ish networks that the DSD constructions
produce (the paper's reference uses Gusfield's variant; any exact solver
yields identical min cuts).  The blocking-flow DFS is iterative so deep
level graphs (the Goldberg EDS network chains vertex nodes) cannot hit
the interpreter recursion limit.

The solver runs on the flat arc arrays exposed by
``network.flow_arrays()`` (both :class:`~repro.flow.network.FlowNetwork`
and :class:`~repro.flow.parametric.ParametricNetwork` provide it).  On
networks above :data:`NUMPY_BFS_MIN_ARCS` arcs the BFS level
construction is vectorised with numpy: each round relaxes every residual
arc whose tail sits on the current frontier in a handful of O(E) array
ops, which beats the scalar queue on the shallow DSD networks.
"""

from __future__ import annotations

import os

from .network import EPS

if os.environ.get("REPRO_NO_NUMPY"):  # explicit opt-out for CI / ablations
    np = None
else:
    try:  # optional: the scalar BFS is used when numpy is absent
        import numpy as np
    except ImportError:  # pragma: no cover - environment-specific
        np = None

#: Arc-array length above which the vectorised BFS pays for its
#: per-call numpy overhead (tuned on the bench surrogates).
NUMPY_BFS_MIN_ARCS = 8192


def _levels_scalar(
    head: list[int],
    cap: list[float],
    adj_start: list[int],
    adj_arcs: list[int],
    n: int,
    source: int,
    sink: int,
) -> list[int]:
    """BFS levels over residual arcs; stops once the sink's level is set."""
    level = [-1] * n
    level[source] = 0
    frontier = [source]
    depth = 0
    while frontier and level[sink] < 0:
        depth += 1
        nxt: list[int] = []
        for u in frontier:
            for idx in range(adj_start[u], adj_start[u + 1]):
                arc = adj_arcs[idx]
                v = head[arc]
                if level[v] < 0 and cap[arc] > EPS:
                    level[v] = depth
                    nxt.append(v)
        frontier = nxt
    return level


def _levels_numpy(
    head_np: "np.ndarray",
    tail_np: "np.ndarray",
    cap: list[float],
    n: int,
    source: int,
    sink: int,
) -> list[int]:
    """Arc-parallel BFS: one vectorised relaxation pass per level."""
    residual = np.asarray(cap) > EPS
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    depth = 0
    while True:
        grow = residual & (level[tail_np] == depth) & (level[head_np] < 0)
        if not grow.any():
            break
        level[head_np[grow]] = depth + 1
        if level[sink] >= 0:
            break
        depth += 1
    return level.tolist()


def max_flow(network) -> float:
    """Run Dinic on ``network`` in place; return the flow value pushed.

    Residual capacities are left in the network so the caller can read
    the min cut with ``min_cut_source_side`` / ``cut_vertices``.  When
    the network already carries flow (a warm-started
    :class:`~repro.flow.parametric.ParametricNetwork`), the return value
    is the *additional* flow pushed, and the residual state on exit is a
    max flow all the same.
    """
    source, sink, head, cap, adj_start, adj_arcs = network.flow_arrays()
    if source == sink:
        raise ValueError("source and sink must differ")
    n = len(adj_start) - 1
    total = 0.0

    use_numpy = np is not None and len(head) >= NUMPY_BFS_MIN_ARCS
    if use_numpy:
        head_np = np.asarray(head, dtype=np.int64)
        tail_np = head_np.reshape(-1, 2)[:, ::-1].reshape(-1)

    while True:
        # --- BFS: build the level graph ------------------------------
        if use_numpy:
            level = _levels_numpy(head_np, tail_np, cap, n, source, sink)
        else:
            level = _levels_scalar(head, cap, adj_start, adj_arcs, n, source, sink)
        if level[sink] < 0:
            return total

        # --- iterative DFS: push a blocking flow ----------------------
        it = adj_start[:n]  # per-node cursor into adj_arcs
        path: list[int] = []  # arcs from source down to the frontier
        u = source
        while True:
            if u == sink:
                pushed = cap[path[0]]
                for arc in path:
                    if cap[arc] < pushed:
                        pushed = cap[arc]
                for arc in path:
                    cap[arc] -= pushed
                    cap[arc ^ 1] += pushed
                total += pushed
                # retreat to just before the first saturated arc
                for i, arc in enumerate(path):
                    if cap[arc] <= EPS:
                        u = head[arc ^ 1]  # tail of the saturated arc
                        del path[i:]
                        break
                continue
            advanced = False
            end = adj_start[u + 1]
            while it[u] < end:
                arc = adj_arcs[it[u]]
                v = head[arc]
                if cap[arc] > EPS and level[v] == level[u] + 1:
                    path.append(arc)
                    u = v
                    advanced = True
                    break
                it[u] += 1
            if advanced:
                continue
            if u == source:
                break  # blocking flow complete for this phase
            # dead end: prune the node from this phase and retreat
            level[u] = -1
            arc = path.pop()
            u = head[arc ^ 1]
            it[u] += 1


def min_cut(network) -> tuple[float, set]:
    """Max-flow value and the source-side node set of a minimum s-t cut."""
    value = max_flow(network)
    return value, network.min_cut_source_side()
