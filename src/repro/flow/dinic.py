"""Dinic's max-flow algorithm (BFS level graph + iterative blocking flow).

The default min-cut engine of the reproduction.  O(V^2 E) in general,
much faster on the shallow, unit-ish networks that the DSD constructions
produce (the paper's reference uses Gusfield's variant; any exact solver
yields identical min cuts).  The blocking-flow DFS is iterative so deep
level graphs (the Goldberg EDS network chains vertex nodes) cannot hit
the interpreter recursion limit.
"""

from __future__ import annotations

from collections import deque

from .network import EPS, FlowNetwork


def max_flow(network: FlowNetwork) -> float:
    """Run Dinic on ``network`` in place; return the max-flow value.

    Residual capacities are left in the network so the caller can read
    the min cut with :meth:`FlowNetwork.min_cut_source_side`.
    """
    source = network.node_id(network.source)
    sink = network.node_id(network.sink)
    if source == sink:
        raise ValueError("source and sink must differ")
    head, cap, adj = network.head, network.cap, network.adj
    n = network.num_nodes
    total = 0.0

    while True:
        # --- BFS: build the level graph ------------------------------
        level = [-1] * n
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for arc in adj[u]:
                v = head[arc]
                if cap[arc] > EPS and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        if level[sink] < 0:
            return total

        # --- iterative DFS: push a blocking flow ----------------------
        it = [0] * n
        path: list[int] = []  # arcs from source down to the frontier
        u = source
        while True:
            if u == sink:
                pushed = min(cap[arc] for arc in path)
                for arc in path:
                    cap[arc] -= pushed
                    cap[arc ^ 1] += pushed
                total += pushed
                # retreat to just before the first saturated arc
                for i, arc in enumerate(path):
                    if cap[arc] <= EPS:
                        u = head[arc ^ 1]  # tail of the saturated arc
                        del path[i:]
                        break
                continue
            advanced = False
            while it[u] < len(adj[u]):
                arc = adj[u][it[u]]
                v = head[arc]
                if cap[arc] > EPS and level[v] == level[u] + 1:
                    path.append(arc)
                    u = v
                    advanced = True
                    break
                it[u] += 1
            if advanced:
                continue
            if u == source:
                break  # blocking flow complete for this phase
            # dead end: prune the node from this phase and retreat
            level[u] = -1
            arc = path.pop()
            u = head[arc ^ 1]
            it[u] += 1


def min_cut(network: FlowNetwork) -> tuple[float, set]:
    """Max-flow value and the source-side node set of a minimum s-t cut."""
    value = max_flow(network)
    return value, network.min_cut_source_side()
