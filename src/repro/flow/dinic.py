"""Dinic's max-flow algorithm (BFS level graph + iterative blocking flow).

The default min-cut engine of the reproduction.  O(V^2 E) in general,
much faster on the shallow, unit-ish networks that the DSD constructions
produce (the paper's reference uses Gusfield's variant; any exact solver
yields identical min cuts).  The blocking-flow DFS is iterative so deep
level graphs (the Goldberg EDS network chains vertex nodes) cannot hit
the interpreter recursion limit.

The solver runs on the flat arc arrays exposed by
``network.flow_arrays()`` (both :class:`~repro.flow.network.FlowNetwork`
and :class:`~repro.flow.parametric.ParametricNetwork` provide it) and
dispatches through the :mod:`repro.accel` kernel registry: the numba
tier compiles the whole BFS + DFS to native code, the numpy tier
vectorises the BFS level construction above
:data:`~repro.accel.vector.NUMPY_BFS_MIN_ARCS` arcs, and the python
tier runs the portable scalar loops.  All tiers are bit-identical.
"""

from __future__ import annotations

from .. import accel

__all__ = ["max_flow", "min_cut", "solve_stats"]


def solve_stats() -> dict:
    """Work counters of the most recent traced max-flow call.

    A copy of :data:`repro.accel.last_solve` (kernel, tier, arcs,
    bfs_passes, augments, bfs_mode, seconds).  Populated only while
    tracing is enabled (``obs.enable()`` / ``REPRO_TRACE``); empty
    otherwise.
    """
    return dict(accel.last_solve)


def max_flow(network) -> float:
    """Run Dinic on ``network`` in place; return the flow value pushed.

    Residual capacities are left in the network so the caller can read
    the min cut with ``min_cut_source_side`` / ``cut_vertices``.  When
    the network already carries flow (a warm-started
    :class:`~repro.flow.parametric.ParametricNetwork`), the return value
    is the *additional* flow pushed, and the residual state on exit is a
    max flow all the same.
    """
    source, sink, head, cap, adj_start, adj_arcs = network.flow_arrays()
    if source == sink:
        raise ValueError("source and sink must differ")
    # parametric networks hint their warm-start mode; one-shot networks
    # have no such attribute and always solve cold
    return accel.dinic_max_flow(
        source, sink, head, cap, adj_start, adj_arcs,
        warm=getattr(network, "_warm_hint", False),
    )


def min_cut(network) -> tuple[float, set]:
    """Max-flow value and the source-side node set of a minimum s-t cut."""
    value = max_flow(network)
    return value, network.min_cut_source_side()
