"""In-memory artifact cache fronting the persistence tier.

One :class:`ArtifactCache` resolves ``(graph, h)`` to a
:class:`~repro.serve.snapshot.Snapshot` through three tiers, cheapest
first:

1. **memory hit** -- the snapshot object is already resident
   (``serve.hit``): zero work beyond the content hash;
2. **store load** -- the persistence tier has the artifacts
   (``serve.load``, emitted by the store): reconstruct from blobs, no
   enumeration, no flow;
3. **miss** -- run the full precompute (``serve.miss``), persist it,
   and keep it resident.

The memory tier is a bounded LRU over snapshot *objects* (entry count,
not bytes -- the byte-capped LRU lives in the store, where sizes are
known exactly); evictions count into ``obs`` so the summary's serve
rollup shows churn.  Every outcome increments its ``serve.*`` counter,
from which :func:`repro.obs.summary` derives the cache hit ratio -- the
serving layer's load metric.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Optional

from .. import obs
from ..graph.graph import Graph
from .snapshot import Snapshot, snapshot_key
from .store import SnapshotStore

__all__ = ["ArtifactCache"]


class ArtifactCache:
    """Keyed snapshot cache: memory LRU over an optional durable store."""

    def __init__(self, store: Optional[SnapshotStore] = None, max_entries: int = 32):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.store = store
        self.max_entries = max_entries
        self._mem: OrderedDict[str, Snapshot] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.loads = 0
        self.evictions = 0

    def get(
        self, graph: Graph, h: int = 2, *, workers: Optional[int] = None
    ) -> Snapshot:
        """The snapshot for ``(graph, h)``, building it only on a miss."""
        key = snapshot_key(graph, h)
        snap = self._mem.get(key)
        if snap is not None:
            self._mem.move_to_end(key)
            self.hits += 1
            obs.event("serve.hit", key=key, h=h)
            obs.counter("serve.hits")
            return snap
        if self.store is not None:
            snap = self.store.load(key)
            if snap is not None:
                self.loads += 1
                self._remember(key, snap)
                return snap
        t0 = time.perf_counter()
        snap = Snapshot(graph, h, workers=workers, key=key)
        obs.event("serve.miss", key=key, h=h, seconds=time.perf_counter() - t0)
        obs.counter("serve.misses")
        self.misses += 1
        if self.store is not None:
            self.store.save(snap)
        self._remember(key, snap)
        return snap

    def _remember(self, key: str, snap: Snapshot) -> None:
        self._mem[key] = snap
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)
            self.evictions += 1
            obs.counter("serve.evictions.memory")

    def clear(self) -> None:
        """Drop the resident snapshots (the store is untouched)."""
        self._mem.clear()

    def stats(self) -> dict:
        """Cache effectiveness counters plus the store's occupancy."""
        total = self.hits + self.misses + self.loads
        return {
            "entries": len(self._mem),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "loads": self.loads,
            "evictions": self.evictions,
            "hit_ratio": ((self.hits + self.loads) / total) if total else None,
            "store": self.store.stats() if self.store is not None else None,
        }
