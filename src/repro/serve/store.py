"""SQLite persistence tier: warm snapshot state survives process restarts.

One :class:`SnapshotStore` owns ``<root>/snapshots.sqlite`` in WAL mode
(concurrent readers never block each other or a writer -- the shape the
serving layer needs for many processes answering off one store).  Three
tables:

``snapshots``
    One row per stored snapshot: the content-hash key, ``h``, the EPS
    the flow layer was tuned to when the artifact was built, the global
    label list, the env fingerprint, byte size and LRU bookkeeping.
``components``
    One row per connected component: the flat int64/float64 artifact
    arrays (edges, clique rows, walk cut, breakpoint family) packed as
    little-endian blobs via :mod:`array` -- loadable with or without
    numpy, byte-exact both ways.
``results``
    The materialized densest-subgraph answer per snapshot, so the most
    common query is one indexed row read even before the component
    artifacts are touched.

Loading checks the stored EPS against the live
:data:`repro.flow.network.EPS`: a flow-layer retune silently invalidates
every persisted family, so a mismatched row is deleted, not served.
Densities are never persisted as trusted floats -- every cut travels
with its exact integer instance count, and a restored snapshot re-derives
each served density as the same single division the builder performed,
which is the whole bit-identity argument.

When a byte cap is configured, saves evict least-recently-used
snapshots (``last_used_s``; loads refresh it) until the store fits,
counting evictions locally and in ``obs``.
"""

from __future__ import annotations

import json
import sqlite3
import time
from array import array
from pathlib import Path
from typing import Optional

from .. import obs
from ..core.exact import DensestSubgraphResult
from ..flow.network import EPS
from .snapshot import ComponentArtifact, Snapshot

__all__ = ["SnapshotStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS snapshots (
    key TEXT PRIMARY KEY,
    h INTEGER NOT NULL,
    eps REAL NOT NULL,
    n INTEGER NOT NULL,
    m INTEGER NOT NULL,
    labels TEXT NOT NULL,
    env TEXT NOT NULL,
    iterations INTEGER NOT NULL,
    nbytes INTEGER NOT NULL,
    created_s REAL NOT NULL,
    last_used_s REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS components (
    key TEXT NOT NULL,
    cid INTEGER NOT NULL,
    labels TEXT NOT NULL,
    esrc BLOB NOT NULL,
    edst BLOB NOT NULL,
    inst_rows BLOB NOT NULL,
    nodes INTEGER NOT NULL,
    walk_cut BLOB,
    walk_rho REAL NOT NULL,
    walk_count INTEGER NOT NULL,
    walk_solves INTEGER NOT NULL,
    fam_alphas BLOB NOT NULL,
    fam_counts BLOB NOT NULL,
    fam_offsets BLOB NOT NULL,
    fam_cutids BLOB NOT NULL,
    PRIMARY KEY (key, cid)
);
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    density REAL NOT NULL,
    vertices BLOB NOT NULL,
    iterations INTEGER NOT NULL
);
"""


def _pack_i(values) -> bytes:
    """Ints as a little-endian int64 blob (``array`` -- numpy-free)."""
    return array("q", [int(v) for v in values]).tobytes()


def _unpack_i(blob: Optional[bytes]) -> list[int]:
    out = array("q")
    if blob:
        out.frombytes(blob)
    return out.tolist()


def _pack_f(values) -> bytes:
    """Floats as a little-endian float64 blob -- exact IEEE-754 bytes."""
    return array("d", [float(v) for v in values]).tobytes()


def _unpack_f(blob: Optional[bytes]) -> list[float]:
    out = array("d")
    if blob:
        out.frombytes(blob)
    return out.tolist()


class SnapshotStore:
    """Durable artifact store under ``root`` (created if missing).

    Parameters
    ----------
    root:
        Directory holding ``snapshots.sqlite``.
    cap_bytes:
        Optional LRU byte cap over the summed component-blob sizes;
        ``None`` (or 0) stores without bound.
    """

    def __init__(self, root, *, cap_bytes: Optional[int] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / "snapshots.sqlite"
        self.cap_bytes = int(cap_bytes) if cap_bytes else None
        self.evictions = 0
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # --- write ---------------------------------------------------------

    def save(self, snap: Snapshot) -> bool:
        """Persist ``snap`` (idempotent by key); returns success.

        Materializes the densest-subgraph answer into ``results`` first,
        so a later load can serve the headline query from one row.
        Labels must be JSON-serializable; a snapshot whose labels are
        not simply skips persistence (``False``) rather than failing the
        request that built it.
        """
        try:
            labels_json = json.dumps(snap.labels)
            comp_labels = [json.dumps(art.labels) for art in snap.components]
        except TypeError:
            return False
        densest = snap.densest_subgraph()
        id_of = {v: i for i, v in enumerate(snap.labels)}
        result_ids = _pack_i(sorted(id_of[v] for v in densest.vertices))
        now = time.time()
        nbytes = 0
        comp_rows = []
        for art, labels in zip(snap.components, comp_labels):
            offsets = [0]
            cutids: list[int] = []
            for ids in art.fam_cuts:
                cutids.extend(ids)
                offsets.append(len(cutids))
            blobs = (
                _pack_i(art.esrc),
                _pack_i(art.edst),
                _pack_i(art.rows),
                _pack_i(art.walk_cut) if art.walk_cut is not None else None,
                _pack_f(art.fam_alphas),
                _pack_i(art.fam_counts),
                _pack_i(offsets),
                _pack_i(cutids),
            )
            nbytes += sum(len(b) for b in blobs if b is not None) + len(labels)
            comp_rows.append(
                (
                    snap.key, art.cid, labels, blobs[0], blobs[1], blobs[2],
                    art.nodes, blobs[3], art.walk_rho, art.walk_count,
                    art.walk_solves, blobs[4], blobs[5], blobs[6], blobs[7],
                )
            )
        with self._conn:
            self._conn.execute("DELETE FROM components WHERE key = ?", (snap.key,))
            self._conn.executemany(
                "INSERT INTO components VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                comp_rows,
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO results VALUES (?, ?, ?, ?)",
                (snap.key, densest.density, result_ids, densest.iterations),
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO snapshots VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    snap.key, snap.h, snap.eps, snap.n, snap.num_edges,
                    labels_json, json.dumps(snap.env), densest.iterations,
                    nbytes, now, now,
                ),
            )
        self._evict()
        return True

    def _evict(self) -> None:
        """Drop LRU snapshots until the byte cap holds (newest survives)."""
        if self.cap_bytes is None:
            return
        rows = self._conn.execute(
            "SELECT key, nbytes FROM snapshots ORDER BY last_used_s ASC"
        ).fetchall()
        total = sum(nbytes for _, nbytes in rows)
        for key, nbytes in rows:
            if total <= self.cap_bytes or len(rows) <= 1:
                break
            self.delete(key)
            rows = rows[1:]
            total -= nbytes
            self.evictions += 1
            obs.counter("serve.evictions.store")

    def delete(self, key: str) -> None:
        """Remove one snapshot and its artifacts (no-op if absent)."""
        with self._conn:
            self._conn.execute("DELETE FROM snapshots WHERE key = ?", (key,))
            self._conn.execute("DELETE FROM components WHERE key = ?", (key,))
            self._conn.execute("DELETE FROM results WHERE key = ?", (key,))

    # --- read ----------------------------------------------------------

    def load(self, key: str) -> Optional[Snapshot]:
        """Restore a snapshot by key -- no enumeration, no flow.

        Returns ``None`` on a miss, and deletes-then-misses a row whose
        stored EPS differs from the live flow layer's (the persisted
        breakpoint family would no longer match what a cold solve
        computes).
        """
        t0 = time.perf_counter()
        row = self._conn.execute(
            "SELECT h, eps, n, m, labels, env, nbytes FROM snapshots WHERE key = ?",
            (key,),
        ).fetchone()
        if row is None:
            return None
        h, eps, _n, num_edges, labels_json, env_json, nbytes = row
        if eps != EPS:
            self.delete(key)
            return None
        labels = json.loads(labels_json)
        components = []
        for crow in self._conn.execute(
            "SELECT cid, labels, esrc, edst, inst_rows, nodes, walk_cut, "
            "walk_rho, walk_count, walk_solves, fam_alphas, fam_counts, "
            "fam_offsets, fam_cutids FROM components WHERE key = ? ORDER BY cid",
            (key,),
        ):
            offsets = _unpack_i(crow[12])
            cutids = _unpack_i(crow[13])
            fam_cuts = [
                tuple(cutids[offsets[i] : offsets[i + 1]])
                for i in range(len(offsets) - 1)
            ]
            components.append(
                ComponentArtifact(
                    cid=crow[0],
                    labels=json.loads(crow[1]),
                    esrc=_unpack_i(crow[2]),
                    edst=_unpack_i(crow[3]),
                    rows=_unpack_i(crow[4]),
                    nodes=crow[5],
                    walk_cut=tuple(_unpack_i(crow[6])) if crow[6] is not None else None,
                    walk_rho=crow[7],
                    walk_count=crow[8],
                    walk_solves=crow[9],
                    fam_alphas=_unpack_f(crow[10]),
                    fam_counts=_unpack_i(crow[11]),
                    fam_cuts=fam_cuts,
                )
            )
        densest = None
        rrow = self._conn.execute(
            "SELECT density, vertices, iterations FROM results WHERE key = ?", (key,)
        ).fetchone()
        if rrow is not None:
            densest = DensestSubgraphResult(
                vertices={labels[i] for i in _unpack_i(rrow[1])},
                density=rrow[0],
                method="Exact",
                iterations=rrow[2],
                stats={
                    "snapshot": key,
                    "served": True,
                    "flow_solves": 0,
                    "components": len(components),
                },
            )
        snap = Snapshot.restore(
            key=key,
            h=h,
            eps=eps,
            labels=labels,
            num_edges=num_edges,
            components=components,
            env=json.loads(env_json),
            densest=densest,
        )
        with self._conn:
            self._conn.execute(
                "UPDATE snapshots SET last_used_s = ? WHERE key = ?",
                (time.time(), key),
            )
        obs.event(
            "serve.load",
            key=key,
            h=h,
            seconds=time.perf_counter() - t0,
            bytes=int(nbytes),
        )
        obs.counter("serve.loads")
        return snap

    def keys(self) -> list[str]:
        """Stored snapshot keys, most recently used last."""
        return [
            key
            for (key,) in self._conn.execute(
                "SELECT key FROM snapshots ORDER BY last_used_s ASC"
            )
        ]

    def stats(self) -> dict:
        """Store occupancy: snapshot count, total bytes, evictions."""
        count, nbytes = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM snapshots"
        ).fetchone()
        return {
            "path": str(self.path),
            "snapshots": count,
            "bytes": nbytes,
            "cap_bytes": self.cap_bytes,
            "evictions": self.evictions,
        }

    def close(self) -> None:
        """Commit and release the connection (the file stays loadable)."""
        self._conn.commit()
        self._conn.close()
