"""Immutable snapshot artifacts: precompute once, answer with zero flow work.

A :class:`Snapshot` materialises everything the exact solvers would
compute for one ``(graph, h)`` pair -- per connected component the
canonical clique rows, the GGT discrete-Newton walk result, and the
*entire* nested min-cut breakpoint family from
:meth:`~repro.flow.parametric.ParametricNetwork.solve_breakpoints` --
behind a content-hash key over the vertex/edge arrays, ``h`` and
:data:`~repro.flow.network.EPS`.  After that one precompute, every
query is a lookup:

* :meth:`Snapshot.densest_subgraph` replays the per-component merge of
  :func:`repro.core.exact.exact_densest` over the stored walk results --
  bit-identical to the cold path by construction (same cuts, same
  comparisons, densities recomputed from the stored exact
  instance-count / size integer pairs, so the floats match exactly);
* :meth:`Snapshot.query_density` binary-searches the breakpoint family
  (right-continuous: the applicable cut at ``α`` is the last entry with
  breakpoint ``α_i <= α``, the same convention the parametric tests
  pin against cold solves);
* :meth:`Snapshot.density_profile` and :meth:`Snapshot.top_k` read the
  whole piecewise structure.

None of the query methods touches a flow network: the ``flow.solves``
counter stays at zero across any number of warm queries (asserted in
``tests/test_serve.py`` and ``benchmarks/bench_serve_cache.py``).

Densities are never stored as bare floats to be trusted blindly --
every cut is stored with its exact instance count, and each served
density is the single correctly-rounded division ``count / size``.
Equal rationals round identically, which is the whole bit-identity
argument (the same one the parallel merge in ``core/exact.py`` uses).
"""

from __future__ import annotations

import hashlib
import struct
from bisect import bisect_right
from dataclasses import dataclass, field
from math import isfinite
from typing import NamedTuple, Optional

from .. import guard, obs
from ..cliques.index import CliqueIndex
from ..core.exact import DensestSubgraphResult
from ..flow.builders import build_cds_parametric, build_eds_parametric
from ..flow.network import EPS
from ..graph.graph import Graph, Vertex

__all__ = [
    "ComponentArtifact",
    "CutInfo",
    "DensityAnswer",
    "Snapshot",
    "bits_to_float",
    "float_bits",
    "snapshot_key",
]


def snapshot_key(graph: Graph, h: int) -> str:
    """Content-hash key of a ``(graph, h)`` snapshot.

    SHA-256 over the format version, ``h``, :data:`EPS`, the vertex
    count/labels (in graph iteration order) and the edge id pairs
    (sorted, so neighbour-set iteration order cannot leak in).  Two
    graphs with the same labels inserted in the same order and the same
    edge set collide; anything else -- including a different EPS after
    a flow-layer retune -- misses.
    """
    hasher = hashlib.sha256()
    hasher.update(
        f"serve-snapshot-v1|h={h}|eps={EPS!r}|n={graph.num_vertices}"
        f"|m={graph.num_edges}".encode()
    )
    labels = list(graph)
    id_of = {v: i for i, v in enumerate(labels)}
    for v in labels:
        hasher.update(repr(v).encode())
        hasher.update(b"\x00")
    pairs = sorted(
        (id_of[u], id_of[v]) if id_of[u] < id_of[v] else (id_of[v], id_of[u])
        for u, v in graph.edges()
    )
    for a, b in pairs:
        hasher.update(a.to_bytes(8, "little"))
        hasher.update(b.to_bytes(8, "little"))
    return hasher.hexdigest()


def float_bits(x: float) -> int:
    """IEEE-754 bit pattern of ``x`` as a signed int64 (shm transport)."""
    return struct.unpack("<q", struct.pack("<d", x))[0]


def bits_to_float(bits: int) -> float:
    """Inverse of :func:`float_bits` -- exact, no rounding."""
    return struct.unpack("<d", struct.pack("<q", bits))[0]


@dataclass
class DensityAnswer:
    """Answer to one ``query_density(alpha)`` lookup.

    ``vertices`` is the minimal source-side min cut at ``alpha`` -- the
    minimal vertex set inducing a subgraph of Ψ-density > ``alpha``
    (empty when none exists); ``count`` its exact instance count.
    """

    alpha: float
    vertices: set
    density: float
    count: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.vertices)


class CutInfo(NamedTuple):
    """One distinct cut of the breakpoint family (``top_k`` rows)."""

    vertices: frozenset
    density: float
    component: int


@dataclass
class ComponentArtifact:
    """One connected component's share of a snapshot.

    Vertex ids are dense ints over ``labels`` (the component's
    graph-iteration order -- the exact order the parallel workers use,
    so every stored cut is the one the solvers produce).  ``fam_*``
    hold the breakpoint family sorted by α: ``fam_cuts[i]`` is the
    minimal min cut on ``[fam_alphas[i], fam_alphas[i+1])`` and
    ``fam_counts[i]`` its exact instance count.
    """

    cid: int
    labels: list
    esrc: list[int]
    edst: list[int]
    rows: list[int]
    nodes: int
    walk_cut: Optional[tuple[int, ...]]
    walk_rho: float
    walk_count: int
    walk_solves: int
    fam_alphas: list[float]
    fam_cuts: list[tuple[int, ...]]
    fam_counts: list[int]

    def lookup(self, alpha: float) -> int:
        """Family index applicable at ``alpha`` (right-continuous)."""
        return max(0, bisect_right(self.fam_alphas, alpha) - 1)

    def cut_labels(self, ids) -> set:
        """A stored id tuple as external vertex labels."""
        labels = self.labels
        return {labels[i] for i in ids}


class Snapshot:
    """Immutable query artifact for one ``(graph, h)`` pair.

    Building one runs the full exact precompute (clique enumeration,
    one GGT walk plus one breakpoint sweep per component -- every flow
    solve ticks the active :class:`repro.guard.Budget`, so a deadline
    degrades the *build*, never a warm query).  Every method after that
    is flow-free.  Instances are restored from the persistence tier via
    :meth:`restore` without re-running anything.
    """

    __slots__ = (
        "key", "h", "eps", "n", "num_edges", "labels", "components",
        "env", "loaded", "_densest", "_shared", "_entry_map",
    )

    def __init__(
        self,
        graph: Graph,
        h: int = 2,
        *,
        index: Optional[CliqueIndex] = None,
        workers: Optional[int] = None,
        key: Optional[str] = None,
    ):
        if h < 2:
            raise ValueError("h must be >= 2")
        self.h = h
        self.eps = EPS
        self.key = key if key is not None else snapshot_key(graph, h)
        self.labels = list(graph)
        self.n = graph.num_vertices
        self.num_edges = graph.num_edges
        self.components: list[ComponentArtifact] = []
        self.env = obs.env_fingerprint()
        self.loaded = False
        self._densest: Optional[DensestSubgraphResult] = None
        self._shared: Optional[dict] = None
        self._entry_map: Optional[list[tuple[int, int]]] = None
        with obs.span("serve.precompute", h=h, n=self.n):
            self._precompute(graph, index, workers)
            obs.counter("serve.precomputes")

    # --- precompute ----------------------------------------------------

    def _precompute(
        self, graph: Graph, index: Optional[CliqueIndex], workers: Optional[int]
    ) -> None:
        if self.n == 0:
            return
        if self.h >= 3 and index is None:
            index = CliqueIndex(graph, self.h, workers=workers)
        for cid, cc in enumerate(graph.connected_components()):
            sub = graph.subgraph(cc)
            labels = list(sub)
            id_of = {v: i for i, v in enumerate(labels)}
            pairs = []
            for u in sub:
                iu = id_of[u]
                for v in sub.neighbors(u):
                    iv = id_of[v]
                    if iu < iv:
                        pairs.append((iu, iv))
            pairs.sort()
            esrc = [p[0] for p in pairs]
            edst = [p[1] for p in pairs]
            if self.h == 2:
                subidx = None
                rows: list[int] = []
                m_inst = sub.num_edges
                dmax = sub.max_degree()
                density_of = lambda s: sub.subgraph(s).num_edges / len(s)
                count_of = lambda s: sub.subgraph(s).num_edges
            else:
                subidx = index.subindex(sub)
                rows = list(subidx.inst)
                m_inst = subidx.m
                dmax = max(subidx.initial_degrees().values(), default=0)
                density_of = subidx.density_within
                count_of = subidx.count_within
            if m_inst == 0:
                # no Ψ instance: the cut is empty at every α >= 0, so
                # the component needs no network and no solves at all
                self.components.append(
                    ComponentArtifact(
                        cid, labels, esrc, edst, rows, 0,
                        None, 0.0, 0, 0, [0.0], [()], [0],
                    )
                )
                continue
            if self.h == 2:
                net = build_eds_parametric(sub)
            else:
                net = build_cds_parametric(sub, self.h, index=subidx)
            cut, rho, solves = net.max_density(density_of, low=0.0)
            # ρ* <= dmax/h (h·μ(S) = Σ_{v∈S} deg_Ψ,S(v) <= |S|·dmax), so
            # the family on [0, dmax/h] covers the whole α axis: beyond
            # its last breakpoint the cut is empty forever
            hi = float(dmax) / float(self.h)
            family = net.solve_breakpoints(0.0, hi)
            fam_alphas: list[float] = []
            fam_cuts: list[tuple[int, ...]] = []
            fam_counts: list[int] = []
            for alpha, cutset in family:
                fam_alphas.append(float(alpha))
                fam_cuts.append(tuple(sorted(id_of[v] for v in cutset)))
                fam_counts.append(int(count_of(cutset)) if cutset else 0)
            walk_ids = tuple(sorted(id_of[v] for v in cut)) if cut else None
            self.components.append(
                ComponentArtifact(
                    cid, labels, esrc, edst, rows, net.num_nodes,
                    walk_ids, float(rho),
                    int(count_of(cut)) if cut else 0, int(solves),
                    fam_alphas, fam_cuts, fam_counts,
                )
            )

    @classmethod
    def restore(
        cls,
        *,
        key: str,
        h: int,
        eps: float,
        labels: list,
        num_edges: int,
        components: list[ComponentArtifact],
        env: Optional[dict] = None,
        densest: Optional[DensestSubgraphResult] = None,
    ) -> "Snapshot":
        """Rebuild a snapshot from persisted artifacts -- no solving.

        Used by :class:`repro.serve.store.SnapshotStore`: every stored
        cut/count pair is complete, so a restored snapshot answers the
        same queries with the same bits as the instance that was saved.
        """
        snap = cls.__new__(cls)
        snap.key = key
        snap.h = h
        snap.eps = eps
        snap.labels = list(labels)
        snap.n = len(snap.labels)
        snap.num_edges = num_edges
        snap.components = components
        snap.env = env if env is not None else {}
        snap.loaded = True
        snap._densest = densest
        snap._shared = None
        snap._entry_map = None
        return snap

    # --- queries (all flow-free) ----------------------------------------

    @property
    def iterations(self) -> int:
        """Max-flow solves the precompute's Newton walks spent."""
        return sum(art.walk_solves for art in self.components)

    def matches(self, graph: Graph) -> bool:
        """Whether this snapshot was built from exactly ``graph``."""
        return self.key == snapshot_key(graph, self.h)

    def densest_subgraph(self) -> DensestSubgraphResult:
        """The Ψ-densest subgraph -- the stored per-component merge.

        Replays :func:`repro.core.exact.exact_densest`'s component merge
        (densest component wins, exact-float ties union) over the
        stored walk cuts; the density is recomputed as the one division
        ``Σ counts / |union|``, which is the same correctly-rounded
        float the cold path produces.  Zero flow solves.
        """
        budget = guard.ACTIVE
        if budget is not None:
            budget.tick_round("serve.query")
        if self._densest is None:
            self._densest = self._merge_walks()
        res = self._densest
        return DensestSubgraphResult(
            vertices=set(res.vertices),
            density=res.density,
            method=res.method,
            iterations=res.iterations,
            stats=dict(res.stats),
        )

    def _merge_walks(self) -> DensestSubgraphResult:
        iterations = 0
        maxrho = 0.0
        union: set[Vertex] = set()
        count = 0
        for art in self.components:
            iterations += art.walk_solves
            if not art.walk_cut:
                continue
            if art.walk_rho > maxrho:
                maxrho = art.walk_rho
                union = art.cut_labels(art.walk_cut)
                count = art.walk_count
            elif art.walk_rho == maxrho:
                union |= art.cut_labels(art.walk_cut)
                count += art.walk_count
        if union:
            vertices, density = union, count / len(union)
        else:
            # no component holds a Ψ instance: degenerate optimum, the
            # whole vertex set at density 0 (matches exact_densest)
            vertices, density = set(self.labels), 0.0
        return DensestSubgraphResult(
            vertices=vertices,
            density=density,
            method="Exact",
            iterations=iterations,
            stats={
                "snapshot": self.key,
                "served": True,
                "flow_solves": 0,
                "components": len(self.components),
            },
        )

    def query_density(self, alpha: float) -> DensityAnswer:
        """Minimal subgraph with Ψ-density > ``alpha`` (empty if none).

        A binary search per component over the stored breakpoint
        family; the union of the applicable cuts is exactly the
        whole-graph minimal min cut a cold parametric solve at
        ``alpha`` returns (flow never crosses components).
        """
        if not isfinite(alpha) or alpha < 0.0:
            raise ValueError(f"alpha must be a finite float >= 0, got {alpha!r}")
        budget = guard.ACTIVE
        if budget is not None:
            budget.tick_round("serve.query")
        vertices: set[Vertex] = set()
        count = 0
        for art in self.components:
            i = art.lookup(alpha)
            ids = art.fam_cuts[i]
            if not ids:
                continue
            vertices |= art.cut_labels(ids)
            count += art.fam_counts[i]
        density = count / len(vertices) if vertices else 0.0
        return DensityAnswer(alpha=alpha, vertices=vertices, density=density, count=count)

    def query_batch(
        self, alphas: list[float], *, workers: Optional[int] = None
    ) -> list[DensityAnswer]:
        """Many ``query_density`` lookups, optionally fanned out.

        With ``workers > 1`` the binary searches run through
        :func:`repro.par.map_components` over a shared int64 arena (the
        family's α bit patterns, counts and sizes ship once); answers
        are identical to the serial loop because the workers run the
        same search over the same integers.
        """
        from .. import par

        alphas = [float(a) for a in alphas]
        for a in alphas:
            if not isfinite(a) or a < 0.0:
                raise ValueError(f"alpha must be a finite float >= 0, got {a!r}")
        if par.resolve_workers(workers) <= 1 or len(alphas) <= 1:
            return [self.query_density(a) for a in alphas]
        budget = guard.ACTIVE
        if budget is not None:
            budget.tick_round("serve.query")
        shared, entry_map = self._shared_family()
        payloads = [{"alpha_bits": float_bits(a)} for a in alphas]
        from ..par import worker as par_worker

        outcomes = par.map_components(
            par_worker.serve_lookup,
            payloads,
            workers=workers,
            shared=shared,
            surface="serve.lookups",
        )
        answers = []
        for alpha, outcome in zip(alphas, outcomes):
            res = outcome["result"]
            vertices = set()
            for gi in res["entries"]:
                ai, li = entry_map[gi]
                art = self.components[ai]
                vertices |= art.cut_labels(art.fam_cuts[li])
            count = res["count"]
            density = count / len(vertices) if vertices else 0.0
            answers.append(
                DensityAnswer(alpha=alpha, vertices=vertices, density=density, count=count)
            )
        return answers

    def _shared_family(self) -> tuple[dict, list[tuple[int, int]]]:
        """The breakpoint family as flat shm-shippable int64 arrays."""
        if self._shared is None or self._entry_map is None:
            entoff = [0]
            bits: list[int] = []
            counts: list[int] = []
            sizes: list[int] = []
            entry_map: list[tuple[int, int]] = []
            for ai, art in enumerate(self.components):
                for li in range(len(art.fam_alphas)):
                    bits.append(float_bits(art.fam_alphas[li]))
                    counts.append(art.fam_counts[li])
                    sizes.append(len(art.fam_cuts[li]))
                    entry_map.append((ai, li))
                entoff.append(len(bits))
            from ..cliques import kernels

            np = kernels.np
            fields = {
                "serve.entoff": entoff,
                "serve.alphabits": bits,
                "serve.counts": counts,
                "serve.sizes": sizes,
            }
            self._shared = {
                key: np.asarray(val, dtype=np.int64) if np is not None else list(val)
                for key, val in fields.items()
            }
            self._entry_map = entry_map
        return self._shared, self._entry_map

    def density_profile(self) -> list[dict]:
        """The whole piecewise density structure, one row per breakpoint.

        Each row is ``{"alpha", "size", "count", "density"}`` -- the
        minimal cut applicable on ``[alpha, next_alpha)`` and its exact
        density.  The final row is always the empty cut (the family is
        computed out to the ``dmax/h`` upper bound, past every
        possible subgraph density).
        """
        alphas = sorted({a for art in self.components for a in art.fam_alphas})
        rows = []
        for alpha in alphas:
            answer = self.query_density(alpha)
            rows.append(
                {
                    "alpha": alpha,
                    "size": answer.size,
                    "count": answer.count,
                    "density": answer.density,
                }
            )
        return rows

    def top_k(self, k: int) -> list[CutInfo]:
        """The ``k`` densest distinct stored cuts, densest first.

        Candidates are every non-empty breakpoint cut plus each
        component's walk cut (they form the nested dense-subgraph
        family GGT discovered).  Deterministic order: density
        descending, then size, component id and the id tuple.
        """
        if k < 0:
            raise ValueError("k must be >= 0")
        budget = guard.ACTIVE
        if budget is not None:
            budget.tick_round("serve.query")
        best: dict[tuple[int, tuple[int, ...]], float] = {}
        for ai, art in enumerate(self.components):
            candidates = list(zip(art.fam_cuts, art.fam_counts))
            if art.walk_cut:
                candidates.append((art.walk_cut, art.walk_count))
            for ids, cnt in candidates:
                if not ids:
                    continue
                best[(ai, ids)] = cnt / len(ids)
        ranked = sorted(
            best.items(), key=lambda kv: (-kv[1], len(kv[0][1]), kv[0][0], kv[0][1])
        )
        out = []
        for (ai, ids), density in ranked[:k]:
            art = self.components[ai]
            out.append(CutInfo(frozenset(art.cut_labels(ids)), density, ai))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Snapshot(key={self.key[:12]}..., h={self.h}, n={self.n}, "
            f"components={len(self.components)}, loaded={self.loaded})"
        )
