"""Query serving: precompute a snapshot once, answer density queries free.

The GGT divide-and-conquer already computes the *entire* nested min-cut
breakpoint family of a graph -- after that one precompute, every
density / α / densest-subgraph query is a lookup, not a max-flow.  This
package productizes that observation into the serving layer the ROADMAP
targets:

* :class:`~repro.serve.snapshot.Snapshot` -- the immutable artifact
  (per-component clique rows, GGT walk result, full breakpoint family)
  behind a content-hash key; all query methods are flow-free and
  bit-identical to the cold solvers.
* :class:`~repro.serve.cache.ArtifactCache` -- memory LRU +
  ``serve.hit`` / ``serve.miss`` / ``serve.load`` telemetry.
* :class:`~repro.serve.store.SnapshotStore` -- SQLite (WAL) persistence
  so warm state survives process restarts.

Module-level entry points (wired to the default cache, which reads
``REPRO_SNAPSHOT_DIR`` / ``REPRO_SNAPSHOT_CAP``):

* :func:`get_snapshot` resolves ``(graph, h)`` through the cache;
* :func:`batch_densest` amortises one snapshot across a batch of
  queries, with per-batch ``guard.Budget`` deadlines degrading through
  the api's peel-fallback machinery instead of failing.

``api.densest_subgraph(graph, h, snapshot=snap)`` is the single-query
fast path over the same artifact.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .. import env, guard, obs
from ..core.exact import DensestSubgraphResult
from ..graph.graph import Graph
from .cache import ArtifactCache
from .snapshot import CutInfo, DensityAnswer, Snapshot, snapshot_key
from .store import SnapshotStore

__all__ = [
    "ArtifactCache",
    "CutInfo",
    "DensityAnswer",
    "Snapshot",
    "SnapshotStore",
    "batch_densest",
    "get_snapshot",
    "reset_cache",
    "snapshot_key",
]

#: The lazily-built default cache behind the module-level entry points.
#: Mutated via :func:`_default_cache` / :func:`reset_cache` only.
_CACHE: Optional[ArtifactCache] = None


def _default_cache() -> ArtifactCache:
    global _CACHE
    if _CACHE is None:
        root = env.text("REPRO_SNAPSHOT_DIR")
        store = None
        if root:
            cap = int(env.number("REPRO_SNAPSHOT_CAP"))
            store = SnapshotStore(root, cap_bytes=cap or None)
        _CACHE = ArtifactCache(store=store)
    return _CACHE


def reset_cache() -> None:
    """Drop the default cache (closing its store); it rebuilds lazily.

    Re-reads ``REPRO_SNAPSHOT_DIR`` / ``REPRO_SNAPSHOT_CAP`` on next
    use -- the test-suite hook for pointing the store at a temp dir.
    """
    global _CACHE
    if _CACHE is not None and _CACHE.store is not None:
        _CACHE.store.close()
    _CACHE = None


def get_snapshot(
    graph: Graph,
    h: int = 2,
    *,
    workers: Optional[int] = None,
    cache: Optional[ArtifactCache] = None,
) -> Snapshot:
    """The :class:`Snapshot` for ``(graph, h)`` via the cache tiers.

    A memory hit or store load performs zero enumeration and zero flow
    work; only a genuine miss runs the precompute (under the active
    :class:`repro.guard.Budget`, which therefore bounds the *build* --
    warm queries afterwards are pure lookups).  ``cache=None`` uses the
    process-default cache.
    """
    with obs.span("serve.snapshot", h=h, n=graph.num_vertices):
        budget = guard.ACTIVE
        if budget is not None:
            budget.tick_round("serve.snapshot")
        target = cache if cache is not None else _default_cache()
        return target.get(graph, h, workers=workers)


def batch_densest(
    graph: Graph,
    h: int = 2,
    alphas: Optional[Sequence[Optional[float]]] = None,
    *,
    workers: Optional[int] = None,
    deadline_s: Optional[float] = None,
    cache: Optional[ArtifactCache] = None,
) -> list[Union[DensestSubgraphResult, DensityAnswer]]:
    """Answer a batch of queries off one shared snapshot.

    ``alphas`` is one request per entry: ``None`` asks for the densest
    subgraph, a float ``α`` for the minimal subgraph of Ψ-density >
    ``α``.  Omitted entirely, the batch is a single densest-subgraph
    request.  The snapshot is resolved once (α-lookups then fan out
    through :meth:`Snapshot.query_batch` when ``workers`` says so), so
    ``n`` concurrent queries cost one precompute, not ``n``.

    ``deadline_s`` wraps the snapshot *build* in a
    :class:`repro.guard.Budget`.  If the build cannot finish, the batch
    degrades instead of failing: every request is answered through
    :func:`repro.api.densest_subgraph` under a fresh deadline, riding
    its incumbent/peel-fallback machinery, and each answer carries
    ``stats["degraded"]`` (α-answers then report the fallback subgraph
    when its density clears ``α``, with no exact instance count).
    """
    requests = [None] if alphas is None else list(alphas)
    with obs.span("serve.batch", h=h, requests=len(requests)):
        budget = guard.ACTIVE
        if budget is not None:
            budget.tick_round("serve.batch")
        try:
            if deadline_s is not None:
                with guard.Budget(deadline_s=deadline_s):
                    snap = get_snapshot(graph, h, workers=workers, cache=cache)
            else:
                snap = get_snapshot(graph, h, workers=workers, cache=cache)
        except guard.BudgetExceeded:
            return _degraded_batch(graph, h, requests, workers, deadline_s)
        qalphas = [float(a) for a in requests if a is not None]
        answers = iter(snap.query_batch(qalphas, workers=workers))
        return [
            snap.densest_subgraph() if req is None else next(answers)
            for req in requests
        ]


def _degraded_batch(
    graph: Graph,
    h: int,
    requests: list,
    workers: Optional[int],
    deadline_s: Optional[float],
) -> list[Union[DensestSubgraphResult, DensityAnswer]]:
    """Budget-expired fallback: answer everything via the api's machinery.

    One :func:`repro.api.densest_subgraph` call under a fresh deadline
    (its own incumbent / peel-fallback handling produces a degraded but
    bounded answer) serves the whole batch -- an α-request gets the
    fallback subgraph iff its density clears ``α``.
    """
    from .. import api  # late: api's snapshot= gate imports this package

    if deadline_s is not None:
        with guard.Budget(deadline_s=deadline_s):
            base = api.densest_subgraph(graph, h, workers=workers)
    else:  # pragma: no cover - deadline_s is the only BudgetExceeded source
        base = api.densest_subgraph(graph, h, workers=workers)
    degraded = {
        "degraded": True,
        "degraded_at": "serve.precompute",
        "fallback": base.stats.get("fallback", "api"),
    }
    out: list[Union[DensestSubgraphResult, DensityAnswer]] = []
    for req in requests:
        if req is None:
            res = DensestSubgraphResult(
                vertices=set(base.vertices),
                density=base.density,
                method=base.method,
                iterations=base.iterations,
                stats=dict(base.stats),
            )
            res.stats.update(degraded)
            out.append(res)
        else:
            alpha = float(req)
            feasible = base.density > alpha
            out.append(
                DensityAnswer(
                    alpha=alpha,
                    vertices=set(base.vertices) if feasible else set(),
                    density=base.density if feasible else 0.0,
                    count=0,
                    stats={**degraded, "count_unavailable": True},
                )
            )
    return out
