"""Named surrogate datasets standing in for the paper's graphs.

The paper evaluates on ten real graphs (Table 2), three additional real
graphs (Table 6) and three GTgraph synthetics.  This environment is
offline and pure-Python, so each real graph is replaced by a *seeded
synthetic surrogate* at laptop scale whose family matches the
structural properties the algorithms are sensitive to: a skewed
(power-law) degree distribution, local clustering, and a small dense
core -- or, for ER, deliberately none of those (the paper uses ER as
the adversarial case where core-based pruning is weakest).

DESIGN.md §5 records the substitution rationale.  Every surrogate is
deterministic (fixed seed), so benchmark tables are reproducible run
to run.  ``load(name, scale=...)`` shrinks or grows a surrogate while
keeping its family, which is how the benchmark suite trades fidelity
for wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..graph.generators import (
    chung_lu,
    erdos_renyi_gnm,
    holme_kim,
    planted_clique,
    power_law_weights,
    rmat,
    ssca,
)
from ..graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """A registry entry.

    Attributes
    ----------
    name:
        The paper's dataset name.
    category:
        ``"small"`` (exact algorithms run on it), ``"large"``
        (approximation algorithms only), ``"extra"`` (Appendix E),
        ``"synthetic"`` or ``"case-study"``.
    paper_vertices / paper_edges:
        The original dataset's size, for the Table-2 column.
    build:
        Factory ``scale -> Graph``; ``scale`` multiplies the surrogate's
        default vertex count.
    """

    name: str
    category: str
    paper_vertices: int
    paper_edges: int
    build: Callable[[float], Graph]


def _collab(n: int, m_per: int, clique: int, seed: int, scale: float) -> Graph:
    """Collaboration-style surrogate: power-law + one planted clique.

    The planted clique shrinks with sqrt(scale) so that down-scaled
    surrogates keep bench runtimes bounded (clique-instance counts grow
    combinatorially in the clique size).
    """
    size = max(int(n * scale), m_per + 2)
    clique_size = min(size, max(4, int(clique * min(scale, 1.0) ** 0.5)))
    graph = holme_kim(size, m_per, triangle_prob=0.6, seed=seed)
    graph, _ = planted_clique(graph, clique_size, seed=seed + 1)
    return graph


def _powerlaw(n: int, alpha: float, mean_degree: float, seed: int, scale: float) -> Graph:
    size = max(int(n * scale), 10)
    return chung_lu(power_law_weights(size, alpha, mean_degree), seed=seed)


def _ppi(n: int, alpha: float, mean_degree: float, seed: int, scale: float) -> Graph:
    """PPI-style surrogate: sparse power-law plus three distinct complexes.

    Planted structures model different kinds of protein complexes so
    that different patterns pick *different* densest subnetworks (the
    paper's Figure-21 case study):

    * a 7-clique          -- wins edge / h-clique / c3-star density,
    * a hub star          -- wins 2-star density (no triangles),
    * a K3,x bi-clique    -- wins diamond (C4) density (triangle-free).
    """
    import random

    graph = _powerlaw(n, alpha, mean_degree, seed, scale)
    size = graph.num_vertices
    rng = random.Random(seed + 100)
    vertices = sorted(graph.vertices())
    rng.shuffle(vertices)
    cursor = 0

    def take(count: int) -> list:
        nonlocal cursor
        block = vertices[cursor : cursor + count]
        cursor += count
        return block

    clique = take(min(7, max(size // 8, 2)))
    for i, u in enumerate(clique):
        for v in clique[i + 1 :]:
            graph.add_edge(u, v)
    hub_leaves = take(min(60, size // 6))
    if hub_leaves and cursor < len(vertices):
        hub = take(1)[0]
        for leaf in hub_leaves:
            graph.add_edge(hub, leaf)
    centers = take(min(3, max(size // 20, 0)))
    wings = take(min(20, size // 6))
    for c in centers:
        for w in wings:
            graph.add_edge(c, w)
    return graph


def _collab_with_hub(
    n: int, m_per: int, clique: int, hub_degree: int, seed: int, scale: float
) -> Graph:
    """Collaboration surrogate with a planted clique *and* a hub.

    The hub (an advisor linked to many otherwise-unrelated authors)
    gives star patterns a different optimum than triangle patterns --
    the contrast of the paper's Figure-17 case study.
    """
    import random

    graph = _collab(n, m_per, clique, seed, scale)
    rng = random.Random(seed + 200)
    vertices = sorted(graph.vertices())
    hub = vertices[0]
    hub_count = min(int(hub_degree * scale) or hub_degree, len(vertices) - 1)
    targets = rng.sample(vertices[1:], hub_count)
    for t in targets:
        graph.add_edge(hub, t)
    return graph


_REGISTRY: dict[str, DatasetSpec] = {}


def _register(
    name: str,
    category: str,
    paper_n: int,
    paper_m: int,
    build: Callable[[float], Graph],
) -> None:
    _REGISTRY[name.lower()] = DatasetSpec(name, category, paper_n, paper_m, build)


# --- small real graphs (exact + approximation algorithms) -------------
_register("Yeast", "small", 1_116, 2_148, lambda s=1.0: _ppi(1_116, 2.9, 3.8, 11, s))
_register("Netscience", "small", 1_589, 2_742, lambda s=1.0: _collab(1_589, 2, 18, 12, s))
_register("As-733", "small", 1_486, 3_172, lambda s=1.0: _powerlaw(1_486, 2.2, 4.3, 13, s))
_register("Ca-HepTh", "small", 9_877, 25_998, lambda s=1.0: _collab(2_000, 3, 20, 14, s))
_register("As-Caida", "small", 26_475, 106_762, lambda s=1.0: _powerlaw(3_000, 2.1, 8.0, 15, s))

# --- large real graphs (approximation algorithms only) ----------------
_register("DBLP", "large", 425_957, 1_049_866, lambda s=1.0: _collab(8_000, 3, 26, 21, s))
_register("Cit-Patents", "large", 3_774_768, 16_518_948,
          lambda s=1.0: _powerlaw(12_000, 2.3, 8.0, 22, s))
_register("Friendster", "large", 20_145_325, 106_570_765,
          lambda s=1.0: _collab(16_000, 5, 30, 23, s))
_register("Enwiki-2017", "large", 5_409_498, 122_008_994,
          lambda s=1.0: _powerlaw(14_000, 2.4, 16.0, 24, s))
_register("UK-2002", "large", 18_520_486, 298_113_762, lambda s=1.0: _collab(20_000, 6, 32, 25, s))

# --- additional datasets (Appendix E / Figure 20) ----------------------
_register("Flickr", "extra", 214_698, 2_096_306, lambda s=1.0: _powerlaw(6_000, 2.2, 12.0, 31, s))
_register("Google", "extra", 875_713, 4_322_051, lambda s=1.0: _collab(8_000, 4, 24, 32, s))
_register("Foursquare", "extra", 2_127_093, 8_640_352,
          lambda s=1.0: _powerlaw(10_000, 2.5, 8.0, 33, s))

# --- synthetic random graphs (Section 8, Figures 13/14) ----------------
_register(
    "SSCA", "synthetic", 100_000, 3_405_676,
    lambda s=1.0: ssca(max(int(4_000 * s), 50), max_clique_size=16, seed=41),
)
_register(
    "ER", "synthetic", 100_000, 4_837_534,
    lambda s=1.0: erdos_renyi_gnm(max(int(4_000 * s), 50), max(int(48_000 * s), 200), seed=42),
)
_register(
    "R-MAT", "synthetic", 100_000, 2_571_986,
    lambda s=1.0: rmat(max(int(4_000 * s), 50), max(int(26_000 * s), 150), seed=43),
)

# --- case-study surrogates (Section 8.2, Figures 17/21) ----------------
_register(
    "S-DBLP", "case-study", 478, 1_086,
    lambda s=1.0: _collab_with_hub(478, 2, 12, hub_degree=150, seed=51, scale=s),
)
_register("Yeast-PPI", "case-study", 1_116, 2_148, lambda s=1.0: _ppi(1_116, 2.9, 3.8, 52, s))


def dataset_names(category: str | None = None) -> list[str]:
    """Registry names, optionally filtered by category."""
    return [
        spec.name for spec in _REGISTRY.values() if category is None or spec.category == category
    ]


def get_spec(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` for ``name`` (case-insensitive).

    Raises
    ------
    KeyError
        For unknown names; :func:`dataset_names` lists valid ones.
    """
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {dataset_names()}") from None


def load(name: str, scale: float = 1.0) -> Graph:
    """Build (deterministically) and return the surrogate graph.

    ``scale`` multiplies the surrogate's default vertex count; the
    benchmark suite uses small scales to keep pure-Python runtimes
    friendly while preserving each graph family.
    """
    return get_spec(name).build(scale)
