"""Surrogate dataset registry (see DESIGN.md §5 for substitutions)."""

from .registry import DatasetSpec, dataset_names, get_spec, load

__all__ = ["DatasetSpec", "dataset_names", "get_spec", "load"]
