"""Pure-python hot-loop kernels -- the portable baseline tier.

Every kernel in the registry (:mod:`repro.accel`) has its reference
implementation here, written over the flat arc / incidence arrays as
plain Python lists.  The higher tiers (:mod:`repro.accel.vector`,
:mod:`repro.accel.kernels`) are literal translations of these loops --
same traversal order, same float-operation order, same EPS discipline
-- so residual capacities, flow values, cuts, peel orders and densities
are *bit-identical* across tiers (the dispatch property suite pins
this).

Keep that in mind when editing: any reordering of arithmetic or
traversal here must be mirrored in :mod:`repro.accel.kernels`, and vice
versa.
"""

from __future__ import annotations

import math

from ..flow.network import EPS

# --------------------------------------------------------------------
# Dinic (BFS level graph + iterative blocking-flow DFS)
# --------------------------------------------------------------------


def dinic_levels(head, cap, adj_start, adj_arcs, n, source, sink):
    """BFS levels over residual arcs; stops once the sink's level is set."""
    level = [-1] * n
    level[source] = 0
    frontier = [source]
    depth = 0
    while frontier and level[sink] < 0:
        depth += 1
        nxt: list[int] = []
        for u in frontier:
            for idx in range(adj_start[u], adj_start[u + 1]):
                arc = adj_arcs[idx]
                v = head[arc]
                if level[v] < 0 and cap[arc] > EPS:
                    level[v] = depth
                    nxt.append(v)
        frontier = nxt
    return level


def dinic_max_flow(source, sink, head, cap, adj_start, adj_arcs, levels_fn=None):
    """Dinic over the flat arc arrays; returns ``(total, bfs_passes,
    augments)``.

    ``total`` is the flow pushed; ``bfs_passes`` counts the level-graph
    constructions (Dinic phases) and ``augments`` the augmenting paths
    of the blocking flows -- pure work counters for the telemetry layer
    (:mod:`repro.obs`), identical across accel tiers because every tier
    executes the same traversal.  The :mod:`repro.accel` dispatcher
    strips them; engine callers still see a plain float.

    ``levels_fn`` lets the numpy tier swap in its vectorised BFS while
    sharing this blocking-flow DFS (level *values* at the nodes the DFS
    can reach are identical either way, and dead-end probes into extra
    labelled nodes push no flow, so the augmenting-path sequence -- and
    every residual float -- is the same).
    """
    if levels_fn is None:
        levels_fn = dinic_levels
    n = len(adj_start) - 1
    total = 0.0
    bfs_passes = 0
    augments = 0

    while True:
        # --- BFS: build the level graph ------------------------------
        level = levels_fn(head, cap, adj_start, adj_arcs, n, source, sink)
        bfs_passes += 1
        if level[sink] < 0:
            return total, bfs_passes, augments

        # --- iterative DFS: push a blocking flow ----------------------
        it = adj_start[:n]  # per-node cursor into adj_arcs
        path: list[int] = []  # arcs from source down to the frontier
        u = source
        while True:
            if u == sink:
                pushed = cap[path[0]]
                for arc in path:
                    if cap[arc] < pushed:
                        pushed = cap[arc]
                for arc in path:
                    cap[arc] -= pushed
                    cap[arc ^ 1] += pushed
                total += pushed
                augments += 1
                # retreat to just before the first saturated arc
                for i, arc in enumerate(path):
                    if cap[arc] <= EPS:
                        u = head[arc ^ 1]  # tail of the saturated arc
                        del path[i:]
                        break
                continue
            advanced = False
            end = adj_start[u + 1]
            while it[u] < end:
                arc = adj_arcs[it[u]]
                v = head[arc]
                if cap[arc] > EPS and level[v] == level[u] + 1:
                    path.append(arc)
                    u = v
                    advanced = True
                    break
                it[u] += 1
            if advanced:
                continue
            if u == source:
                break  # blocking flow complete for this phase
            # dead end: prune the node from this phase and retreat
            level[u] = -1
            arc = path.pop()
            u = head[arc ^ 1]
            it[u] += 1


# --------------------------------------------------------------------
# Push-relabel (highest-label selection + gap relabeling)
# --------------------------------------------------------------------


def push_relabel_max_flow(source, sink, head, cap, adj_start, adj_arcs):
    """Highest-label push-relabel with the gap heuristic; returns
    ``(value, pushes, relabels)``.

    ``pushes`` and ``relabels`` count the discharge-loop operations
    (admissible pushes and height lifts) for the telemetry layer; the
    :mod:`repro.accel` dispatcher strips them, engine callers see the
    float alone.  Counting is tier-identical: every tier runs the same
    discharge order.

    Active nodes live in per-height intrusive stacks and the highest one
    is discharged to exhaustion (relabels keep it selected, since its
    height only grows).  When a relabel empties a height level below
    ``n``, no residual path can cross it any more, so every node
    strictly above the gap (and below ``n``) is lifted straight to
    ``n + 1`` -- their flow can only return to the source, which the
    second (drain-back) phase then does.  Runs to completion, so the
    residual state on exit is a genuine max *flow* (not a preflow) and
    ``min_cut_source_side`` stays valid.

    Infinite capacities are clamped to a finite big-M above the total
    finite capacity (summed over *all* arcs, which keeps the bound valid
    on warm-started / cancelled parametric networks), which cannot
    change the min cut.
    """
    n = len(adj_start) - 1

    finite_total = 0.0
    for c in cap:
        if not math.isinf(c):
            finite_total += c
    big = finite_total * 2.0 + 1.0
    for i, c in enumerate(cap):
        if math.isinf(c):
            cap[i] = big

    max_h = 2 * n
    height = [0] * n
    excess = [0.0] * n
    height[source] = n
    count = [0] * (max_h + 2)  # nodes per height, for gap detection
    count[0] = n - 1
    count[n] += 1

    bucket = [-1] * (max_h + 2)  # per-height stacks of active nodes
    nxt = [-1] * n
    queued = bytearray(n)
    highest = -1
    cursor = adj_start[:n]  # per-node cursor into adj_arcs
    pushes = 0
    relabels = 0

    # Saturate all source arcs.
    for idx in range(adj_start[source], adj_start[source + 1]):
        arc = adj_arcs[idx]
        flow = cap[arc]
        if flow > EPS:
            v = head[arc]
            cap[arc] = 0.0
            cap[arc ^ 1] += flow
            excess[v] += flow
            if v != source and v != sink and not queued[v]:
                queued[v] = 1
                hv = height[v]
                nxt[v] = bucket[hv]
                bucket[hv] = v
                if hv > highest:
                    highest = hv

    while highest >= 0:
        u = bucket[highest]
        if u < 0:
            highest -= 1
            continue
        bucket[highest] = nxt[u]
        queued[u] = 0
        if excess[u] <= EPS:
            continue
        end = adj_start[u + 1]
        while excess[u] > EPS:
            if cursor[u] == end:
                # relabel: one above the lowest admissible neighbour
                min_height = -1
                for idx in range(adj_start[u], end):
                    arc = adj_arcs[idx]
                    if cap[arc] > EPS:
                        hh = height[head[arc]]
                        if min_height < 0 or hh < min_height:
                            min_height = hh
                if min_height < 0:
                    break  # isolated excess; cannot happen on sane networks
                old_h = height[u]
                count[old_h] -= 1
                height[u] = min_height + 1
                count[min_height + 1] += 1
                cursor[u] = adj_start[u]
                relabels += 1
                if count[old_h] == 0 and old_h < n:
                    # gap: lift every node strictly inside (old_h, n) --
                    # including u itself -- to n + 1 and rebuild the
                    # buckets (lifted nodes sit in stale lists)
                    for v in range(n):
                        hv = height[v]
                        if old_h < hv < n and v != source:
                            count[hv] -= 1
                            height[v] = n + 1
                            count[n + 1] += 1
                            cursor[v] = adj_start[v]
                    for hh in range(max_h + 2):
                        bucket[hh] = -1
                    for v in range(n):
                        queued[v] = 0
                    highest = -1
                    for v in range(n):
                        if v != source and v != sink and v != u and excess[v] > EPS:
                            queued[v] = 1
                            hv = height[v]
                            nxt[v] = bucket[hv]
                            bucket[hv] = v
                            if hv > highest:
                                highest = hv
                continue
            arc = adj_arcs[cursor[u]]
            v = head[arc]
            if cap[arc] > EPS and height[u] == height[v] + 1:
                delta = excess[u] if excess[u] < cap[arc] else cap[arc]
                cap[arc] -= delta
                cap[arc ^ 1] += delta
                excess[u] -= delta
                excess[v] += delta
                pushes += 1
                if v != source and v != sink and not queued[v]:
                    queued[v] = 1
                    hv = height[v]
                    nxt[v] = bucket[hv]
                    bucket[hv] = v
                    if hv > highest:
                        highest = hv
            else:
                cursor[u] += 1
    return excess[sink], pushes, relabels


# --------------------------------------------------------------------
# GGT retreat: clamp over-full sink arcs, drain the excess to the source
# --------------------------------------------------------------------


def _drain_to_source(head, cap, adj_start, adj_arcs, num_nodes, source, node, amount):
    """Push ``amount`` units of excess from ``node`` back to the source.

    Repeated residual-path search (node -> source, DFS) with path
    augmentation; the excess always drains fully when it came from
    clamping a feasible flow (flow decomposition guarantees the reverse
    arcs of its paths carry enough residual).  Returns the number of
    drain paths pushed (the telemetry work counter).
    """
    paths = 0
    remaining = amount
    while remaining > EPS:
        parent = [-2] * num_nodes  # arc that discovered each node
        parent[node] = -1
        stack = [node]
        found = False
        while stack and not found:
            u = stack.pop()
            for idx in range(adj_start[u], adj_start[u + 1]):
                arc = adj_arcs[idx]
                w = head[arc]
                if parent[w] == -2 and cap[arc] > EPS:
                    parent[w] = arc
                    if w == source:
                        found = True
                        break
                    stack.append(w)
        if not found:  # pragma: no cover - impossible for clamped max flows
            break
        path: list[int] = []
        w = source
        while w != node:
            arc = parent[w]
            path.append(arc)
            w = head[arc ^ 1]
        push = remaining
        for arc in path:
            if cap[arc] < push:
                push = cap[arc]
        for arc in path:
            cap[arc] -= push
            cap[arc ^ 1] += push
        remaining -= push
        paths += 1
    return paths


def ggt_retreat(
    head, cap, base_cap, adj_start, adj_arcs, alpha_arcs, alpha_coeff,
    num_nodes, source, alpha,
):
    """Decreasing-alpha half of GGT over the flat arrays.

    Each alpha-arc whose flow exceeds its shrunken capacity is clamped
    to saturation and the difference drained from the arc's tail back to
    the source; arcs still under capacity just have their residual
    recomputed.  Mutates ``cap`` in place; the state on exit is a
    feasible warm flow at the new alpha.  Returns ``(clamped,
    drain_paths)`` -- the telemetry work counters (tier-identical); the
    :mod:`repro.accel` dispatcher strips them.
    """
    excess: list[tuple[int, float]] = []
    for i in range(len(alpha_arcs)):
        a = alpha_arcs[i]
        c = alpha_coeff[i]
        new_cap = base_cap[a] + c * alpha
        flow = cap[a ^ 1] - base_cap[a ^ 1]
        if flow > new_cap:
            cap[a] = 0.0
            cap[a ^ 1] = base_cap[a ^ 1] + new_cap
            excess.append((head[a ^ 1], flow - new_cap))
        else:
            cap[a] = new_cap - flow
    drain_paths = 0
    for node, amount in excess:
        drain_paths += _drain_to_source(
            head, cap, adj_start, adj_arcs, num_nodes, source, node, amount
        )
    return len(excess), drain_paths


def ggt_advance(cap, base_cap, alpha_arcs, alpha_coeff, alpha):
    """Increasing-alpha capacity refresh (kept interpreter-side on every
    tier: the loop is O(#alpha-arcs), below the list<->array conversion
    cost a jitted version would pay -- see the registry notes)."""
    for i in range(len(alpha_arcs)):
        a = alpha_arcs[i]
        flow = cap[a ^ 1] - base_cap[a ^ 1]
        cap[a] = base_cap[a] + alpha_coeff[i] * alpha - flow


# --------------------------------------------------------------------
# Bucket-queue peel (Algorithm-3 core decomposition engine)
# --------------------------------------------------------------------


def degree_bucket_queue(deg):
    """Counting-sort setup of the Batagelj-Zaversnik bucket queue.

    Returns ``(position, order, bin_ptr)``: ``order`` lists vertex ids
    ascending by degree with ``position`` its inverse, and ``bin_ptr[d]``
    points at the first entry of degree-``d``'s bucket.  Shared by the
    full decomposition and CoreApp's floor-clamped prefix peel; both
    then run the standard one-swap-per-decrement loop over these arrays.
    """
    n = len(deg)
    max_deg = max(deg, default=0)
    bin_start = [0] * (max_deg + 2)
    for d in deg:
        bin_start[d + 1] += 1
    for i in range(max_deg + 1):
        bin_start[i + 1] += bin_start[i]
    fill = bin_start[: max_deg + 1]
    position = [0] * n
    order = [0] * n
    for i in range(n):
        d = deg[i]
        p = fill[d]
        position[i] = p
        order[p] = i
        fill[d] += 1
    return position, order, bin_start[: max_deg + 1]


def bucket_peel(inst, inc_start, inc_ids, deg, alive, in_graph, h, n_graph, num_alive):
    """Min-degree bucket-queue peel over a flat instance index.

    The engine behind the (k, Psi)-core decomposition: removes vertices
    ascending by current degree (one bucket swap per decrement), kills
    the incident instances, and tracks the best residual density over
    the ``in_graph`` vertices.  ``deg`` and ``alive`` are mutated in
    place (callers pass private copies).

    Returns ``(core, order, best_removed, best_density)``: the core
    number and removal order by internal id, how many removals led to
    the best residual, and that density.
    """
    n = len(deg)
    position, order, bin_ptr = degree_bucket_queue(deg)
    core = [0] * n
    removed = bytearray(n)
    best_density = (num_alive / n_graph) if n_graph else 0.0
    best_removed = 0
    alive_graph = n_graph
    for i in range(n):
        vi = order[i]
        dv = deg[vi]
        removed[vi] = 1
        core[vi] = dv
        if in_graph[vi]:
            alive_graph -= 1
        for pos in range(inc_start[vi], inc_start[vi + 1]):
            iid = inc_ids[pos]
            if not alive[iid]:
                continue
            alive[iid] = 0
            num_alive -= 1
            for k in range(iid * h, iid * h + h):
                ui = inst[k]
                if not removed[ui] and deg[ui] > dv:
                    du = deg[ui]
                    first = bin_ptr[du]
                    w = order[first]
                    if w != ui:
                        pu = position[ui]
                        order[first], order[pu] = ui, w
                        position[ui], position[w] = first, pu
                    bin_ptr[du] += 1
                    deg[ui] = du - 1
        if alive_graph:
            density = num_alive / alive_graph
            if density > best_density:
                best_density = density
                best_removed = i + 1
    return core, order, best_removed, best_density
