"""Three-tier acceleration backend for the flow and peel hot loops.

The scalar hot loops of this package -- Dinic's blocking-flow DFS, the
push-relabel discharge loop, the GGT retreat drains, and the two peel
engines -- all dispatch through the kernel registry in this module
instead of branching locally.  Three tiers, fastest first:

* **numba** -- the loops from :mod:`repro.accel.kernels`, compiled to
  native code with ``numba.njit``.  Selected automatically when numba
  is importable; the wrappers convert the engines' plain-list arc
  arrays to numpy arrays per call (O(E) each way, far below the solve
  work they bracket) and write residual capacities back, so the
  surrounding machinery (warm starts, checkpoints, cut extraction)
  never sees an array type change.
* **numpy** -- :mod:`repro.accel.vector`: the vectorised phases
  (Dinic's arc-parallel BFS) plus the pure loops for everything
  sequential.  Selected when numpy is importable but numba is not.
* **python** -- :mod:`repro.accel.pure`: dependency-free reference
  implementations.  Always available.

Every tier produces bit-identical results -- residual floats included
-- because the higher tiers are literal translations of the pure loops
(same traversal order, same IEEE-double operation order); the dispatch
property suite (``tests/test_accel_dispatch.py``) asserts it on the
random network/graph matrices.

**Selection** happens once at import:

* ``REPRO_NO_NUMPY=1`` forces the python tier (and, as everywhere else
  in this package, disables numpy outright);
* ``REPRO_NO_NUMBA=1`` disables just the numba tier;
* ``REPRO_NUMBA_INTERP=1`` selects the numba tier with the kernels run
  *interpreted* when numba itself is missing -- slow, but byte-for-byte
  the code the JIT would compile, which is how CI pins the numba tier's
  bit-identity without installing numba.

Tests and the ablation bench can rebuild the registry at runtime with
:func:`select_tier`; ``select_tier(None)`` restores the import-time
default.

**Warm-up / compile cache.**  Numba compiles each kernel lazily on its
first call (a few seconds per kernel, once per process).  Two
mitigations: ``njit(cache=True)`` persists the compiled machine code
under ``NUMBA_CACHE_DIR`` (CI caches that directory, so only the first
run after a kernel edit pays the compile), and :func:`warm_up` runs
every kernel on a two-node toy network so a serving process can front-
load the compilation (or a CI job can fail fast on a typing error)
before real traffic arrives.  ``fastmath`` stays off: it would license
float reassociation and break bit-identity with the other tiers.
"""

from __future__ import annotations

import os
import time

from .. import obs
from . import pure, vector

if os.environ.get("REPRO_NO_NUMPY"):  # explicit opt-out for CI / ablations
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - environment-specific
        np = None

numba = None
if np is not None and not os.environ.get("REPRO_NO_NUMBA"):
    try:
        import numba  # type: ignore[no-redef]
    except ImportError:  # expected: numba is an optional extra
        numba = None

#: Whether the numba tier is actually compiled (vs interpreted).
NUMBA_JITTED = numba is not None

if np is not None:
    from . import kernels as _kernels

    # kernels.py keeps EPS as a literal (numba freezes module globals
    # into compiled code), so pin it against the canonical constant
    # here: drift would silently break cross-tier bit-identity.
    assert _kernels.EPS == pure.EPS, "accel.kernels.EPS drifted from flow.network.EPS"
else:  # kernels.py needs numpy at import; the python tier never uses it
    _kernels = None

_JITTED: dict | None = None


def _jitted_kernels() -> dict:
    """Compile (lazily, once) every kernel with ``numba.njit``."""
    global _JITTED
    if _JITTED is None:
        jit = numba.njit(cache=True)
        _JITTED = {name: jit(getattr(_kernels, name)) for name in _kernels.KERNEL_NAMES}
    return _JITTED


# --- numba-tier wrappers: list <-> array conversion at the boundary ---


def _i8(x):
    return np.asarray(x, dtype=np.int64)


def _f8(x):
    return np.asarray(x, dtype=np.float64)


def _wrap_max_flow(kfn):
    def run(source, sink, head, cap, adj_start, adj_arcs):
        cap_a = np.array(cap, dtype=np.float64)
        total, work1, work2 = kfn(
            source, sink, _i8(head), cap_a, _i8(adj_start), _i8(adj_arcs)
        )
        cap[:] = cap_a.tolist()
        return float(total), int(work1), int(work2)

    return run


def _wrap_ggt_retreat(kfn):
    def run(head, cap, base_cap, adj_start, adj_arcs, alpha_arcs, alpha_coeff,
            num_nodes, source, alpha):
        cap_a = np.array(cap, dtype=np.float64)
        clamped, drain_paths = kfn(
            _i8(head), cap_a, _f8(base_cap), _i8(adj_start), _i8(adj_arcs),
            _i8(alpha_arcs), _f8(alpha_coeff), num_nodes, source, alpha,
        )
        cap[:] = cap_a.tolist()
        return int(clamped), int(drain_paths)

    return run


def _wrap_bucket_peel(kfn):
    def run(inst, inc_start, inc_ids, deg, alive, in_graph, h, n_graph, num_alive):
        core, order, best_removed, best_density = kfn(
            _i8(inst), _i8(inc_start), _i8(inc_ids), _i8(deg),
            np.frombuffer(alive, dtype=np.uint8),
            np.frombuffer(in_graph, dtype=np.uint8),
            h, n_graph, num_alive,
        )
        return core.tolist(), order.tolist(), int(best_removed), float(best_density)

    return run


def _wrap_heap_peel(kfn):
    def run(inst, inc_start, inc_ids, deg, alive, num_alive, n, h):
        # ``alive`` is the index's own bytearray: frombuffer shares its
        # memory, so the kernel's kills land directly in the index.
        cnt, order, num_alive_after, final_alive = kfn(
            _i8(inst), _i8(inc_start), _i8(inc_ids), _i8(deg),
            np.frombuffer(alive, dtype=np.uint8), num_alive, n, h,
        )
        return order[:cnt].tolist(), num_alive_after[:cnt].tolist(), int(final_alive)

    return run


# --- registry -------------------------------------------------------

#: Kernel names every tier must resolve (``heap_peel`` resolves to
#: ``None`` outside the numba tier: it exists to *replace* the pure
#: generator in :func:`repro.core.peel.min_degree_peel`, which is its
#: own reference implementation).
KERNEL_NAMES = (
    "dinic", "push_relabel", "ggt_retreat", "ggt_advance", "bucket_peel", "heap_peel",
)

_impl: dict = {}

#: Resolved tier per kernel name (for tests, stats, and the bench).
KERNEL_TIERS: dict = {}

#: The selected default tier ("numba" / "numpy" / "python").
TIER = "python"


def available_tiers() -> tuple:
    """The tiers worth benchmarking on this interpreter, fastest first.

    ``"numba"`` appears only when numba is importable (the interpreted
    kernels reachable via ``select_tier("numba")`` are a bit-identity
    testing device, not a performance tier).
    """
    tiers = []
    if NUMBA_JITTED:
        tiers.append("numba")
    if np is not None:
        tiers.append("numpy")
    tiers.append("python")
    return tuple(tiers)


def _build_registry(tier: str) -> None:
    base = {
        "dinic": ("python", pure.dinic_max_flow),
        "push_relabel": ("python", pure.push_relabel_max_flow),
        "ggt_retreat": ("python", pure.ggt_retreat),
        # O(#alpha-arcs) of simple float work: the list<->array
        # conversion a jitted version would need costs more than the
        # loop, so the advance stays interpreter-side on every tier.
        "ggt_advance": ("python", pure.ggt_advance),
        "bucket_peel": ("python", pure.bucket_peel),
        "heap_peel": ("python", None),
    }
    if tier in ("numpy", "numba"):
        base["dinic"] = ("numpy", vector.dinic_max_flow)
    if tier == "numba":
        kerns = _jitted_kernels() if NUMBA_JITTED else _kernels.__dict__
        label = "numba" if NUMBA_JITTED else "numba-interp"
        base["dinic"] = (label, _wrap_max_flow(kerns["dinic_max_flow"]))
        base["push_relabel"] = (label, _wrap_max_flow(kerns["push_relabel_max_flow"]))
        base["ggt_retreat"] = (label, _wrap_ggt_retreat(kerns["ggt_retreat"]))
        base["bucket_peel"] = (label, _wrap_bucket_peel(kerns["bucket_peel"]))
        base["heap_peel"] = (label, _wrap_heap_peel(kerns["heap_peel"]))
    _impl.clear()
    KERNEL_TIERS.clear()
    for name, (label, fn) in base.items():
        _impl[name] = fn
        KERNEL_TIERS[name] = label


def select_tier(tier: str | None = None) -> str:
    """Rebuild the kernel registry for ``tier``; returns the tier set.

    ``None`` restores the import-time default.  ``"numba"`` without
    numba installed falls back to running the kernels interpreted
    (requires numpy; bit-identity testing only -- it is *slower* than
    the pure tier).
    """
    global TIER
    if tier is None:
        if NUMBA_JITTED:
            tier = "numba"
        elif np is not None and os.environ.get("REPRO_NUMBA_INTERP"):
            tier = "numba"
        elif np is not None:
            tier = "numpy"
        else:
            tier = "python"
    if tier not in ("numba", "numpy", "python"):
        raise ValueError(f"unknown accel tier {tier!r}")
    if tier in ("numpy", "numba") and np is None:
        raise RuntimeError(f"accel tier {tier!r} requires numpy (is REPRO_NO_NUMPY set?)")
    _build_registry(tier)
    TIER = tier
    return tier


def get(name: str):
    """The registered implementation for ``name`` (None when the tier
    has no replacement and the caller's reference loop should run)."""
    return _impl[name]


def kernel_tiers() -> dict:
    """Copy of the per-kernel resolved-tier map (for stats and tests)."""
    return dict(KERNEL_TIERS)


# --- module-level dispatchers (the API the engines call) ------------

#: Work counters of the most recent max-flow / retreat kernel call --
#: the telemetry side channel :mod:`repro.flow.parametric` copies into
#: its per-solve ``flow.solve`` events.  Populated only while
#: :data:`repro.obs.ENABLED` is set (the disabled path adds nothing but
#: the flag check), replaced wholesale per call.
last_solve: dict = {}


def _bfs_mode() -> str:
    """Which BFS the current dinic implementation last used."""
    tier = KERNEL_TIERS["dinic"]
    if tier == "numpy":
        return vector.LAST_BFS_MODE
    if tier == "python":
        return "scalar"
    return "kernel"  # numba / numba-interp: the compiled scalar BFS


def dinic_max_flow(source, sink, head, cap, adj_start, adj_arcs):
    """Dinic max flow over flat arc arrays (mutates ``cap`` in place)."""
    global last_solve
    if not obs.ENABLED:
        total, _, _ = _impl["dinic"](source, sink, head, cap, adj_start, adj_arcs)
        return total
    t0 = time.perf_counter()
    total, bfs_passes, augments = _impl["dinic"](
        source, sink, head, cap, adj_start, adj_arcs
    )
    seconds = time.perf_counter() - t0
    last_solve = {
        "kernel": "dinic",
        "tier": KERNEL_TIERS["dinic"],
        "arcs": len(head) // 2,
        "bfs_mode": _bfs_mode(),
        "bfs_passes": bfs_passes,
        "augments": augments,
        "seconds": seconds,
    }
    obs.counter("accel.dinic.calls")
    obs.counter("accel.dinic.bfs_passes", bfs_passes)
    obs.counter("accel.dinic.augments", augments)
    return total


def push_relabel_max_flow(source, sink, head, cap, adj_start, adj_arcs):
    """Highest-label + gap push-relabel (mutates ``cap`` in place)."""
    global last_solve
    if not obs.ENABLED:
        value, _, _ = _impl["push_relabel"](source, sink, head, cap, adj_start, adj_arcs)
        return value
    t0 = time.perf_counter()
    value, pushes, relabels = _impl["push_relabel"](
        source, sink, head, cap, adj_start, adj_arcs
    )
    seconds = time.perf_counter() - t0
    last_solve = {
        "kernel": "push_relabel",
        "tier": KERNEL_TIERS["push_relabel"],
        "arcs": len(head) // 2,
        "pushes": pushes,
        "relabels": relabels,
        "seconds": seconds,
    }
    obs.counter("accel.push_relabel.calls")
    obs.counter("accel.push_relabel.pushes", pushes)
    obs.counter("accel.push_relabel.relabels", relabels)
    return value


def ggt_retreat(head, cap, base_cap, adj_start, adj_arcs, alpha_arcs, alpha_coeff,
                num_nodes, source, alpha):
    """GGT decreasing-alpha clamp + excess drain (mutates ``cap``)."""
    clamped, drain_paths = _impl["ggt_retreat"](
        head, cap, base_cap, adj_start, adj_arcs, alpha_arcs, alpha_coeff,
        num_nodes, source, alpha,
    )
    if obs.ENABLED:
        obs.counter("accel.ggt_retreat.calls")
        obs.counter("accel.ggt_retreat.clamped", clamped)
        obs.counter("accel.ggt_retreat.drain_paths", drain_paths)


def ggt_advance(cap, base_cap, alpha_arcs, alpha_coeff, alpha):
    """GGT increasing-alpha capacity refresh (mutates ``cap``)."""
    if obs.ENABLED:
        obs.counter("accel.ggt_advance.calls")
    return _impl["ggt_advance"](cap, base_cap, alpha_arcs, alpha_coeff, alpha)


def bucket_peel(inst, inc_start, inc_ids, deg, alive, in_graph, h, n_graph, num_alive):
    """Bucket-queue min-degree peel over a flat instance index."""
    if obs.ENABLED:
        obs.counter("accel.bucket_peel.calls")
    return _impl["bucket_peel"](
        inst, inc_start, inc_ids, deg, alive, in_graph, h, n_graph, num_alive
    )


def warm_up() -> str:
    """Run every registered kernel once on a toy input.

    On the numba tier this triggers (and caches) the JIT compilation of
    all kernels, so a serving process pays the compile before traffic
    arrives -- and a CI job fails fast on a kernel typing error.
    Returns the active tier.
    """
    # two-node network: source 0, sink 1, one unit arc + its reverse
    head = [1, 0]
    cap = [1.0, 0.0]
    adj_start = [0, 1, 2]
    adj_arcs = [0, 1]
    dinic_max_flow(0, 1, head, list(cap), list(adj_start), list(adj_arcs))
    push_relabel_max_flow(0, 1, head, list(cap), list(adj_start), list(adj_arcs))
    ggt_retreat(head, [0.5, 0.5], [0.0, 0.0], adj_start, adj_arcs, [0], [1.0], 2, 0, 0.25)
    ggt_advance([0.5, 0.5], [0.0, 0.0], [0], [1.0], 0.75)
    # one 2-clique instance over two vertices
    bucket_peel([0, 1], [0, 1, 2], [0, 0], [1, 1], bytearray(b"\x01"),
                bytearray(b"\x01\x01"), 2, 2, 1)
    kern = get("heap_peel")
    if kern is not None:
        kern([0, 1], [0, 1, 2], [0, 0], [1, 1], bytearray(b"\x01"), 1, 2, 2)
    return TIER


select_tier(None)
