"""Three-tier acceleration backend for the flow and peel hot loops.

The scalar hot loops of this package -- Dinic's blocking-flow DFS, the
push-relabel discharge loop, the GGT retreat drains, and the two peel
engines -- all dispatch through the kernel registry in this module
instead of branching locally.  Three tiers, fastest first:

* **numba** -- the loops from :mod:`repro.accel.kernels`, compiled to
  native code with ``numba.njit``.  Selected automatically when numba
  is importable; the wrappers convert the engines' plain-list arc
  arrays to numpy arrays per call (O(E) each way, far below the solve
  work they bracket) and write residual capacities back, so the
  surrounding machinery (warm starts, checkpoints, cut extraction)
  never sees an array type change.
* **numpy** -- :mod:`repro.accel.vector`: the vectorised phases
  (Dinic's arc-parallel BFS) plus the pure loops for everything
  sequential.  Selected when numpy is importable but numba is not.
* **python** -- :mod:`repro.accel.pure`: dependency-free reference
  implementations.  Always available.

Every tier produces bit-identical results -- residual floats included
-- because the higher tiers are literal translations of the pure loops
(same traversal order, same IEEE-double operation order); the dispatch
property suite (``tests/test_accel_dispatch.py``) asserts it on the
random network/graph matrices.

**Selection** happens once at import:

* ``REPRO_NO_NUMPY=1`` forces the python tier (and, as everywhere else
  in this package, disables numpy outright);
* ``REPRO_NO_NUMBA=1`` disables just the numba tier;
* ``REPRO_NUMBA_INTERP=1`` selects the numba tier with the kernels run
  *interpreted* when numba itself is missing -- slow, but byte-for-byte
  the code the JIT would compile, which is how CI pins the numba tier's
  bit-identity without installing numba.

Tests and the ablation bench can rebuild the registry at runtime with
:func:`select_tier`; ``select_tier(None)`` restores the import-time
default.

**Failover.**  Every kernel carries a fallback chain (numba -> numpy ->
pure, deduplicated per kernel).  When a kernel call raises, the
dispatcher restores the call's mutable arrays from a pre-call snapshot
(the numba flow wrappers are transactional -- they write residuals back
only on success -- so no snapshot is taken there), **demotes the kernel
to the next tier for the rest of the process**, emits an
``accel.failover`` counter + event and a ``RuntimeWarning``, and retries
the same call.  Results stay bit-identical across the retry because the
tiers already are.  ``select_tier`` rebuilds the registry and thereby
clears demotions.  Kernels whose chain ends with no implementation
(``heap_peel`` outside the numba tier) raise :class:`KernelFallback` so
the caller's reference loop runs instead.  Faults can be injected
deterministically at exact call counts via :mod:`repro.guard.faults`
(``REPRO_FAULT=<kernel>:<nth>``), which is how CI exercises these
paths.

**Warm-up / compile cache.**  Numba compiles each kernel lazily on its
first call (a few seconds per kernel, once per process).  Two
mitigations: ``njit(cache=True)`` persists the compiled machine code
under ``NUMBA_CACHE_DIR`` (CI caches that directory, so only the first
run after a kernel edit pays the compile), and :func:`warm_up` runs
every kernel on a two-node toy network so a serving process can front-
load the compilation (or a CI job can fail fast on a typing error)
before real traffic arrives.  ``fastmath`` stays off: it would license
float reassociation and break bit-identity with the other tiers.
"""

from __future__ import annotations

import time
import warnings

from .. import env, obs
from ..guard import faults as _faults
from . import pure, vector

if env.flag("REPRO_NO_NUMPY"):  # explicit opt-out for CI / ablations
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - environment-specific
        np = None

numba = None
if np is not None and not env.flag("REPRO_NO_NUMBA"):
    try:
        import numba  # type: ignore[no-redef]
    except ImportError:  # expected: numba is an optional extra
        numba = None

#: Whether the numba tier is actually compiled (vs interpreted).
NUMBA_JITTED = numba is not None

if np is not None:
    from . import kernels as _kernels

    # kernels.py keeps EPS as a literal (numba freezes module globals
    # into compiled code), so pin it against the canonical constant
    # here: drift would silently break cross-tier bit-identity.
    assert _kernels.EPS == pure.EPS, "accel.kernels.EPS drifted from flow.network.EPS"
else:  # kernels.py needs numpy at import; the python tier never uses it
    _kernels = None

_JITTED: dict | None = None


def _jitted_kernels() -> dict:
    """Compile (lazily, once) every kernel with ``numba.njit``."""
    global _JITTED
    if _JITTED is None:
        jit = numba.njit(cache=True)
        _JITTED = {name: jit(getattr(_kernels, name)) for name in _kernels.KERNEL_NAMES}
    return _JITTED


# --- numba-tier wrappers: list <-> array conversion at the boundary ---


def _i8(x):
    return np.asarray(x, dtype=np.int64)


def _f8(x):
    return np.asarray(x, dtype=np.float64)


def _wrap_max_flow(kfn):
    def run(source, sink, head, cap, adj_start, adj_arcs):
        cap_a = np.array(cap, dtype=np.float64)
        total, work1, work2 = kfn(
            source, sink, _i8(head), cap_a, _i8(adj_start), _i8(adj_arcs)
        )
        cap[:] = cap_a.tolist()
        return float(total), int(work1), int(work2)

    return run


def _wrap_ggt_retreat(kfn):
    def run(head, cap, base_cap, adj_start, adj_arcs, alpha_arcs, alpha_coeff,
            num_nodes, source, alpha):
        cap_a = np.array(cap, dtype=np.float64)
        clamped, drain_paths = kfn(
            _i8(head), cap_a, _f8(base_cap), _i8(adj_start), _i8(adj_arcs),
            _i8(alpha_arcs), _f8(alpha_coeff), num_nodes, source, alpha,
        )
        cap[:] = cap_a.tolist()
        return int(clamped), int(drain_paths)

    return run


def _wrap_bucket_peel(kfn):
    def run(inst, inc_start, inc_ids, deg, alive, in_graph, h, n_graph, num_alive):
        core, order, best_removed, best_density = kfn(
            _i8(inst), _i8(inc_start), _i8(inc_ids), _i8(deg),
            np.frombuffer(alive, dtype=np.uint8),
            np.frombuffer(in_graph, dtype=np.uint8),
            h, n_graph, num_alive,
        )
        return core.tolist(), order.tolist(), int(best_removed), float(best_density)

    return run


def _wrap_heap_peel(kfn):
    def run(inst, inc_start, inc_ids, deg, alive, num_alive, n, h):
        # ``alive`` is the index's own bytearray: frombuffer shares its
        # memory, so the kernel's kills land directly in the index.
        cnt, order, num_alive_after, final_alive = kfn(
            _i8(inst), _i8(inc_start), _i8(inc_ids), _i8(deg),
            np.frombuffer(alive, dtype=np.uint8), num_alive, n, h,
        )
        return order[:cnt].tolist(), num_alive_after[:cnt].tolist(), int(final_alive)

    return run


# --- registry -------------------------------------------------------

#: Kernel names every tier must resolve (``heap_peel`` resolves to
#: ``None`` outside the numba tier: it exists to *replace* the pure
#: generator in :func:`repro.core.peel.min_degree_peel`, which is its
#: own reference implementation).
KERNEL_NAMES = (
    "dinic", "push_relabel", "ggt_retreat", "ggt_advance", "bucket_peel", "heap_peel",
)

_impl: dict = {}

#: Resolved tier per kernel name (for tests, stats, and the bench).
KERNEL_TIERS: dict = {}

#: The selected default tier ("numba" / "numpy" / "python").
TIER = "python"

#: Per-kernel fallback chain below the current impl: ``name ->
#: [(label, fn, transactional), ...]``.  Non-empty chain == the
#: dispatcher takes the guarded (snapshot + retry) path.
_chains: dict = {}

#: Whether the *current* impl of a kernel restores its mutable args
#: itself on failure (the numba flow wrappers copy to arrays and write
#: back only on success); transactional impls skip the pre-call
#: snapshot.
_transactional: dict = {}

#: Process-lifetime failover log (cleared on ``select_tier`` rebuilds):
#: ``{"kernel", "from_tier", "to_tier", "error"}`` per demotion.
FAILOVERS: list = []


class KernelFallback(RuntimeError):
    """A kernel was demoted to a tier with no registered implementation.

    Only ``heap_peel`` can land here (its non-numba "implementation" is
    the reference loop in :func:`repro.core.peel.min_degree_peel`); the
    caller catches this and runs that loop.  The failed call's mutable
    arrays have already been restored.
    """


def available_tiers() -> tuple:
    """The tiers worth benchmarking on this interpreter, fastest first.

    ``"numba"`` appears only when numba is importable (the interpreted
    kernels reachable via ``select_tier("numba")`` are a bit-identity
    testing device, not a performance tier).
    """
    tiers = []
    if NUMBA_JITTED:
        tiers.append("numba")
    if np is not None:
        tiers.append("numpy")
    tiers.append("python")
    return tuple(tiers)


def _build_registry(tier: str) -> None:
    # Full fallback ladder per kernel, current tier first.  Entries are
    # ``(label, fn, transactional)``; the terminal entry is always the
    # pure tier (fn=None for heap_peel: the caller's reference loop).
    chains: dict = {
        "dinic": [("python", pure.dinic_max_flow, False)],
        "push_relabel": [("python", pure.push_relabel_max_flow, False)],
        "ggt_retreat": [("python", pure.ggt_retreat, False)],
        # O(#alpha-arcs) of simple float work: the list<->array
        # conversion a jitted version would need costs more than the
        # loop, so the advance stays interpreter-side on every tier.
        "ggt_advance": [("python", pure.ggt_advance, False)],
        "bucket_peel": [("python", pure.bucket_peel, False)],
        "heap_peel": [("python", None, False)],
    }
    if tier in ("numpy", "numba"):
        chains["dinic"].insert(0, ("numpy", vector.dinic_max_flow, False))
    if tier == "numba":
        kerns = _jitted_kernels() if NUMBA_JITTED else _kernels.__dict__
        label = "numba" if NUMBA_JITTED else "numba-interp"
        # the max-flow / retreat wrappers are transactional: they run on
        # a private array copy and write residuals back only on success
        chains["dinic"].insert(0, (label, _wrap_max_flow(kerns["dinic_max_flow"]), True))
        chains["push_relabel"].insert(
            0, (label, _wrap_max_flow(kerns["push_relabel_max_flow"]), True)
        )
        chains["ggt_retreat"].insert(0, (label, _wrap_ggt_retreat(kerns["ggt_retreat"]), True))
        # the peel wrappers share the caller's buffers (frombuffer), so
        # the dispatcher snapshots/restores them around a failed call
        chains["bucket_peel"].insert(0, (label, _wrap_bucket_peel(kerns["bucket_peel"]), False))
        chains["heap_peel"].insert(0, (label, _wrap_heap_peel(kerns["heap_peel"]), False))
    _impl.clear()
    KERNEL_TIERS.clear()
    _chains.clear()
    _transactional.clear()
    FAILOVERS.clear()
    for name, chain in chains.items():
        label, fn, transactional = chain[0]
        _impl[name] = fn
        KERNEL_TIERS[name] = label
        _transactional[name] = transactional
        _chains[name] = chain[1:]


def select_tier(tier: str | None = None) -> str:
    """Rebuild the kernel registry for ``tier``; returns the tier set.

    ``None`` restores the import-time default.  ``"numba"`` without
    numba installed falls back to running the kernels interpreted
    (requires numpy; bit-identity testing only -- it is *slower* than
    the pure tier).
    """
    global TIER
    if tier is None:
        if NUMBA_JITTED:
            tier = "numba"
        elif np is not None and env.flag("REPRO_NUMBA_INTERP"):
            tier = "numba"
        elif np is not None:
            tier = "numpy"
        else:
            tier = "python"
    if tier not in ("numba", "numpy", "python"):
        raise ValueError(f"unknown accel tier {tier!r}")
    if tier in ("numpy", "numba") and np is None:
        raise RuntimeError(f"accel tier {tier!r} requires numpy (is REPRO_NO_NUMPY set?)")
    _build_registry(tier)
    TIER = tier
    return tier


def get(name: str):
    """The registered implementation for ``name`` (None when the tier
    has no replacement and the caller's reference loop should run)."""
    return _impl[name]


def kernel_tiers() -> dict:
    """Copy of the per-kernel resolved-tier map (for stats and tests)."""
    return dict(KERNEL_TIERS)


def kernel_chain(name: str) -> tuple:
    """Current tier of ``name`` followed by its remaining fallbacks."""
    return (KERNEL_TIERS[name],) + tuple(label for label, _, _ in _chains[name])


def failover_log() -> list:
    """Copy of the demotions since the last registry (re)build."""
    return [dict(rec) for rec in FAILOVERS]


# --- guarded dispatch: snapshot, fault hook, demote-and-retry --------


def _snapshot(obj):
    return bytes(obj) if isinstance(obj, bytearray) else list(obj)


def _demote(name: str, exc: BaseException) -> None:
    old = KERNEL_TIERS[name]
    label, fn, transactional = _chains[name].pop(0)
    _impl[name] = fn
    KERNEL_TIERS[name] = label
    _transactional[name] = transactional
    FAILOVERS.append(
        {"kernel": name, "from_tier": old, "to_tier": label, "error": repr(exc)}
    )
    warnings.warn(
        f"accel kernel {name!r} failed on tier {old!r}; demoted to {label!r} "
        f"for this process: {exc!r}",
        RuntimeWarning,
        stacklevel=4,
    )
    if obs.ENABLED:
        obs.counter("accel.failover")
        obs.counter(f"accel.failover.{name}")
        obs.event(
            "accel.failover", kernel=name, from_tier=old, to_tier=label, error=repr(exc)
        )


def _dispatch(name: str, args: tuple, mutable: tuple):
    """Run kernel ``name``, failing over down its tier chain on error.

    ``mutable`` names the positions of ``args`` the kernels mutate in
    place; unless the current impl is transactional they are snapshotted
    before the call and restored before a retry, so the fallback tier
    sees the exact pre-call state (and produces the bit-identical
    result the tier tests guarantee).  The terminal tier's failure --
    nothing left to fall back to -- propagates.

    Fast path: a kernel with an empty chain and no armed fault plan
    calls straight through, adding two dict/attribute reads over the
    pre-failover dispatcher.
    """
    if not _chains[name] and not _faults.ARMED and _impl[name] is not None:
        return _impl[name](*args)
    while True:
        fn = _impl[name]
        if fn is None:
            raise KernelFallback(
                f"kernel {name!r} has no implementation on tier {KERNEL_TIERS[name]!r}"
            )
        snaps = None
        if _chains[name] and not _transactional[name]:
            snaps = [(args[i], _snapshot(args[i])) for i in mutable]
        try:
            if _faults.ARMED:
                _faults.maybe_raise(name, KERNEL_TIERS[name])
            return fn(*args)
        except Exception as exc:
            if not _chains[name]:
                raise
            if snaps is not None:
                for obj, snap in snaps:
                    obj[:] = snap
            _demote(name, exc)


# --- module-level dispatchers (the API the engines call) ------------

#: Work counters of the most recent max-flow / retreat kernel call --
#: the telemetry side channel :mod:`repro.flow.parametric` copies into
#: its per-solve ``flow.solve`` events.  Populated only while
#: :data:`repro.obs.ENABLED` is set (the disabled path adds nothing but
#: the flag check), replaced wholesale per call.
last_solve: dict = {}


def _bfs_mode() -> str:
    """Which BFS the current dinic implementation last used."""
    tier = KERNEL_TIERS["dinic"]
    if tier == "numpy":
        return vector.LAST_BFS_MODE
    if tier == "python":
        return "scalar"
    return "kernel"  # numba / numba-interp: the compiled scalar BFS


def dinic_max_flow(source, sink, head, cap, adj_start, adj_arcs, warm=False):
    """Dinic max flow over flat arc arrays (mutates ``cap`` in place).

    ``warm`` hints that the network already carries a near-maximum flow
    (a warm-started parametric re-solve): the numpy tier then keeps the
    scalar BFS, whose early exit beats the arc-parallel passes on the
    1-3 short level builds a warm solve needs (see
    ``benchmarks/out/bfs_dispatch_note.txt``).
    """
    global last_solve
    vector.SOLVE_IS_WARM = warm
    args = (source, sink, head, cap, adj_start, adj_arcs)
    if not obs.ENABLED:
        total, _, _ = _dispatch("dinic", args, (3,))
        return total
    t0 = time.perf_counter()
    total, bfs_passes, augments = _dispatch("dinic", args, (3,))
    seconds = time.perf_counter() - t0
    last_solve = {
        "kernel": "dinic",
        "tier": KERNEL_TIERS["dinic"],
        "arcs": len(head) // 2,
        "bfs_mode": _bfs_mode(),
        "bfs_passes": bfs_passes,
        "augments": augments,
        "seconds": seconds,
    }
    obs.counter("accel.dinic.calls")
    obs.counter("accel.dinic.bfs_passes", bfs_passes)
    obs.counter("accel.dinic.augments", augments)
    return total


def push_relabel_max_flow(source, sink, head, cap, adj_start, adj_arcs):
    """Highest-label + gap push-relabel (mutates ``cap`` in place)."""
    global last_solve
    args = (source, sink, head, cap, adj_start, adj_arcs)
    if not obs.ENABLED:
        value, _, _ = _dispatch("push_relabel", args, (3,))
        return value
    t0 = time.perf_counter()
    value, pushes, relabels = _dispatch("push_relabel", args, (3,))
    seconds = time.perf_counter() - t0
    last_solve = {
        "kernel": "push_relabel",
        "tier": KERNEL_TIERS["push_relabel"],
        "arcs": len(head) // 2,
        "pushes": pushes,
        "relabels": relabels,
        "seconds": seconds,
    }
    obs.counter("accel.push_relabel.calls")
    obs.counter("accel.push_relabel.pushes", pushes)
    obs.counter("accel.push_relabel.relabels", relabels)
    return value


def ggt_retreat(head, cap, base_cap, adj_start, adj_arcs, alpha_arcs, alpha_coeff,
                num_nodes, source, alpha):
    """GGT decreasing-alpha clamp + excess drain (mutates ``cap``)."""
    clamped, drain_paths = _dispatch(
        "ggt_retreat",
        (head, cap, base_cap, adj_start, adj_arcs, alpha_arcs, alpha_coeff,
         num_nodes, source, alpha),
        (1,),
    )
    if obs.ENABLED:
        obs.counter("accel.ggt_retreat.calls")
        obs.counter("accel.ggt_retreat.clamped", clamped)
        obs.counter("accel.ggt_retreat.drain_paths", drain_paths)


def ggt_advance(cap, base_cap, alpha_arcs, alpha_coeff, alpha):
    """GGT increasing-alpha capacity refresh (mutates ``cap``)."""
    if obs.ENABLED:
        obs.counter("accel.ggt_advance.calls")
    return _dispatch("ggt_advance", (cap, base_cap, alpha_arcs, alpha_coeff, alpha), (0,))


def bucket_peel(inst, inc_start, inc_ids, deg, alive, in_graph, h, n_graph, num_alive):
    """Bucket-queue min-degree peel over a flat instance index."""
    if obs.ENABLED:
        obs.counter("accel.bucket_peel.calls")
    return _dispatch(
        "bucket_peel",
        (inst, inc_start, inc_ids, deg, alive, in_graph, h, n_graph, num_alive),
        (3, 4),
    )


def heap_peel(inst, inc_start, inc_ids, deg, alive, num_alive, n, h):
    """Whole-sequence min-degree peel (numba tier only; see
    :func:`repro.core.peel.min_degree_peel` for the reference loop).

    Raises :class:`KernelFallback` -- with ``deg`` and ``alive``
    restored -- when the kernel fails and the registry has no
    replacement; the caller then runs its reference loop.
    """
    if obs.ENABLED:
        obs.counter("accel.heap_peel.calls")
    return _dispatch(
        "heap_peel", (inst, inc_start, inc_ids, deg, alive, num_alive, n, h), (3, 4)
    )


def warm_up() -> str:
    """Run every registered kernel once on a toy input.

    On the numba tier this triggers (and caches) the JIT compilation of
    all kernels, so a serving process pays the compile before traffic
    arrives -- and a CI job fails fast on a kernel typing error.
    Returns the active tier.
    """
    # two-node network: source 0, sink 1, one unit arc + its reverse
    head = [1, 0]
    cap = [1.0, 0.0]
    adj_start = [0, 1, 2]
    adj_arcs = [0, 1]
    dinic_max_flow(0, 1, head, list(cap), list(adj_start), list(adj_arcs))
    push_relabel_max_flow(0, 1, head, list(cap), list(adj_start), list(adj_arcs))
    ggt_retreat(head, [0.5, 0.5], [0.0, 0.0], adj_start, adj_arcs, [0], [1.0], 2, 0, 0.25)
    ggt_advance([0.5, 0.5], [0.0, 0.0], [0], [1.0], 0.75)
    # one 2-clique instance over two vertices
    bucket_peel([0, 1], [0, 1, 2], [0, 0], [1, 1], bytearray(b"\x01"),
                bytearray(b"\x01\x01"), 2, 2, 1)
    if get("heap_peel") is not None:
        try:
            heap_peel([0, 1], [0, 1, 2], [0, 0], [1, 1], bytearray(b"\x01"), 1, 2, 2)
        except KernelFallback:  # demoted mid-warm-up: reference loop covers it
            pass
    return TIER


select_tier(None)
