"""numpy-assisted kernel implementations -- the middle dispatch tier.

Only the kernels with a genuinely vectorisable phase live here; today
that is Dinic's BFS level construction (one arc-parallel relaxation
pass per level, which beats the scalar queue on the shallow, wide DSD
networks).  The sequential loops -- blocking-flow DFS, push-relabel
discharge, drains, peels -- have no useful numpy formulation, so the
registry maps them to the pure tier when numba is unavailable.

The level arrays the vectorised BFS produces can label more nodes at
the sink's depth than the early-stopping scalar BFS, but the
blocking-flow DFS pushes no flow through those extra dead ends, so the
augmenting-path sequence and every residual float stay bit-identical
(asserted by the dispatch property suite).
"""

from __future__ import annotations

from .. import env
from ..flow.network import EPS
from . import pure

if env.flag("REPRO_NO_NUMPY"):  # explicit opt-out for CI / ablations
    np = None
else:
    try:  # optional: the scalar BFS is used when numpy is absent
        import numpy as np
    except ImportError:  # pragma: no cover - environment-specific
        np = None

#: Arc-array length above which the vectorised BFS pays for its
#: per-call numpy overhead on a *cold* solve (tuned on the bench
#: surrogates).  Read at every call, so tests and the dispatch-probe
#: bench can override it at runtime.
NUMPY_BFS_MIN_ARCS = 8192

#: The same threshold for *warm* re-solves.  A warm-started GGT solve
#: runs 1-3 short BFS passes whose scalar early exit the arc-parallel
#: relaxation cannot match, so the numpy per-call overhead never
#: amortises at any probed size (``benchmarks/out/bfs_dispatch_note.txt``)
#: -- the old single threshold picked the slower numpy BFS for warm
#: walks on As-Caida-sized networks.  Effectively infinite: warm solves
#: always take the scalar BFS until an autotuner (ROADMAP) learns a
#: real crossover from the flow.solve telemetry.
NUMPY_BFS_MIN_ARCS_WARM = 1 << 62

#: Warmth hint for the next :func:`dinic_max_flow` call, set by the
#: accel dispatcher from the parametric engine's warm-start mode.
SOLVE_IS_WARM = False

#: BFS implementation the most recent :func:`dinic_max_flow` call chose
#: (``"numpy"`` or ``"scalar"``) -- the telemetry side channel the accel
#: dispatcher copies into the per-solve flow records.
LAST_BFS_MODE = "scalar"


def _levels_numpy(head_np, tail_np, cap, n, source, sink):
    """Arc-parallel BFS: one vectorised relaxation pass per level."""
    residual = np.asarray(cap) > EPS
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    depth = 0
    while True:
        grow = residual & (level[tail_np] == depth) & (level[head_np] < 0)
        if not grow.any():
            break
        level[head_np[grow]] = depth + 1
        if level[sink] >= 0:
            break
        depth += 1
    return level.tolist()


def dinic_max_flow(source, sink, head, cap, adj_start, adj_arcs):
    """Dinic with the numpy BFS above the warmth-dependent threshold.

    Cold solves switch to the arc-parallel BFS above
    :data:`NUMPY_BFS_MIN_ARCS` arcs; warm re-solves (per
    :data:`SOLVE_IS_WARM`) use :data:`NUMPY_BFS_MIN_ARCS_WARM`.
    Returns ``(total, bfs_passes, augments)`` like the pure tier.
    """
    global LAST_BFS_MODE
    threshold = NUMPY_BFS_MIN_ARCS_WARM if SOLVE_IS_WARM else NUMPY_BFS_MIN_ARCS
    if np is None or len(head) < threshold:
        LAST_BFS_MODE = "scalar"
        return pure.dinic_max_flow(source, sink, head, cap, adj_start, adj_arcs)
    LAST_BFS_MODE = "numpy"
    head_np = np.asarray(head, dtype=np.int64)
    tail_np = head_np.reshape(-1, 2)[:, ::-1].reshape(-1)

    def levels(head_l, cap_l, adj_start_l, adj_arcs_l, n, src, snk):
        return _levels_numpy(head_np, tail_np, cap_l, n, src, snk)

    return pure.dinic_max_flow(
        source, sink, head, cap, adj_start, adj_arcs, levels_fn=levels
    )
