"""Numba-compatible hot-loop kernels over flat numpy arrays.

Every function here is written in *nopython style*: flat int64/float64/
uint8 arrays in, scalars and arrays out, no Python objects, no
closures, no comprehensions -- exactly the subset ``numba.njit``
compiles unchanged.  :mod:`repro.accel` applies ``njit(cache=True)`` to
each of them when numba is importable; without numba the very same
functions remain runnable interpreted (slow, but byte-for-byte the
code the JIT would compile), which is how the no-numba CI legs pin the
numba tier's bit-identity.

Each kernel is a literal translation of its reference implementation in
:mod:`repro.accel.pure`: same traversal order, same float-operation
order, same EPS discipline.  Since both execute identical IEEE-double
operation sequences, residual capacities, flow values, cuts, peel
orders and densities agree bit-for-bit across tiers (the dispatch
property suite asserts it).  Keep the two modules in lockstep.

This module imports numpy at module level and must therefore only be
imported when numpy is available (the registry guards this).
"""

from __future__ import annotations

import numpy as np

#: Must equal :data:`repro.flow.network.EPS`.  Kept as a literal because
#: numba freezes module globals into the compiled code as constants.
EPS = 1e-9

#: Names of the jittable kernels, in registry order.
KERNEL_NAMES = (
    "dinic_max_flow",
    "push_relabel_max_flow",
    "ggt_retreat",
    "bucket_peel",
    "heap_peel",
)


def dinic_max_flow(source, sink, head, cap, adj_start, adj_arcs):
    """Dinic over flat arrays; mirrors ``pure.dinic_max_flow`` exactly.

    Returns ``(total, bfs_passes, augments)`` like the pure tier -- the
    work counters feed the :mod:`repro.obs` telemetry and are identical
    across tiers by construction.
    """
    n = adj_start.shape[0] - 1
    total = 0.0
    bfs_passes = 0
    augments = 0
    level = np.empty(n, np.int64)
    it = np.empty(n, np.int64)
    queue = np.empty(n, np.int64)
    path = np.empty(n + 1, np.int64)

    while True:
        # --- BFS: build the level graph (early stop at the sink) ------
        level[:] = -1
        level[source] = 0
        queue[0] = source
        layer_start = 0
        layer_end = 1
        depth = 0
        while layer_start < layer_end and level[sink] < 0:
            depth += 1
            nxt_end = layer_end
            for qi in range(layer_start, layer_end):
                u = queue[qi]
                for idx in range(adj_start[u], adj_start[u + 1]):
                    arc = adj_arcs[idx]
                    v = head[arc]
                    if level[v] < 0 and cap[arc] > EPS:
                        level[v] = depth
                        queue[nxt_end] = v
                        nxt_end += 1
            layer_start = layer_end
            layer_end = nxt_end
        bfs_passes += 1
        if level[sink] < 0:
            return total, bfs_passes, augments

        # --- iterative DFS: push a blocking flow ----------------------
        it[:] = adj_start[:n]
        plen = 0
        u = source
        while True:
            if u == sink:
                pushed = cap[path[0]]
                for i in range(plen):
                    if cap[path[i]] < pushed:
                        pushed = cap[path[i]]
                for i in range(plen):
                    arc = path[i]
                    cap[arc] -= pushed
                    cap[arc ^ 1] += pushed
                total += pushed
                augments += 1
                # retreat to just before the first saturated arc
                for i in range(plen):
                    arc = path[i]
                    if cap[arc] <= EPS:
                        u = head[arc ^ 1]
                        plen = i
                        break
                continue
            advanced = False
            end = adj_start[u + 1]
            while it[u] < end:
                arc = adj_arcs[it[u]]
                v = head[arc]
                if cap[arc] > EPS and level[v] == level[u] + 1:
                    path[plen] = arc
                    plen += 1
                    u = v
                    advanced = True
                    break
                it[u] += 1
            if advanced:
                continue
            if u == source:
                break  # blocking flow complete for this phase
            level[u] = -1
            plen -= 1
            arc = path[plen]
            u = head[arc ^ 1]
            it[u] += 1


def push_relabel_max_flow(source, sink, head, cap, adj_start, adj_arcs):
    """Highest-label + gap push-relabel; mirrors the pure tier exactly.

    Returns ``(value, pushes, relabels)`` like the pure tier (telemetry
    work counters, tier-identical).
    """
    n = adj_start.shape[0] - 1

    finite_total = 0.0
    for i in range(cap.shape[0]):
        if not np.isinf(cap[i]):
            finite_total += cap[i]
    big = finite_total * 2.0 + 1.0
    for i in range(cap.shape[0]):
        if np.isinf(cap[i]):
            cap[i] = big

    max_h = 2 * n
    height = np.zeros(n, np.int64)
    excess = np.zeros(n, np.float64)
    height[source] = n
    count = np.zeros(max_h + 2, np.int64)
    count[0] = n - 1
    count[n] += 1

    bucket = np.full(max_h + 2, -1, np.int64)
    nxt = np.full(n, -1, np.int64)
    queued = np.zeros(n, np.uint8)
    highest = -1
    cursor = adj_start[:n].copy()
    pushes = 0
    relabels = 0

    for idx in range(adj_start[source], adj_start[source + 1]):
        arc = adj_arcs[idx]
        flow = cap[arc]
        if flow > EPS:
            v = head[arc]
            cap[arc] = 0.0
            cap[arc ^ 1] += flow
            excess[v] += flow
            if v != source and v != sink and queued[v] == 0:
                queued[v] = 1
                hv = height[v]
                nxt[v] = bucket[hv]
                bucket[hv] = v
                if hv > highest:
                    highest = hv

    while highest >= 0:
        u = bucket[highest]
        if u < 0:
            highest -= 1
            continue
        bucket[highest] = nxt[u]
        queued[u] = 0
        if excess[u] <= EPS:
            continue
        end = adj_start[u + 1]
        while excess[u] > EPS:
            if cursor[u] == end:
                min_height = -1
                for idx in range(adj_start[u], end):
                    arc = adj_arcs[idx]
                    if cap[arc] > EPS:
                        hh = height[head[arc]]
                        if min_height < 0 or hh < min_height:
                            min_height = hh
                if min_height < 0:
                    break  # isolated excess; cannot happen on sane networks
                old_h = height[u]
                count[old_h] -= 1
                height[u] = min_height + 1
                count[min_height + 1] += 1
                cursor[u] = adj_start[u]
                relabels += 1
                if count[old_h] == 0 and old_h < n:
                    for v in range(n):
                        hv = height[v]
                        if old_h < hv < n and v != source:
                            count[hv] -= 1
                            height[v] = n + 1
                            count[n + 1] += 1
                            cursor[v] = adj_start[v]
                    bucket[:] = -1
                    queued[:] = 0
                    highest = -1
                    for v in range(n):
                        if v != source and v != sink and v != u and excess[v] > EPS:
                            queued[v] = 1
                            hv = height[v]
                            nxt[v] = bucket[hv]
                            bucket[hv] = v
                            if hv > highest:
                                highest = hv
                continue
            arc = adj_arcs[cursor[u]]
            v = head[arc]
            if cap[arc] > EPS and height[u] == height[v] + 1:
                delta = excess[u] if excess[u] < cap[arc] else cap[arc]
                cap[arc] -= delta
                cap[arc ^ 1] += delta
                excess[u] -= delta
                excess[v] += delta
                pushes += 1
                if v != source and v != sink and queued[v] == 0:
                    queued[v] = 1
                    hv = height[v]
                    nxt[v] = bucket[hv]
                    bucket[hv] = v
                    if hv > highest:
                        highest = hv
            else:
                cursor[u] += 1
    return excess[sink], pushes, relabels


def ggt_retreat(
    head, cap, base_cap, adj_start, adj_arcs, alpha_arcs, alpha_coeff,
    num_nodes, source, alpha,
):
    """Clamp over-full alpha arcs and drain the excess back to the source.

    Returns ``(clamped, drain_paths)`` like the pure tier (telemetry
    work counters, tier-identical).
    """
    na = alpha_arcs.shape[0]
    exc_node = np.empty(na, np.int64)
    exc_amount = np.empty(na, np.float64)
    ne = 0
    for i in range(na):
        a = alpha_arcs[i]
        c = alpha_coeff[i]
        new_cap = base_cap[a] + c * alpha
        flow = cap[a ^ 1] - base_cap[a ^ 1]
        if flow > new_cap:
            cap[a] = 0.0
            cap[a ^ 1] = base_cap[a ^ 1] + new_cap
            exc_node[ne] = head[a ^ 1]
            exc_amount[ne] = flow - new_cap
            ne += 1
        else:
            cap[a] = new_cap - flow

    parent = np.empty(num_nodes, np.int64)
    stack = np.empty(num_nodes, np.int64)
    path = np.empty(num_nodes + 1, np.int64)
    drain_paths = 0
    for e in range(ne):
        node = exc_node[e]
        remaining = exc_amount[e]
        while remaining > EPS:
            parent[:] = -2
            parent[node] = -1
            stack[0] = node
            sp = 1
            found = False
            while sp > 0 and not found:
                sp -= 1
                u = stack[sp]
                for idx in range(adj_start[u], adj_start[u + 1]):
                    arc = adj_arcs[idx]
                    w = head[arc]
                    if parent[w] == -2 and cap[arc] > EPS:
                        parent[w] = arc
                        if w == source:
                            found = True
                            break
                        stack[sp] = w
                        sp += 1
            if not found:  # pragma: no cover - impossible for clamped max flows
                break
            plen = 0
            w = source
            while w != node:
                arc = parent[w]
                path[plen] = arc
                plen += 1
                w = head[arc ^ 1]
            push = remaining
            for i in range(plen):
                if cap[path[i]] < push:
                    push = cap[path[i]]
            for i in range(plen):
                arc = path[i]
                cap[arc] -= push
                cap[arc ^ 1] += push
            remaining -= push
            drain_paths += 1
    return ne, drain_paths


def bucket_peel(inst, inc_start, inc_ids, deg, alive, in_graph, h, n_graph, num_alive):
    """Bucket-queue min-degree peel; mirrors ``pure.bucket_peel`` exactly.

    Returns ``(core, order, best_removed, best_density)`` with ``core``
    and ``order`` as int64 arrays by internal id.
    """
    n = deg.shape[0]
    max_deg = 0
    for i in range(n):
        if deg[i] > max_deg:
            max_deg = deg[i]
    bin_start = np.zeros(max_deg + 2, np.int64)
    for i in range(n):
        bin_start[deg[i] + 1] += 1
    for d in range(max_deg + 1):
        bin_start[d + 1] += bin_start[d]
    fill = bin_start[: max_deg + 1].copy()
    bin_ptr = bin_start[: max_deg + 1]
    position = np.empty(n, np.int64)
    order = np.empty(n, np.int64)
    for i in range(n):
        d = deg[i]
        p = fill[d]
        position[i] = p
        order[p] = i
        fill[d] += 1

    core = np.zeros(n, np.int64)
    removed = np.zeros(n, np.uint8)
    best_density = (num_alive / n_graph) if n_graph else 0.0
    best_removed = 0
    alive_graph = n_graph
    for i in range(n):
        vi = order[i]
        dv = deg[vi]
        removed[vi] = 1
        core[vi] = dv
        if in_graph[vi]:
            alive_graph -= 1
        for pos in range(inc_start[vi], inc_start[vi + 1]):
            iid = inc_ids[pos]
            if alive[iid] == 0:
                continue
            alive[iid] = 0
            num_alive -= 1
            for k in range(iid * h, iid * h + h):
                ui = inst[k]
                if removed[ui] == 0 and deg[ui] > dv:
                    du = deg[ui]
                    first = bin_ptr[du]
                    w = order[first]
                    if w != ui:
                        pu = position[ui]
                        order[first] = ui
                        order[pu] = w
                        position[ui] = first
                        position[w] = pu
                    bin_ptr[du] += 1
                    deg[ui] = du - 1
        if alive_graph:
            density = num_alive / alive_graph
            if density > best_density:
                best_density = density
                best_removed = i + 1
    return core, order, best_removed, best_density


def heap_peel(inst, inc_start, inc_ids, deg, alive, num_alive, n, h):
    """Lazy-deletion heap peel (min ``(degree, id)``); the engine behind
    :func:`repro.core.peel.min_degree_peel` on the numba tier.

    Keys are encoded ``deg * n + vid`` (unique, lexicographic in
    ``(deg, vid)``), so the sequence of *valid* pops is identical to the
    pure tier's ``heapq`` over ``(deg, vid)`` tuples regardless of heap
    internals.  ``deg`` and ``alive`` are mutated in place; returns
    ``(cnt, order, num_alive_after, num_alive)`` where the first ``cnt``
    entries of ``order`` / ``num_alive_after`` are the removal sequence.
    """
    heap = np.empty(n + inst.shape[0] + 1, np.int64)
    size = 0
    for i in range(n):
        key = deg[i] * n + i
        j = size
        heap[size] = key
        size += 1
        while j > 0:
            up = (j - 1) >> 1
            if heap[up] > heap[j]:
                tmp = heap[up]
                heap[up] = heap[j]
                heap[j] = tmp
                j = up
            else:
                break

    n_all = deg.shape[0]
    removed = np.zeros(n_all, np.uint8)
    out_len = n - 1 if n > 1 else 0
    out_order = np.empty(out_len, np.int64)
    num_alive_after = np.empty(out_len, np.int64)
    cnt = 0
    for _ in range(n - 1):
        vid = -1
        while size > 0:
            key = heap[0]
            size -= 1
            heap[0] = heap[size]
            j = 0
            while True:
                left = 2 * j + 1
                if left >= size:
                    break
                m = left
                right = left + 1
                if right < size and heap[right] < heap[left]:
                    m = right
                if heap[m] < heap[j]:
                    tmp = heap[m]
                    heap[m] = heap[j]
                    heap[j] = tmp
                    j = m
                else:
                    break
            d = key // n
            i = key - d * n
            if removed[i] == 0 and deg[i] == d:
                vid = i
                break
        if vid < 0:
            break
        removed[vid] = 1
        for pos in range(inc_start[vid], inc_start[vid + 1]):
            iid = inc_ids[pos]
            if alive[iid] == 0:
                continue
            alive[iid] = 0
            num_alive -= 1
            for k in range(iid * h, iid * h + h):
                ui = inst[k]
                if removed[ui] == 0:
                    deg[ui] -= 1
                    if ui < n:
                        key = deg[ui] * n + ui
                        j = size
                        heap[size] = key
                        size += 1
                        while j > 0:
                            up = (j - 1) >> 1
                            if heap[up] > heap[j]:
                                tmp = heap[up]
                                heap[up] = heap[j]
                                heap[j] = tmp
                                j = up
                            else:
                                break
        out_order[cnt] = vid
        num_alive_after[cnt] = num_alive
        cnt += 1
    return cnt, out_order, num_alive_after, num_alive
