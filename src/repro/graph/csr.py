"""Compressed-sparse-row graph backend (numpy-accelerated fast paths).

Pure-Python adjacency sets are flexible but slow on graphs with
millions of edges -- the known weak spot of a Python reproduction of a
systems paper.  This module provides a read-only CSR view of a
:class:`~repro.graph.graph.Graph` plus numpy-backed implementations of
the two hottest kernels:

* :func:`core_numbers` -- Batagelj–Zaveršnik over flat arrays,
* :func:`triangle_degrees` -- per-vertex triangle counts via sorted
  adjacency-array intersections.

Both are exact drop-in replacements for their set-based counterparts
(the test suite verifies equality); the ablation bench quantifies the
speedup.  numpy is an optional dependency: importing this module
without it raises ``ImportError`` with a clear message.
"""

from __future__ import annotations

from typing import Sequence

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - environment-specific
    raise ImportError("repro.graph.csr requires numpy") from exc

from .graph import Graph, Vertex


class CSRGraph:
    """An immutable CSR snapshot of an undirected graph.

    Attributes
    ----------
    indptr / indices:
        Standard CSR arrays: neighbours of internal vertex ``i`` are
        ``indices[indptr[i]:indptr[i+1]]``, sorted ascending.
    vertices:
        External vertex labels, indexed by internal id.
    """

    __slots__ = ("indptr", "indices", "vertices", "_index_of")

    def __init__(self, graph: Graph):
        self.vertices: list[Vertex] = sorted(graph.vertices(), key=str)
        self._index_of = {v: i for i, v in enumerate(self.vertices)}
        n = len(self.vertices)
        index = self._index_of
        # One pass over the edge list to integer pairs, then vectorised
        # symmetrisation + lexsort; no per-vertex Python loop.
        pairs = [(index[u], index[v]) for u, v in graph.edges()]
        if pairs:
            edges = np.asarray(pairs, dtype=np.int64)
            src = np.concatenate([edges[:, 0], edges[:, 1]])
            dst = np.concatenate([edges[:, 1], edges[:, 0]])
            order = np.lexsort((dst, src))
            self.indices = dst[order]
            counts = np.bincount(src, minlength=n)
        else:
            self.indices = np.empty(0, dtype=np.int64)
            counts = np.zeros(n, dtype=np.int64)
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return int(self.indptr[-1]) // 2

    def degree_array(self) -> "np.ndarray":
        """Degrees of all vertices in internal-id order."""
        return np.diff(self.indptr)

    def neighbors_of(self, internal_id: int) -> "np.ndarray":
        """Sorted neighbour ids of an internal vertex id."""
        return self.indices[self.indptr[internal_id] : self.indptr[internal_id + 1]]

    def index_of(self, vertex: Vertex) -> int:
        """Internal id of an external vertex label."""
        return self._index_of[vertex]

    def relabel(self, values: Sequence) -> dict[Vertex, object]:
        """Map an internal-id-ordered sequence back to external labels."""
        return {self.vertices[i]: values[i] for i in range(len(self.vertices))}


def core_numbers(csr: CSRGraph) -> dict[Vertex, int]:
    """Classical core numbers over the CSR arrays (O(n + m)).

    Returns the same mapping as
    :func:`repro.core.kcore.core_decomposition` (tested), with the
    bucket queue held in flat numpy arrays -- the standard array-based
    Batagelj–Zaveršnik layout.
    """
    n = csr.num_vertices
    if n == 0:
        return {}
    degree = csr.degree_array().copy()
    max_deg = int(degree.max(initial=0))

    # counting sort of vertices by degree
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    for d in degree:
        bin_start[d + 1] += 1
    bin_start = np.cumsum(bin_start)
    position = np.empty(n, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    fill = bin_start[:-1].copy()
    for v in range(n):
        position[v] = fill[degree[v]]
        order[position[v]] = v
        fill[degree[v]] += 1

    core = degree.copy()
    indptr, indices = csr.indptr, csr.indices
    bin_ptr = bin_start[:-1].copy()
    for i in range(n):
        v = order[i]
        for u in indices[indptr[v] : indptr[v + 1]]:
            if core[u] > core[v]:
                # swap u with the first vertex of its bucket, shrink it
                du = core[u]
                first = bin_ptr[du]
                w = order[first]
                if w != u:
                    pu = position[u]
                    order[first], order[pu] = u, w
                    position[u], position[w] = first, pu
                bin_ptr[du] += 1
                core[u] -= 1
    return csr.relabel([int(c) for c in core])


def triangle_degrees(csr: CSRGraph) -> dict[Vertex, int]:
    """Per-vertex triangle counts via sorted-array intersections.

    Equivalent to ``clique_degrees(graph, 3)`` (tested).  Each edge
    (u, v) with u < v contributes |N(u) ∩ N(v)| triangles; the
    intersection runs in numpy over the sorted adjacency slices.
    """
    n = csr.num_vertices
    counts = np.zeros(n, dtype=np.int64)
    indptr, indices = csr.indptr, csr.indices
    for u in range(n):
        nbrs_u = indices[indptr[u] : indptr[u + 1]]
        higher = nbrs_u[nbrs_u > u]
        for v in higher:
            nbrs_v = indices[indptr[v] : indptr[v + 1]]
            common = np.intersect1d(nbrs_u, nbrs_v, assume_unique=True)
            # count each triangle once at its (u, v) edge with w > v to
            # avoid triple counting, then credit all three corners
            for w in common[common > v]:
                counts[u] += 1
                counts[v] += 1
                counts[w] += 1
    return csr.relabel([int(c) for c in counts])


def triangle_count(csr: CSRGraph) -> int:
    """Total number of triangles ``μ(G, K3)``."""
    return sum(triangle_degrees(csr).values()) // 3
