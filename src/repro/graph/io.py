"""Reading and writing graphs as plain-text edge lists.

The on-disk format is the one used by SNAP / GTgraph dumps that the paper
consumes: one edge per line, two whitespace-separated vertex ids, with
``#``-prefixed comment lines ignored.  Vertices parse as ``int`` when
possible, otherwise stay strings.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable, TextIO, Union

from .graph import Graph, Vertex

PathLike = Union[str, Path]


def _parse_vertex(token: str) -> Vertex:
    """Parse a vertex token, preferring ``int`` ids."""
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(source: Union[PathLike, TextIO], *, strict: bool = False) -> Graph:
    """Read a graph from an edge-list file or open text stream.

    Parameters
    ----------
    source:
        A filesystem path or a readable text stream.
    strict:
        ``False`` (the default, matching the historical behaviour)
        *cleans* the input: self-loops are dropped, duplicate and
        reversed re-statements of an edge collapse, zero-weight edges
        are skipped, and a non-numeric third token is ignored.
        ``True`` turns each of those into a line-numbered
        ``ValueError`` instead -- the mode for ingesting a dataset that
        is *supposed* to be a clean simple graph, where a self-loop or
        a duplicate means the export is corrupt.

    Raises
    ------
    ValueError
        On a malformed line (fewer than two tokens), a non-finite or
        negative edge weight (both modes: NaN/inf/negative weights
        indicate corruption, never a usable simple graph), or -- in
        strict mode -- a self-loop, duplicate/reversed edge, unparsable
        weight, or an input with no usable edges at all.

    Notes
    -----
    An optional third whitespace-separated token per line is parsed as
    an edge weight for validation only; the simple-graph data model
    keeps no weights, so a valid positive weight is then discarded.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read_stream(handle, strict)
    return _read_stream(source, strict)


def _read_stream(handle: TextIO, strict: bool = False) -> Graph:
    graph = Graph()
    saw_line = False
    for lineno, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith(("#", "%")):
            continue
        tokens = line.split()
        if len(tokens) < 2:
            raise ValueError(f"line {lineno}: expected two vertex ids, got {line!r}")
        saw_line = True
        u, v = _parse_vertex(tokens[0]), _parse_vertex(tokens[1])
        if len(tokens) >= 3:
            try:
                weight = float(tokens[2])
            except ValueError:
                if strict:
                    raise ValueError(
                        f"line {lineno}: unparsable edge weight {tokens[2]!r}"
                    ) from None
                weight = 1.0  # tolerated in cleanup mode (extra column, not a weight)
            if math.isnan(weight) or math.isinf(weight) or weight < 0:
                raise ValueError(
                    f"line {lineno}: edge weight {tokens[2]} is not a finite "
                    "non-negative number; the file is corrupt"
                )
            if weight == 0:
                if strict:
                    raise ValueError(
                        f"line {lineno}: zero-weight edge ({u!r}, {v!r}); "
                        "drop it or re-read with strict=False"
                    )
                continue  # cleanup mode: a zero-weight edge is no edge
        if u == v:
            if strict:
                raise ValueError(
                    f"line {lineno}: self-loop on vertex {u!r} (simple-graph "
                    "model); re-read with strict=False to drop it"
                )
            continue  # drop self-loops: simple-graph model
        if graph.has_edge(u, v):
            if strict:
                raise ValueError(
                    f"line {lineno}: duplicate edge ({u!r}, {v!r}) (possibly "
                    "reversed); re-read with strict=False to collapse it"
                )
            continue
        graph.add_edge(u, v)
    if strict and saw_line and graph.num_edges == 0:
        raise ValueError("input contained edge lines but no usable edge survived")
    return graph


def write_edge_list(graph: Graph, target: Union[PathLike, TextIO]) -> None:
    """Write ``graph`` as an edge list (one ``u v`` pair per line).

    Isolated vertices are not representable in this format and are
    therefore not round-tripped; callers that need them should persist a
    vertex list separately.
    """
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            _write_stream(graph, handle)
        return
    _write_stream(graph, target)


def _write_stream(graph: Graph, handle: TextIO) -> None:
    handle.write(f"# undirected simple graph: n={graph.num_vertices} m={graph.num_edges}\n")
    for u, v in graph.edges():
        handle.write(f"{u} {v}\n")


def from_edges(edges: Iterable[tuple[Vertex, Vertex]]) -> Graph:
    """Build a graph from an in-memory edge iterable (convenience alias)."""
    return Graph(edges)
