"""Reading and writing graphs as plain-text edge lists.

The on-disk format is the one used by SNAP / GTgraph dumps that the paper
consumes: one edge per line, two whitespace-separated vertex ids, with
``#``-prefixed comment lines ignored.  Vertices parse as ``int`` when
possible, otherwise stay strings.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO, Union

from .graph import Graph, Vertex

PathLike = Union[str, Path]


def _parse_vertex(token: str) -> Vertex:
    """Parse a vertex token, preferring ``int`` ids."""
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(source: Union[PathLike, TextIO]) -> Graph:
    """Read a graph from an edge-list file or open text stream.

    Self-loops in the input are dropped (the data model is a simple
    graph); duplicate edges collapse naturally.

    Parameters
    ----------
    source:
        A filesystem path or a readable text stream.

    Raises
    ------
    ValueError
        On a malformed line (fewer than two tokens).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read_stream(handle)
    return _read_stream(source)


def _read_stream(handle: TextIO) -> Graph:
    graph = Graph()
    for lineno, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith(("#", "%")):
            continue
        tokens = line.split()
        if len(tokens) < 2:
            raise ValueError(f"line {lineno}: expected two vertex ids, got {line!r}")
        u, v = _parse_vertex(tokens[0]), _parse_vertex(tokens[1])
        if u == v:
            continue  # drop self-loops: simple-graph model
        graph.add_edge(u, v)
    return graph


def write_edge_list(graph: Graph, target: Union[PathLike, TextIO]) -> None:
    """Write ``graph`` as an edge list (one ``u v`` pair per line).

    Isolated vertices are not representable in this format and are
    therefore not round-tripped; callers that need them should persist a
    vertex list separately.
    """
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            _write_stream(graph, handle)
        return
    _write_stream(graph, target)


def _write_stream(graph: Graph, handle: TextIO) -> None:
    handle.write(f"# undirected simple graph: n={graph.num_vertices} m={graph.num_edges}\n")
    for u, v in graph.edges():
        handle.write(f"{u} {v}\n")


def from_edges(edges: Iterable[tuple[Vertex, Vertex]]) -> Graph:
    """Build a graph from an in-memory edge iterable (convenience alias)."""
    return Graph(edges)
