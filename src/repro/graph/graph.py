"""Undirected simple graph substrate.

Every algorithm in this package operates on :class:`Graph`, a plain
adjacency-set representation of an undirected, unweighted, simple graph
(no self-loops, no parallel edges), matching the data model of Section 3
of the paper.

Vertices are arbitrary hashable objects (typically ``int``).  The class
is deliberately small and explicit: dense-subgraph algorithms need fast
neighbourhood iteration, induced subgraphs, connected components and a
degeneracy ordering -- nothing more exotic.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


class Graph:
    """An undirected, unweighted, simple graph.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs.  Self-loops are rejected;
        duplicate edges are silently collapsed (the graph is simple).
    vertices:
        Optional iterable of isolated vertices to add up front.

    Examples
    --------
    >>> g = Graph([(0, 1), (1, 2), (2, 0)])
    >>> g.num_vertices, g.num_edges
    (3, 3)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, edges: Iterable[Edge] = (), vertices: Iterable[Vertex] = ()):
        self._adj: dict[Vertex, set[Vertex]] = {}
        self._num_edges = 0
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (no-op if already present)."""
        if v not in self._adj:
            self._adj[v] = set()

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Raises
        ------
        ValueError
            If ``u == v`` (self-loops violate the simple-graph model).
        """
        if u == v:
            raise ValueError(f"self-loop on vertex {u!r} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges.

        Raises
        ------
        KeyError
            If ``v`` is not in the graph.
        """
        neighbors = self._adj.pop(v)
        for u in neighbors:
            self._adj[u].discard(v)
        self._num_edges -= len(neighbors)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        KeyError
            If the edge is not present.
        """
        if u not in self._adj or v not in self._adj[u]:
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n = |V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges ``m = |E|``."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once.

        The orientation of the returned pair is arbitrary but stable for
        a given graph state.
        """
        seen: set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def neighbors(self, v: Vertex) -> set[Vertex]:
        """The neighbour set of ``v`` (do not mutate the returned set)."""
        return self._adj[v]

    def degree(self, v: Vertex) -> int:
        """Classical (edge-based) degree of ``v``."""
        return len(self._adj[v])

    def max_degree(self) -> int:
        """The maximum degree ``d``; 0 for the empty graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def edge_density(self) -> float:
        """Edge-density ``|E| / |V|`` (Definition 1); 0.0 for the empty graph."""
        if not self._adj:
            return 0.0
        return self._num_edges / len(self._adj)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """An independent deep copy of the graph."""
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """The subgraph induced by ``vertices`` (``G[T]`` in the paper).

        Vertices absent from the graph are ignored.
        """
        keep = {v for v in vertices if v in self._adj}
        g = Graph()
        g._adj = {v: self._adj[v] & keep for v in keep}
        g._num_edges = sum(len(nbrs) for nbrs in g._adj.values()) // 2
        return g

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set[Vertex]]:
        """All connected components as vertex sets (BFS, O(n + m))."""
        components: list[set[Vertex]] = []
        unvisited = set(self._adj)
        while unvisited:
            start = next(iter(unvisited))
            component = {start}
            queue = deque([start])
            unvisited.discard(start)
            while queue:
                u = queue.popleft()
                for w in self._adj[u]:
                    if w in unvisited:
                        unvisited.discard(w)
                        component.add(w)
                        queue.append(w)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected)."""
        if not self._adj:
            return True
        return len(self.connected_components()) == 1

    def degeneracy_ordering(self) -> tuple[list[Vertex], int]:
        """Compute a degeneracy (smallest-last) ordering.

        Returns
        -------
        (order, degeneracy):
            ``order`` lists vertices in removal order (the i-th vertex has
            the minimum degree in the graph induced by ``order[i:]``), and
            ``degeneracy`` is the maximum of those minimum degrees, which
            equals the classical ``kmax`` of the k-core decomposition.

        Notes
        -----
        Bucket-queue implementation, O(n + m), following Batagelj &
        Zaveršnik [7] / Matula & Beck.
        """
        degree = {v: len(nbrs) for v, nbrs in self._adj.items()}
        max_deg = max(degree.values(), default=0)
        buckets: list[set[Vertex]] = [set() for _ in range(max_deg + 1)]
        for v, d in degree.items():
            buckets[d].add(v)
        order: list[Vertex] = []
        removed: set[Vertex] = set()
        degeneracy = 0
        cursor = 0
        for _ in range(len(self._adj)):
            while cursor <= max_deg and not buckets[cursor]:
                cursor += 1
            # A vertex removal can only lower other degrees by one, so the
            # next minimum is at least cursor - 1.
            v = buckets[cursor].pop()
            degeneracy = max(degeneracy, cursor)
            order.append(v)
            removed.add(v)
            for u in self._adj[v]:
                if u not in removed:
                    d = degree[u]
                    buckets[d].discard(u)
                    degree[u] = d - 1
                    buckets[d - 1].add(u)
            cursor = max(cursor - 1, 0)
        return order, degeneracy

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"


def complete_graph(h: int) -> Graph:
    """The complete graph ``K_h`` on vertices ``0 .. h-1``.

    >>> complete_graph(4).num_edges
    6
    """
    if h < 1:
        raise ValueError("complete graph needs at least one vertex")
    g = Graph(vertices=range(h))
    for i in range(h):
        for j in range(i + 1, h):
            g.add_edge(i, j)
    return g


def cycle_graph(h: int) -> Graph:
    """The cycle ``C_h`` on vertices ``0 .. h-1`` (h >= 3)."""
    if h < 3:
        raise ValueError("a cycle needs at least three vertices")
    return Graph((i, (i + 1) % h) for i in range(h))


def star_graph(tails: int) -> Graph:
    """A star with centre ``0`` and ``tails`` leaf vertices ``1 .. tails``."""
    if tails < 1:
        raise ValueError("a star needs at least one tail")
    return Graph((0, i) for i in range(1, tails + 1))


def path_graph(h: int) -> Graph:
    """The path ``P_h`` on vertices ``0 .. h-1``."""
    if h < 1:
        raise ValueError("a path needs at least one vertex")
    g = Graph(vertices=range(h))
    for i in range(h - 1):
        g.add_edge(i, i + 1)
    return g
