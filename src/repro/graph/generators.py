"""Synthetic graph generators.

The paper evaluates on three GTgraph random-graph families (Section 8):

* **SSCA** -- a union of random-sized planted cliques (SSCA#2 kernel),
* **ER** -- the Erdős–Rényi uniform model,
* **R-MAT** -- the recursive-matrix power-law model.

All three are reimplemented here from scratch and seeded, plus two
power-law family generators (Chung–Lu and Holme–Kim) used to build
surrogates for the paper's real datasets (see ``repro.datasets``).
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

from .graph import Graph


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def erdos_renyi_gnm(n: int, m: int, seed: Optional[int] = None) -> Graph:
    """Uniform random graph with exactly ``n`` vertices and ``m`` edges.

    Raises
    ------
    ValueError
        If ``m`` exceeds the number of vertex pairs.
    """
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} edges among {n} vertices (max {max_edges})")
    rng = _rng(seed)
    graph = Graph(vertices=range(n))
    placed = 0
    while placed < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            placed += 1
    return graph


def erdos_renyi_gnp(n: int, p: float, seed: Optional[int] = None) -> Graph:
    """Erdős–Rényi ``G(n, p)``: each pair is an edge with probability ``p``.

    Uses the skipping technique (geometric jumps) so the cost is
    proportional to the number of edges generated, not ``n**2``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("edge probability must lie in [0, 1]")
    graph = Graph(vertices=range(n))
    if p == 0.0 or n < 2:
        return graph
    rng = _rng(seed)
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph
    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w += 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def rmat(
    n: int,
    m: int,
    a: float = 0.45,
    b: float = 0.15,
    c: float = 0.15,
    d: float = 0.25,
    seed: Optional[int] = None,
) -> Graph:
    """R-MAT recursive-matrix graph (Chakrabarti et al.).

    ``n`` is rounded up to the next power of two internally; vertices that
    receive no edge remain isolated, matching GTgraph's behaviour.  The
    default quadrant probabilities are GTgraph's defaults and produce a
    power-law degree distribution.

    Duplicate edges and self-loops are regenerated so the result has
    exactly ``m`` distinct edges (or stops early if the model saturates).
    """
    if abs(a + b + c + d - 1.0) > 1e-9:
        raise ValueError("quadrant probabilities must sum to 1")
    rng = _rng(seed)
    levels = max(1, math.ceil(math.log2(max(n, 2))))
    size = 1 << levels
    graph = Graph(vertices=range(n))
    attempts = 0
    max_attempts = 50 * m + 1000
    placed = 0
    while placed < m and attempts < max_attempts:
        attempts += 1
        u = v = 0
        span = size
        for _ in range(levels):
            span //= 2
            r = rng.random()
            if r < a:
                pass
            elif r < a + b:
                v += span
            elif r < a + b + c:
                u += span
            else:
                u += span
                v += span
        u %= n
        v %= n
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            placed += 1
    return graph


def ssca(
    n: int,
    max_clique_size: int = 20,
    seed: Optional[int] = None,
    inter_clique_prob: float = 0.001,
) -> Graph:
    """SSCA#2-style graph: random-sized planted cliques plus sparse links.

    Vertices are partitioned into cliques whose sizes are uniform in
    ``[1, max_clique_size]``; a sparse random set of inter-clique edges is
    added (probability ``inter_clique_prob`` per sampled pair), mirroring
    the GTgraph SSCA#2 generator the paper uses.
    """
    if max_clique_size < 1:
        raise ValueError("max_clique_size must be >= 1")
    rng = _rng(seed)
    graph = Graph(vertices=range(n))
    cliques: list[list[int]] = []
    start = 0
    while start < n:
        size = rng.randint(1, max_clique_size)
        members = list(range(start, min(start + size, n)))
        cliques.append(members)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(u, v)
        start += size
    # Sparse inter-clique edges: sample ~ inter_clique_prob * n * max_clique_size pairs.
    trials = int(inter_clique_prob * n * max_clique_size) + len(cliques)
    for _ in range(trials):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


def chung_lu(weights: Sequence[float], seed: Optional[int] = None) -> Graph:
    """Chung–Lu random graph with expected degrees ``weights``.

    Pair ``(u, v)`` is an edge with probability
    ``min(1, w_u * w_v / sum(w))``.  Implemented with the efficient
    sorted-weights skipping procedure (Miller & Hagberg), O(n + m).
    """
    n = len(weights)
    graph = Graph(vertices=range(n))
    if n < 2:
        return graph
    rng = _rng(seed)
    order = sorted(range(n), key=lambda i: -weights[i])
    w = [weights[i] for i in order]
    total = sum(w)
    if total <= 0:
        return graph
    for i in range(n - 1):
        if w[i] <= 0:
            break
        factor = w[i] / total
        p = min(w[i + 1] * factor, 1.0)
        j = i + 1
        while j < n and p > 0:
            if p < 1.0:
                r = 1.0 - rng.random()  # in (0, 1], keeps log(r) finite
                j += int(math.log(r) / math.log(1.0 - p))
            if j < n:
                q = min(w[j] * factor, 1.0)
                if rng.random() < q / p:
                    graph.add_edge(order[i], order[j])
                p = q
                j += 1
    return graph


def power_law_weights(n: int, alpha: float, mean_degree: float) -> list[float]:
    """Expected-degree sequence ``w_i ~ i^(-1/(alpha-1))`` rescaled to a mean.

    Suitable as input to :func:`chung_lu`; ``alpha`` is the target
    power-law exponent (> 2 keeps the mean finite).
    """
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1")
    gamma = 1.0 / (alpha - 1.0)
    raw = [(i + 1.0) ** (-gamma) for i in range(n)]
    scale = mean_degree * n / sum(raw)
    return [x * scale for x in raw]


def holme_kim(
    n: int,
    edges_per_vertex: int,
    triangle_prob: float = 0.5,
    seed: Optional[int] = None,
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Grows a preferential-attachment graph; after each preferential edge,
    with probability ``triangle_prob`` the next edge closes a triangle
    with a neighbour of the previous target.  This yields the skewed
    degree distribution plus a locally dense core that the paper's real
    datasets exhibit, making it the backbone of our dataset surrogates.
    """
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be >= 1")
    if n < edges_per_vertex + 1:
        raise ValueError("need n > edges_per_vertex")
    rng = _rng(seed)
    graph = Graph(vertices=range(n))
    # Seed with a small clique so preferential attachment has targets.
    seed_size = edges_per_vertex + 1
    for i in range(seed_size):
        for j in range(i + 1, seed_size):
            graph.add_edge(i, j)
    # repeated-endpoint list for preferential sampling
    endpoints: list[int] = []
    for u, v in graph.edges():
        endpoints.extend((u, v))
    for new in range(seed_size, n):
        targets: set[int] = set()
        prev_target: Optional[int] = None
        while len(targets) < edges_per_vertex:
            if (
                prev_target is not None
                and rng.random() < triangle_prob
                and graph.degree(prev_target) > 0
            ):
                # triangle-formation step: attach to a neighbour of prev.
                candidates = [w for w in graph.neighbors(prev_target)
                              if w != new and w not in targets]
                if candidates:
                    choice = rng.choice(candidates)
                    targets.add(choice)
                    prev_target = choice
                    continue
            choice = endpoints[rng.randrange(len(endpoints))]
            if choice != new and choice not in targets:
                targets.add(choice)
                prev_target = choice
        for t in targets:
            graph.add_edge(new, t)
            endpoints.extend((new, t))
    return graph


def planted_clique(
    background: Graph,
    clique_size: int,
    seed: Optional[int] = None,
) -> tuple[Graph, list[int]]:
    """Plant a clique on random existing vertices of ``background``.

    Returns the modified copy and the list of clique members.  Used by
    tests and surrogates to guarantee a known dense region.
    """
    if clique_size > background.num_vertices:
        raise ValueError("clique larger than the graph")
    rng = _rng(seed)
    graph = background.copy()
    members = rng.sample(sorted(graph.vertices()), clique_size)
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            graph.add_edge(u, v)
    return graph, members
