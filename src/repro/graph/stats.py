"""Graph statistics used in the paper's dataset table (Appendix A).

For every dataset the paper reports: number of vertices/edges, number of
connected components, (maximum-component) diameter, the decay exponent
``alpha`` of a power-law fit to the degree distribution, ``kmax`` and the
size of the (kmax, triangle)-core.  This module provides the first four;
the core-related figures come from :mod:`repro.core`.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from dataclasses import dataclass

from .graph import Graph, Vertex


def eccentricity(graph: Graph, source: Vertex) -> int:
    """Largest BFS distance from ``source`` within its component."""
    dist = {source: 0}
    queue = deque([source])
    far = 0
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = dist[u] + 1
                far = max(far, dist[w])
                queue.append(w)
    return far


def diameter(graph: Graph, exact_threshold: int = 2000) -> int:
    """Diameter of the largest connected component.

    For components with at most ``exact_threshold`` vertices the diameter
    is computed exactly (all-sources BFS).  Larger components use the
    two-sweep / iterative-fringe heuristic, which is exact on trees and a
    tight lower bound in general -- adequate for the descriptive dataset
    table the paper presents.
    """
    if graph.num_vertices == 0:
        return 0
    components = graph.connected_components()
    largest = max(components, key=len)
    sub = graph.subgraph(largest)
    if len(largest) <= exact_threshold:
        return max(eccentricity(sub, v) for v in sub)
    # Two-sweep heuristic with a few restarts.
    start = next(iter(sub))
    best = 0
    for _ in range(4):
        dist = _bfs_distances(sub, start)
        far, ecc = max(dist.items(), key=lambda item: item[1])
        best = max(best, ecc)
        if far == start:
            break
        start = far
    return best


def _bfs_distances(graph: Graph, source: Vertex) -> dict[Vertex, int]:
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = dist[u] + 1
                queue.append(w)
    return dist


def power_law_alpha(graph: Graph, dmin: int = 1) -> float:
    """Maximum-likelihood estimate of the power-law exponent ``alpha``.

    Fits ``P(deg = x) ~ x^-alpha`` over vertices with degree >= ``dmin``
    using the discrete Clauset--Shalizi--Newman MLE
    ``alpha = 1 + n / sum(ln(d_i / (dmin - 0.5)))``.

    Returns ``float('nan')`` when fewer than two vertices qualify.
    """
    degrees = [graph.degree(v) for v in graph if graph.degree(v) >= dmin]
    if len(degrees) < 2:
        return float("nan")
    denom = sum(math.log(d / (dmin - 0.5)) for d in degrees)
    if denom <= 0:
        return float("nan")
    return 1.0 + len(degrees) / denom


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Map ``degree -> number of vertices with that degree``."""
    return dict(Counter(graph.degree(v) for v in graph))


@dataclass(frozen=True)
class GraphStats:
    """The dataset-table row of Appendix A (core columns filled by callers)."""

    num_vertices: int
    num_edges: int
    num_components: int
    diameter: int
    power_law_alpha: float

    @classmethod
    def of(cls, graph: Graph) -> "GraphStats":
        """Compute the structural statistics of ``graph``."""
        return cls(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            num_components=len(graph.connected_components()),
            diameter=diameter(graph),
            power_law_alpha=power_law_alpha(graph),
        )
