"""Graph substrate: data structure, I/O, statistics, generators."""

from .graph import Graph, complete_graph, cycle_graph, path_graph, star_graph
from .io import read_edge_list, write_edge_list
from .stats import GraphStats, diameter, power_law_alpha

__all__ = [
    "Graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "read_edge_list",
    "write_edge_list",
    "GraphStats",
    "diameter",
    "power_law_alpha",
]
