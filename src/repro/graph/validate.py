"""Input validation for the solver entry points.

:func:`validate_graph` is the gate :func:`repro.api.densest_subgraph`
runs before dispatching (``strict=True``, the default).  It turns the
confusing downstream failures a malformed input would produce (empty
flow networks, ``NaN`` densities poisoning every comparison, unhashable
adjacency keys) into one actionable ``TypeError``/``ValueError`` at the
boundary.  The :class:`~repro.graph.graph.Graph` data model already
rejects self-loops at ``add_edge`` time and collapses duplicate /
reversed edges, so those need no re-check here; the file reader
(:func:`repro.graph.io.read_edge_list`) is where raw edge lists get the
same treatment line by line.
"""

from __future__ import annotations

import math

from .graph import Graph

__all__ = ["validate_graph"]


def validate_graph(graph: Graph, *, where: str = "densest_subgraph") -> None:
    """Raise on inputs the solvers cannot produce a meaningful answer for.

    Checks, in order:

    * ``graph`` is a :class:`Graph` (``TypeError`` otherwise -- passing
      an edge list or a networkx graph is the common mistake);
    * the graph is non-empty (``ValueError``: the densest subgraph of
      nothing is undefined, and the flow builders would construct a
      source-sink-only network);
    * no vertex id is a float ``NaN`` (``ValueError``: ``NaN != NaN``,
      so such a vertex corrupts every set/dict lookup downstream).

    Float ids that merely *allow* NaN are fine; only an actual NaN is
    rejected.  Self-loops and duplicate edges cannot exist in a
    ``Graph`` by construction, so they are not re-checked.
    """
    if not isinstance(graph, Graph):
        raise TypeError(
            f"{where} expects a repro.graph.graph.Graph, got "
            f"{type(graph).__name__!r}; build one with Graph(edges) or "
            "repro.graph.io.read_edge_list(path)"
        )
    if graph.num_vertices == 0:
        raise ValueError(
            f"{where}: the graph is empty; add vertices/edges first "
            "(read_edge_list(path, strict=False) drops unusable lines "
            "instead of raising if the source file is dirty)"
        )
    for v in graph:
        if isinstance(v, float) and math.isnan(v):
            raise ValueError(
                f"{where}: vertex id NaN is not a usable key "
                "(NaN != NaN breaks set membership); relabel the vertex"
            )
