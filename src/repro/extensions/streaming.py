"""Bahmani–Kumar–Vassilvitskii streaming approximation (extension).

The paper's related-work section cites Bahmani et al. (PVLDB'12): a
``1/(2+2ε)``-approximation for the EDS that needs only O(log n / ε)
passes over the edge stream.  Each pass removes *every* vertex whose
degree is at most ``2(1+ε)`` times the current density ρ -- a batch
version of Charikar's peeling that suits streaming and MapReduce.  The
``2`` matters twice over: the average degree is exactly ``2ρ``, so each
pass is guaranteed to doom at least the below-average vertices and the
survivor count shrinks by a factor ``1+ε`` per pass (that is where the
logarithmic pass bound comes from), and the set of vertices peeled
*just before* the density collapses certifies the ``1/(2+2ε)`` ratio.

Included as a labelled extension (the paper describes but does not
evaluate it); it doubles as another independent lower bound the test
suite can compare against CoreExact's optimum.
"""

from __future__ import annotations

from ..core.exact import DensestSubgraphResult
from ..graph.graph import Graph


def streaming_densest(graph: Graph, epsilon: float = 0.1) -> DensestSubgraphResult:
    """Batch-peeling EDS approximation with ratio ``1/(2+2ε)``.

    Parameters
    ----------
    epsilon:
        Trade-off knob: smaller values give a better ratio and more
        passes (``O(log n / ε)``).

    Raises
    ------
    ValueError
        If ``epsilon <= 0`` (the analysis needs a strictly positive ε).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    n = graph.num_vertices
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "Streaming")

    work = graph.copy()
    best_density = work.edge_density()
    best_vertices = set(work.vertices())
    passes = 0
    pass_sizes: list[int] = []
    while work.num_vertices > 0:
        passes += 1
        density = work.edge_density()
        threshold = 2.0 * (1.0 + epsilon) * density
        # Non-empty for every ε > 0: the average degree is 2·density,
        # so at least the below-average vertices fall under 2(1+ε)·density.
        doomed = [v for v in work if work.degree(v) <= threshold]
        pass_sizes.append(len(doomed))
        for v in doomed:
            work.remove_vertex(v)
        if work.num_vertices:
            density = work.edge_density()
            if density > best_density:
                best_density = density
                best_vertices = set(work.vertices())
    return DensestSubgraphResult(
        vertices=best_vertices,
        density=best_density,
        method="Streaming",
        iterations=passes,
        stats={"pass_sizes": pass_sizes},
    )
