"""Extensions beyond the paper (clearly labelled; see DESIGN.md §7)."""

from .greedy_pp import greedy_pp_densest
from .size_constrained import densest_at_least, densest_at_most
from .streaming import streaming_densest
from .topk import top_k_densest

__all__ = [
    "densest_at_least",
    "densest_at_most",
    "greedy_pp_densest",
    "streaming_densest",
    "top_k_densest",
]
