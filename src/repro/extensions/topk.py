"""Top-k densest subgraph extraction (extension).

The paper's related work covers top-k locally densest subgraphs (Qin et
al., KDD'15) and top-k local triangle-densest subgraphs (Samusevich et
al.).  This extension provides the standard practical variant used by
applications such as the social-piggybacking example: extract k
pairwise-disjoint dense subgraphs by repeatedly running a DSD algorithm
and removing the result.

Disjointness is the usual application constraint (each vertex is served
by one cluster); the i-th result is the densest subgraph of the residual
graph, so densities are non-increasing in i.
"""

from __future__ import annotations

import inspect
from functools import partial
from typing import Callable, Optional

from ..core.core_app import core_app_densest
from ..core.exact import DensestSubgraphResult
from ..graph.graph import Graph


def top_k_densest(
    graph: Graph,
    k: int,
    h: int = 2,
    method: Callable[[Graph, int], DensestSubgraphResult] = core_app_densest,
    flow_engine: Optional[str] = None,
) -> list[DensestSubgraphResult]:
    """Extract up to ``k`` disjoint dense subgraphs (peel-and-repeat).

    Parameters
    ----------
    graph, h:
        Input graph and clique size of Ψ.
    k:
        Number of subgraphs to extract; fewer are returned when the
        graph runs out of Ψ instances.
    method:
        The single-shot DSD algorithm to repeat, ``(graph, h) ->
        DensestSubgraphResult``; defaults to CoreApp.  Pass
        ``core_exact_densest`` for exact per-round optima.
    flow_engine:
        Forwarded to ``method`` when it accepts a ``flow_engine``
        keyword (the exact flow-based algorithms accept ``"ggt"``,
        ``"reuse"`` and ``"rebuild"``); ignored otherwise.

    Returns
    -------
    Results in extraction order; densities are non-increasing.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if flow_engine is not None:
        try:
            accepts = "flow_engine" in inspect.signature(method).parameters
        except (TypeError, ValueError):  # builtins / partials without signature
            accepts = False
        if accepts:
            method = partial(method, flow_engine=flow_engine)
    work = graph.copy()
    results: list[DensestSubgraphResult] = []
    for _ in range(k):
        if work.num_vertices == 0:
            break
        result = method(work, h)
        if result.density <= 0.0 or not result.vertices:
            break
        results.append(result)
        for v in result.vertices:
            if v in work:
                work.remove_vertex(v)
    return results
