"""Greedy++ iterated peeling (extension).

The paper's related work points at the convex-programming view of
densest subgraph (Danisch, Chan & Sozio, WWW'17).  Greedy++ (Boob et
al.) is the lightweight member of that family: run Charikar's peel
repeatedly, but break ties by a *load* carried over from previous
rounds -- each round peels the vertex minimising ``load[v] +
degree[v]``.  The best residual subgraph across rounds converges to the
exact EDS as rounds grow, closing most of the 0.5-approximation gap
after a handful of iterations.

Included as a labelled extension: it gives the test suite an
independent near-exact reference that does not use max-flow at all.
"""

from __future__ import annotations

from ..core.exact import DensestSubgraphResult
from ..graph.graph import Graph, Vertex


def greedy_pp_densest(graph: Graph, rounds: int = 8) -> DensestSubgraphResult:
    """Greedy++ for edge density: ``rounds`` load-guided peels.

    Parameters
    ----------
    rounds:
        Number of peeling passes; 1 reduces exactly to Charikar's
        greedy.  A few dozen rounds typically reach the optimum on
        small graphs.

    Raises
    ------
    ValueError
        If ``rounds < 1``.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    n = graph.num_vertices
    if n == 0:
        return DensestSubgraphResult(set(), 0.0, "Greedy++")

    load: dict[Vertex, float] = {v: 0.0 for v in graph}
    best_density = graph.edge_density()
    best_vertices = set(graph.vertices())

    for _ in range(rounds):
        work = graph.copy()
        alive = set(work.vertices())
        while len(alive) > 1:
            v = min(alive, key=lambda u, w=work: load[u] + w.degree(u))
            load[v] += work.degree(v)
            work.remove_vertex(v)
            alive.discard(v)
            density = work.edge_density()
            if density > best_density:
                best_density = density
                best_vertices = set(alive)
    return DensestSubgraphResult(
        vertices=best_vertices,
        density=best_density,
        method="Greedy++",
        iterations=rounds,
    )
