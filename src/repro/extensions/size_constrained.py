"""Size-constrained densest subgraph heuristics (future-work extension).

The paper's conclusion names "densest subgraphs with size constraints"
as future work.  Both constrained variants are NP-hard [5, 4], so this
module provides the standard greedy heuristics, clearly labelled as
extensions beyond the paper's algorithmic contributions:

* :func:`densest_at_least` -- among subgraphs with >= ``k`` vertices,
  Charikar-style peeling restricted to never report smaller subgraphs
  (a 1/3-approximation for edge density, Andersen & Chellapilla).
* :func:`densest_at_most` -- a peel-down heuristic for the <= ``k``
  variant (no approximation guarantee exists for polynomial greedy).
"""

from __future__ import annotations

from ..cliques.enumeration import CliqueIndex
from ..core.exact import DensestSubgraphResult
from ..graph.graph import Graph


def densest_at_least(graph: Graph, k: int, h: int = 2) -> DensestSubgraphResult:
    """Greedy densest subgraph with at least ``k`` vertices.

    Peels minimum-Ψ-degree vertices and returns the densest residual
    graph that still has >= ``k`` vertices.

    Raises
    ------
    ValueError
        If ``k`` exceeds the number of vertices.
    """
    n = graph.num_vertices
    if k > n:
        raise ValueError(f"k={k} exceeds |V|={n}")
    if k < 1:
        raise ValueError("k must be positive")
    index = CliqueIndex(graph, h)
    degree = index.degrees()
    alive = set(graph.vertices())
    best_density = index.num_alive / n if n else 0.0
    best_vertices = set(alive)
    while len(alive) > k:
        v = min(alive, key=lambda u: degree[u])
        alive.discard(v)
        for killed in index.peel_vertex(v):
            for u in killed:
                if u in alive:
                    degree[u] -= 1
        density = index.num_alive / len(alive)
        if density > best_density:
            best_density = density
            best_vertices = set(alive)
    return DensestSubgraphResult(
        vertices=best_vertices,
        density=best_density,
        method=f"DensestAtLeast({k})",
    )


def densest_at_most(graph: Graph, k: int, h: int = 2) -> DensestSubgraphResult:
    """Greedy densest subgraph with at most ``k`` vertices (heuristic).

    Peels minimum-Ψ-degree vertices until at most ``k`` remain, then
    returns the densest residual graph seen at size <= ``k``.
    """
    n = graph.num_vertices
    if k < 1:
        raise ValueError("k must be positive")
    index = CliqueIndex(graph, h)
    degree = index.degrees()
    alive = set(graph.vertices())
    best_density = -1.0
    best_vertices: set = set()
    if len(alive) <= k and alive:
        best_density = index.num_alive / len(alive)
        best_vertices = set(alive)
    while len(alive) > 1:
        v = min(alive, key=lambda u: degree[u])
        alive.discard(v)
        for killed in index.peel_vertex(v):
            for u in killed:
                if u in alive:
                    degree[u] -= 1
        if alive and len(alive) <= k:
            density = index.num_alive / len(alive)
            if density > best_density:
                best_density = density
                best_vertices = set(alive)
    return DensestSubgraphResult(
        vertices=best_vertices,
        density=max(best_density, 0.0),
        method=f"DensestAtMost({k})",
    )
