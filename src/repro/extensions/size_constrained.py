"""Size-constrained densest subgraph heuristics (future-work extension).

The paper's conclusion names "densest subgraphs with size constraints"
as future work.  Both constrained variants are NP-hard [5, 4], so this
module provides the standard greedy heuristics, clearly labelled as
extensions beyond the paper's algorithmic contributions:

* :func:`densest_at_least` -- among subgraphs with >= ``k`` vertices,
  Charikar-style peeling restricted to never report smaller subgraphs
  (a 1/3-approximation for edge density, Andersen & Chellapilla).
* :func:`densest_at_most` -- a peel-down heuristic for the <= ``k``
  variant (no approximation guarantee exists for polynomial greedy).
"""

from __future__ import annotations

from ..cliques.enumeration import CliqueIndex
from ..core.exact import DensestSubgraphResult
from ..core.peel import min_degree_peel
from ..graph.graph import Graph


def densest_at_least(graph: Graph, k: int, h: int = 2) -> DensestSubgraphResult:
    """Greedy densest subgraph with at least ``k`` vertices.

    Peels minimum-Ψ-degree vertices (via the shared heap-based peel of
    :func:`repro.core.peel.min_degree_peel`, O(log n) per operation
    instead of an O(n) min-scan per step) and returns the densest
    residual graph that still has >= ``k`` vertices.

    Raises
    ------
    ValueError
        If ``k`` exceeds the number of vertices.
    """
    n = graph.num_vertices
    if k > n:
        raise ValueError(f"k={k} exceeds |V|={n}")
    if k < 1:
        raise ValueError("k must be positive")
    index = CliqueIndex(graph, h)
    best_density = index.num_alive / n if n else 0.0
    best_vertices = set(graph.vertices())
    for _, alive, num_alive in min_degree_peel(graph, index):
        if len(alive) < k:
            break
        density = num_alive / len(alive)
        if density > best_density:
            best_density = density
            best_vertices = set(alive)
    return DensestSubgraphResult(
        vertices=best_vertices,
        density=best_density,
        method=f"DensestAtLeast({k})",
    )


def densest_at_most(graph: Graph, k: int, h: int = 2) -> DensestSubgraphResult:
    """Greedy densest subgraph with at most ``k`` vertices (heuristic).

    Peels minimum-Ψ-degree vertices (same shared peel as
    :func:`densest_at_least`) until at most ``k`` remain, then returns
    the densest residual graph seen at size <= ``k``.
    """
    n = graph.num_vertices
    if k < 1:
        raise ValueError("k must be positive")
    index = CliqueIndex(graph, h)
    best_density = -1.0
    best_vertices: set = set()
    if n <= k and n:
        best_density = index.num_alive / n
        best_vertices = set(graph.vertices())
    for _, alive, num_alive in min_degree_peel(graph, index):
        if alive and len(alive) <= k:
            density = num_alive / len(alive)
            if density > best_density:
                best_density = density
                best_vertices = set(alive)
    return DensestSubgraphResult(
        vertices=best_vertices,
        density=max(best_density, 0.0),
        method=f"DensestAtMost({k})",
    )
