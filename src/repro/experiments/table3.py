"""Table 3: share of CoreExact time spent in core decomposition.

The paper reports the percentage falling steeply with the clique size
(the flow phase dominates for large h); the same trend should hold on
the surrogates.
"""

from __future__ import annotations

from ..core.core_exact import core_exact_densest
from ..datasets.registry import load


def run(
    names: tuple[str, ...] = ("As-733", "Ca-HepTh"),
    h_values: tuple[int, ...] = (2, 3, 4),
    scale: float = 1.0,
) -> list[dict]:
    """One row per dataset with a percentage column per h."""
    rows = []
    for name in names:
        graph = load(name, scale)
        row: dict = {"dataset": name}
        for h in h_values:
            result = core_exact_densest(graph, h)
            total = result.stats["total_seconds"]
            decomp = result.stats["decomposition_seconds"]
            row[f"h={h}"] = f"{100.0 * decomp / total:.2f}%" if total > 0 else "-"
        rows.append(row)
    return rows
