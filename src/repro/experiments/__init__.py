"""Experiment modules, one per paper table/figure (see DESIGN.md §4)."""

from . import (
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13_14,
    fig15_16,
    fig20,
    table2,
    table3,
    table4,
    table5,
)
from .harness import format_table, print_table, timed

__all__ = [
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13_14",
    "fig15_16",
    "fig20",
    "table2",
    "table3",
    "table4",
    "table5",
    "format_table",
    "print_table",
    "timed",
]
